#!/usr/bin/env python3
"""Replay the paper's section 5 walkthrough of Figure 6, point by point.

The paper narrates the analysis of ``list_addh`` across the numbered
execution points of its control-flow graph: the entry states implied by
the annotations, the alias set {argl, argl->next} at the loop exit, the
``kept`` state of ``e`` after the assignment transfers its obligation,
the confluence error marker, and the undefined ``argl->next->next`` that
triggers the incomplete-definition anomaly.

This example regenerates that narration from the tracing engine.

Run with::

    python examples/figure6_walkthrough.py
"""

from repro.analysis.engine import trace_source

FIG5 = """typedef /*@null@*/ struct _list {
  /*@only@*/ char *this;
  /*@null@*/ /*@only@*/ struct _list *next;
} *list;

extern /*@out@*/ /*@only@*/ void *smalloc (size_t);

void list_addh (/*@temp@*/ list l, /*@only@*/ char *e)
{
  if (l != NULL)
  {
    while (l->next != NULL)
    {
      l = l->next;
    }
    l->next = (list) smalloc (sizeof (*l->next));
    l->next->this = e;
  }
}
"""

PAPER_NOTES = {
    "Function Entrance": (
        'paper: "For parameter l ... its null state is possibly-null ... '
        'Because of the temp annotation, its allocation state is temp. '
        'Similarly, the parameter e is characterized as completely-defined, '
        'not-null, and only." At the function entrance, l aliases argl.'
    ),
    "while": (
        'paper (point 7): "at point 7, l may alias argl or argl->next" — '
        "and no deeper, because the loop has no back edge.",
    ),
    "smalloc": (
        'paper (point 8): "after the assignment l->next is characterized as '
        'allocated, non-null, and only ... l is now characterized as '
        'partially-defined."'
    ),
    "this = e": (
        'paper: "The assignment transfers the obligation to release '
        'storage ... So, the allocation state of e becomes kept."'
    ),
    "if": (
        'paper (point 10): "This is a confluence error ... the allocation '
        'state of e is set to a special error marker." Note '
        "argl->next->next is undefined here, which point 11 reports.",
    ),
}


def note_for(label: str) -> str | None:
    for key, note in PAPER_NOTES.items():
        if key in label:
            return note if isinstance(note, str) else note[0]
    return None


def main() -> None:
    trace, messages = trace_source(FIG5, "list_addh")
    for point in trace:
        print(point.render())
        note = note_for(point.label)
        if note:
            print(f"  >> {note}")
        print()
    print("messages at the exit point (the paper's two anomalies):")
    for message in messages:
        print(message.render())


if __name__ == "__main__":
    main()
