#!/usr/bin/env python3
"""Reproduce Figure 6: the control-flow graph for list_addh.

The distinguishing property of the paper's execution model is visible in
the graph: the while loop has **no back edge** (it is analyzed as "zero
or one iterations"), so the whole graph is a DAG and the analysis needs
no fixpoint iteration.

Run with::

    python examples/explore_cfg.py          # summary + DOT on stdout

Pipe the DOT output to graphviz to render the figure::

    python examples/explore_cfg.py | tail -n +12 | dot -Tpng -o fig6.png
"""

from repro.bench.harness import FIGURE_SOURCES, figure6_cfg


def main() -> None:
    info = figure6_cfg()
    print(f"function:          {info['function']}  (the paper's Figure 5)")
    print(f"nodes:             {info['nodes']}")
    print(f"edges:             {info['edges']}")
    print(f"branch nodes:      {info['branches']}  (the if and the while)")
    print(f"entry->exit paths: {info['paths']}")
    print(f"acyclic (no back edges): {info['acyclic']}")
    print()
    print("The paper's Figure 6 walk: at the loop-exit merge, l may alias")
    print("argl or argl->next; executions beyond one iteration are not")
    print("modelled, which is why the incomplete-definition anomaly names")
    print("argl->next->next and no deeper reference.")
    print()
    print(info["dot"])


if __name__ == "__main__":
    main()
