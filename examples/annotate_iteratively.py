#!/usr/bin/env python3
"""The section 6 workflow: annotate a real program iteratively.

"Adding annotations is an iterative process. With each iteration, LCLint
detects some anomalies, annotations are added or discovered bugs are
fixed, and LCLint is run again to propagate the new annotations up the
call chain."

This example replays that process on the reconstructed employee-database
program (see ``repro.bench.dbexample``): stage 0 is the original
unannotated program (with the driver's six storage leaks); each stage
adds the annotations and fixes prompted by the previous run; the final
stage checks clean.

Run with::

    python examples/annotate_iteratively.py
"""

from repro import Checker, Flags
from repro.bench.dbexample import FINAL_STAGE, annotation_census, db_sources

NOIMP = Flags.from_args(["-allimponly"])

STAGE_NOTES = {
    0: "original program (unannotated; driver leaks present)",
    1: "+ null annotations and the assertions they prompted",
    2: "+ only/reldef fixing the -allimponly allocation anomalies",
    3: "+ only annotations propagated up the call chain",
    4: "+ driver free() fixes, the out parameter, and unique",
}


def main() -> None:
    print(f"{'stage':>5} {'annotations':>12} {'msgs (-allimponly)':>19} "
          f"{'msgs (default)':>15}   notes")
    for stage in range(FINAL_STAGE + 1):
        files = db_sources(stage)
        noimp = Checker(flags=NOIMP).check_sources(files)
        default = Checker().check_sources(files)
        census = annotation_census(stage)
        print(f"{stage:>5} {census.total:>12} {len(noimp.messages):>19} "
              f"{len(default.messages):>15}   {STAGE_NOTES[stage]}")

    census = annotation_census(FINAL_STAGE)
    print(
        f"\nfinal annotation census: {census.null} null, {census.only} only, "
        f"{census.out} out, {census.unique} unique, {census.relaxed} relaxed "
        f"(paper, section 6: 15 = 1 null + 1 out + 13 only, plus unique)"
    )

    print("\nmessages from an intermediate stage (stage 3), showing the")
    print("driver's storage leaks the way section 6 reports them:\n")
    stage3 = Checker(flags=NOIMP).check_sources(db_sources(3))
    for message in stage3.messages:
        print(message.render())


if __name__ == "__main__":
    main()
