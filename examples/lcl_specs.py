#!/usr/bin/env python3
"""Checking C code against LCL interface specifications.

"We can use annotations in LCL specifications, or directly in the source
code as syntactic comments." (paper, section 4) The standard library's
specs in the paper are written LCL-style — ``null out only void *malloc
(size_t size)`` — with bare annotation words before the types.

This example writes an ``.lcl`` interface for a tiny string-table
module, then checks a correct and a buggy implementation against it.

Run with::

    python examples/lcl_specs.py
"""

from repro import Checker, Flags

NOIMP = Flags.from_args(["-allimponly"])

#: The shared type definitions (a normal header).
TABLE_H = """
#ifndef TABLE_H
#define TABLE_H
typedef struct _entry {
  /*@only@*/ char *key;
  int value;
} *entry;
#endif
"""

#: The interface, in LCL form (bare annotation words, no /*@...@*/).
TABLE_LCL = """
#include "table.h"

null out only void *table_alloc (size_t size);
only entry entry_create (temp char *key, int value);
void entry_destroy (null only entry e);
observer char *entry_key (temp entry e);
"""

GOOD_IMPL = """
#include <stdlib.h>
#include <string.h>
#include "table.h"

entry entry_create (char *key, int value)
{
  entry e = (entry) table_alloc(sizeof(*e));
  char *copy = (char *) table_alloc(strlen(key) + 1);
  if (e == NULL || copy == NULL) { exit(EXIT_FAILURE); }
  strcpy(copy, key);
  e->key = copy;
  e->value = value;
  return e;
}

void entry_destroy (entry e)
{
  if (e != NULL) {
    free(e->key);
    free(e);
  }
}
"""

BUGGY_IMPL = """
#include <stdlib.h>
#include <string.h>
#include "table.h"

entry entry_create (char *key, int value)
{
  entry e = (entry) table_alloc(sizeof(*e));
  if (e == NULL) { exit(EXIT_FAILURE); }
  e->key = key;            /* stores the caller's temp string! */
  e->value = value;
  return e;
}

void entry_destroy (entry e)
{
  if (e != NULL) {
    free(e);               /* forgets the owned key */
  }
}
"""


def check(label: str, impl: str) -> None:
    print(f"== {label} ==")
    checker = Checker(flags=NOIMP)
    checker.sources.add("table.h", TABLE_H)
    spec = checker.parse_unit(TABLE_LCL, "table.lcl")
    body = checker.parse_unit(impl, "table.c")
    result = checker.check_units([spec, body])
    if not result.messages:
        print("clean — implementation satisfies the specification\n")
        return
    for message in result.messages:
        print(message.render())
    print()


def main() -> None:
    check("correct implementation", GOOD_IMPL)
    check("buggy implementation", BUGGY_IMPL)


if __name__ == "__main__":
    main()
