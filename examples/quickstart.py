#!/usr/bin/env python3
"""Quickstart: check a buggy C fragment for dynamic memory errors.

Run with::

    python examples/quickstart.py

The program below contains three classic errors from the paper's
catalogue: a possibly-null dereference, an inconsistent branch (storage
released on one path only, then used), and a storage leak. The checker
finds all of them without executing the program. Note how the branch
anomaly poisons further checking of ``a`` with an error marker, exactly
as section 5 describes ("To prevent further errors, the allocation
state ... is set to a special error marker").
"""

from repro import Flags, check_source

BUGGY = r"""
#include <stdlib.h>
#include <stdio.h>

typedef struct _cell {
    int value;
    /*@null@*/ /*@only@*/ struct _cell *next;
} *cell;

static /*@only@*/ cell cell_create(int value)
{
    cell c = (cell) malloc(sizeof(*c));
    /* BUG 1: c may be NULL here, and it is dereferenced below. */
    c->value = value;
    c->next = NULL;
    return c;
}

static void demo(int which)
{
    cell a = cell_create(1);
    cell b = cell_create(2);

    if (which > 0) {
        free(a);            /* BUG 2: released on only one path ...    */
    }
    printf("%d\n", a->value); /* ... and used again afterwards.        */

    /* BUG 3: b is never released -- the last reference is lost. */
}
"""


def main() -> None:
    print("== checking with default flags ==")
    result = check_source(BUGGY, name="buggy.c")
    for message in result.messages:
        print(message.render())
    print(f"\n{len(result.messages)} code warning(s)")

    print("\n== same file in garbage-collector mode (+gcmode) ==")
    gc_result = check_source(
        BUGGY, name="buggy.c", flags=Flags.from_args(["+gcmode"])
    )
    for message in gc_result.messages:
        print(message.render())
    print(f"\n{len(gc_result.messages)} code warning(s) "
          "(leak checking disabled, as for gc'd targets)")


if __name__ == "__main__":
    main()
