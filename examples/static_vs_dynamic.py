#!/usr/bin/env python3
"""Static checking vs run-time tools (the paper's motivating comparison).

"Run-time checking also suffers from the flaw that its effectiveness
depends entirely on running the right test cases to reveal the
problems." (section 1)

This example seeds a program with one bug of each kind the paper
catalogues, then compares:

* the static checker, which sees every scenario without running any, and
* the instrumented-heap interpreter (the dmalloc/Purify stand-in), which
  only reports errors in the scenarios the 'test suite' actually runs.

Run with::

    python examples/static_vs_dynamic.py
"""

from repro import Checker
from repro.bench.seeding import (
    function_line_ranges,
    generate_seeded_program,
    match_runtime_detection,
    match_static_detections,
)
from repro.frontend.symtab import SymbolTable
from repro.runtime.interp import Interpreter


def main() -> None:
    seeded = generate_seeded_program(modules=2, bugs_per_kind=1,
                                     clean_scenarios=2)
    print(f"seeded program: {seeded.program.loc} lines, "
          f"{len(seeded.bugs)} bugs, "
          f"{len(seeded.clean_scenarios)} clean scenarios\n")

    # --- static: one pass over the whole program, no execution ---------
    result = Checker().check_sources(dict(seeded.program.files))
    ranges = function_line_ranges(result.units)
    static_found = match_static_detections(seeded.bugs, result.messages, ranges)

    # --- dynamic: only half the scenarios are 'tested' -----------------
    checker = Checker()
    parsed = []
    for name, text in seeded.program.files.items():
        if name.endswith(".h"):
            checker.sources.add(name, text)
    for name, text in seeded.program.files.items():
        if not name.endswith(".h"):
            parsed.append(checker.parse_unit(text, name))
    symtab = SymbolTable()
    enum_consts: dict[str, int] = {}
    for pu in parsed:
        symtab.add_unit(pu.unit)
        enum_consts.update(pu.enum_consts)
    units = [pu.unit for pu in parsed]

    tested = {bug.scenario for bug in seeded.bugs[: len(seeded.bugs) // 2]}

    print(f"{'bug kind':<22} {'static':>7} {'runtime (50% coverage)':>23}")
    runtime_found = 0
    for bug in seeded.bugs:
        if bug.scenario in tested:
            interp = Interpreter(units, symtab, enum_consts)
            run = interp.run(bug.scenario)
            dynamic = match_runtime_detection(bug, run.events)
        else:
            dynamic = False  # the buggy path never executed
        runtime_found += int(dynamic)
        print(f"{bug.kind.value:<22} "
              f"{'found' if static_found[bug.bug_id] else 'MISSED':>7} "
              f"{'found' if dynamic else 'missed (not executed)':>23}")

    total = len(seeded.bugs)
    print(f"\nstatic:  {sum(static_found.values())}/{total} "
          "(all paths, no test cases needed)")
    print(f"runtime: {runtime_found}/{total} "
          "(only errors on executed paths are visible)")


if __name__ == "__main__":
    main()
