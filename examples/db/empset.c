#include <stdlib.h>
#include <stdio.h>
#include <assert.h>
#include "employee.h"
#include "eref.h"
#include "erc.h"
#include "empset.h"

static eref empset_locate(empset s, employee e)
{
  ercElem cur;
  employee stored;

  assert(s != NULL);
  cur = s->vals;
  while (cur != NULL) {
    stored = eref_get(cur->val);
    if (employee_equal(&stored, &e)) {
      return cur->val;
    }
    cur = cur->next;
  }
  return erefNIL;
}

/*@only@*/ empset empset_create(void)
{
  return erc_create();
}

void empset_final(/*@only@*/ empset s)
{
  erc_final(s);
}

void empset_clear(empset s)
{
  erc_clear(s);
}

int empset_insert(empset s, employee e)
{
  eref er;

  if (empset_locate(s, e) != erefNIL) {
    return 0;
  }
  er = eref_alloc();
  if (er == erefNIL) {
    return 0;
  }
  eref_assign(er, e);
  erc_insert(s, er);
  return 1;
}

int empset_delete(empset s, employee e)
{
  eref er = empset_locate(s, e);

  if (er == erefNIL) {
    return 0;
  }
  eref_free(er);
  return erc_delete(s, er);
}

int empset_member(employee e, empset s)
{
  return empset_locate(s, e) != erefNIL;
}

int empset_size(empset s)
{
  return erc_size(s);
}

employee empset_choose(empset s)
{
  /* requires empset_size(s) > 0 */
  return eref_get(erc_choose(s));
}

/*@only@*/ char *empset_sprint(empset s)
{
  return erc_sprint(s);
}
