#include <stdlib.h>
#include <stdio.h>
#include <string.h>
#include "employee.h"
#include "eref.h"
#include "erc.h"
#include "empset.h"
#include "dbase.h"

static employee mk_employee(int ssNum, char *name, int salary,
                            gender g, job j)
{
  employee e;

  e.ssNum = ssNum;
  e.salary = salary;
  e.gen = g;
  e.j = j;
  e.name[0] = '\0';
  (void) employee_setName(&e, name);
  return e;
}

int main(void)
{
  empset matches;
  char *printed;
  char *summary;
  int hired = 0;
  int i;

  db_initMod();

  hired = hired + (db_hire(mk_employee(1, "alice", 60000, FEMALE, MGR)) == db_OK);
  hired = hired + (db_hire(mk_employee(2, "bob", 40000, MALE, NONMGR)) == db_OK);
  hired = hired + (db_hire(mk_employee(3, "carol", 70000, FEMALE, MGR)) == db_OK);
  hired = hired + (db_hire(mk_employee(4, "dave", 30000, MALE, NONMGR)) == db_OK);
  hired = hired + (db_hire(mk_employee(5, "erin", 50000, FEMALE, NONMGR)) == db_OK);
  printf("hired %d\n", hired);

  (void) db_promote(5);
  (void) db_setSalary(2, 45000);

  matches = empset_create();
  i = db_query(FEMALE, MGR, 0, 100000, matches);
  printf("query found %d\n", i);

  /* six storage leaks: sprint results overwritten without free (fixed
     in the final stage) */
  printed = empset_sprint(matches);
  printf("%s", printed);
  free(printed);
  printed = empset_sprint(matches);
  printf("%s", printed);
  free(printed);
  printed = empset_sprint(matches);
  printf("%s", printed);
  free(printed);

  summary = db_sprint();
  printf("%s", summary);
  free(summary);
  summary = db_sprint();
  printf("%s", summary);
  free(summary);
  summary = db_sprint();
  printf("%s", summary);
  free(summary);

  (void) db_fire(4);
  empset_final(matches);
  return EXIT_SUCCESS;
}
