#include <stdlib.h>
#include <stdio.h>
#include <assert.h>
#include "employee.h"
#include "eref.h"

#define POOLSIZE 16

typedef enum { used, avail } eref_status;

typedef struct {
  /*@null@*/ /*@only@*/ /*@reldef@*/ employee *conts;
  /*@null@*/ /*@only@*/ /*@reldef@*/ eref_status *status;
  int size;
} eref_pool_t;

static eref_pool_t eref_pool;
static int pool_initialized = 0;

void eref_initMod(void)
{
  int i;
  employee *nc;
  eref_status *ns;

  if (pool_initialized) {
    return;
  }
  nc = (employee *) malloc(POOLSIZE * sizeof(employee));
  ns = (eref_status *) malloc(POOLSIZE * sizeof(eref_status));
  if (nc == NULL || ns == NULL) {
    printf("malloc returned null in eref_initMod\n");
    exit(EXIT_FAILURE);
  }
  for (i = 0; i < POOLSIZE; i++) {
    ns[i] = avail;
  }
  eref_pool.conts = nc;
  eref_pool.status = ns;
  eref_pool.size = POOLSIZE;
  pool_initialized = 1;
}

eref eref_alloc(void)
{
  int i;

  assert(eref_pool.status != NULL);
  for (i = 0; i < eref_pool.size; i++) {
    if (eref_pool.status[i] == avail) {
      eref_pool.status[i] = used;
      return i;
    }
  }
  return erefNIL;
}

void eref_free(eref er)
{
  assert(eref_pool.status != NULL);
  eref_pool.status[er] = avail;
}

void eref_assign(eref er, employee e)
{
  assert(eref_pool.conts != NULL);
  eref_pool.conts[er] = e;
}

employee eref_get(eref er)
{
  assert(eref_pool.conts != NULL);
  return eref_pool.conts[er];
}
