#include <stdlib.h>
#include <stdio.h>
#include <string.h>
#include <assert.h>
#include "employee.h"
#include "eref.h"
#include "erc.h"
#include "empset.h"
#include "dbase.h"

static /*@null@*/ /*@only@*/ erc db_mMgrs;
static /*@null@*/ /*@only@*/ erc db_fMgrs;
static /*@null@*/ /*@only@*/ erc db_mNon;
static /*@null@*/ /*@only@*/ erc db_fNon;

static /*@dependent@*/ erc db_bucket(gender g, job j)
{
  if (g == MALE) {
    if (j == MGR) {
      assert(db_mMgrs != NULL);
      return db_mMgrs;
    }
    assert(db_mNon != NULL);
    return db_mNon;
  }
  if (j == MGR) {
    assert(db_fMgrs != NULL);
    return db_fMgrs;
  }
  assert(db_fNon != NULL);
  return db_fNon;
}

static eref db_locate(int ssNum)
{
  gender g;
  job j;
  erc bucket;
  ercElem cur;
  employee e;

  for (g = MALE; g <= FEMALE; g++) {
    for (j = MGR; j <= NONMGR; j++) {
      bucket = db_bucket(g, j);
      cur = bucket->vals;
      while (cur != NULL) {
        e = eref_get(cur->val);
        if (e.ssNum == ssNum) {
          return cur->val;
        }
        cur = cur->next;
      }
    }
  }
  return erefNIL;
}

void db_initMod(void)
{
  eref_initMod();
  db_mMgrs = erc_create();
  db_fMgrs = erc_create();
  db_mNon = erc_create();
  db_fNon = erc_create();
}

db_status db_hire(employee e)
{
  if (db_locate(e.ssNum) != erefNIL) {
    return db_DUPLICATE;
  }
  if (e.salary < 0) {
    return db_BADRANGE;
  }
  {
    eref er = eref_alloc();
    if (er == erefNIL) {
      return db_BADRANGE;
    }
    eref_assign(er, e);
    erc_insert(db_bucket(e.gen, e.j), er);
  }
  return db_OK;
}

db_status db_fire(int ssNum)
{
  eref er = db_locate(ssNum);
  employee e;

  if (er == erefNIL) {
    return db_MISSING;
  }
  e = eref_get(er);
  if (erc_delete(db_bucket(e.gen, e.j), er)) {
    eref_free(er);
    return db_OK;
  }
  return db_MISSING;
}

db_status db_promote(int ssNum)
{
  eref er = db_locate(ssNum);
  employee e;

  if (er == erefNIL) {
    return db_MISSING;
  }
  e = eref_get(er);
  if (e.j == MGR) {
    return db_BADRANGE;
  }
  if (!erc_delete(db_bucket(e.gen, e.j), er)) {
    return db_MISSING;
  }
  e.j = MGR;
  eref_assign(er, e);
  erc_insert(db_bucket(e.gen, e.j), er);
  return db_OK;
}

db_status db_setSalary(int ssNum, int salary)
{
  eref er = db_locate(ssNum);
  employee e;

  if (er == erefNIL) {
    return db_MISSING;
  }
  if (salary < 0) {
    return db_BADRANGE;
  }
  e = eref_get(er);
  e.salary = salary;
  eref_assign(er, e);
  return db_OK;
}

int db_query(gender g, job j, int lo, int hi, empset result)
{
  erc bucket = db_bucket(g, j);
  ercElem cur = bucket->vals;
  employee e;
  int added = 0;

  while (cur != NULL) {
    e = eref_get(cur->val);
    if (e.salary >= lo && e.salary <= hi) {
      if (empset_insert(result, e)) {
        added = added + 1;
      }
    }
    cur = cur->next;
  }
  return added;
}

/*@only@*/ char *db_sprint(void)
{
  char *result;
  char *part;
  size_t total = 1;

  result = (char *) malloc(4096);
  if (result == NULL) {
    printf("malloc returned null in db_sprint\n");
    exit(EXIT_FAILURE);
  }
  result[0] = '\0';
  assert(db_mMgrs != NULL);
  assert(db_fMgrs != NULL);
  assert(db_mNon != NULL);
  assert(db_fNon != NULL);
  part = erc_sprint(db_mMgrs);
  strcat(result, part);
  free(part);
  part = erc_sprint(db_fMgrs);
  strcat(result, part);
  free(part);
  part = erc_sprint(db_mNon);
  strcat(result, part);
  free(part);
  part = erc_sprint(db_fNon);
  strcat(result, part);
  free(part);
  (void) total;
  return result;
}
