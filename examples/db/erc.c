#include <stdlib.h>
#include <stdio.h>
#include <string.h>
#include <assert.h>
#include "employee.h"
#include "eref.h"
#include "erc.h"

static void elems_free(/*@null@*/ /*@only@*/ ercElem e)
{
  if (e != NULL) {
    elems_free(e->next);
    free(e);
  }
}

/*@only@*/ erc erc_create(void)
{
  erc c = (erc) malloc(sizeof(*c));

  if (c == NULL) {
    printf("malloc returned null in erc_create\n");
    exit(EXIT_FAILURE);
  }

  c->vals = NULL;
  c->size = 0;
  return c;
}

void erc_clear(erc c)
{
  elems_free(c->vals);
  c->vals = NULL;
  c->size = 0;
}

void erc_final(/*@only@*/ erc c)
{
  erc_clear(c);
  free(c);
}

void erc_insert(erc c, eref er)
{
  ercElem e = (ercElem) malloc(sizeof(*e));

  if (e == NULL) {
    printf("malloc returned null in erc_insert\n");
    exit(EXIT_FAILURE);
  }
  e->val = er;
  e->next = c->vals;
  c->vals = e;
  c->size = c->size + 1;
}

static /*@null@*/ /*@only@*/ ercElem
elems_remove(/*@null@*/ /*@only@*/ ercElem e, eref er, int *found)
{
  ercElem rest;

  if (e == NULL) {
    return NULL;
  }
  rest = elems_remove(e->next, er, found);
  if (e->val == er && *found == 0) {
    *found = 1;
    free(e);
    return rest;
  }
  e->next = rest;
  return e;
}

int erc_delete(erc c, eref er)
{
  int found = 0;

  c->vals = elems_remove(c->vals, er, &found);
  if (found != 0) {
    c->size = c->size - 1;
  }
  return found;
}

int erc_member(eref er, erc c)
{
  ercElem cur = c->vals;

  while (cur != NULL) {
    if (cur->val == er) {
      return 1;
    }
    cur = cur->next;
  }
  return 0;
}

eref erc_choose(erc c)
{
  /* requires erc_size(c) > 0 */
  assert(c->vals != NULL);
  return c->vals->val;
}

int erc_size(erc c)
{
  return c->size;
}

/*@only@*/ char *erc_sprint(erc c)
{
  ercElem cur;
  employee e;
  int offset = 0;
  char *result = (char *) malloc((size_t) (c->size * (employeePrintSize + 1) + 1));

  if (result == NULL) {
    printf("malloc returned null in erc_sprint\n");
    exit(EXIT_FAILURE);
  }
  result[0] = '\0';
  cur = c->vals;
  while (cur != NULL) {
    e = eref_get(cur->val);
    employee_sprint(result + offset, e);
    strcat(result, "\n");
    offset = (int) strlen(result);
    cur = cur->next;
  }
  return result;
}
