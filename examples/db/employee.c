#include <stdio.h>
#include <string.h>
#include "employee.h"

int employee_setName(employee *e, /*@unique@*/ char *na)
{
  int i;

  for (i = 0; na[i] != '\0'; i++) {
    if (i == maxEmployeeName - 1) {
      return 0;
    }
  }
  strcpy(e->name, na);
  return 1;
}

int employee_equal(employee *e1, employee *e2)
{
  return (e1->ssNum == e2->ssNum)
      && (e1->salary == e2->salary)
      && (e1->gen == e2->gen)
      && (e1->j == e2->j)
      && (strcmp(e1->name, e2->name) == 0);
}

void employee_sprint(/*@out@*/ char *s, employee e)
{
  sprintf(s, "%d %s %s %s %d",
          e.ssNum,
          e.gen == MALE ? "male" : "female",
          e.j == MGR ? "manager" : "non-manager",
          e.name,
          e.salary);
}
