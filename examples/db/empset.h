#ifndef EMPSET_H
#define EMPSET_H
#include "erc.h"

typedef erc empset;

extern /*@only@*/ empset empset_create(void);
extern void empset_final(/*@only@*/ empset s);
extern void empset_clear(empset s);
extern int empset_insert(empset s, employee e);
extern int empset_delete(empset s, employee e);
extern int empset_member(employee e, empset s);
extern int empset_size(empset s);
extern employee empset_choose(empset s);
extern /*@only@*/ char *empset_sprint(empset s);

#endif
