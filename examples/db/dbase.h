#ifndef DBASE_H
#define DBASE_H
#include "empset.h"

typedef enum { db_OK, db_DUPLICATE, db_MISSING, db_BADRANGE } db_status;

extern void db_initMod(void);
extern db_status db_hire(employee e);
extern db_status db_fire(int ssNum);
extern db_status db_promote(int ssNum);
extern db_status db_setSalary(int ssNum, int salary);
extern int db_query(gender g, job j, int lo, int hi, empset result);
extern /*@only@*/ char *db_sprint(void);

#endif
