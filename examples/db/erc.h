#ifndef ERC_H
#define ERC_H
#include "eref.h"

typedef /*@null@*/ struct _elem {
  eref val;
  /*@null@*/ /*@only@*/ struct _elem *next;
} *ercElem;

typedef struct {
  /*@null@*/ /*@only@*/ ercElem vals;
  int size;
} *erc;

extern /*@only@*/ erc erc_create(void);
extern void erc_clear(erc c);
extern void erc_final(/*@only@*/ erc c);
extern void erc_insert(erc c, eref er);
extern int erc_delete(erc c, eref er);
extern int erc_member(eref er, erc c);
extern eref erc_choose(erc c);
extern int erc_size(erc c);
extern /*@only@*/ char *erc_sprint(erc c);

#endif
