#ifndef EMPLOYEE_H
#define EMPLOYEE_H

#define maxEmployeeName 24
#define employeePrintSize 63

typedef enum { MGR, NONMGR } job;
typedef enum { MALE, FEMALE } gender;

typedef struct {
  int ssNum;
  char name[maxEmployeeName];
  int salary;
  gender gen;
  job j;
} employee;

extern int employee_setName(employee *e, /*@unique@*/ char *na);
extern int employee_equal(employee *e1, employee *e2);
extern void employee_sprint(/*@out@*/ char *s, employee e);

#endif
