#ifndef EREF_H
#define EREF_H
#include "employee.h"

typedef int eref;

#define erefNIL (-1)

extern void eref_initMod(void);
extern eref eref_alloc(void);
extern void eref_free(eref er);
extern void eref_assign(eref er, employee e);
extern employee eref_get(eref er);

#endif
