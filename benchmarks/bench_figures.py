"""FIG1-FIG6: reproduce and time every sample.c figure in the paper.

Each benchmark checks one figure's program and asserts the exact message
count the paper reports (the message *texts* are asserted in
tests/integration/test_paper_figures.py). The timing shows per-figure
checking cost, which the paper implies is interactive ("LCLint is run
frequently").
"""

import pytest

from repro import Checker
from repro.bench.harness import FIGURE_SOURCES, figure6_cfg


@pytest.mark.parametrize("figure", sorted(FIGURE_SOURCES))
def test_figure(benchmark, figure):
    source, flags, expected = FIGURE_SOURCES[figure]

    def check():
        return Checker(flags=flags).check_sources({"sample.c": source})

    result = benchmark(check)
    assert len(result.messages) == expected, (
        f"{figure}: expected {expected} message(s), got "
        f"{[m.text for m in result.messages]}"
    )


def test_fig6_cfg(benchmark, table_printer):
    info = benchmark(figure6_cfg)
    table_printer(
        "FIG6: control-flow graph for list_addh (loops-as-ifs)",
        [{k: v for k, v in info.items() if k != "dot"}],
    )
    assert info["acyclic"], "the analysis model has no back edges"
    assert info["branches"] == 2  # the if and the while
    assert info["paths"] == 3
