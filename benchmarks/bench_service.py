"""BENCH-SERVICE: chaos-load harness for the asyncio checking service.

Launches ``python -m repro.service`` as a real subprocess and throws a
hostile client population at it — concurrent checkers, slow-loris
connections, oversized lines, malformed JSON, mid-request disconnects,
checks of a poisoned source file — then SIGTERMs it mid-batch. The
acceptance properties, asserted both under pytest and in script mode:

* the service never dies: every well-behaved request gets a reply
  (modulo bounded ``busy`` backpressure, which is retried);
* every surviving check reply is byte-identical to a one-shot CLI run
  of the same arguments;
* SIGTERM drains gracefully: exit code 0, and every reply that does
  arrive during the drain is still well-formed;
* the shared result cache is fully intact afterwards
  (``verify_integrity()`` reports zero corrupt entries);
* p50/p99 request latency is recorded (client-side and service-side).

Runs two ways:

* under pytest (collected with the rest of the benchmark suite) at a
  reduced scale, and
* as a script --
  ``PYTHONPATH=src python benchmarks/bench_service.py [out.json]
  [--clients N] [--requests M]`` writes the full summary to
  ``BENCH_service.json`` (defaults: 200 clients).
"""

import json
import os
import signal
import socket
import statistics
import subprocess
import sys
import tempfile
import threading
import time

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
    )

from repro.driver import cli
from repro.incremental.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.protocol import MAX_REQUEST_BYTES

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Retries a client grants the service when turned away busy.
BUSY_RETRIES = 50

GOOD_SOURCE = (
    "#include <stdlib.h>\n"
    "char *dup8(const char *s) {\n"
    "  char *p = (char *) malloc(8);\n"
    "  *p = *s;\n"
    "  return p;\n"
    "}\n"
)

#: Unparseable on purpose: the checker must degrade the unit, reply
#: deterministically, and never cache the poisoned result.
POISONED_SOURCE = "int f( { @@@ 1x2x3 ))) \"unterminated\n#define\n"


class ChaosResult:
    """Shared tally across client threads (lock around every update)."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.replies_ok = 0
        self.replies_mismatched = 0
        self.busy_retried = 0
        self.busy_exhausted = 0
        self.errors_by_kind = {}
        self.client_failures = []
        self.latencies_s = []

    def note_kind(self, kind: str) -> None:
        with self.lock:
            self.errors_by_kind[kind] = self.errors_by_kind.get(kind, 0) + 1

    def fail(self, message: str) -> None:
        with self.lock:
            self.client_failures.append(message)


class ServiceProcess:
    """The service under test, as a real subprocess."""

    def __init__(self, cache_dir: str, max_inflight: int = 256,
                 request_timeout: float = 30.0, workers: int = 4) -> None:
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        # stderr goes to a file, not a pipe: nobody drains a pipe during
        # the storm, and a full pipe would wedge the service.
        self.stderr_path = cache_dir + ".stderr"
        stderr_handle = open(self.stderr_path, "w", encoding="utf-8")
        try:
            self.proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.service",
                    "--addr", "127.0.0.1:0",
                    "--cache-dir", cache_dir,
                    "--max-inflight", str(max_inflight),
                    "--request-timeout", str(request_timeout),
                    "--workers", str(workers),
                ],
                cwd=REPO_ROOT, env=env,
                stdout=subprocess.PIPE, stderr=stderr_handle, text=True,
            )
        finally:
            stderr_handle.close()
        line = self.proc.stdout.readline()
        if not line:
            raise RuntimeError(
                "service did not announce itself: " + self.stderr_tail()
            )
        self.serving = json.loads(line)
        host, port = self.serving["addr"].rsplit(":", 1)
        self.host, self.port = host, int(port)

    def stderr_tail(self, limit: int = 4000) -> str:
        try:
            with open(self.stderr_path, "r", encoding="utf-8") as handle:
                return handle.read()[-limit:]
        except OSError:
            return ""

    def client(self, timeout: float = 60.0) -> ServiceClient:
        return ServiceClient.connect_tcp(self.host, self.port,
                                         timeout=timeout)

    def alive(self) -> bool:
        return self.proc.poll() is None

    def terminate_and_wait(self, timeout: float = 60.0) -> int:
        if self.alive():
            self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(30)
            return -9
        return self.proc.returncode

    def kill(self) -> None:
        if self.alive():
            self.proc.kill()
            self.proc.wait(30)


def _checked_request(client, argv, request_id, oracle, tally):
    """One check with busy-retry; compares the reply against *oracle*."""
    for _ in range(BUSY_RETRIES):
        t0 = time.perf_counter()
        reply = client.check(argv, request_id=request_id)
        elapsed = time.perf_counter() - t0
        if reply is None:
            tally.fail(f"{request_id}: connection dropped mid-request")
            return None
        if reply.get("kind") == "busy":
            with tally.lock:
                tally.busy_retried += 1
            time.sleep(reply.get("retry_after_ms", 100) / 1000.0)
            continue
        if reply.get("id") != request_id:
            tally.fail(f"{request_id}: got reply for {reply.get('id')!r}")
            return reply
        if "error" in reply:
            tally.note_kind(reply.get("kind", "unknown"))
            return reply
        with tally.lock:
            tally.latencies_s.append(elapsed)
            if (reply["status"], reply["output"]) == oracle:
                tally.replies_ok += 1
            else:
                tally.replies_mismatched += 1
                tally.fail(
                    f"{request_id}: reply differs from one-shot CLI "
                    f"(status {reply['status']} vs {oracle[0]})"
                )
        return reply
    with tally.lock:
        tally.busy_exhausted += 1
    return None


def _well_behaved(service, argv, oracle, tally, count):
    try:
        with service.client() as client:
            for n in range(count):
                _checked_request(
                    client, argv, f"req-{threading.get_ident()}-{n}",
                    oracle, tally,
                )
    except Exception as exc:
        tally.fail(f"well-behaved client crashed: {exc!r}")


def _slow_loris(service, tally):
    """Dribbles a never-terminated line, then vanishes."""
    try:
        with service.client(timeout=10) as client:
            for _ in range(5):
                client.send_bytes(b'{"id": 1, "argv": ["dribble')
                time.sleep(0.05)
    except Exception:
        pass  # the loris's own fate is not interesting


def _oversized_then_good(service, argv, oracle, tally):
    try:
        with service.client() as client:
            huge = ('{"id": "big", "argv": ["'
                    + "x" * (MAX_REQUEST_BYTES + 16) + '"]}')
            client.send_line(huge)
            reply = client.recv_reply()
            if reply is None or reply.get("kind") != "oversized":
                tally.fail(f"oversized line got {reply!r}")
            else:
                tally.note_kind("oversized")
            _checked_request(client, argv, "after-oversized", oracle, tally)
    except Exception as exc:
        tally.fail(f"oversized client crashed: {exc!r}")


def _malformed_then_good(service, argv, oracle, tally):
    try:
        with service.client() as client:
            client.send_line('{"id": "mangled", "argv": ["a.c"')
            reply = client.recv_reply()
            if reply is None or reply.get("kind") != "protocol":
                tally.fail(f"malformed line got {reply!r}")
            elif reply.get("id") != "mangled":
                tally.fail(f"malformed reply lost the id: {reply!r}")
            else:
                tally.note_kind("protocol")
            _checked_request(client, argv, "after-malformed", oracle, tally)
    except Exception as exc:
        tally.fail(f"malformed client crashed: {exc!r}")


def _disconnector(service, argv):
    """Sends a request and vanishes without reading the reply."""
    try:
        client = service.client(timeout=10)
        client.send_line(json.dumps({"id": "gone", "argv": argv}))
        client.close()
    except Exception:
        pass


def _metrics_probe(service, tally):
    try:
        with service.client() as client:
            reply = client.metrics(request_id="probe")
            if reply is None or "metrics" not in reply:
                tally.fail(f"metrics probe got {reply!r}")
    except Exception as exc:
        tally.fail(f"metrics probe crashed: {exc!r}")


def _percentiles_ms(latencies_s):
    if not latencies_s:
        return {"p50": 0.0, "p99": 0.0, "count": 0}
    ordered = sorted(latencies_s)

    def pick(q):
        index = min(len(ordered) - 1, max(0, round(q * len(ordered)) - 1))
        return round(ordered[index] * 1000, 3)

    return {"p50": pick(0.5), "p99": pick(0.99), "count": len(ordered)}


def run_chaos(clients: int = 200, requests: int = 5,
              max_inflight: int = 256) -> dict:
    """The full scenario; returns the BENCH_service summary dict."""
    with tempfile.TemporaryDirectory(prefix="pylclint-svc-") as work:
        good = os.path.join(work, "good.c")
        with open(good, "w", encoding="utf-8") as handle:
            handle.write(GOOD_SOURCE)
        poisoned = os.path.join(work, "poisoned.c")
        with open(poisoned, "w", encoding="utf-8") as handle:
            handle.write(POISONED_SOURCE)
        good_argv = ["-quiet", good]
        poisoned_argv = ["-quiet", poisoned]
        # One-shot oracles, computed in-process without any cache.
        good_oracle = cli.run(list(good_argv))
        poisoned_oracle = cli.run(list(poisoned_argv))

        cache_dir = os.path.join(work, "cache")
        tally = ChaosResult()
        service = ServiceProcess(cache_dir, max_inflight=max_inflight)
        try:
            threads = []
            for index in range(clients):
                role = index % 10
                if role == 7:
                    target = (_slow_loris, (service, tally))
                elif role == 8:
                    target = (_oversized_then_good,
                              (service, good_argv, good_oracle, tally))
                elif role == 9:
                    target = (_malformed_then_good,
                              (service, good_argv, good_oracle, tally))
                elif role == 6:
                    target = (_disconnector, (service, good_argv))
                elif role == 5:
                    target = (_well_behaved,
                              (service, poisoned_argv, poisoned_oracle,
                               tally, requests))
                elif role == 4:
                    target = (_metrics_probe, (service, tally))
                else:
                    target = (_well_behaved,
                              (service, good_argv, good_oracle, tally,
                               requests))
                threads.append(
                    threading.Thread(target=target[0], args=target[1])
                )
            t0 = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(300)
            storm_s = time.perf_counter() - t0
            still_alive = service.alive()

            # Service-side latency summary, straight from the wire.
            service_latency = {}
            try:
                with service.client() as client:
                    reply = client.metrics(request_id="final")
                    service_latency = reply.get("latency", {})
            except Exception:
                pass

            # SIGTERM mid-batch: start one more wave, pull the trigger
            # while it is inflight, and require a graceful drain.
            drain_tally = ChaosResult()
            drain_threads = [
                threading.Thread(
                    target=_well_behaved,
                    args=(service, good_argv, good_oracle, drain_tally, 2),
                )
                for _ in range(max(4, clients // 10))
            ]
            for thread in drain_threads:
                thread.start()
            time.sleep(0.1)
            drain_t0 = time.perf_counter()
            exit_code = service.terminate_and_wait()
            drain_s = time.perf_counter() - drain_t0
            for thread in drain_threads:
                thread.join(120)
        finally:
            service.kill()

        # Drain-wave clients may race the shutdown: a dropped connection
        # or shutting-down reply is fine, a *wrong* reply is not.
        drain_ok = drain_tally.replies_mismatched == 0

        cache_report = ResultCache(cache_dir).verify_integrity()
        stderr_tail = service.stderr_tail()

        return {
            "benchmark": "service chaos load",
            "clients": clients,
            "requests_per_client": requests,
            "max_inflight": max_inflight,
            "storm_s": round(storm_s, 3),
            "alive_after_storm": still_alive,
            "replies_ok": tally.replies_ok,
            "replies_mismatched": tally.replies_mismatched,
            "busy_retried": tally.busy_retried,
            "busy_exhausted": tally.busy_exhausted,
            "error_replies": tally.errors_by_kind,
            "client_failures": tally.client_failures[:20],
            "identical_to_one_shot": tally.replies_mismatched == 0
            and tally.replies_ok > 0,
            "latency_client_ms": _percentiles_ms(tally.latencies_s),
            "latency_service_ms": service_latency,
            "drain": {
                "exit_code": exit_code,
                "drain_s": round(drain_s, 3),
                "replies_ok": drain_tally.replies_ok,
                "clean": drain_ok,
            },
            "cache": cache_report,
            "stderr_tail": stderr_tail,
        }


def assert_chaos_acceptance(summary: dict) -> None:
    assert summary["alive_after_storm"], summary["stderr_tail"]
    assert not summary["client_failures"], summary["client_failures"]
    assert summary["identical_to_one_shot"], summary
    assert summary["busy_exhausted"] == 0, summary
    assert summary["drain"]["exit_code"] == 0, summary["stderr_tail"]
    assert summary["drain"]["clean"], summary
    assert summary["cache"]["corrupt"] == 0, summary["cache"]
    assert summary["latency_client_ms"]["count"] > 0


def test_service_survives_chaos_load(benchmark, table_printer):
    clients = int(os.environ.get("BENCH_SERVICE_CLIENTS", "40"))
    requests = int(os.environ.get("BENCH_SERVICE_REQUESTS", "3"))
    summary = benchmark.pedantic(
        run_chaos, kwargs={"clients": clients, "requests": requests},
        rounds=1, iterations=1,
    )
    table_printer("BENCH-SERVICE: chaos load", [{
        "clients": summary["clients"],
        "replies_ok": summary["replies_ok"],
        "busy_retried": summary["busy_retried"],
        "p50_ms": summary["latency_client_ms"]["p50"],
        "p99_ms": summary["latency_client_ms"]["p99"],
        "drain_exit": summary["drain"]["exit_code"],
        "cache_corrupt": summary["cache"]["corrupt"],
    }])
    assert_chaos_acceptance(summary)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    out_path = "BENCH_service.json"
    clients, requests = 200, 5
    i = 0
    positional = []
    while i < len(argv):
        arg = argv[i]
        if arg == "--clients":
            i += 1
            clients = int(argv[i])
        elif arg.startswith("--clients="):
            clients = int(arg.split("=", 1)[1])
        elif arg == "--requests":
            i += 1
            requests = int(argv[i])
        elif arg.startswith("--requests="):
            requests = int(arg.split("=", 1)[1])
        else:
            positional.append(arg)
        i += 1
    if positional:
        out_path = positional[0]

    summary = run_chaos(clients=clients, requests=requests)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
    client_ms = summary["latency_client_ms"]
    print(
        f"{summary['clients']} clients: {summary['replies_ok']} ok, "
        f"{summary['busy_retried']} busy-retried, "
        f"p50 {client_ms['p50']}ms p99 {client_ms['p99']}ms, "
        f"drain exit {summary['drain']['exit_code']}, "
        f"cache corrupt {summary['cache']['corrupt']}; wrote {out_path}"
    )
    try:
        assert_chaos_acceptance(summary)
    except AssertionError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
