"""BENCH-FRONTEND: cold frontend throughput and regex-lexer acceptance.

Supporting measurements for PERF-LIN: the per-phase cost of the cold
pipeline on a generated program, so regressions in any one phase are
visible independently of the analysis.  On top of the throughput
benchmarks this file carries the regex-lexer acceptance criteria:

* the master-regex lexer must tokenize the generated 4000-line program
  at least ``REQUIRED_SPEEDUP``x faster than the retained reference
  scanner (the seed implementation);
* both scanners must produce identical ``(kind, value, line, column)``
  streams — and identical token-stream digests, so incremental-cache
  fingerprints survive the rewrite;
* a whole check of ``examples/db`` under either scanner must render
  byte-identical messages;
* a warm incremental run after a cold one must answer every unit from
  the result cache.

Runs two ways:

* under pytest (collected with the rest of the benchmark suite), and
* as a script -- ``PYTHONPATH=src python benchmarks/bench_frontend.py``
  writes the trajectory summary to ``BENCH_frontend.json``.
"""

import json
import os
import statistics
import sys
import tempfile
import time

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
    )

from repro.bench.dbexample import db_sources
from repro.bench.generator import generate_program_of_size
from repro.core.api import Checker
from repro.frontend.lexer import lexer_engine, reference_tokenize, tokenize
from repro.frontend.source import SourceFile
from repro.incremental import IncrementalChecker, ResultCache
from repro.incremental.fingerprint import token_stream_digest
from repro.obs.trace import NULL_TRACER

#: The regex lexer must beat the seed (reference) scanner by this much.
REQUIRED_SPEEDUP = 3.0

#: A run with the default (sink-less, measuring) tracer must stay within
#: this factor of a run with tracing compiled out entirely (NULL_TRACER):
#: observability off may not cost more than 5%.
MAX_OBS_OVERHEAD = 1.05

#: Absolute cold-lex throughput floor (MB/s), deliberately conservative
#: so a loaded CI machine does not flake; local runs land far above it.
REQUIRED_MBPS = 0.5


def _program_files() -> dict[str, str]:
    return dict(generate_program_of_size(4000).files)


def _time_lexer(lex, files, rounds: int = 5) -> float:
    """Best-of-N cold lex of every file (fresh SourceFile each round)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for name, text in files.items():
            lex(SourceFile(name, text))
        best = min(best, time.perf_counter() - t0)
    return best


def _stream(tokens):
    return [(t.kind, t.value) + t.coords()[1:] for t in tokens]


def measure_lexer_speedup(files=None, rounds: int = 5) -> dict:
    files = files or _program_files()
    chars = sum(len(t) for t in files.values())
    regex_s = _time_lexer(tokenize, files, rounds)
    reference_s = _time_lexer(reference_tokenize, files, rounds)
    return {
        "files": len(files),
        "chars": chars,
        "regex_ms": round(regex_s * 1000, 2),
        "reference_ms": round(reference_s * 1000, 2),
        "speedup": round(reference_s / regex_s, 2) if regex_s else float("inf"),
        "required_speedup": REQUIRED_SPEEDUP,
        "mb_per_s": round(chars / regex_s / 1e6, 2),
        "required_mb_per_s": REQUIRED_MBPS,
        "rounds": rounds,
    }


def measure_db_parity() -> dict:
    """Regex vs reference on the real examples/db tree.

    Token streams, token-stream digests (the incremental fingerprint
    input), and whole-check rendered messages must all be identical.
    """
    files = db_sources()
    streams_equal = True
    digests_equal = True
    for name, text in files.items():
        regex_toks = tokenize(SourceFile(name, text))
        ref_toks = reference_tokenize(SourceFile(name, text))
        if _stream(regex_toks) != _stream(ref_toks):
            streams_equal = False
        if token_stream_digest(regex_toks) != token_stream_digest(ref_toks):
            digests_equal = False

    # Message parity on stage 1 (a healthy message population) and the
    # final annotated stage (clean — parity of silence matters too).
    messages = 0
    messages_identical = True
    for stage_files in (db_sources(1), files):
        regex_msgs = [
            m.render() for m in Checker().check_sources(dict(stage_files)).messages
        ]
        with lexer_engine("reference"):
            ref_msgs = [
                m.render()
                for m in Checker().check_sources(dict(stage_files)).messages
            ]
        messages += len(regex_msgs)
        messages_identical = messages_identical and regex_msgs == ref_msgs
    return {
        "files": len(files),
        "token_streams_identical": streams_equal,
        "token_digests_identical": digests_equal,
        "messages": messages,
        "messages_identical": messages_identical,
    }


def measure_phase_profile(rounds: int = 3) -> dict:
    """Cold per-phase timings plus warm cache behaviour on examples/db."""
    files = db_sources()
    cold_timings = None
    warm_all_hits = True
    colds, warms = [], []
    for _ in range(rounds):
        with tempfile.TemporaryDirectory(prefix="pylclint-bench-") as root:
            cold = IncrementalChecker(cache=ResultCache(root))
            t0 = time.perf_counter()
            cold.check_sources(dict(files))
            colds.append(time.perf_counter() - t0)
            cold_timings = cold.stats.phase_timings()

            warm = IncrementalChecker(cache=ResultCache(root))
            t0 = time.perf_counter()
            warm.check_sources(dict(files))
            warms.append(time.perf_counter() - t0)
            warm_all_hits = warm_all_hits and (
                warm.stats.cache_hits == warm.stats.units
            )
    return {
        "phases_ms": {
            phase: round(seconds * 1000, 2)
            for phase, seconds in cold_timings.items()
        },
        "cold_ms": round(statistics.median(colds) * 1000, 2),
        "warm_ms": round(statistics.median(warms) * 1000, 2),
        "warm_hits_all_units": warm_all_hits,
        "rounds": rounds,
    }


def measure_obs_overhead(rounds: int = 5) -> dict:
    """Disabled-path cost of the observability layer on examples/db.

    Interleaved best-of-N: each round times one cacheless check with the
    inert :data:`NULL_TRACER` and one with the engine's default sink-less
    measuring tracer (the path every un-traced run takes). The ratio of
    the minima is the overhead of having the span plumbing in place.
    """
    files = db_sources()
    baseline_s = float("inf")
    default_s = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        IncrementalChecker(tracer=NULL_TRACER).check_sources(dict(files))
        baseline_s = min(baseline_s, time.perf_counter() - t0)

        t0 = time.perf_counter()
        IncrementalChecker().check_sources(dict(files))
        default_s = min(default_s, time.perf_counter() - t0)
    ratio = default_s / baseline_s if baseline_s else float("inf")
    return {
        "null_tracer_ms": round(baseline_s * 1000, 2),
        "default_tracer_ms": round(default_s * 1000, 2),
        "overhead_ratio": round(ratio, 4),
        "max_overhead_ratio": MAX_OBS_OVERHEAD,
        "rounds": rounds,
    }


# -- pytest entry points ------------------------------------------------------


def _biggest_module(program):
    name = max(
        (n for n in program.files if n.endswith(".c")),
        key=lambda n: len(program.files[n]),
    )
    return name, program.files[name]


def test_lexer_throughput(benchmark):
    program = generate_program_of_size(4000)
    name, text = _biggest_module(program)
    source = SourceFile(name, text)
    toks = benchmark(lambda: tokenize(source))
    assert len(toks) > 100


def test_lexer_speedup_over_reference(benchmark, table_printer):
    summary = benchmark.pedantic(
        measure_lexer_speedup, rounds=1, iterations=1
    )
    table_printer("BENCH-FRONTEND: regex vs reference lexer", [summary])
    assert summary["speedup"] >= REQUIRED_SPEEDUP, summary


def test_db_frontend_parity(benchmark, table_printer):
    summary = benchmark.pedantic(measure_db_parity, rounds=1, iterations=1)
    table_printer("BENCH-FRONTEND: engine parity on examples/db", [summary])
    assert summary["token_streams_identical"]
    assert summary["token_digests_identical"]
    assert summary["messages_identical"]


def test_obs_disabled_path_overhead(benchmark, table_printer):
    summary = benchmark.pedantic(
        measure_obs_overhead, rounds=1, iterations=1
    )
    table_printer("BENCH-FRONTEND: observability disabled-path overhead",
                  [summary])
    assert summary["overhead_ratio"] < MAX_OBS_OVERHEAD, summary


def test_parse_unit_throughput(benchmark):
    program = generate_program_of_size(4000)
    name, text = _biggest_module(program)
    headers = {n: t for n, t in program.files.items() if n.endswith(".h")}

    def parse():
        checker = Checker()
        for hname, htext in headers.items():
            checker.sources.add(hname, htext)
        return checker.parse_unit(text, name)

    parsed = benchmark(parse)
    assert parsed.unit.functions()


def test_runtime_interpreter_throughput(benchmark):
    """Executing the db example under the instrumented heap."""
    from repro.bench.dbexample import FINAL_STAGE, db_sources as _db
    from repro.runtime.interp import run_program

    files = _db(FINAL_STAGE)

    def run():
        return run_program(files, max_steps=5_000_000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.exit_code == 0
    assert result.allocations > result.frees  # global-reachable residue


# -- script mode --------------------------------------------------------------


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else "BENCH_frontend.json"
    speedup = measure_lexer_speedup()
    parity = measure_db_parity()
    profile = measure_phase_profile()
    obs = measure_obs_overhead()
    report = {
        "benchmark": "cold frontend (regex lexer vs seed reference scanner)",
        "lexer_speedup": speedup,
        "db_parity": parity,
        "phase_profile": profile,
        "obs_overhead": obs,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"cold lex {speedup['reference_ms']}ms (reference) -> "
        f"{speedup['regex_ms']}ms (regex): {speedup['speedup']}x "
        f"(required {REQUIRED_SPEEDUP}x), {speedup['mb_per_s']} MB/s "
        f"(floor {REQUIRED_MBPS}); obs overhead "
        f"{obs['overhead_ratio']}x (cap {MAX_OBS_OVERHEAD}); "
        f"wrote {out_path}"
    )
    ok = (
        speedup["speedup"] >= REQUIRED_SPEEDUP
        and speedup["mb_per_s"] >= REQUIRED_MBPS
        and parity["token_streams_identical"]
        and parity["token_digests_identical"]
        and parity["messages_identical"]
        and profile["warm_hits_all_units"]
        and obs["overhead_ratio"] < MAX_OBS_OVERHEAD
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
