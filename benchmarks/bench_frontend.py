"""Frontend throughput: lexing, preprocessing, parsing.

Supporting measurements for PERF-LIN: the per-phase cost of the
pipeline on a generated program, so regressions in any one phase are
visible independently of the analysis.
"""

from repro.bench.generator import generate_program_of_size
from repro.core.api import Checker
from repro.frontend.lexer import tokenize
from repro.frontend.source import SourceFile


def _biggest_module(program):
    name = max(
        (n for n in program.files if n.endswith(".c")),
        key=lambda n: len(program.files[n]),
    )
    return name, program.files[name]


def test_lexer_throughput(benchmark):
    program = generate_program_of_size(4000)
    name, text = _biggest_module(program)
    source = SourceFile(name, text)
    toks = benchmark(lambda: tokenize(source))
    assert len(toks) > 100


def test_parse_unit_throughput(benchmark):
    program = generate_program_of_size(4000)
    name, text = _biggest_module(program)
    headers = {n: t for n, t in program.files.items() if n.endswith(".h")}

    def parse():
        checker = Checker()
        for hname, htext in headers.items():
            checker.sources.add(hname, htext)
        return checker.parse_unit(text, name)

    parsed = benchmark(parse)
    assert parsed.unit.functions()


def test_runtime_interpreter_throughput(benchmark):
    """Executing the db example under the instrumented heap."""
    from repro.bench.dbexample import FINAL_STAGE, db_sources
    from repro.runtime.interp import run_program

    files = db_sources(FINAL_STAGE)

    def run():
        return run_program(files, max_steps=5_000_000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.exit_code == 0
    assert result.allocations > result.frees  # global-reachable residue
