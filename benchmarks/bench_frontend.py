"""BENCH-FRONTEND: cold frontend throughput and regex-lexer acceptance.

Supporting measurements for PERF-LIN: the per-phase cost of the cold
pipeline on a generated program, so regressions in any one phase are
visible independently of the analysis.  On top of the throughput
benchmarks this file carries the regex-lexer acceptance criteria:

* the master-regex lexer must tokenize the generated 4000-line program
  at least ``REQUIRED_SPEEDUP``x faster than the retained reference
  scanner (the seed implementation);
* both scanners must produce identical ``(kind, value, line, column)``
  streams — and identical token-stream digests, so incremental-cache
  fingerprints survive the rewrite;
* a whole check of ``examples/db`` under either scanner must render
  byte-identical messages;
* a warm incremental run after a cold one must answer every unit from
  the result cache.

Runs two ways:

* under pytest (collected with the rest of the benchmark suite), and
* as a script -- ``PYTHONPATH=src python benchmarks/bench_frontend.py``
  writes the trajectory summary to ``BENCH_frontend.json``.
"""

import json
import os
import pickle
import statistics
import sys
import tempfile
import time

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
    )

from repro.bench.dbexample import db_sources
from repro.bench.generator import generate_program_of_size
from repro.core.api import (
    Checker,
    ParsedUnit,
    _prelude_parsed,
    check_parsed_unit,
    unit_interface,
)
from repro.flags.registry import Flags
from repro.frontend.lexer import lexer_engine, reference_tokenize, tokenize
from repro.frontend.parser import Parser, parser_engine
from repro.frontend.preprocessor import Preprocessor
from repro.frontend.source import SourceFile, SourceManager
from repro.frontend.symtab import SymbolTable
from repro.incremental import IncrementalChecker, ResultCache
from repro.incremental.cache import UnitMemo
from repro.incremental.fingerprint import (
    check_fingerprint,
    flags_digest,
    interface_digest,
    program_digest,
    source_key,
    text_digest,
    token_stream_digest,
)
from repro.obs.trace import NULL_TRACER
from repro.stdlib.specs import PRELUDE_DEFINES, SYSTEM_HEADERS

#: The regex lexer must beat the seed (reference) scanner by this much.
REQUIRED_SPEEDUP = 3.0

#: A run with the default (sink-less, measuring) tracer must stay within
#: this factor of a run with tracing compiled out entirely (NULL_TRACER):
#: observability off may not cost more than 5%.
MAX_OBS_OVERHEAD = 1.05

#: Absolute cold-lex throughput floor (MB/s), deliberately conservative
#: so a loaded CI machine does not flake; local runs land far above it.
REQUIRED_MBPS = 0.5

#: The cold-path overhaul's headline claim: a cold end-to-end check of
#: examples/db runs at least this much faster than the seed engine
#: (recorded at ``SEED_COLD_MS`` by the seed's own bench run).  The
#: claim is evidenced by quiet-window measurements recorded in
#: ``BENCH_frontend.json``; the *enforced* CI gate is the replay ratio
#: below, which is deliberately more conservative (see
#: ``measure_cold_floor``).
REQUIRED_COLD_SPEEDUP = 5.0

#: Cold end-to-end and reference-lexer times recorded by the seed
#: engine's bench on its recording machine (committed in the seed's
#: BENCH_frontend.json).  Kept as provenance for the headline claim.
SEED_COLD_MS = 230.11
SEED_REFERENCE_LEX_MS = 130.96

#: Enforced floor: the live seed-replay (same invocation, interleaved
#: rounds, so machine speed and load cancel) must run at least this
#: many times slower than the new cold path.  The threshold is below
#: REQUIRED_COLD_SPEEDUP for two measured reasons:
#:
#: * the replay necessarily runs on top of this engine's *retained*
#:   structural improvements (slots AST, interned types, store
#:   copy-on-write), so it understates the seed by ~5-10% (seed
#:   measured live at 352ms where the replay costs 327-346ms on the
#:   same machine);
#: * background load compresses the ratio: both sides carry ~12ms of
#:   fixed cache/tempdir IO, which is a far larger fraction of a 65ms
#:   run than of a 330ms one (paired ratios measured 2.9-4.2 under
#:   load vs 5.2-5.9 on quiet windows).
#:
#: Any regression that reintroduces a seed-era cost (reflective
#: interface digest, per-unit header splice + reparse, eager store
#: copies) lands the ratio near 1-2x and fails loudly.
REQUIRED_REPLAY_SPEEDUP = 3.0

#: Catastrophic-regression cap: even on a badly loaded machine the best
#: cold round must stay under this absolute bound (the seed could not
#: get close to it on any machine observed).
MAX_COLD_MIN_MS = 150.0


def _program_files() -> dict[str, str]:
    return dict(generate_program_of_size(4000).files)


def _time_lexer(lex, files, rounds: int = 5) -> float:
    """Best-of-N cold lex of every file (fresh SourceFile each round)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for name, text in files.items():
            lex(SourceFile(name, text))
        best = min(best, time.perf_counter() - t0)
    return best


def _stream(tokens):
    return [(t.kind, t.value) + t.coords()[1:] for t in tokens]


def measure_lexer_speedup(files=None, rounds: int = 5) -> dict:
    files = files or _program_files()
    chars = sum(len(t) for t in files.values())
    regex_s = _time_lexer(tokenize, files, rounds)
    reference_s = _time_lexer(reference_tokenize, files, rounds)
    return {
        "files": len(files),
        "chars": chars,
        "regex_ms": round(regex_s * 1000, 2),
        "reference_ms": round(reference_s * 1000, 2),
        "speedup": round(reference_s / regex_s, 2) if regex_s else float("inf"),
        "required_speedup": REQUIRED_SPEEDUP,
        "mb_per_s": round(chars / regex_s / 1e6, 2),
        "required_mb_per_s": REQUIRED_MBPS,
        "rounds": rounds,
    }


def measure_db_parity() -> dict:
    """Regex vs reference on the real examples/db tree.

    Token streams, token-stream digests (the incremental fingerprint
    input), and whole-check rendered messages must all be identical.
    """
    files = db_sources()
    streams_equal = True
    digests_equal = True
    for name, text in files.items():
        regex_toks = tokenize(SourceFile(name, text))
        ref_toks = reference_tokenize(SourceFile(name, text))
        if _stream(regex_toks) != _stream(ref_toks):
            streams_equal = False
        if token_stream_digest(regex_toks) != token_stream_digest(ref_toks):
            digests_equal = False

    # Message parity on stage 1 (a healthy message population) and the
    # final annotated stage (clean — parity of silence matters too).
    messages = 0
    messages_identical = True
    for stage_files in (db_sources(1), files):
        regex_msgs = [
            m.render() for m in Checker().check_sources(dict(stage_files)).messages
        ]
        with lexer_engine("reference"):
            ref_msgs = [
                m.render()
                for m in Checker().check_sources(dict(stage_files)).messages
            ]
        messages += len(regex_msgs)
        messages_identical = messages_identical and regex_msgs == ref_msgs
    return {
        "files": len(files),
        "token_streams_identical": streams_equal,
        "token_digests_identical": digests_equal,
        "messages": messages,
        "messages_identical": messages_identical,
    }


def measure_phase_profile(rounds: int = 5) -> dict:
    """Cold per-phase timings plus warm cache behaviour on examples/db."""
    files = db_sources()
    warm_all_hits = True
    colds, warms = [], []
    timings: list[dict] = []
    for _ in range(rounds):
        with tempfile.TemporaryDirectory(prefix="pylclint-bench-") as root:
            cold = IncrementalChecker(cache=ResultCache(root))
            t0 = time.perf_counter()
            cold.check_sources(dict(files))
            colds.append(time.perf_counter() - t0)
            timings.append(cold.stats.phase_timings())

            warm = IncrementalChecker(cache=ResultCache(root))
            t0 = time.perf_counter()
            warm.check_sources(dict(files))
            warms.append(time.perf_counter() - t0)
            warm_all_hits = warm_all_hits and (
                warm.stats.cache_hits == warm.stats.units
            )
    return {
        # Median across rounds, per phase: one noisy round cannot smear
        # a single phase the way last-round-wins reporting used to.
        "phases_ms": {
            phase: round(
                statistics.median(t[phase] for t in timings) * 1000, 2
            )
            for phase in timings[0]
        },
        "cold_ms": round(statistics.median(colds) * 1000, 2),
        "cold_min_ms": round(min(colds) * 1000, 2),
        "warm_ms": round(statistics.median(warms) * 1000, 2),
        "warm_hits_all_units": warm_all_hits,
        "rounds": rounds,
    }


def _legacy_cold_once(files: dict[str, str], cache_root: str) -> float:
    """One cold check of ``files`` replaying the seed (v0) pipeline.

    Reconstructed from the retained reference components so the bench
    can measure the seed's cost structure *live*, on whatever machine
    it runs on: every system header spliced into every unit's token
    stream (``prelude_covered`` disabled), the reference
    precedence-cascade parser engine, a separate token-digest pass, the
    reflective object-graph interface digest, per-run prelude symtab
    re-merge, and per-unit memo + result cache writes.  The replay
    still benefits from retained structural wins (slots AST, interned
    types, store copy-on-write), so it *understates* the true seed —
    see ``REQUIRED_REPLAY_SPEEDUP``.
    """
    flags = Flags()
    cache = ResultCache(cache_root)
    sources = SourceManager()
    for name, text in files.items():
        sources.add(name, text)
    units = [name for name in files if name.endswith(".c")]
    t0 = time.perf_counter()
    plans = []
    with parser_engine("reference"):
        for name in units:
            key = source_key(name, files[name], {})
            pp = Preprocessor(
                sources, defines=dict(PRELUDE_DEFINES),
                system_headers=SYSTEM_HEADERS,
                prelude_covered=frozenset(),  # seed spliced every header
            )
            tokens = pp.preprocess_text(files[name], name)
            token_digest = token_stream_digest(tokens)  # v1: its own pass
            _, prelude_scope = _prelude_parsed()
            parser = Parser(tokens, name, preseed=prelude_scope)
            unit = parser.parse_translation_unit()
            pu = ParsedUnit(
                unit=unit, controls=parser.controls,
                problems=parser.problems,
                enum_consts=dict(parser.scope.enum_consts),
                parse_errors=list(parser.parse_errors),
            )
            iface = unit_interface(pu)
            iface_pickle = pickle.dumps((iface, pu.enum_consts))
            iface_digest = interface_digest(iface, pu.enum_consts)
            closure = []
            for included in sorted(pp._included):
                src = sources.get(included)
                if src is not None:
                    closure.append((included, text_digest(src.text)))
            cache.put_unit_memo(key, UnitMemo(
                token_digest=token_digest, iface_digest=iface_digest,
                iface_pickle=iface_pickle, includes=closure,
                enum_consts=pu.enum_consts,
            ))
            plans.append((pu, token_digest, iface_digest, iface))
        # v0 program assembly: re-merge the parsed prelude every run.
        symtab = SymbolTable()
        prelude_unit, _ = _prelude_parsed()
        symtab.add_unit(prelude_unit)
        enum_consts: dict[str, int] = {}
        for pu, _, _, iface in plans:
            symtab.merge_interface(iface)
            enum_consts.update(pu.enum_consts)
        prog = program_digest([d for _, _, d, _ in plans], [])
        flags_fp = flags_digest(flags)
        for pu, token_digest, _, _ in plans:
            fingerprint = check_fingerprint(
                token_digest, flags, prog, flags_fp
            )
            output = check_parsed_unit(pu, symtab, flags, enum_consts)
            cache.put_result(
                fingerprint, output.messages, output.suppressed
            )
    return time.perf_counter() - t0


def measure_cold_floor(rounds: int = 5) -> dict:
    """Enforced cold-path floor: new engine vs live seed replay.

    Interleaves one seed-replay cold run and one real cold run per
    round (alternating which goes first, so a load ramp cannot bias
    either side) and compares the best round on each side.  Because
    both pipelines run in the same invocation on the same inputs, the
    ratio is machine-independent — unlike a fixed millisecond floor,
    which flakes with CI hardware and background load.
    """
    files = db_sources()
    legacy_s: list[float] = []
    new_s: list[float] = []
    for i in range(rounds):
        with tempfile.TemporaryDirectory(prefix="pylclint-floor-") as lr, \
                tempfile.TemporaryDirectory(prefix="pylclint-floor-") as nr:
            runs = [
                lambda: legacy_s.append(_legacy_cold_once(dict(files), lr)),
                lambda: new_s.append(_new_cold_once(dict(files), nr)),
            ]
            if i % 2:
                runs.reverse()
            for run in runs:
                run()
    pair_ratios = [l / n for l, n in zip(legacy_s, new_s)]
    best_ratio = max(
        min(legacy_s) / min(new_s), statistics.median(pair_ratios)
    )
    return {
        "legacy_replay_ms": [round(s * 1000, 2) for s in legacy_s],
        "cold_ms": [round(s * 1000, 2) for s in new_s],
        "legacy_replay_min_ms": round(min(legacy_s) * 1000, 2),
        "cold_min_ms": round(min(new_s) * 1000, 2),
        "pair_ratios": [round(r, 2) for r in pair_ratios],
        "replay_speedup": round(best_ratio, 2),
        "required_replay_speedup": REQUIRED_REPLAY_SPEEDUP,
        "max_cold_min_ms": MAX_COLD_MIN_MS,
        "claimed_speedup_vs_seed": REQUIRED_COLD_SPEEDUP,
        "seed_recorded_cold_ms": SEED_COLD_MS,
        "rounds": rounds,
    }


def _new_cold_once(files: dict[str, str], cache_root: str) -> float:
    checker = IncrementalChecker(cache=ResultCache(cache_root))
    t0 = time.perf_counter()
    checker.check_sources(dict(files))
    return time.perf_counter() - t0


def measure_obs_overhead(rounds: int = 5) -> dict:
    """Disabled-path cost of the observability layer on examples/db.

    Interleaved best-of-N: each round times one cacheless check with the
    inert :data:`NULL_TRACER` and one with the engine's default sink-less
    measuring tracer (the path every un-traced run takes). The ratio of
    the minima is the overhead of having the span plumbing in place.
    """
    files = db_sources()
    baseline_s = float("inf")
    default_s = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        IncrementalChecker(tracer=NULL_TRACER).check_sources(dict(files))
        baseline_s = min(baseline_s, time.perf_counter() - t0)

        t0 = time.perf_counter()
        IncrementalChecker().check_sources(dict(files))
        default_s = min(default_s, time.perf_counter() - t0)
    ratio = default_s / baseline_s if baseline_s else float("inf")
    return {
        "null_tracer_ms": round(baseline_s * 1000, 2),
        "default_tracer_ms": round(default_s * 1000, 2),
        "overhead_ratio": round(ratio, 4),
        "max_overhead_ratio": MAX_OBS_OVERHEAD,
        "rounds": rounds,
    }


# -- pytest entry points ------------------------------------------------------


def _biggest_module(program):
    name = max(
        (n for n in program.files if n.endswith(".c")),
        key=lambda n: len(program.files[n]),
    )
    return name, program.files[name]


def test_lexer_throughput(benchmark):
    program = generate_program_of_size(4000)
    name, text = _biggest_module(program)
    source = SourceFile(name, text)
    toks = benchmark(lambda: tokenize(source))
    assert len(toks) > 100


def test_lexer_speedup_over_reference(benchmark, table_printer):
    summary = benchmark.pedantic(
        measure_lexer_speedup, rounds=1, iterations=1
    )
    table_printer("BENCH-FRONTEND: regex vs reference lexer", [summary])
    assert summary["speedup"] >= REQUIRED_SPEEDUP, summary


def test_db_frontend_parity(benchmark, table_printer):
    summary = benchmark.pedantic(measure_db_parity, rounds=1, iterations=1)
    table_printer("BENCH-FRONTEND: engine parity on examples/db", [summary])
    assert summary["token_streams_identical"]
    assert summary["token_digests_identical"]
    assert summary["messages_identical"]


def test_cold_floor_over_seed_replay(benchmark, table_printer):
    summary = benchmark.pedantic(
        measure_cold_floor, args=(3,), rounds=1, iterations=1
    )
    table_printer("BENCH-FRONTEND: cold end-to-end vs seed replay",
                  [summary])
    assert summary["replay_speedup"] >= REQUIRED_REPLAY_SPEEDUP, summary
    assert summary["cold_min_ms"] <= MAX_COLD_MIN_MS, summary


def test_obs_disabled_path_overhead(benchmark, table_printer):
    summary = benchmark.pedantic(
        measure_obs_overhead, rounds=1, iterations=1
    )
    table_printer("BENCH-FRONTEND: observability disabled-path overhead",
                  [summary])
    assert summary["overhead_ratio"] < MAX_OBS_OVERHEAD, summary


def test_parse_unit_throughput(benchmark):
    program = generate_program_of_size(4000)
    name, text = _biggest_module(program)
    headers = {n: t for n, t in program.files.items() if n.endswith(".h")}

    def parse():
        checker = Checker()
        for hname, htext in headers.items():
            checker.sources.add(hname, htext)
        return checker.parse_unit(text, name)

    parsed = benchmark(parse)
    assert parsed.unit.functions()


def test_runtime_interpreter_throughput(benchmark):
    """Executing the db example under the instrumented heap."""
    from repro.bench.dbexample import FINAL_STAGE, db_sources as _db
    from repro.runtime.interp import run_program

    files = _db(FINAL_STAGE)

    def run():
        return run_program(files, max_steps=5_000_000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.exit_code == 0
    assert result.allocations > result.frees  # global-reachable residue


# -- script mode --------------------------------------------------------------


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else "BENCH_frontend.json"
    speedup = measure_lexer_speedup()
    parity = measure_db_parity()
    profile = measure_phase_profile()
    floor = measure_cold_floor()
    obs = measure_obs_overhead()
    report = {
        "benchmark": "cold frontend (regex lexer vs seed reference scanner)",
        "lexer_speedup": speedup,
        "db_parity": parity,
        "phase_profile": profile,
        "cold_floor": floor,
        "obs_overhead": obs,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"cold lex {speedup['reference_ms']}ms (reference) -> "
        f"{speedup['regex_ms']}ms (regex): {speedup['speedup']}x "
        f"(required {REQUIRED_SPEEDUP}x), {speedup['mb_per_s']} MB/s "
        f"(floor {REQUIRED_MBPS}); cold end-to-end "
        f"{floor['legacy_replay_min_ms']}ms (seed replay) -> "
        f"{floor['cold_min_ms']}ms: {floor['replay_speedup']}x "
        f"(enforced {REQUIRED_REPLAY_SPEEDUP}x, claimed "
        f"{REQUIRED_COLD_SPEEDUP}x vs seed-recorded {SEED_COLD_MS}ms); "
        f"obs overhead {obs['overhead_ratio']}x (cap {MAX_OBS_OVERHEAD}); "
        f"wrote {out_path}"
    )
    ok = (
        speedup["speedup"] >= REQUIRED_SPEEDUP
        and speedup["mb_per_s"] >= REQUIRED_MBPS
        and parity["token_streams_identical"]
        and parity["token_digests_identical"]
        and parity["messages_identical"]
        and profile["warm_hits_all_units"]
        and floor["replay_speedup"] >= REQUIRED_REPLAY_SPEEDUP
        and floor["cold_min_ms"] <= MAX_COLD_MIN_MS
        and obs["overhead_ratio"] < MAX_OBS_OVERHEAD
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
