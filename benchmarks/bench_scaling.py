"""PERF-LIN: checking cost scales approximately linearly with program size.

Paper, section 2: "it is essential that the checking be efficient and
scale approximately linearly with the size of the program"; section 7:
100,000 lines in under four minutes on a DEC 3000/500. The absolute
numbers here come from a different machine and substrate (a Python
analysis instead of C); the *shape* — near-constant cost per kloc — is
the reproduced result.

Runs two ways:

* under pytest (the small linearity sweep below), and
* as a script -- ``PYTHONPATH=src python benchmarks/bench_scaling.py``
  measures cold / warm / distributed checking at large sizes (default
  one million lines) and writes ``BENCH_scaling.json``. The distributed
  column checks with a fresh local cache against a warm shared cache
  service (``--cache-server``), the headline workflow for CI fleets:
  one machine pays the cold cost, every other machine rides its cache.
"""

import json
import os
import sys
import tempfile
import time

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
    )

import pytest

from repro import Checker
from repro.bench.generator import generate_program_of_size
from repro.bench.harness import linearity_ratio

SIZES = (1000, 2000, 4000, 8000)

# The distributed column re-checks from a warm cache service instead of
# re-running the frontend + analysis, so it must land far under the cold
# time. 2x is a deliberately conservative floor; in practice the gap is
# one to two orders of magnitude.
REQUIRED_DISTRIBUTED_SPEEDUP = 2.0

_RESULTS: list[dict] = []


@pytest.mark.parametrize("target_loc", SIZES)
def test_scaling(benchmark, target_loc):
    program = generate_program_of_size(target_loc)
    files = dict(program.files)

    def check():
        return Checker().check_sources(dict(files))

    result = benchmark.pedantic(check, rounds=1, iterations=1, warmup_rounds=0)
    assert result.messages == [], "generated programs must check clean"
    seconds = benchmark.stats.stats.mean
    _RESULTS.append(
        {
            "loc": program.loc,
            "seconds": seconds,
            "sec_per_kloc": seconds / (program.loc / 1000.0),
        }
    )


def test_scaling_is_roughly_linear(benchmark, table_printer):
    assert len(_RESULTS) == len(SIZES), "run the sweep first (same session)"
    table_printer("PERF-LIN: checking time vs program size", _RESULTS)
    ratio = benchmark(lambda: linearity_ratio(_RESULTS))
    print(f"per-kloc cost spread (max/min): {ratio:.2f}x")
    # 'Approximately linear': the per-kloc cost may drift, but must stay
    # far from quadratic (which would give ~8x spread over this sweep).
    assert ratio < 3.0, f"scaling looks super-linear: {_RESULTS}"


# -- script mode: cold / warm / distributed at scale ------------------------


def _renders(result):
    return [m.render() for m in result.messages]


def measure_at_size(target_loc: int, jobs: int = 2) -> dict:
    """One row of the scaling table: cold serial, warm local, and
    distributed (fresh local cache + warm shared cache service)."""
    from repro.incremental import (
        CacheClient,
        CacheServerThread,
        IncrementalChecker,
        ResultCache,
    )

    program = generate_program_of_size(target_loc)
    files = dict(program.files)
    row: dict = {"target_loc": target_loc, "loc": program.loc,
                 "units": len([n for n in files if n.endswith(".c")])}

    with tempfile.TemporaryDirectory(prefix="pylclint-scaling-") as tmp:
        shared = os.path.join(tmp, "shared")

        cold_engine = IncrementalChecker(cache=ResultCache(shared))
        t0 = time.perf_counter()
        cold_result = cold_engine.check_sources(dict(files))
        row["cold_s"] = round(time.perf_counter() - t0, 3)
        cold_renders = _renders(cold_result)

        warm_engine = IncrementalChecker(cache=ResultCache(shared))
        t0 = time.perf_counter()
        warm_result = warm_engine.check_sources(dict(files))
        row["warm_s"] = round(time.perf_counter() - t0, 3)
        assert warm_engine.stats.cache_hits == warm_engine.stats.units

        # Distributed: a "new machine" with an empty local cache pulls
        # everything from the cache service the cold run populated.
        server = CacheServerThread(cache_dir=shared)
        try:
            client = CacheClient(server.addr)
            dist_engine = IncrementalChecker(
                cache=ResultCache(os.path.join(tmp, "local")),
                remote=client,
                jobs=jobs,
            )
            t0 = time.perf_counter()
            dist_result = dist_engine.check_sources(dict(files))
            row["distributed_s"] = round(time.perf_counter() - t0, 3)
            client.close()
        finally:
            server.close()

        row["remote_hits"] = dist_engine.stats.remote_hits
        row["remote_misses"] = dist_engine.stats.remote_misses
        row["jobs"] = jobs
        row["warm_speedup"] = round(row["cold_s"] / max(row["warm_s"], 1e-9), 1)
        row["distributed_speedup"] = round(
            row["cold_s"] / max(row["distributed_s"], 1e-9), 1
        )
        row["identical_output"] = (
            _renders(warm_result) == cold_renders
            and _renders(dist_result) == cold_renders
        )
    return row


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    sizes = [1_000_000]
    jobs = 2
    out_path = "BENCH_scaling.json"
    it = iter(argv)
    for arg in it:
        if arg == "--sizes":
            sizes = [int(s) for s in next(it).split(",")]
        elif arg.startswith("--sizes="):
            sizes = [int(s) for s in arg.split("=", 1)[1].split(",")]
        elif arg == "--jobs":
            jobs = int(next(it))
        elif arg.startswith("--jobs="):
            jobs = int(arg.split("=", 1)[1])
        elif arg == "--out":
            out_path = next(it)
        elif arg.startswith("--out="):
            out_path = arg.split("=", 1)[1]
        else:
            print(f"unknown argument: {arg}", file=sys.stderr)
            return 2

    rows = []
    ok = True
    for target_loc in sizes:
        row = measure_at_size(target_loc, jobs=jobs)
        rows.append(row)
        print(
            f"{row['loc']:>9} loc: cold {row['cold_s']}s, "
            f"warm {row['warm_s']}s ({row['warm_speedup']}x), "
            f"distributed {row['distributed_s']}s "
            f"({row['distributed_speedup']}x, floor "
            f"{REQUIRED_DISTRIBUTED_SPEEDUP}x), "
            f"identical={row['identical_output']}"
        )
        ok = ok and row["identical_output"] and (
            row["distributed_speedup"] >= REQUIRED_DISTRIBUTED_SPEEDUP
        )

    report = {
        "benchmark": "scaling: cold vs warm vs distributed",
        "required_distributed_speedup": REQUIRED_DISTRIBUTED_SPEEDUP,
        "rows": rows,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
