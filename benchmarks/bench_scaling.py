"""PERF-LIN: checking cost scales approximately linearly with program size.

Paper, section 2: "it is essential that the checking be efficient and
scale approximately linearly with the size of the program"; section 7:
100,000 lines in under four minutes on a DEC 3000/500. The absolute
numbers here come from a different machine and substrate (a Python
analysis instead of C); the *shape* — near-constant cost per kloc — is
the reproduced result.
"""

import pytest

from repro import Checker
from repro.bench.generator import generate_program_of_size
from repro.bench.harness import linearity_ratio

SIZES = (1000, 2000, 4000, 8000)

_RESULTS: list[dict] = []


@pytest.mark.parametrize("target_loc", SIZES)
def test_scaling(benchmark, target_loc):
    program = generate_program_of_size(target_loc)
    files = dict(program.files)

    def check():
        return Checker().check_sources(dict(files))

    result = benchmark.pedantic(check, rounds=1, iterations=1, warmup_rounds=0)
    assert result.messages == [], "generated programs must check clean"
    seconds = benchmark.stats.stats.mean
    _RESULTS.append(
        {
            "loc": program.loc,
            "seconds": seconds,
            "sec_per_kloc": seconds / (program.loc / 1000.0),
        }
    )


def test_scaling_is_roughly_linear(benchmark, table_printer):
    assert len(_RESULTS) == len(SIZES), "run the sweep first (same session)"
    table_printer("PERF-LIN: checking time vs program size", _RESULTS)
    ratio = benchmark(lambda: linearity_ratio(_RESULTS))
    print(f"per-kloc cost spread (max/min): {ratio:.2f}x")
    # 'Approximately linear': the per-kloc cost may drift, but must stay
    # far from quadratic (which would give ~8x spread over this sweep).
    assert ratio < 3.0, f"scaling looks super-linear: {_RESULTS}"
