"""Ablation benches for the design choices DESIGN.md calls out.

* loops-as-ifs vs a second loop pass (``+deepbreak``): the paper accepts
  missed aliases "produced only after the second iteration of a loop" in
  exchange for iteration-free analysis; the flag re-analyzes loop bodies
  once more. The ablation measures the cost and shows the default's
  documented false negative.
* implicit ``only`` (``allimponly``): section 6 notes checking a real
  program would be impractical without implicit annotations; the
  ablation counts the extra messages explicit-only checking produces.
* interface-library pickles vs re-parsing: the modular-checking design
  (see also bench_modular).
"""

from repro import Checker, Flags
from repro.bench.generator import generate_program_of_size
from repro.messages.message import MessageCode

#: A second-iteration alias: r aliases p only after two trips through
#: the loop, so the default model misses the use-after-free (the paper's
#: own example of an accepted false negative, section 2).
SECOND_ITERATION = """#include <stdlib.h>
void f(int n) {
  char *p = (char *) malloc(4);
  char *q = (char *) malloc(4);
  char *r = NULL;
  int i;
  if (p == NULL || q == NULL) { return; }
  p[0] = 'a';
  q[0] = 'b';
  for (i = 0; i < n; i++) {
    r = q;
    q = p;
  }
  free(p);
  if (r != NULL) {
    r[0] = 'c';  /* use-after-free when n >= 2 */
  }
}
"""


def test_deepbreak_cost(benchmark, table_printer):
    program = generate_program_of_size(2000)
    deep = Flags.from_args(["+deepbreak"])

    def check_deep():
        return Checker(flags=deep).check_sources(dict(program.files))

    result = benchmark.pedantic(check_deep, rounds=2, iterations=1)
    deep_seconds = benchmark.stats.stats.mean

    import time

    start = time.perf_counter()
    base_result = Checker().check_sources(dict(program.files))
    base_seconds = time.perf_counter() - start

    table_printer(
        "ABLATION: loops-as-ifs vs +deepbreak (second loop pass)",
        [
            {
                "loc": program.loc,
                "default_seconds": base_seconds,
                "deepbreak_seconds": deep_seconds,
                "overhead": deep_seconds / base_seconds,
                "default_msgs": len(base_result.messages),
                "deepbreak_msgs": len(result.messages),
            }
        ],
    )
    assert len(result.messages) == len(base_result.messages) == 0


def test_loops_as_ifs_known_false_negative(benchmark):
    """The default model's documented miss stays missed (fidelity)."""

    def check():
        return Checker().check_sources({"swap.c": SECOND_ITERATION})

    result = benchmark(check)
    # Aliases created on the second iteration are invisible; the double
    # free through the swapped pointers is NOT reported.
    assert all(
        m.code is not MessageCode.USE_AFTER_RELEASE for m in result.messages
    )


def test_implicit_only_ablation(benchmark, table_printer):
    program = generate_program_of_size(2000)
    stripped = program.stripped()
    noimp = Flags.from_args(["-allimponly"])

    def check_noimp():
        return Checker(flags=noimp).check_sources(dict(stripped.files))

    explicit = benchmark.pedantic(check_noimp, rounds=1, iterations=1)
    implicit = Checker().check_sources(dict(stripped.files))
    table_printer(
        "ABLATION: implicit only annotations on unannotated code",
        [
            {
                "loc": stripped.loc,
                "msgs_with_implicit_only": len(implicit.messages),
                "msgs_without": len(explicit.messages),
            }
        ],
    )
    # Implicit annotations shift which anomalies appear; both runs see
    # the unannotated program's interface gaps.
    assert len(implicit.messages) > 0
    assert len(explicit.messages) > 0


def test_strictindex_ablation(benchmark, table_printer):
    """Section 2: unknown array indexes are 'either all the same element
    or independent elements (depending on an LCLint flag)'. The ablation
    compares message counts and cost under both models."""
    source = """typedef struct _pair { int a; int b; } pair;
    extern /*@out@*/ /*@only@*/ void *smalloc(size_t);
    extern void sink(/*@only@*/ int *p);
    int f(void) {
        int *p = (int *) smalloc(4 * sizeof(int));
        p[0] = 1;
        p[1] = p[0] + 1;
        sink(p);
        return 0;
    }
    """
    from repro import Checker, Flags

    strict_flags = Flags.from_args(["-allimponly", "+strictindex"])

    def check_strict():
        return Checker(flags=strict_flags).check_sources({"ix.c": source})

    strict = benchmark(check_strict)
    default = Checker(
        flags=Flags.from_args(["-allimponly"])
    ).check_sources({"ix.c": source})
    table_printer(
        "ABLATION: index model (same element vs independent)",
        [
            {
                "default_msgs": len(default.messages),
                "strictindex_msgs": len(strict.messages),
            }
        ],
    )
    # Default: p[1] is the same element as p[0] (defined). Strict: p[1]'s
    # read of p[0]... p[0] was written, p[1] = p[0] + 1 writes another
    # element; both models accept this program, but strict tracks the
    # elements separately (visible in the completeness of sink's arg).
    assert len(default.messages) <= len(strict.messages)
