"""TAB-S6 + FIG7 + FIG8: the section 6 employee-database experiment.

Reproduces the paper's annotation-iteration study on the reconstructed
database program: the unannotated program produces messages; annotations
are added stage by stage; the final program checks clean; and the census
of annotations is dominated by ``only`` exactly as the paper's tally
(15 = 1 null + 1 out + 13 only) was.
"""

import pytest

from repro import Checker, Flags
from repro.bench.dbexample import FINAL_STAGE, annotation_census, db_sources
from repro.bench.harness import db_runtime_residue, section6_experiment
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


def test_section6_census(benchmark, table_printer):
    rows = benchmark.pedantic(section6_experiment, rounds=1, iterations=1)
    table_printer("TAB-S6: annotation iterations on the db example", rows)

    assert rows[0]["annotations"] == 0
    assert rows[0]["messages_default"] > rows[-1]["messages_default"]
    # the final stage resolves every anomaly, under both flag settings
    assert rows[-1]["messages_allimponly"] == 0
    assert rows[-1]["messages_default"] == 0
    # the composition is dominated by only annotations, as in the paper
    final = annotation_census(FINAL_STAGE)
    assert final.only >= final.null
    assert final.only >= 10
    assert final.out == 1
    assert final.unique == 1


def test_fig7_erc_create_null_field(benchmark):
    """FIG7: the null-vals anomaly appears when the annotation is removed."""
    files = db_sources(FINAL_STAGE)
    broken = dict(files)
    # Remove the nullability of vals entirely: both the field annotation
    # and the typedef-level null on ercElem (a type-declaration
    # annotation constrains all instances, so it licenses the NULL too).
    broken["erc.h"] = broken["erc.h"].replace(
        "/*@null@*/ /*@only@*/ ercElem vals;", "/*@only@*/ ercElem vals;"
    ).replace(
        "typedef /*@null@*/ struct _elem", "typedef struct _elem"
    )

    def check():
        return Checker(flags=NOIMP).check_sources(dict(broken))

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    null_msgs = [
        m for m in result.messages if m.code is MessageCode.NULL_RET_VALUE
    ]
    assert any(
        "c->vals derivable from return value" in m.text for m in null_msgs
    ), [m.text for m in result.messages]


def test_fig8_unique_strcpy(benchmark):
    """FIG8: removing unique from setName's parameter restores the anomaly."""
    files = db_sources(FINAL_STAGE)
    broken = dict(files)
    broken["employee.h"] = broken["employee.h"].replace(
        "/*@unique@*/ char *na", "char *na"
    )
    broken["employee.c"] = broken["employee.c"].replace(
        "/*@unique@*/ char *na", "char *na"
    )

    def check():
        return Checker(flags=NOIMP).check_sources(dict(broken))

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    unique = [m for m in result.messages if m.code is MessageCode.UNIQUE_ALIAS]
    assert len(unique) == 1
    assert "declared unique but may be aliased externally" in unique[0].text


def test_db_runtime_residue(benchmark, table_printer):
    """Section 7: after static checking is clean, run-time tools still
    find leaks of storage reachable from globals at exit."""
    info = benchmark.pedantic(db_runtime_residue, rounds=1, iterations=1)
    table_printer("db example: static-clean vs run-time residue", [info])
    assert info["static_messages"] == 0
    assert info["runtime_leaked_blocks"] > 0
    assert info["exit_code"] == 0
