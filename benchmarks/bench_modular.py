"""PERF-MOD: modular re-checking with interface libraries.

Paper, section 7: "By using libraries to store interface information, a
representative 5000 line module is checked in under 10 seconds" (against
under four minutes for the full 100k-line program). The reproduced shape:
re-checking one module against a saved library is many times faster than
re-checking the whole program.
"""

from repro import Checker
from repro.bench.generator import generate_program_of_size


def _split(program):
    headers = {n: t for n, t in program.files.items() if n.endswith(".h")}
    module = next(n for n in sorted(program.files) if n.endswith("0.c"))
    return headers, module


def test_full_program_check(benchmark):
    program = generate_program_of_size(4000)

    def check():
        return Checker().check_sources(dict(program.files))

    result = benchmark.pedantic(check, rounds=2, iterations=1)
    assert result.messages == []


def test_module_recheck_with_library(benchmark, tmp_path, table_printer):
    program = generate_program_of_size(4000)
    headers, module = _split(program)

    # One full pass builds the interface library (the paper's .lcd dump).
    builder = Checker()
    full = builder.check_sources(dict(program.files))
    lib = str(tmp_path / "program.lcd")
    builder.save_library(full, lib)

    def recheck():
        checker = Checker()
        for name, text in headers.items():
            checker.sources.add(name, text)
        checker.load_library(lib)
        return checker.check_sources({module: program.files[module]})

    result = benchmark.pedantic(recheck, rounds=3, iterations=1)
    assert result.messages == []
    module_loc = program.files[module].count("\n") + 1
    table_printer(
        "PERF-MOD: one-module recheck via interface library",
        [
            {
                "program_loc": program.loc,
                "module": module,
                "module_loc": module_loc,
                "recheck_seconds": benchmark.stats.stats.mean,
            }
        ],
    )
