"""BENCH-INC: cold vs warm incremental checking, and parallel parity.

Measures the acceptance properties of the incremental engine on the
section 6 employee-database program: a warm re-check of an unchanged
program must be at least 5x faster than a cold check, and ``--jobs N``
must produce byte-identical messages to a serial run.

Runs two ways:

* under pytest (collected with the rest of the benchmark suite), and
* as a script -- ``PYTHONPATH=src python benchmarks/bench_incremental.py``
  writes the cold/warm timing summary to ``BENCH_incremental.json``.
"""

import json
import os
import statistics
import sys
import tempfile
import time

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
    )

from repro.bench.dbexample import db_sources
from repro.core.api import Checker
from repro.incremental import IncrementalChecker, ResultCache

REQUIRED_SPEEDUP = 5.0


def _renders(result):
    return [m.render() for m in result.messages]


def measure_cold_vs_warm(files, rounds: int = 3) -> dict:
    """Time cold and warm checks of the same sources, each against a
    fresh cache directory, and return the median-based summary."""
    colds, warms = [], []
    renders_cold = renders_warm = None
    for _ in range(rounds):
        with tempfile.TemporaryDirectory(prefix="pylclint-bench-") as root:
            cold_engine = IncrementalChecker(cache=ResultCache(root))
            t0 = time.perf_counter()
            cold_result = cold_engine.check_sources(dict(files))
            colds.append(time.perf_counter() - t0)

            warm_engine = IncrementalChecker(cache=ResultCache(root))
            t0 = time.perf_counter()
            warm_result = warm_engine.check_sources(dict(files))
            warms.append(time.perf_counter() - t0)

            assert warm_engine.stats.cache_hits == warm_engine.stats.units
            renders_cold = _renders(cold_result)
            renders_warm = _renders(warm_result)
    cold = statistics.median(colds)
    warm = statistics.median(warms)
    return {
        "units": len([n for n in files if n.endswith(".c")]),
        "files": len(files),
        "cold_ms": round(cold * 1000, 2),
        "warm_ms": round(warm * 1000, 2),
        "speedup": round(cold / warm, 1) if warm else float("inf"),
        "required_speedup": REQUIRED_SPEEDUP,
        "identical_output": renders_cold == renders_warm,
        "rounds": rounds,
    }


def measure_parallel_parity(files, jobs: int = 4) -> dict:
    """Check the same sources serially and with a worker pool; the
    rendered messages must match exactly (same order, same text)."""
    serial = IncrementalChecker(jobs=1)
    serial_result = serial.check_sources(dict(files))
    parallel = IncrementalChecker(jobs=jobs)
    parallel_result = parallel.check_sources(dict(files))
    classic = Checker().check_sources(dict(files))
    return {
        "jobs": jobs,
        "parallel_used": parallel.stats.parallel_used,
        "messages": len(serial_result.messages),
        "identical_to_serial": _renders(parallel_result)
        == _renders(serial_result),
        "identical_to_classic": _renders(parallel_result)
        == _renders(classic),
    }


def test_warm_recheck_speedup(benchmark, table_printer):
    files = db_sources()  # final annotated stage, like the paper's re-check
    summary = benchmark.pedantic(
        measure_cold_vs_warm, args=(files,), rounds=1, iterations=1
    )
    table_printer("BENCH-INC: cold vs warm on examples/db", [summary])
    assert summary["identical_output"]
    assert summary["speedup"] >= REQUIRED_SPEEDUP, summary


def test_parallel_jobs_parity(benchmark, table_printer):
    files = db_sources(1)  # stage with a healthy message population
    summary = benchmark.pedantic(
        measure_parallel_parity, args=(files,), rounds=1, iterations=1
    )
    table_printer("BENCH-INC: --jobs 4 parity on examples/db", [summary])
    assert summary["identical_to_serial"]
    assert summary["identical_to_classic"]


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else "BENCH_incremental.json"
    files = db_sources()
    report = {
        "benchmark": "incremental cold vs warm (examples/db, final stage)",
        "cold_vs_warm": measure_cold_vs_warm(files),
        "parallel": measure_parallel_parity(db_sources(1)),
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    summary = report["cold_vs_warm"]
    print(
        f"cold {summary['cold_ms']}ms -> warm {summary['warm_ms']}ms "
        f"({summary['speedup']}x, required {REQUIRED_SPEEDUP}x); "
        f"wrote {out_path}"
    )
    ok = (
        summary["speedup"] >= REQUIRED_SPEEDUP
        and summary["identical_output"]
        and report["parallel"]["identical_to_serial"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
