"""Shared helpers for the benchmark suite."""

import pytest


def print_table(title: str, rows: list[dict]) -> None:
    """Print experiment rows as an aligned table (visible with -s,
    and captured into the bench output log otherwise)."""
    print(f"\n== {title} ==")
    if not rows:
        print("(no rows)")
        return
    headers = list(rows[0])
    widths = {
        h: max(len(h), *(len(_fmt(r[h])) for r in rows)) for h in headers
    }
    print("  ".join(h.ljust(widths[h]) for h in headers))
    for row in rows:
        print("  ".join(_fmt(row[h]).ljust(widths[h]) for h in headers))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@pytest.fixture
def table_printer():
    return print_table
