"""STAT-DYN: static checking vs run-time tools under partial coverage.

Paper, section 1: run-time checking's "effectiveness depends entirely on
running the right test cases to reveal the problems"; section 7 adds the
complementary residue (run-time tools find the global-storage leaks the
modular static checker cannot). This bench sweeps test coverage and
prints the detection rates of both tools over a seeded-bug corpus.
"""

from repro.bench.harness import static_vs_runtime_experiment
from repro.bench.seeding import BugKind


def test_static_vs_runtime_sweep(benchmark, table_printer):
    outcome = benchmark.pedantic(
        static_vs_runtime_experiment,
        kwargs={"coverages": (0.25, 0.5, 0.75, 1.0), "bugs_per_kind": 2},
        rounds=1, iterations=1,
    )
    table_printer(
        f"STAT-DYN: detection vs coverage ({outcome['total_bugs']} seeded bugs)",
        outcome["rows"],
    )
    per_kind_rows = [
        {"kind": kind, **counts} for kind, counts in outcome["per_kind"].items()
    ]
    table_printer("STAT-DYN: static detection by bug kind", per_kind_rows)

    rows = outcome["rows"]
    # Static detection is coverage-independent and complete on this corpus.
    assert all(r["static_rate"] == 1.0 for r in rows)
    # Runtime detection tracks coverage monotonically ...
    rates = [r["runtime_rate"] for r in rows]
    assert rates == sorted(rates)
    # ... and is strictly worse than static checking under partial coverage.
    assert rates[0] < 1.0
    assert rates[-1] == 1.0  # full coverage finds every seeded bug
    # No false positives in the clean scenarios.
    assert outcome["static_false_positives_in_clean"] == 0


def test_every_bug_kind_seedable(benchmark):
    """The corpus covers the paper's full error catalogue, including the
    section 7 residue classes (offset-pointer and static frees)."""
    kinds = {k.value for k in BugKind}
    assert {"leak", "double-free", "use-after-free", "null-dereference",
            "uninitialized-read", "static-free", "offset-free"} <= kinds
    outcome = benchmark.pedantic(
        static_vs_runtime_experiment,
        kwargs={"coverages": (1.0,), "bugs_per_kind": 1},
        rounds=1, iterations=1,
    )
    assert all(
        counts["static"] == counts["total"]
        for counts in outcome["per_kind"].values()
    ), outcome["per_kind"]
