"""MSG-CENSUS: the annotation burden on unannotated code.

Paper, section 7: "Running LCLint on the code with no annotations
produced on the order of a thousand messages" (on ~100k lines, i.e.
~10 messages/kloc), "nearly all ... quickly eliminated by adding an
annotation or making a small change"; 75 spurious messages were
suppressed with stylized comments.
"""

from repro import Checker
from repro.bench.generator import generate_program_of_size
from repro.bench.harness import burden_experiment


def test_annotation_burden(benchmark, table_printer):
    info = benchmark.pedantic(
        burden_experiment, kwargs={"target_loc": 6000}, rounds=1, iterations=1
    )
    table_printer("MSG-CENSUS: messages with and without annotations", [info])
    assert info["messages_annotated"] == 0
    # Unannotated code draws messages at a per-kloc rate of the same
    # order as the paper's (~10/kloc on LCLint's source).
    assert 2.0 <= info["messages_per_kloc_unannotated"] <= 100.0


def test_suppression_comments(benchmark):
    """Spurious messages can be silenced locally with stylized comments,
    as the 75 suppressions of section 7 were."""
    noisy = """#include <stdlib.h>
void f(char *p) { free(p); }
void g(char *p) { /*@i@*/ free(p); }
void h(char *p) {
/*@ignore@*/
  free(p);
/*@end@*/
}
"""

    def check():
        return Checker().check_sources({"noisy.c": noisy})

    result = benchmark(check)
    # f's message survives; g's and h's are suppressed.
    assert len(result.messages) == 1
    assert result.messages[0].location.line == 2
    assert result.suppressed >= 2
