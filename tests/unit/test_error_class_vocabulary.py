"""Exhaustiveness of the shared error-class vocabulary.

The difftest comparer aligns the two detectors through error-class
slugs. These tests pin the partition: every static message code maps to
at most one class, every class is a campaign class, and every run-time
event kind is reachable from some equivalence row — so adding a code,
kind, or class without wiring it through the verdict tables fails here
rather than silently dropping scores.
"""

from repro.bench.seeding import (
    RUNTIME_SIGNATURES,
    RUNTIME_WITNESSES,
    STATIC_SIGNATURES,
    BugKind,
)
from repro.difftest.mutations import CAMPAIGN_CLASSES
from repro.difftest.verdict import CORROBORATED_BY, STATIC_EQUIVALENTS
from repro.flags.registry import FLAG_REGISTRY
from repro.messages.message import MEMORY_ERROR_CLASSES, MessageCode
from repro.runtime.heap import RuntimeEventKind


class TestStaticSide:
    def test_every_code_has_at_most_one_class(self):
        # dict membership already guarantees uniqueness; pin that the
        # property accessor agrees and non-members answer None.
        for code in MessageCode:
            cls = code.error_class
            if code in MEMORY_ERROR_CLASSES:
                assert cls == MEMORY_ERROR_CLASSES[code]
            else:
                assert cls is None

    def test_every_class_is_a_campaign_class(self):
        assert set(MEMORY_ERROR_CLASSES.values()) <= set(CAMPAIGN_CLASSES)

    def test_every_classed_code_is_flag_controlled(self):
        for code in MEMORY_ERROR_CLASSES:
            assert code.flag in FLAG_REGISTRY, code

    def test_new_refinement_codes_have_distinct_classes(self):
        assert MessageCode.ARRAY_BOUNDS.error_class == "out-of-bounds"
        assert MessageCode.UNINIT_FIELD.error_class == "uninit-field-read"
        assert MessageCode.DOUBLE_RELEASE.error_class == "double-free-alias"


class TestRuntimeSide:
    def test_every_event_kind_class_is_a_campaign_class(self):
        for kind in RuntimeEventKind:
            assert kind.error_class in CAMPAIGN_CLASSES, kind

    def test_every_event_kind_is_reachable_from_an_equivalence_row(self):
        # Every run-time class must be able to corroborate some claim
        # and witness some plant — otherwise observing it can never
        # move a confusion matrix.
        corroborates = set().union(*CORROBORATED_BY.values())
        witnesses = set().union(*STATIC_EQUIVALENTS.values())
        for kind in RuntimeEventKind:
            assert kind.error_class in corroborates, kind
            assert kind.error_class in witnesses, kind


class TestPlantingSide:
    def test_every_bug_kind_has_both_signatures(self):
        assert set(STATIC_SIGNATURES) == set(BugKind)
        assert set(RUNTIME_SIGNATURES) == set(BugKind)

    def test_runtime_witnesses_cover_every_planted_class(self):
        for kind in BugKind:
            assert kind.error_class in RUNTIME_WITNESSES, kind
            # a plant's witness set is exactly what its runtime
            # signature events report
            expected = {e.error_class for e in RUNTIME_SIGNATURES[kind]}
            assert expected <= RUNTIME_WITNESSES[kind.error_class]

    def test_refinement_plants_witnessed_by_coarser_classes(self):
        assert RUNTIME_WITNESSES["uninit-field-read"] == frozenset(
            {"uninitialized-read"}
        )
        assert RUNTIME_WITNESSES["double-free-alias"] == frozenset(
            {"double-free"}
        )

    def test_equivalence_tables_span_exactly_the_campaign_classes(self):
        assert set(CORROBORATED_BY) == set(CAMPAIGN_CLASSES)
        assert set(STATIC_EQUIVALENTS) == set(CAMPAIGN_CLASSES)
