"""Direct unit tests for guard splitting and the runtime layout engine."""

from repro.analysis.guards import (
    GuardAnalyzer,
    GuardFacts,
    is_null_literal,
    strip_assignments,
)
from repro.analysis.states import NullState
from repro.analysis.storage import Ref
from repro.annotations.kinds import EMPTY_ANNOTATIONS
from repro.frontend import cast as A
from repro.frontend.ctypes import (
    Array,
    FieldDecl,
    Pointer,
    Primitive,
    StructType,
)
from repro.runtime.layout import layout_of, sizeof_ctype

LOC = None


def ident(name):
    return A.Ident(LOC, name=name)


def null_lit():
    return A.Cast(LOC, to_type=Pointer(Primitive("void")),
                  operand=A.IntLit(LOC, value=0, spelling="0"))


def analyzer(predicates=None):
    predicates = predicates or {}

    def resolve(expr):
        if isinstance(expr, A.Ident):
            return Ref.local(expr.name)
        if isinstance(expr, A.Member) and isinstance(expr.obj, A.Ident):
            return Ref.local(expr.obj.name).arrow(expr.fieldname)
        return None

    return GuardAnalyzer(resolve, lambda name: predicates.get(name))


class TestNullLiteralRecognition:
    def test_zero(self):
        assert is_null_literal(A.IntLit(LOC, value=0, spelling="0"))

    def test_cast_of_zero(self):
        assert is_null_literal(null_lit())

    def test_nonzero(self):
        assert not is_null_literal(A.IntLit(LOC, value=1, spelling="1"))

    def test_identifier_is_not_literal(self):
        assert not is_null_literal(ident("p"))


class TestGuardSplitting:
    def test_not_equal_null(self):
        cond = A.Binary(LOC, op="!=", lhs=ident("p"), rhs=null_lit())
        t, f = analyzer().split(cond)
        assert t.facts[Ref.local("p")] is NullState.NOTNULL
        assert f.facts[Ref.local("p")] is NullState.ISNULL

    def test_equal_null(self):
        cond = A.Binary(LOC, op="==", lhs=ident("p"), rhs=null_lit())
        t, f = analyzer().split(cond)
        assert t.facts[Ref.local("p")] is NullState.ISNULL
        assert f.facts[Ref.local("p")] is NullState.NOTNULL

    def test_null_on_left(self):
        cond = A.Binary(LOC, op="==", lhs=null_lit(), rhs=ident("p"))
        t, _ = analyzer().split(cond)
        assert t.facts[Ref.local("p")] is NullState.ISNULL

    def test_bare_truth_test(self):
        t, f = analyzer().split(ident("p"))
        assert t.facts[Ref.local("p")] is NullState.NOTNULL
        assert f.facts[Ref.local("p")] is NullState.ISNULL

    def test_negation_swaps(self):
        cond = A.Unary(LOC, op="!", operand=ident("p"))
        t, f = analyzer().split(cond)
        assert t.facts[Ref.local("p")] is NullState.ISNULL
        assert f.facts[Ref.local("p")] is NullState.NOTNULL

    def test_double_negation(self):
        cond = A.Unary(LOC, op="!",
                       operand=A.Unary(LOC, op="!", operand=ident("p")))
        t, _ = analyzer().split(cond)
        assert t.facts[Ref.local("p")] is NullState.NOTNULL

    def test_conjunction_true_side_learns_both(self):
        cond = A.Binary(LOC, op="&&", lhs=ident("p"), rhs=ident("q"))
        t, f = analyzer().split(cond)
        assert t.facts[Ref.local("p")] is NullState.NOTNULL
        assert t.facts[Ref.local("q")] is NullState.NOTNULL
        assert Ref.local("p") not in f.facts  # false side learns nothing

    def test_disjunction_false_side_learns_both(self):
        notnull_p = A.Binary(LOC, op="==", lhs=ident("p"), rhs=null_lit())
        notnull_q = A.Binary(LOC, op="==", lhs=ident("q"), rhs=null_lit())
        cond = A.Binary(LOC, op="||", lhs=notnull_p, rhs=notnull_q)
        _, f = analyzer().split(cond)
        assert f.facts[Ref.local("p")] is NullState.NOTNULL
        assert f.facts[Ref.local("q")] is NullState.NOTNULL

    def test_field_reference_guard(self):
        member = A.Member(LOC, obj=ident("c"), fieldname="vals", arrow=True)
        cond = A.Binary(LOC, op="!=", lhs=member, rhs=null_lit())
        t, _ = analyzer().split(cond)
        assert t.facts[Ref.local("c").arrow("vals")] is NullState.NOTNULL

    def test_truenull_predicate(self):
        call = A.Call(LOC, func=ident("isNull"), args=[ident("p")])
        t, f = analyzer({"isNull": "truenull"}).split(call)
        assert t.facts[Ref.local("p")] is NullState.ISNULL
        assert f.facts[Ref.local("p")] is NullState.NOTNULL

    def test_falsenull_predicate(self):
        call = A.Call(LOC, func=ident("nonNull"), args=[ident("p")])
        t, f = analyzer({"nonNull": "falsenull"}).split(call)
        assert t.facts[Ref.local("p")] is NullState.NOTNULL
        assert Ref.local("p") not in f.facts

    def test_unknown_predicate_learns_nothing(self):
        call = A.Call(LOC, func=ident("mystery"), args=[ident("p")])
        t, f = analyzer().split(call)
        assert t.facts == {} and f.facts == {}

    def test_guard_facts_merge_prefers_notnull(self):
        a = GuardFacts({Ref.local("p"): NullState.ISNULL})
        b = GuardFacts({Ref.local("p"): NullState.NOTNULL})
        merged = a.merge_and(b)
        assert merged.facts[Ref.local("p")] is NullState.NOTNULL


def assign(target, value):
    return A.Assign(LOC, op="=", target=target, value=value)


class TestAssignmentGuards:
    """The value of ``(p = e)`` is p: guards refine the target."""

    def test_strip_single_assignment(self):
        expr = assign(ident("p"), ident("q"))
        assert strip_assignments(expr) is expr.target

    def test_strip_chained_assignment(self):
        inner = assign(ident("q"), null_lit())
        expr = assign(ident("p"), inner)
        # (p = (q = e)): the outermost target is what the guard refines.
        assert strip_assignments(expr) is expr.target

    def test_compound_assignment_not_stripped(self):
        expr = A.Assign(LOC, op="+=", target=ident("p"), value=ident("q"))
        assert strip_assignments(expr) is expr

    def test_non_assignment_passes_through(self):
        expr = ident("p")
        assert strip_assignments(expr) is expr

    def test_assignment_compared_to_null(self):
        cond = A.Binary(
            LOC, op="==",
            lhs=assign(ident("s"), ident("fresh")),
            rhs=null_lit(),
        )
        t, f = analyzer().split(cond)
        assert t.facts[Ref.local("s")] is NullState.ISNULL
        assert f.facts[Ref.local("s")] is NullState.NOTNULL

    def test_bare_truth_of_assignment(self):
        t, f = analyzer().split(assign(ident("s"), ident("fresh")))
        assert t.facts[Ref.local("s")] is NullState.NOTNULL
        assert f.facts[Ref.local("s")] is NullState.ISNULL


class TestLayout:
    def test_scalar_sizes(self):
        assert sizeof_ctype(Primitive("char")) == 1
        assert sizeof_ctype(Primitive("int")) == 4
        assert sizeof_ctype(Primitive("unsigned long")) == 8
        assert sizeof_ctype(Pointer(Primitive("char"))) == 8

    def test_struct_layout(self):
        s = StructType("pair")
        s.fields = [
            FieldDecl("a", Primitive("int"), EMPTY_ANNOTATIONS),
            FieldDecl("b", Pointer(Primitive("char")), EMPTY_ANNOTATIONS),
        ]
        lay = layout_of(s)
        assert lay.slot_count == 2
        assert lay.byte_size == 12
        assert lay.field("a").slot == 0
        assert lay.field("b").slot == 1
        assert lay.field("zzz") is None

    def test_array_layout(self):
        lay = layout_of(Array(Primitive("int"), 5))
        assert lay.slot_count == 5
        assert lay.byte_size == 20
        assert lay.element_count == 5

    def test_array_of_structs(self):
        s = StructType("cell")
        s.fields = [
            FieldDecl("x", Primitive("int"), EMPTY_ANNOTATIONS),
            FieldDecl("y", Primitive("int"), EMPTY_ANNOTATIONS),
        ]
        lay = layout_of(Array(s, 3))
        assert lay.slot_count == 6

    def test_recursive_struct_terminates(self):
        node = StructType("node")
        node.fields = [
            FieldDecl("v", Primitive("int"), EMPTY_ANNOTATIONS),
            FieldDecl("next", Pointer(node), EMPTY_ANNOTATIONS),
        ]
        lay = layout_of(node)
        assert lay.slot_count == 2
        assert lay.byte_size == 12

    def test_union_takes_max(self):
        u = StructType("u", is_union=True)
        u.fields = [
            FieldDecl("i", Primitive("int"), EMPTY_ANNOTATIONS),
            FieldDecl("d", Primitive("double"), EMPTY_ANNOTATIONS),
        ]
        lay = layout_of(u)
        assert lay.byte_size == 8

    def test_layout_cached(self):
        s = StructType("cached")
        s.fields = [FieldDecl("x", Primitive("int"), EMPTY_ANNOTATIONS)]
        assert layout_of(s) is layout_of(s)
