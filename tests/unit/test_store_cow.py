"""Copy-on-write store: sharing, ownership transfer, and confluence.

The cold-path overhaul made :meth:`Store.copy` constant-time: a copy
shares the three backing containers (states, aliases, sites) with its
source, and the first write through either side takes private
ownership. These tests pin the contract the checker's branch/merge
discipline relies on: shared containers are never mutated in place,
every write path triggers ownership, and the observable behaviour —
including merge results and iteration order — is identical to the old
eager-copy representation.
"""

from repro.analysis.states import DefState, NullState, RefState
from repro.analysis.storage import Ref
from repro.analysis.store import Store, merge_all

from .test_store import SimpleEnv


def store():
    return Store(SimpleEnv())


X = Ref.local("x")
Y = Ref.local("y")
P = Ref.local("p")


def populated():
    s = store()
    s.set_state(X, RefState(null=NullState.ISNULL))
    s.set_state(Y, RefState(definition=DefState.ALLOCATED))
    s.add_alias(X, Y)
    s.set_site(X, "null", "site-x")
    return s


class TestSharing:
    def test_copy_shares_containers(self):
        s = populated()
        clone = s.copy()
        assert clone.states is s.states
        assert clone.aliases is s.aliases
        assert clone.sites is s.sites

    def test_reads_do_not_unshare(self):
        s = populated()
        clone = s.copy()
        assert clone.state(X).null is NullState.ISNULL
        assert clone.peek(Y) is not None
        assert clone.materialized() == s.materialized()
        assert clone.states is s.states

    def test_write_through_clone_takes_ownership(self):
        s = populated()
        clone = s.copy()
        clone.set_state(X, RefState(null=NullState.NOTNULL))
        assert clone.states is not s.states
        assert s.state(X).null is NullState.ISNULL
        assert clone.state(X).null is NullState.NOTNULL

    def test_write_through_original_protects_clone(self):
        s = populated()
        clone = s.copy()
        s.set_state(X, RefState(null=NullState.NOTNULL))
        assert clone.state(X).null is NullState.ISNULL

    def test_materialization_is_a_write(self):
        """state() on an unseen ref fills the dict — must not leak into
        the sibling sharing that dict."""
        s = populated()
        clone = s.copy()
        clone.state(P)  # materializes P's default in the clone
        assert P in clone.states
        assert P not in s.states

    def test_chained_copies_are_independent(self):
        s = populated()
        child = s.copy()
        grandchild = child.copy()
        grandchild.set_state(X, RefState(null=NullState.NOTNULL))
        child.set_site(Y, "fresh", "site-y")
        assert s.state(X).null is NullState.ISNULL
        assert (Y, "fresh") not in s.sites
        assert child.state(X).null is NullState.ISNULL
        assert grandchild.sites.get((Y, "fresh")) is None


class TestWritePaths:
    """Every mutator must unshare before touching a shared container."""

    def test_add_alias(self):
        s = populated()
        clone = s.copy()
        clone.add_alias(Y, P)
        assert P in clone.aliases.closure(Y)
        assert P not in s.aliases.closure(Y)

    def test_clear_aliases(self):
        s = populated()
        clone = s.copy()
        clone.clear_aliases(X)
        assert Y in s.aliases.closure(X)
        assert list(clone.aliases.closure(X)) == [X]

    def test_set_site(self):
        s = populated()
        clone = s.copy()
        clone.set_site(Y, "release", "site-r")
        assert (Y, "release") in clone.sites
        assert (Y, "release") not in s.sites

    def test_drop_state(self):
        s = populated()
        clone = s.copy()
        clone.drop_state(X)
        assert clone.peek(X) is None
        assert s.peek(X) is not None

    def test_kill_derived(self):
        s = store()
        s.set_state(P.arrow("f"), RefState(null=NullState.ISNULL))
        clone = s.copy()
        clone.kill_derived(P)
        assert clone.peek(P.arrow("f")) is None
        assert s.peek(P.arrow("f")) is not None

    def test_update_with_aliases(self):
        s = populated()
        clone = s.copy()
        clone.update_with_aliases(
            X, lambda st: st.with_null(NullState.ISNULL)
        )
        assert clone.state(Y).null is NullState.ISNULL
        assert s.state(Y).null is not NullState.ISNULL


class TestAbsorb:
    def test_absorb_shares_then_write_is_safe(self):
        s = populated()
        donor = store()
        donor.set_state(X, RefState(null=NullState.NOTNULL))
        s.absorb(donor)
        assert s.state(X).null is NullState.NOTNULL
        s.set_state(X, RefState(null=NullState.ISNULL))
        assert donor.state(X).null is NullState.NOTNULL


class TestConfluenceEquivalence:
    """Branch/merge through CoW copies gives the same store an eager
    deep copy would — same states, same reports, same iteration order."""

    def _eager_copy(self, s):
        clone = Store(s.env)
        clone.states = dict(s.states)
        clone.aliases = s.aliases.copy()
        clone.sites = dict(s.sites)
        clone.unreachable = s.unreachable
        return clone

    def _branch_and_merge(self, base, copier):
        then_side = copier(base)
        else_side = copier(base)
        then_side.set_state(X, RefState(null=NullState.NOTNULL))
        then_side.set_site(X, "fresh", "then")
        else_side.set_state(X, RefState(null=NullState.ISNULL))
        else_side.add_alias(X, P)
        merged, reports = then_side.merge(else_side)
        return merged, reports

    def test_merge_matches_eager_semantics(self):
        cow_merged, cow_reports = self._branch_and_merge(
            populated(), Store.copy
        )
        eager_merged, eager_reports = self._branch_and_merge(
            populated(), self._eager_copy
        )
        assert cow_merged.states == eager_merged.states
        assert list(cow_merged.states) == list(eager_merged.states)
        assert cow_merged.sites == eager_merged.sites
        assert cow_reports == eager_reports
        assert sorted(cow_merged.aliases.refs()) == sorted(
            eager_merged.aliases.refs()
        )

    def test_merge_leaves_base_untouched(self):
        base = populated()
        before = dict(base.states)
        self._branch_and_merge(base, Store.copy)
        assert base.states == before

    def test_merge_all_with_shared_copies(self):
        base = populated()
        branches = [base.copy() for _ in range(4)]
        for i, branch in enumerate(branches):
            branch.set_state(
                Ref.local(f"v{i}"), RefState(null=NullState.ISNULL)
            )
        merged, _ = merge_all(branches)
        for i in range(4):
            # ISNULL on one branch joins the other branches' default
            # (not-null) to possibly-null at confluence.
            assert merged.state(
                Ref.local(f"v{i}")
            ).null is NullState.MAYBENULL
        # Merging materializes defaults into the (privately owned)
        # branches, but the shared base store must stay untouched.
        for i in range(4):
            assert Ref.local(f"v{i}") not in base.states
