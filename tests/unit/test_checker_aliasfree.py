"""Double release through an alias (`aliasfree` flag).

``q = p; free(p); free(q);`` releases the same storage twice through
different names. The alias analysis already saw this as a bad transfer
of kept storage; the refinement gives it its own code so the aliased
double free is scored as a distinct error class. A *direct* second free
of the same name stays the use-after-release diagnosis (the second free
is a use of released storage).
"""

from repro import Flags, check_source
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


def codes(source, flags=NOIMP):
    return [m.code for m in check_source(source, "t.c", flags=flags).messages]


def texts(source, flags=NOIMP):
    return [m.text for m in check_source(source, "t.c", flags=flags).messages]


ALIAS_DF = """#include <stdlib.h>
void f(/*@only@*/ char *p) { char *q; q = p; free(p); free(q); }
"""

ALIAS_DF_LOCAL = """#include <stdlib.h>
void f(void) {
    char *p = (char *) malloc(8);
    char *q;
    if (p == NULL) { exit(EXIT_FAILURE); }
    p[0] = 'a';
    q = p;
    free(p);
    free(q);
}
"""


class TestAliasDoubleFree:
    def test_alias_double_free_has_its_own_code(self):
        assert codes(ALIAS_DF) == [MessageCode.DOUBLE_RELEASE]
        assert "released twice" in texts(ALIAS_DF)[0]

    def test_alias_double_free_of_local_allocation(self):
        result = codes(ALIAS_DF_LOCAL)
        assert MessageCode.DOUBLE_RELEASE in result

    def test_alias_freed_exactly_once_is_clean(self):
        src = """#include <stdlib.h>
        void f(/*@only@*/ char *p) { char *q; q = p; free(q); }
        """
        assert codes(src) == []

    def test_direct_double_free_keeps_use_after_release(self):
        # Re-freeing the same name is a use of released storage; the
        # double-free campaign class keeps its static witness.
        src = """#include <stdlib.h>
        void f(/*@only@*/ char *p) { free(p); free(p); }
        """
        assert MessageCode.USE_AFTER_RELEASE in codes(src)
        assert MessageCode.DOUBLE_RELEASE not in codes(src)


class TestFlagGating:
    def test_minus_aliasfree_falls_back_to_bad_transfer(self):
        off = Flags.from_args(["-allimponly", "-aliasfree"])
        assert codes(ALIAS_DF, off) == [MessageCode.BAD_TRANSFER]
