"""Tests for the fingerprint layer and the on-disk result cache."""

import json
import os

import pytest

from repro.core.api import Checker
from repro.flags.registry import Flags
from repro.frontend.source import Location
from repro.incremental.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    UnitMemo,
)
from repro.incremental.fingerprint import (
    check_fingerprint,
    flags_digest,
    interface_digest,
    prelude_digest,
    program_digest,
    source_key,
    stable_digest,
    token_stream_digest,
)
from repro.messages.message import Message, MessageCode


def _tokens(source: str, name: str = "t.c"):
    checker = Checker()
    from repro.frontend.preprocessor import Preprocessor
    from repro.stdlib.specs import SYSTEM_HEADERS

    pp = Preprocessor(
        checker.sources, defines=dict(checker.defines),
        system_headers=SYSTEM_HEADERS,
    )
    return pp.preprocess_text(source, name)


class TestFingerprints:
    def test_token_digest_stable_and_content_sensitive(self):
        a = token_stream_digest(_tokens("int f(void) { return 1; }\n"))
        b = token_stream_digest(_tokens("int f(void) { return 1; }\n"))
        c = token_stream_digest(_tokens("int f(void) { return 2; }\n"))
        assert a == b
        assert a != c

    def test_token_digest_sees_line_shifts(self):
        # A leading blank line changes every location, hence the digest:
        # cached messages would render with stale line numbers otherwise.
        a = token_stream_digest(_tokens("int f(void) { return 1; }\n"))
        b = token_stream_digest(_tokens("\nint f(void) { return 1; }\n"))
        assert a != b

    def test_flags_digest_uses_effective_values(self):
        assert flags_digest(Flags()) == flags_digest(Flags({"null": True}))
        assert flags_digest(Flags()) != flags_digest(Flags({"null": False}))

    def test_prelude_digest_is_stable(self):
        assert prelude_digest() == prelude_digest()

    def test_source_key_depends_on_name_text_defines(self):
        base = source_key("a.c", "int x;", {})
        assert base == source_key("a.c", "int x;", {})
        assert base != source_key("b.c", "int x;", {})
        assert base != source_key("a.c", "int y;", {})
        assert base != source_key("a.c", "int x;", {"D": "1"})

    def test_interface_digest_survives_cyclic_struct_types(self):
        # struct _elem contains a pointer to itself: the canonical walk
        # must cut the cycle instead of recursing forever.
        result = Checker().check_sources(
            {
                "cyc.c": (
                    "typedef struct _elem { int v; struct _elem *next; } "
                    "*elem;\n"
                    "extern elem mk(void);\n"
                )
            }
        )
        digest = interface_digest(result.symtab, {})
        assert digest == interface_digest(result.symtab, {})

    def test_interface_digest_sees_annotation_changes(self):
        plain = Checker().check_sources({"m.c": "extern char *gp;\n"})
        annotated = Checker().check_sources(
            {"m.c": "extern /*@null@*/ char *gp;\n"}
        )
        assert interface_digest(plain.symtab, {}) != interface_digest(
            annotated.symtab, {}
        )

    def test_stable_digest_sorts_sets(self):
        assert stable_digest({"a", "b", "c"}) == stable_digest({"c", "b", "a"})

    def test_check_fingerprint_composition(self):
        prog = program_digest(["i1", "i2"], [])
        assert check_fingerprint("t", Flags(), prog) == check_fingerprint(
            "t", Flags(), prog
        )
        assert check_fingerprint("t", Flags(), prog) != check_fingerprint(
            "t", Flags({"null": False}), prog
        )
        assert prog != program_digest(["i1", "iX"], [])


def _message(line: int = 3) -> Message:
    from repro.messages.message import SubLocation

    return Message(
        MessageCode.NULL_DEREF,
        Location("x.c", line, 7),
        "Possible dereference of null pointer p",
        (SubLocation(Location("x.c", line - 1, 2), "Storage p may become null"),),
    )


class TestResultCache:
    FP = "ab" * 32

    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put_result(self.FP, [_message()], suppressed=2)
        loaded = cache.get_result(self.FP)
        assert loaded is not None
        messages, suppressed = loaded
        assert suppressed == 2
        assert [m.render() for m in messages] == [_message().render()]

    def test_miss_on_unknown_fingerprint(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        assert cache.get_result("cd" * 32) is None

    def test_corrupted_result_is_a_miss_and_discarded(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put_result(self.FP, [_message()], suppressed=0)
        victim = os.path.join(cache.root, "results", self.FP + ".json")
        with open(victim, "w") as handle:
            handle.write('{"messages": [[[[ GARBAGE')
        assert cache.get_result(self.FP) is None
        assert not os.path.exists(victim)

    def test_wrong_shape_json_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        victim = os.path.join(cache.root, "results", self.FP + ".json")
        with open(victim, "w") as handle:
            json.dump({"messages": [{"nope": 1}], "suppressed": 0}, handle)
        assert cache.get_result(self.FP) is None

    def test_version_mismatch_rebuilds(self, tmp_path):
        root = str(tmp_path / "c")
        cache = ResultCache(root)
        cache.put_result(self.FP, [_message()], suppressed=0)
        with open(os.path.join(root, "meta.json"), "w") as handle:
            json.dump({"format": CACHE_FORMAT_VERSION + 1, "engine": 0}, handle)
        reopened = ResultCache(root)
        assert reopened.get_result(self.FP) is None  # wiped
        assert any("rebuilding" in note for note in reopened.notes)

    def test_garbage_meta_rebuilds(self, tmp_path):
        root = str(tmp_path / "c")
        ResultCache(root)
        with open(os.path.join(root, "meta.json"), "w") as handle:
            handle.write("not json at all {{{")
        reopened = ResultCache(root)
        assert reopened.get_result(self.FP) is None

    def test_unit_memo_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        memo = UnitMemo(
            token_digest="t" * 8,
            iface_digest="i" * 8,
            iface_pickle=b"\x80\x04N.",  # pickled None
            includes=[("h.h", "s" * 8)],
            enum_consts={"LIMIT": 4},
        )
        cache.put_unit_memo(self.FP, memo)
        loaded = cache.get_unit_memo(self.FP)
        assert loaded is not None
        assert loaded.token_digest == memo.token_digest
        assert loaded.includes == memo.includes
        assert loaded.enum_consts == {"LIMIT": 4}

    def test_corrupted_unit_memo_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        victim = os.path.join(cache.root, "units", self.FP + ".pkl")
        with open(victim, "wb") as handle:
            handle.write(b"\x80\x04 truncated garbage")
        assert cache.get_unit_memo(self.FP) is None

    def test_non_hex_key_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        with pytest.raises(ValueError):
            cache.get_result("../../../etc/passwd")


class TestDroppedEntryAccounting:
    """Discarded corrupt entries are counted; plain misses are not."""

    FP = "ab" * 32

    def _cache(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        return ResultCache(str(tmp_path / "c"), metrics=registry), registry

    def test_fresh_cache_has_no_drops(self, tmp_path):
        cache, registry = self._cache(tmp_path)
        assert cache.dropped == 0
        assert registry.count("cache.entries.dropped") == 0

    def test_plain_miss_is_not_a_drop(self, tmp_path):
        cache, registry = self._cache(tmp_path)
        assert cache.get_result("cd" * 32) is None
        assert cache.get_unit_memo("cd" * 32) is None
        assert cache.drain_dropped() == 0
        assert registry.count("cache.entries.dropped") == 0

    def test_corrupt_result_counts_one_drop(self, tmp_path):
        cache, registry = self._cache(tmp_path)
        victim = os.path.join(cache.root, "results", self.FP + ".json")
        with open(victim, "w") as handle:
            handle.write("not json at all")
        assert cache.get_result(self.FP) is None
        assert cache.dropped == 1
        assert registry.count("cache.entries.dropped") == 1

    def test_corrupt_memo_counts_one_drop(self, tmp_path):
        cache, registry = self._cache(tmp_path)
        victim = os.path.join(cache.root, "units", self.FP + ".pkl")
        with open(victim, "wb") as handle:
            handle.write(b"\x80\x04 truncated garbage")
        assert cache.get_unit_memo(self.FP) is None
        assert cache.dropped == 1
        assert registry.count("cache.entries.dropped") == 1

    def test_drain_returns_and_resets(self, tmp_path):
        cache, registry = self._cache(tmp_path)
        victim = os.path.join(cache.root, "results", self.FP + ".json")
        with open(victim, "w") as handle:
            handle.write("garbage")
        cache.get_result(self.FP)
        assert cache.drain_dropped() == 1
        assert cache.drain_dropped() == 0
        # The metrics counter is cumulative, not drained.
        assert registry.count("cache.entries.dropped") == 1

    def test_fresh_cache_layout_is_not_a_wipe(self, tmp_path):
        _, registry = self._cache(tmp_path)
        assert registry.count("cache.wipes") == 0

    def test_version_mismatch_counts_a_wipe(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        root = str(tmp_path / "c")
        ResultCache(root)
        meta = os.path.join(root, "meta.json")
        with open(meta, "w") as handle:
            json.dump({"format": -1, "engine": "other"}, handle)
        registry = MetricsRegistry()
        ResultCache(root, metrics=registry)
        assert registry.count("cache.wipes") == 1


class TestResultJournal:
    FP1 = "ab" * 32
    FP2 = "cd" * 32
    FP3 = "ef" * 32

    def _registry_cache(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        return ResultCache(str(tmp_path / "c"), metrics=registry), registry

    def _journal_path(self, cache):
        return os.path.join(cache.root, "results", "journal.jsonl")

    def test_batch_is_one_append_not_per_unit_files(self, tmp_path):
        cache, registry = self._registry_cache(tmp_path)
        with cache.batch():
            cache.put_result(self.FP1, [_message()], suppressed=0)
            cache.put_result(self.FP2, [_message()], suppressed=1)
        # One flush for the whole batch; no per-fingerprint files yet.
        assert registry.count("cache.journal.flushes") == 1
        assert registry.count("cache.journal.entries") == 2
        assert not os.path.exists(
            os.path.join(cache.root, "results", self.FP1 + ".json")
        )
        lines = open(self._journal_path(cache)).read().splitlines()
        assert len(lines) == 2

    def test_batched_results_visible_before_and_after_flush(self, tmp_path):
        cache, _ = self._registry_cache(tmp_path)
        with cache.batch():
            cache.put_result(self.FP1, [_message()], suppressed=3)
            # Visible mid-batch (the engine re-reads what it wrote).
            assert cache.get_result(self.FP1)[1] == 3
        assert cache.get_result(self.FP1)[1] == 3

    def test_journal_survives_reopen(self, tmp_path):
        cache, _ = self._registry_cache(tmp_path)
        with cache.batch():
            cache.put_result(self.FP1, [_message()], suppressed=2)
        reopened = ResultCache(cache.root)
        loaded = reopened.get_result(self.FP1)
        assert loaded is not None
        assert loaded[1] == 2

    def test_nested_batches_flush_once_at_outermost_exit(self, tmp_path):
        cache, registry = self._registry_cache(tmp_path)
        with cache.batch():
            cache.put_result(self.FP1, [_message()], suppressed=0)
            with cache.batch():
                cache.put_result(self.FP2, [_message()], suppressed=0)
            assert registry.count("cache.journal.flushes") == 0
        assert registry.count("cache.journal.flushes") == 1

    def test_unbatched_put_is_an_immediate_file_write(self, tmp_path):
        cache, registry = self._registry_cache(tmp_path)
        cache.put_result(self.FP1, [_message()], suppressed=0)
        assert os.path.exists(
            os.path.join(cache.root, "results", self.FP1 + ".json")
        )
        assert registry.count("cache.journal.flushes") == 0

    def test_mid_append_kill_heals_on_next_load(self, tmp_path):
        # A process killed mid-append leaves a truncated final line; the
        # next open drops exactly that line and rewrites the journal so
        # the corruption is reported once, not on every run.
        cache, _ = self._registry_cache(tmp_path)
        with cache.batch():
            cache.put_result(self.FP1, [_message()], suppressed=5)
            cache.put_result(self.FP2, [_message()], suppressed=6)
        path = self._journal_path(cache)
        whole = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(whole[: len(whole) - 40])  # torn final append
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        healed = ResultCache(cache.root, metrics=registry)
        assert healed.get_result(self.FP1)[1] == 5  # intact prefix kept
        assert healed.get_result(self.FP2) is None  # torn line dropped
        assert registry.count("cache.journal.healed") == 1
        assert healed.dropped == 1
        # Healed: reopening again reports no further corruption.
        registry2 = MetricsRegistry()
        again = ResultCache(cache.root, metrics=registry2)
        assert registry2.count("cache.journal.healed") == 0
        assert again.verify_integrity()["corrupt"] == 0

    def test_garbage_journal_line_is_dropped_not_fatal(self, tmp_path):
        cache, _ = self._registry_cache(tmp_path)
        with cache.batch():
            cache.put_result(self.FP1, [_message()], suppressed=0)
        with open(self._journal_path(cache), "ab") as handle:
            handle.write(b"\x00\xffnot json at all\n")
            handle.write(b'{"fp": "zz", "messages": [], "suppressed": 0}\n')
        reopened = ResultCache(cache.root)
        assert reopened.get_result(self.FP1) is not None
        assert reopened.dropped == 2

    def test_compaction_folds_into_files_and_truncates(self, tmp_path):
        cache, registry = self._registry_cache(tmp_path)
        with cache.batch():
            cache.put_result(self.FP1, [_message()], suppressed=1)
            cache.put_result(self.FP2, [_message()], suppressed=2)
        cache.compact_journal()
        assert registry.count("cache.journal.compactions") == 1
        assert os.path.getsize(self._journal_path(cache)) == 0
        for fp, suppressed in ((self.FP1, 1), (self.FP2, 2)):
            assert os.path.exists(
                os.path.join(cache.root, "results", fp + ".json")
            )
            assert cache.get_result(fp)[1] == suppressed

    def test_oversized_journal_compacts_on_load(self, tmp_path, monkeypatch):
        from repro.incremental import cache as cache_mod

        monkeypatch.setattr(cache_mod, "JOURNAL_COMPACT_ENTRIES", 2)
        cache, _ = self._registry_cache(tmp_path)
        with cache.batch():
            for fp in (self.FP1, self.FP2, self.FP3):
                cache.put_result(fp, [_message()], suppressed=0)
        # The flush itself compacts once past the (patched) threshold.
        assert os.path.getsize(self._journal_path(cache)) == 0
        reopened = ResultCache(cache.root)
        for fp in (self.FP1, self.FP2, self.FP3):
            assert reopened.get_result(fp) is not None

    def test_bad_fingerprint_fails_at_put_even_in_a_batch(self, tmp_path):
        cache, _ = self._registry_cache(tmp_path)
        with pytest.raises(ValueError):
            with cache.batch():
                cache.put_result("not-hex", [_message()], suppressed=0)

    def test_compaction_rereads_disk_under_the_lock(self, tmp_path):
        # Another process's appended entries must survive a compaction
        # that started before they landed: compact folds what is on
        # disk, not a possibly stale in-memory view.
        cache, _ = self._registry_cache(tmp_path)
        with cache.batch():
            cache.put_result(self.FP1, [_message()], suppressed=1)
        other = ResultCache(cache.root)
        with other.batch():
            other.put_result(self.FP2, [_message()], suppressed=2)
        cache.compact_journal()  # never saw FP2 in memory
        fresh = ResultCache(cache.root)
        assert fresh.get_result(self.FP1)[1] == 1
        assert fresh.get_result(self.FP2)[1] == 2
        assert fresh.verify_integrity()["corrupt"] == 0

    def test_verify_integrity_counts_and_flags(self, tmp_path):
        cache, _ = self._registry_cache(tmp_path)
        cache.put_result(self.FP1, [_message()], suppressed=0)
        with cache.batch():
            cache.put_result(self.FP2, [_message()], suppressed=0)
        report = cache.verify_integrity()
        assert report["results"] == 1
        assert report["journal"] == 1
        assert report["corrupt"] == 0
        # Corrupt a per-fingerprint file: the report flags it.
        victim = os.path.join(cache.root, "results", self.FP1 + ".json")
        with open(victim, "w") as handle:
            handle.write("{broken")
        fresh = ResultCache(cache.root)
        assert fresh.verify_integrity()["corrupt"] >= 1


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="needs fork for a two-process stress"
)
class TestConcurrentCompaction:
    """Two writers interleaving appends with compactions lose nothing.

    This is the regression test for the fold-then-truncate race: before
    compaction took ``CacheDirLock`` and re-read the journal from disk,
    a compactor could truncate away entries another process appended
    after the compactor's in-memory snapshot, silently dropping results.
    """

    PER_CHILD = 120

    def _child(self, root, child_id, start_evt):
        cache = ResultCache(root)
        start_evt.wait(10)
        for i in range(self.PER_CHILD):
            fp = f"{child_id:02x}{i:062x}"
            with cache.batch():
                cache.put_result(fp, [_message()], suppressed=i)
            if i % 7 == 0:
                cache.compact_journal()
        cache.compact_journal()

    def test_no_result_lost_and_integrity_holds(self, tmp_path):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        root = str(tmp_path / "c")
        ResultCache(root)  # lay down the directory skeleton once
        start_evt = ctx.Event()
        children = [
            ctx.Process(target=self._child, args=(root, cid, start_evt))
            for cid in (1, 2)
        ]
        for proc in children:
            proc.start()
        start_evt.set()
        for proc in children:
            proc.join(60)
            assert proc.exitcode == 0
        fresh = ResultCache(root)
        for cid in (1, 2):
            for i in range(self.PER_CHILD):
                fp = f"{cid:02x}{i:062x}"
                found = fresh.get_result(fp)
                assert found is not None, f"lost result {fp}"
                assert found[1] == i
        assert fresh.verify_integrity()["corrupt"] == 0
