"""Tests for the fingerprint layer and the on-disk result cache."""

import json
import os

import pytest

from repro.core.api import Checker
from repro.flags.registry import Flags
from repro.frontend.source import Location
from repro.incremental.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    UnitMemo,
)
from repro.incremental.fingerprint import (
    check_fingerprint,
    flags_digest,
    interface_digest,
    prelude_digest,
    program_digest,
    source_key,
    stable_digest,
    token_stream_digest,
)
from repro.messages.message import Message, MessageCode


def _tokens(source: str, name: str = "t.c"):
    checker = Checker()
    from repro.frontend.preprocessor import Preprocessor
    from repro.stdlib.specs import SYSTEM_HEADERS

    pp = Preprocessor(
        checker.sources, defines=dict(checker.defines),
        system_headers=SYSTEM_HEADERS,
    )
    return pp.preprocess_text(source, name)


class TestFingerprints:
    def test_token_digest_stable_and_content_sensitive(self):
        a = token_stream_digest(_tokens("int f(void) { return 1; }\n"))
        b = token_stream_digest(_tokens("int f(void) { return 1; }\n"))
        c = token_stream_digest(_tokens("int f(void) { return 2; }\n"))
        assert a == b
        assert a != c

    def test_token_digest_sees_line_shifts(self):
        # A leading blank line changes every location, hence the digest:
        # cached messages would render with stale line numbers otherwise.
        a = token_stream_digest(_tokens("int f(void) { return 1; }\n"))
        b = token_stream_digest(_tokens("\nint f(void) { return 1; }\n"))
        assert a != b

    def test_flags_digest_uses_effective_values(self):
        assert flags_digest(Flags()) == flags_digest(Flags({"null": True}))
        assert flags_digest(Flags()) != flags_digest(Flags({"null": False}))

    def test_prelude_digest_is_stable(self):
        assert prelude_digest() == prelude_digest()

    def test_source_key_depends_on_name_text_defines(self):
        base = source_key("a.c", "int x;", {})
        assert base == source_key("a.c", "int x;", {})
        assert base != source_key("b.c", "int x;", {})
        assert base != source_key("a.c", "int y;", {})
        assert base != source_key("a.c", "int x;", {"D": "1"})

    def test_interface_digest_survives_cyclic_struct_types(self):
        # struct _elem contains a pointer to itself: the canonical walk
        # must cut the cycle instead of recursing forever.
        result = Checker().check_sources(
            {
                "cyc.c": (
                    "typedef struct _elem { int v; struct _elem *next; } "
                    "*elem;\n"
                    "extern elem mk(void);\n"
                )
            }
        )
        digest = interface_digest(result.symtab, {})
        assert digest == interface_digest(result.symtab, {})

    def test_interface_digest_sees_annotation_changes(self):
        plain = Checker().check_sources({"m.c": "extern char *gp;\n"})
        annotated = Checker().check_sources(
            {"m.c": "extern /*@null@*/ char *gp;\n"}
        )
        assert interface_digest(plain.symtab, {}) != interface_digest(
            annotated.symtab, {}
        )

    def test_stable_digest_sorts_sets(self):
        assert stable_digest({"a", "b", "c"}) == stable_digest({"c", "b", "a"})

    def test_check_fingerprint_composition(self):
        prog = program_digest(["i1", "i2"], [])
        assert check_fingerprint("t", Flags(), prog) == check_fingerprint(
            "t", Flags(), prog
        )
        assert check_fingerprint("t", Flags(), prog) != check_fingerprint(
            "t", Flags({"null": False}), prog
        )
        assert prog != program_digest(["i1", "iX"], [])


def _message(line: int = 3) -> Message:
    from repro.messages.message import SubLocation

    return Message(
        MessageCode.NULL_DEREF,
        Location("x.c", line, 7),
        "Possible dereference of null pointer p",
        (SubLocation(Location("x.c", line - 1, 2), "Storage p may become null"),),
    )


class TestResultCache:
    FP = "ab" * 32

    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put_result(self.FP, [_message()], suppressed=2)
        loaded = cache.get_result(self.FP)
        assert loaded is not None
        messages, suppressed = loaded
        assert suppressed == 2
        assert [m.render() for m in messages] == [_message().render()]

    def test_miss_on_unknown_fingerprint(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        assert cache.get_result("cd" * 32) is None

    def test_corrupted_result_is_a_miss_and_discarded(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put_result(self.FP, [_message()], suppressed=0)
        victim = os.path.join(cache.root, "results", self.FP + ".json")
        with open(victim, "w") as handle:
            handle.write('{"messages": [[[[ GARBAGE')
        assert cache.get_result(self.FP) is None
        assert not os.path.exists(victim)

    def test_wrong_shape_json_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        victim = os.path.join(cache.root, "results", self.FP + ".json")
        with open(victim, "w") as handle:
            json.dump({"messages": [{"nope": 1}], "suppressed": 0}, handle)
        assert cache.get_result(self.FP) is None

    def test_version_mismatch_rebuilds(self, tmp_path):
        root = str(tmp_path / "c")
        cache = ResultCache(root)
        cache.put_result(self.FP, [_message()], suppressed=0)
        with open(os.path.join(root, "meta.json"), "w") as handle:
            json.dump({"format": CACHE_FORMAT_VERSION + 1, "engine": 0}, handle)
        reopened = ResultCache(root)
        assert reopened.get_result(self.FP) is None  # wiped
        assert any("rebuilding" in note for note in reopened.notes)

    def test_garbage_meta_rebuilds(self, tmp_path):
        root = str(tmp_path / "c")
        ResultCache(root)
        with open(os.path.join(root, "meta.json"), "w") as handle:
            handle.write("not json at all {{{")
        reopened = ResultCache(root)
        assert reopened.get_result(self.FP) is None

    def test_unit_memo_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        memo = UnitMemo(
            token_digest="t" * 8,
            iface_digest="i" * 8,
            iface_pickle=b"\x80\x04N.",  # pickled None
            includes=[("h.h", "s" * 8)],
            enum_consts={"LIMIT": 4},
        )
        cache.put_unit_memo(self.FP, memo)
        loaded = cache.get_unit_memo(self.FP)
        assert loaded is not None
        assert loaded.token_digest == memo.token_digest
        assert loaded.includes == memo.includes
        assert loaded.enum_consts == {"LIMIT": 4}

    def test_corrupted_unit_memo_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        victim = os.path.join(cache.root, "units", self.FP + ".pkl")
        with open(victim, "wb") as handle:
            handle.write(b"\x80\x04 truncated garbage")
        assert cache.get_unit_memo(self.FP) is None

    def test_non_hex_key_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        with pytest.raises(ValueError):
            cache.get_result("../../../etc/passwd")


class TestDroppedEntryAccounting:
    """Discarded corrupt entries are counted; plain misses are not."""

    FP = "ab" * 32

    def _cache(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        return ResultCache(str(tmp_path / "c"), metrics=registry), registry

    def test_fresh_cache_has_no_drops(self, tmp_path):
        cache, registry = self._cache(tmp_path)
        assert cache.dropped == 0
        assert registry.count("cache.entries.dropped") == 0

    def test_plain_miss_is_not_a_drop(self, tmp_path):
        cache, registry = self._cache(tmp_path)
        assert cache.get_result("cd" * 32) is None
        assert cache.get_unit_memo("cd" * 32) is None
        assert cache.drain_dropped() == 0
        assert registry.count("cache.entries.dropped") == 0

    def test_corrupt_result_counts_one_drop(self, tmp_path):
        cache, registry = self._cache(tmp_path)
        victim = os.path.join(cache.root, "results", self.FP + ".json")
        with open(victim, "w") as handle:
            handle.write("not json at all")
        assert cache.get_result(self.FP) is None
        assert cache.dropped == 1
        assert registry.count("cache.entries.dropped") == 1

    def test_corrupt_memo_counts_one_drop(self, tmp_path):
        cache, registry = self._cache(tmp_path)
        victim = os.path.join(cache.root, "units", self.FP + ".pkl")
        with open(victim, "wb") as handle:
            handle.write(b"\x80\x04 truncated garbage")
        assert cache.get_unit_memo(self.FP) is None
        assert cache.dropped == 1
        assert registry.count("cache.entries.dropped") == 1

    def test_drain_returns_and_resets(self, tmp_path):
        cache, registry = self._cache(tmp_path)
        victim = os.path.join(cache.root, "results", self.FP + ".json")
        with open(victim, "w") as handle:
            handle.write("garbage")
        cache.get_result(self.FP)
        assert cache.drain_dropped() == 1
        assert cache.drain_dropped() == 0
        # The metrics counter is cumulative, not drained.
        assert registry.count("cache.entries.dropped") == 1

    def test_fresh_cache_layout_is_not_a_wipe(self, tmp_path):
        _, registry = self._cache(tmp_path)
        assert registry.count("cache.wipes") == 0

    def test_version_mismatch_counts_a_wipe(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        root = str(tmp_path / "c")
        ResultCache(root)
        meta = os.path.join(root, "meta.json")
        with open(meta, "w") as handle:
            json.dump({"format": -1, "engine": "other"}, handle)
        registry = MetricsRegistry()
        ResultCache(root, metrics=registry)
        assert registry.count("cache.wipes") == 1
