"""The message catalogue: every MessageCode is producible and controlled
by a registered flag.

Each snippet below is the minimal program that triggers one check class;
together they pin the whole reporting surface of the checker.
"""

import pytest

from repro import Flags, check_source
from repro.flags.registry import FLAG_REGISTRY
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])

#: MessageCode -> (source, flags) that must produce it.
CATALOG: dict[MessageCode, tuple[str, Flags]] = {
    MessageCode.NULL_DEREF: (
        "int f(/*@null@*/ int *p) { return *p; }", NOIMP,
    ),
    MessageCode.NULL_RET_GLOBAL: (
        "extern char *g;\nvoid f(/*@null@*/ char *p) { g = p; }", NOIMP,
    ),
    MessageCode.NULL_RET_VALUE: (
        "char *f(/*@null@*/ /*@temp@*/ char *p) { return p; }", NOIMP,
    ),
    MessageCode.NULL_PARAM: (
        "extern void use(char *p);\nvoid f(/*@null@*/ char *p) { use(p); }",
        NOIMP,
    ),
    MessageCode.USE_BEFORE_DEF: (
        "int f(void) { int x; return x; }", NOIMP,
    ),
    MessageCode.INCOMPLETE_DEF: (
        "void f(/*@out@*/ int *p) { }", NOIMP,
    ),
    MessageCode.PARAM_NOT_DEFINED: (
        "#include <stdlib.h>\nextern void use(int *p);\n"
        "void f(void) { int *p = (int *) malloc(4); if (p) { use(p); "
        "free(p); } }",
        NOIMP,
    ),
    MessageCode.USE_AFTER_RELEASE: (
        "#include <stdlib.h>\n"
        "char f(/*@only@*/ char *p) { free(p); return *p; }",
        NOIMP,
    ),
    MessageCode.LEAK_OVERWRITE: (
        "extern /*@only@*/ char *g;\n"
        "void f(/*@only@*/ char *p) { g = p; }",
        NOIMP,
    ),
    MessageCode.LEAK_SCOPE: (
        "#include <stdlib.h>\n"
        "void f(void) { char *p = (char *) malloc(4); if (p) { *p = 1; } }",
        NOIMP,
    ),
    MessageCode.LEAK_RETURN: (
        "#include <stdlib.h>\n"
        "char *f(void) { char *p = (char *) malloc(4); "
        "if (p == NULL) { exit(1); } *p = 'x'; return p; }",
        NOIMP,
    ),
    MessageCode.LEAK_RESULT: (
        "#include <stdlib.h>\nvoid f(void) { malloc(4); }", NOIMP,
    ),
    MessageCode.ONLY_NOT_RELEASED: (
        "void f(/*@only@*/ char *p) { }", NOIMP,
    ),
    MessageCode.TEMP_TO_ONLY: (
        "extern /*@only@*/ char *g;\n"
        "void f(/*@temp@*/ char *p) { g = p; }",
        NOIMP,
    ),
    MessageCode.BAD_TRANSFER: (
        "#include <stdlib.h>\nvoid f(/*@temp@*/ char *p) { free(p); }",
        NOIMP,
    ),
    MessageCode.IMPLICIT_TRANSFER: (
        "#include <stdlib.h>\nvoid f(char *p) { free(p); }", NOIMP,
    ),
    MessageCode.CONFLUENCE: (
        "#include <stdlib.h>\n"
        "void f(/*@only@*/ char *p, int c) { if (c) { free(p); } }",
        NOIMP,
    ),
    MessageCode.UNIQUE_ALIAS: (
        "extern void copy(/*@unique@*/ /*@out@*/ char *d, char *s);\n"
        "void f(char *a, char *b) { copy(a, b); }",
        NOIMP,
    ),
    MessageCode.TEMP_ALIAS: (
        "extern char *registry;\n"
        "void f(/*@temp@*/ char *p) { registry = p; }",
        NOIMP,
    ),
    MessageCode.OBSERVER_MODIFIED: (
        "extern /*@observer@*/ char *peek(void);\n"
        "void f(void) { char *p = peek(); p[0] = 'x'; }",
        NOIMP,
    ),
    MessageCode.ANNOTATION_PROBLEM: (
        "extern /*@null@*/ /*@notnull@*/ char *p;", NOIMP,
    ),
    MessageCode.GLOBAL_RELEASED: (
        "#include <stdlib.h>\nextern /*@only@*/ char *g;\n"
        "void f(void) { free(g); }",
        NOIMP,
    ),
    MessageCode.GLOBAL_UNDEFINED: (
        "extern int g;\nvoid f(void) /*@globals undef g@*/ { }", NOIMP,
    ),
    MessageCode.RET_VAL_IGNORED: (
        "extern int compute(void);\nvoid f(void) { compute(); }",
        Flags.from_args(["-allimponly", "+retvalother"]),
    ),
    MessageCode.MODIFIES: (
        "extern int g;\nvoid f(void) /*@modifies nothing@*/ { g = 1; }",
        NOIMP,
    ),
    MessageCode.ARRAY_BOUNDS: (
        "void f(void) { int a[4]; a[5] = 1; }", NOIMP,
    ),
    MessageCode.UNINIT_FIELD: (
        "struct s { int x; int y; };\n"
        "int f(void) { struct s v; v.x = 1; return v.y; }",
        NOIMP,
    ),
    MessageCode.DOUBLE_RELEASE: (
        "#include <stdlib.h>\n"
        "void f(/*@only@*/ char *p) { char *q; q = p; free(p); free(q); }",
        NOIMP,
    ),
    MessageCode.PARSE_ERROR: (
        "int broken(int x) { return x + ; }", NOIMP,
    ),
}


#: INTERNAL_ERROR cannot be triggered from well-defined source alone (it
#: reports contained checker bugs); it is produced below by fault
#: injection instead of a source snippet.
SOURCE_PRODUCIBLE = set(MessageCode) - {MessageCode.INTERNAL_ERROR}


class TestCatalogComplete:
    def test_every_code_has_a_snippet(self):
        assert set(CATALOG) == SOURCE_PRODUCIBLE

    @pytest.mark.parametrize(
        "code", sorted(SOURCE_PRODUCIBLE, key=lambda c: c.slug)
    )
    def test_snippet_produces_its_code(self, code):
        source, flags = CATALOG[code]
        result = check_source(source, "catalog.c", flags=flags)
        assert code in [m.code for m in result.messages], (
            f"{code.slug}: got "
            f"{[(m.code.slug, m.text) for m in result.messages]}"
        )

    @pytest.mark.parametrize(
        "code", sorted(SOURCE_PRODUCIBLE, key=lambda c: c.slug)
    )
    def test_every_code_is_flag_controlled(self, code):
        assert code.flag in FLAG_REGISTRY
        source, flags = CATALOG[code]
        silenced = flags.with_flag(code.flag, False)
        result = check_source(source, "catalog.c", flags=silenced)
        assert code not in [m.code for m in result.messages]


class TestInternalErrorCode:
    """INTERNAL_ERROR, exercised through fault injection."""

    SOURCE = "int f(int x) { return x; }"

    def _inject(self, monkeypatch):
        from repro.analysis.checker import FunctionChecker

        def boom(self):
            raise ZeroDivisionError("injected fault")

        monkeypatch.setattr(FunctionChecker, "check", boom)

    def test_produced_under_fault_injection(self, monkeypatch, tmp_path):
        self._inject(monkeypatch)
        result = check_source(
            self.SOURCE, "catalog.c", flags=NOIMP,
            crash_dir=str(tmp_path / "crashes"),
        )
        assert MessageCode.INTERNAL_ERROR in [m.code for m in result.messages]

    def test_flag_controlled(self, monkeypatch, tmp_path):
        assert MessageCode.INTERNAL_ERROR.flag in FLAG_REGISTRY
        self._inject(monkeypatch)
        silenced = NOIMP.with_flag(MessageCode.INTERNAL_ERROR.flag, False)
        result = check_source(
            self.SOURCE, "catalog.c", flags=silenced,
            crash_dir=str(tmp_path / "crashes"),
        )
        assert MessageCode.INTERNAL_ERROR not in [
            m.code for m in result.messages
        ]
        # Suppressing the message never suppresses the accounting: the
        # run still knows it was degraded by a contained crash.
        assert result.internal_errors == 1
        assert result.degraded
