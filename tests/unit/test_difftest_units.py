"""Unit tests for the difftest subsystem's pieces in isolation."""

import json

import pytest

from repro.bench.seeding import GUARD_CLEAN_IDIOMS, BugKind, guard_clean_body
from repro.difftest.corpus import (
    SCHEMA_VERSION,
    CorpusCase,
    CorpusError,
    load_case,
    load_corpus,
    replay_case,
    save_case,
)
from repro.difftest.mutations import (
    CAMPAIGN_CLASSES,
    MutationEngine,
    MutationError,
    PlantedBug,
    function_span,
)
from repro.difftest.runner import DualRunner, DualVerdict, ScenarioRun, StaticVerdict
from repro.difftest.verdict import (
    CORROBORATED_BY,
    STATIC_EQUIVALENTS,
    ConfusionMatrix,
    render_matrix,
    score_verdict,
)
from repro.runtime.heap import RuntimeEventKind
from repro.messages.message import MEMORY_ERROR_CLASSES, MessageCode


# ---------------------------------------------------------------------------
# class vocabulary
# ---------------------------------------------------------------------------


def test_campaign_classes_cover_runtime_event_kinds():
    # Every run-time event class is plantable and scored; the campaign
    # additionally plants the static refinement classes, whose run-time
    # witness is a coarser event class (partial-struct field read ->
    # uninitialized read, aliased double free -> double free).
    runtime_classes = {k.error_class for k in RuntimeEventKind}
    assert runtime_classes <= set(CAMPAIGN_CLASSES)
    assert set(CAMPAIGN_CLASSES) - runtime_classes == {
        "uninit-field-read",
        "double-free-alias",
    }


def test_every_bug_kind_maps_to_a_campaign_class():
    for kind in BugKind:
        assert kind.error_class in CAMPAIGN_CLASSES


def test_static_class_map_targets_campaign_classes():
    assert set(MEMORY_ERROR_CLASSES.values()) <= set(CAMPAIGN_CLASSES)
    assert MessageCode.NULL_DEREF.error_class == "null-dereference"
    assert MessageCode.PARSE_ERROR.error_class is None


def test_equivalence_tables_are_symmetric():
    # a planted double free's static witness is the use-after-free code,
    # and a use-after-free claim is corroborated by an observed double free
    assert "use-after-free" in STATIC_EQUIVALENTS["double-free"]
    assert "double-free" in CORROBORATED_BY["use-after-free"]
    for cls in CAMPAIGN_CLASSES:
        assert cls in STATIC_EQUIVALENTS[cls]
        assert cls in CORROBORATED_BY[cls]


# ---------------------------------------------------------------------------
# mutation engine
# ---------------------------------------------------------------------------


def test_function_span_tracks_brace_depth():
    text = "int x;\nvoid f(void)\n{\n  if (p) { free(p); }\n  x = 1;\n}\nint y;"
    header, open_at, close_at = function_span(text, "f")
    assert (header, open_at, close_at) == (1, 2, 5)


def test_function_span_missing_function_raises():
    with pytest.raises(MutationError):
        function_span("int x;\n", "nope")


def test_variant_is_deterministic_per_seed():
    engine = MutationEngine()
    a, b = engine.variant(3), engine.variant(3)
    assert a.files == b.files
    assert a.planted == b.planted
    assert a.window_lines == b.window_lines


def test_clean_every_mixes_control_variants():
    engine = MutationEngine(clean_every=4)
    kinds = [engine.variant(seed).is_clean for seed in range(8)]
    assert kinds == [False, False, False, True, False, False, False, True]


def test_planted_window_contains_the_bug_lines():
    engine = MutationEngine()
    variant = engine.variant(0)
    assert variant.planted is not None
    driver = variant.files["driver.c"].split("\n")
    window = driver[variant.planted.line_start - 1 : variant.planted.line_end]
    assert [l for l in window] == list(variant.window_lines)


def test_rebuild_variant_respects_new_window():
    engine = MutationEngine()
    variant = engine.variant(0)
    reduced = list(variant.window_lines)[:1]
    rebuilt = engine.rebuild_variant(variant, reduced)
    assert list(rebuilt.window_lines) == reduced
    assert rebuilt.planted is not None
    driver = rebuilt.files["driver.c"].split("\n")
    start, end = rebuilt.planted.line_start, rebuilt.planted.line_end
    assert driver[start - 1 : end] == reduced


def test_clean_controls_cycle_through_guard_idioms():
    engine = MutationEngine(clean_every=4)
    # Clean ordinals 0..4 map to: unmutated, then each guard idiom.
    markers = {
        "ternary-guard-and": "&& r->count > 0) ? r->count : 0",
        "ternary-truth": "r ? r->count : 0",
        "assign-cond-eq": "malloc(4)) == NULL",
        "assign-cond-ne": "malloc(4)) != NULL",
        "index-loop-bounded": "a[i] = i * 2",
        "struct-full-init": "local.count = 4;",
        "alias-single-free": "free(q);",
    }
    clean_seeds = [4 * (k + 1) - 1 for k in range(1 + len(GUARD_CLEAN_IDIOMS))]
    plain = engine.variant(clean_seeds[0])
    assert plain.is_clean
    assert not any(m in plain.files["driver.c"] for m in markers.values())
    for ordinal, idiom in enumerate(GUARD_CLEAN_IDIOMS, start=1):
        variant = engine.variant(clean_seeds[ordinal])
        assert variant.is_clean
        assert markers[idiom] in variant.files["driver.c"], idiom
        # The window is the spliced body, ready for the shrinker.
        assert any(markers[idiom] in line for line in variant.window_lines)


def test_guard_clean_controls_are_clean_for_both_detectors():
    engine = MutationEngine(clean_every=4)
    runner = DualRunner()
    for ordinal in range(1, 1 + len(GUARD_CLEAN_IDIOMS)):
        variant = engine.variant(4 * (ordinal + 1) - 1)
        assert variant.is_clean
        static = runner.check_static(variant)
        assert static.messages == [], variant.seed
        run = runner.run_scenario(variant, variant.target)
        assert run.failure is None and run.event_kinds == [], variant.seed


def test_rebuild_variant_of_guard_clean_control():
    engine = MutationEngine(clean_every=4)
    variant = engine.variant(7)   # first guard-idiom control
    reduced = list(variant.window_lines)[:2]
    rebuilt = engine.rebuild_variant(variant, reduced)
    assert rebuilt.is_clean
    assert list(rebuilt.window_lines) == reduced


def test_guard_clean_body_rejects_unknown_idiom():
    with pytest.raises(ValueError):
        guard_clean_body("no-such-idiom", 0, "f")


def test_variants_cover_every_bug_kind():
    engine = MutationEngine()
    seen = set()
    for seed in range(60):
        variant = engine.variant(seed)
        if variant.planted is not None:
            seen.add(variant.planted.kind)
    assert seen == set(BugKind)


# ---------------------------------------------------------------------------
# verdict scoring
# ---------------------------------------------------------------------------


def _verdict(
    planted=None,
    window_hit=False,
    static_classes=None,
    oracle_classes=(),
    runs=(),
    tested=(),
    parse_errors=0,
    oracle_failure=None,
):
    return DualVerdict(
        seed=7,
        planted_class=planted,
        static=StaticVerdict(
            messages=[],
            classes=dict(static_classes or {}),
            window_hit=window_hit,
            parse_errors=parse_errors,
        ),
        oracle=ScenarioRun(
            scenario="scenario_0_0",
            event_classes=sorted(oracle_classes),
            failure=oracle_failure,
        ),
        runs=list(runs),
        tested=list(tested),
    )


def test_score_confirmed_plant_detected_is_tp():
    sm, rm = ConfusionMatrix("static"), ConfusionMatrix("runtime")
    run = ScenarioRun(scenario="scenario_0_0", event_classes=["leak"])
    outcome = score_verdict(
        _verdict(
            planted="leak", window_hit=True,
            static_classes={"leak": 1}, oracle_classes=["leak"],
            runs=[run], tested=["scenario_0_0"],
        ),
        sm, rm,
    )
    assert not outcome.discrepancies
    assert sm.at("leak").tp == 1 and sm.at("leak").fn == 0
    assert rm.at("leak").tp == 1


def test_score_missed_plant_is_static_fn_discrepancy():
    sm, rm = ConfusionMatrix("static"), ConfusionMatrix("runtime")
    outcome = score_verdict(
        _verdict(planted="leak", window_hit=False, oracle_classes=["leak"]),
        sm, rm,
    )
    assert sm.at("leak").fn == 1
    assert [d.direction for d in outcome.discrepancies] == ["static-fn"]


def test_score_uncorroborated_claim_is_static_fp():
    sm, rm = ConfusionMatrix("static"), ConfusionMatrix("runtime")
    outcome = score_verdict(
        _verdict(static_classes={"null-dereference": 2}), sm, rm,
    )
    assert sm.at("null-dereference").fp == 1
    assert [d.direction for d in outcome.discrepancies] == ["static-fp"]


def test_score_corroborated_secondary_claim_is_not_fp():
    # an offset free really does also leak: oracle corroborates both
    sm, rm = ConfusionMatrix("static"), ConfusionMatrix("runtime")
    outcome = score_verdict(
        _verdict(
            planted="invalid-free", window_hit=True,
            static_classes={"invalid-free": 1, "leak": 1},
            oracle_classes=["invalid-free", "leak"],
        ),
        sm, rm,
    )
    assert not outcome.discrepancies
    assert sm.at("leak").fp == 0


def test_score_double_free_witnessed_by_uaf_message_is_runtime_tp():
    sm, rm = ConfusionMatrix("static"), ConfusionMatrix("runtime")
    run = ScenarioRun(
        scenario="scenario_0_0", event_classes=["use-after-free"],
    )
    score_verdict(
        _verdict(
            planted="double-free", window_hit=True,
            static_classes={"use-after-free": 1},
            oracle_classes=["double-free", "use-after-free"],
            runs=[run], tested=["scenario_0_0"],
        ),
        sm, rm,
    )
    assert rm.at("double-free").tp == 1


def test_score_untested_scenario_is_runtime_fn():
    sm, rm = ConfusionMatrix("static"), ConfusionMatrix("runtime")
    score_verdict(
        _verdict(
            planted="leak", window_hit=True,
            static_classes={"leak": 1}, oracle_classes=["leak"],
            runs=[], tested=[],           # the bug's test was never written
        ),
        sm, rm,
    )
    assert rm.at("leak").fn == 1 and rm.at("leak").tp == 0


def test_score_unconfirmed_plant_is_excluded_with_note():
    sm, rm = ConfusionMatrix("static"), ConfusionMatrix("runtime")
    outcome = score_verdict(
        _verdict(planted="leak", window_hit=False, oracle_classes=[]),
        sm, rm,
    )
    assert not outcome.discrepancies
    assert sm.total().fn == 0
    assert any("plant failure" in n for n in outcome.notes)


def test_score_degraded_static_run_is_excluded():
    sm, rm = ConfusionMatrix("static"), ConfusionMatrix("runtime")
    outcome = score_verdict(
        _verdict(planted="leak", oracle_classes=["leak"], parse_errors=1),
        sm, rm,
    )
    assert not outcome.discrepancies
    assert sm.total().fn == 0
    assert any("degraded" in n for n in outcome.notes)


def test_score_oracle_failure_is_excluded():
    sm, rm = ConfusionMatrix("static"), ConfusionMatrix("runtime")
    outcome = score_verdict(
        _verdict(planted="leak", oracle_failure="StepBudgetExceeded: ..."),
        sm, rm,
    )
    assert not outcome.discrepancies
    assert any("oracle" in n for n in outcome.notes)


def test_render_matrix_has_a_row_per_class():
    text = render_matrix(
        ConfusionMatrix("static"), ConfusionMatrix("runtime"), 0.5
    )
    for cls in CAMPAIGN_CLASSES:
        assert cls in text
    assert "overall" in text
    assert "50%" in text


# ---------------------------------------------------------------------------
# corpus round-trip and replay
# ---------------------------------------------------------------------------


def _small_case(tmp_path):
    engine = MutationEngine()
    runner = DualRunner()
    variant = engine.variant(0)
    static = runner.check_static(variant)
    oracle = runner.run_scenario(variant, variant.target)
    return CorpusCase(
        seed=variant.seed,
        direction="static-fn",
        error_class=variant.planted.error_class,
        detail="synthetic test case",
        scenario=variant.target,
        window=variant.window_lines,
        files=variant.files,
        planted=variant.planted,
        expected_static_classes=dict(static.classes),
        expected_static_window_hit=static.window_hit,
        expected_oracle_classes=tuple(oracle.event_classes),
    )


def test_corpus_case_round_trips_through_json(tmp_path):
    case = _small_case(tmp_path)
    path = save_case(case, str(tmp_path))
    loaded = load_case(path)
    assert loaded.to_dict() == case.to_dict()
    assert loaded.planted == case.planted
    assert load_corpus(str(tmp_path))[0].name == case.name


def test_corpus_rejects_unknown_schema(tmp_path):
    case = _small_case(tmp_path)
    data = case.to_dict()
    data["schema"] = SCHEMA_VERSION + 1
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(data))
    with pytest.raises(CorpusError):
        load_case(str(path))


def test_corpus_load_missing_file_raises(tmp_path):
    with pytest.raises(CorpusError):
        load_case(str(tmp_path / "absent.json"))
    assert load_corpus(str(tmp_path / "absent-dir")) == []


def test_replay_reproduces_a_fresh_recording(tmp_path):
    case = _small_case(tmp_path)
    report = replay_case(case, DualRunner())
    assert report.reproduced, report.problems


def test_replay_detects_divergence(tmp_path):
    case = _small_case(tmp_path)
    case.expected_static_window_hit = not case.expected_static_window_hit
    report = replay_case(case, DualRunner())
    assert not report.reproduced
    assert any("window hit" in p for p in report.problems)


def test_planted_bug_round_trip():
    bug = PlantedBug(
        kind=BugKind.USE_AFTER_FREE, error_class="use-after-free",
        scenario="scenario_0_0", file="driver.c",
        line_start=10, line_end=12,
    )
    assert PlantedBug.from_dict(bug.to_dict()) == bug
