"""Tests for symbol-table construction and the annotated standard library."""

from repro.annotations.kinds import AllocAnn, DefAnn, NullAnn
from repro.core.api import Checker
from repro.frontend.symtab import SymbolTable


def symtab_of(source: str) -> SymbolTable:
    parsed = Checker().parse_unit(source, "s.c")
    st = SymbolTable()
    st.add_unit(parsed.unit)
    return st


class TestFunctions:
    def test_prototype_collected(self):
        st = symtab_of("extern int add(int a, int b);")
        sig = st.function("add")
        assert sig is not None
        assert not sig.has_definition
        assert [p.name for p in sig.params] == ["a", "b"]

    def test_definition_wins_over_prototype(self):
        st = symtab_of(
            "extern int f(int x);\nint f(int x) { return x; }"
        )
        assert st.function("f").has_definition

    def test_annotations_merge_from_prototype(self):
        st = symtab_of(
            "extern /*@null@*/ char *pick(/*@temp@*/ char *s);\n"
            "char *pick(char *s) { return s; }"
        )
        sig = st.function("pick")
        assert sig.ret_annotations.null is NullAnn.NULL
        assert sig.params[0].annotations.alloc is AllocAnn.TEMP

    def test_variadic(self):
        st = symtab_of("extern int logf2(char *fmt, ...);")
        assert st.function("logf2").variadic

    def test_globals_clause_on_prototype(self):
        st = symtab_of("extern int g;\nextern void f(void) /*@globals g@*/;")
        assert [u.name for u in st.function("f").globals_list] == ["g"]


class TestGlobals:
    def test_global_collected(self):
        st = symtab_of("extern /*@only@*/ char *gname;")
        gvar = st.global_var("gname")
        assert gvar is not None
        assert gvar.annotations.alloc is AllocAnn.ONLY

    def test_redeclaration_keeps_annotations(self):
        st = symtab_of(
            "extern /*@null@*/ char *g;\nchar *g;"
        )
        assert st.global_var("g").annotations.null is NullAnn.NULL

    def test_initializer_flag(self):
        st = symtab_of("int x = 3;")
        assert st.global_var("x").has_initializer

    def test_typedef_not_a_global(self):
        st = symtab_of("typedef int myint;")
        assert st.global_var("myint") is None


class TestAnnotatedStdlib:
    """The prelude's specs drive the checker; verify the paper's exact
    annotations arrived (section 4)."""

    def stdlib(self) -> SymbolTable:
        result = Checker().check_sources({"p.c": "int probe;"})
        assert result.symtab is not None
        return result.symtab

    def test_malloc_spec(self):
        sig = self.stdlib().function("malloc")
        ann = sig.ret_annotations
        assert ann.null is NullAnn.NULL
        assert ann.definition is DefAnn.OUT
        assert ann.alloc is AllocAnn.ONLY

    def test_free_spec(self):
        sig = self.stdlib().function("free")
        ann = sig.params[0].annotations
        assert ann.null is NullAnn.NULL
        assert ann.definition is DefAnn.OUT
        assert ann.alloc is AllocAnn.ONLY

    def test_strcpy_spec(self):
        sig = self.stdlib().function("strcpy")
        s1 = sig.params[0].annotations
        assert s1.definition is DefAnn.OUT
        assert s1.returned
        assert s1.unique

    def test_fopen_fclose(self):
        st = self.stdlib()
        assert st.function("fopen").ret_annotations.null is NullAnn.NULL
        assert st.function("fopen").ret_annotations.alloc is AllocAnn.ONLY
        assert st.function("fclose").params[0].annotations.alloc is AllocAnn.ONLY

    def test_getenv_observer(self):
        sig = self.stdlib().function("getenv")
        assert sig.ret_annotations.exposure is not None

    def test_printf_variadic(self):
        assert self.stdlib().function("printf").variadic

    def test_headers_merge_with_prelude(self):
        # Including <stdlib.h> redeclares malloc; the merge keeps one
        # signature with the full annotations.
        result = Checker().check_sources(
            {"m.c": "#include <stdlib.h>\nint ok(void) { return 1; }\n"}
        )
        assert result.messages == []
        sig = result.symtab.function("malloc")
        assert sig.ret_annotations.alloc is AllocAnn.ONLY


class TestFileLeakChecking:
    def test_unclosed_file_is_a_leak(self):
        src = """#include <stdio.h>
        void f(void) {
            FILE *fp = fopen("data", "r");
            if (fp == NULL) { return; }
            (void) getc(fp);
        }"""
        result = Checker().check_sources({"f.c": src})
        assert any("leak" in m.code.slug for m in result.messages)

    def test_closed_file_is_clean(self):
        src = """#include <stdio.h>
        void f(void) {
            FILE *fp = fopen("data", "r");
            if (fp == NULL) { return; }
            (void) getc(fp);
            (void) fclose(fp);
        }"""
        result = Checker().check_sources({"f.c": src})
        assert result.messages == []
