"""Tests for the benchmark substrate: generator, seeding, db example."""

from repro import Checker, Flags
from repro.bench.dbexample import FINAL_STAGE, annotation_census, db_sources
from repro.bench.generator import (
    generate_program,
    generate_program_of_size,
    strip_annotations,
)
from repro.bench.seeding import (
    BugKind,
    RUNTIME_SIGNATURES,
    STATIC_SIGNATURES,
    function_line_ranges,
    generate_seeded_program,
    match_static_detections,
)

NOIMP = Flags.from_args(["-allimponly"])


class TestGenerator:
    def test_deterministic(self):
        a = generate_program(modules=2, seed=7)
        b = generate_program(modules=2, seed=7)
        assert a.files == b.files

    def test_different_seeds_differ(self):
        a = generate_program(modules=2, seed=7)
        b = generate_program(modules=2, seed=8)
        assert a.files != b.files

    def test_checks_clean(self):
        program = generate_program(modules=2, filler_functions=3,
                                   scenarios_per_module=2)
        result = Checker().check_sources(dict(program.files))
        assert result.messages == []

    def test_size_targeting(self):
        for target in (800, 2500):
            program = generate_program_of_size(target)
            assert abs(program.loc - target) < target * 0.4

    def test_strip_annotations(self):
        text = "extern /*@null@*/ /*@only@*/ char *g;\n/* keep me */\n"
        stripped = strip_annotations(text)
        assert "/*@" not in stripped
        assert "keep me" in stripped
        assert "char *g;" in stripped

    def test_strip_annotations_strips_control_comments(self):
        # control comments are annotations too: an unannotated program
        # must not retain suppressions or checking-mode switches
        text = (
            "/*@ignore@*/\nchar *p = q;\n/*@end@*/\n"
            "/*@access mstring@*/\nint x;\n/*@-null@*/\nint y;\n"
        )
        stripped = strip_annotations(text)
        assert "/*@" not in stripped
        assert "char *p = q;" in stripped
        assert "int x;" in stripped and "int y;" in stripped

    def test_strip_annotations_preserves_line_structure(self):
        # line numbers in messages must stay comparable before and after
        # stripping, including for multi-line annotation payloads
        text = "int a;\n/*@null@*/ char *b;\n/*@access\n  mstring@*/\nint c;\n"
        stripped = strip_annotations(text)
        assert stripped.count("\n") == text.count("\n")
        assert stripped.splitlines()[4] == "int c;"

    def test_strip_annotations_handles_stars_and_ats_in_payload(self):
        text = "/*@only@*/ char **pp;\n/*@observer *p @*/ int z;\n"
        stripped = strip_annotations(text)
        assert "/*@" not in stripped and "@*/" not in stripped
        assert "char **pp;" in stripped
        assert "int z;" in stripped

    def test_strip_annotations_is_idempotent_and_total(self):
        for text in ("", "int x;\n", "/*@null@*/", "/* plain */ /*@out@*/"):
            once = strip_annotations(text)
            assert strip_annotations(once) == once
            assert "/*@" not in once

    def test_stripped_program_draws_messages(self):
        program = generate_program(modules=2, filler_functions=1,
                                   scenarios_per_module=1)
        stripped = program.stripped()
        result = Checker().check_sources(dict(stripped.files))
        assert len(result.messages) > 0

    def test_runs_clean_under_interpreter(self):
        from repro.runtime.interp import run_program

        program = generate_program(modules=1, filler_functions=1,
                                   scenarios_per_module=1)
        result = run_program(dict(program.files), max_steps=2_000_000)
        assert result.exit_code == 0
        assert result.events == []
        assert result.leaked_blocks == 0


class TestSeeding:
    def test_signature_tables_total(self):
        for kind in BugKind:
            assert kind in STATIC_SIGNATURES
            assert kind in RUNTIME_SIGNATURES

    def test_one_bug_per_scenario(self):
        seeded = generate_seeded_program(modules=2, bugs_per_kind=1)
        scenario_names = [b.scenario for b in seeded.bugs]
        assert len(scenario_names) == len(set(scenario_names))
        assert len(seeded.bugs) == len(BugKind)

    def test_static_finds_all_seeded_bugs(self):
        seeded = generate_seeded_program(modules=2, bugs_per_kind=1)
        result = Checker().check_sources(dict(seeded.program.files))
        ranges = function_line_ranges(result.units)
        found = match_static_detections(seeded.bugs, result.messages, ranges)
        missing = [b.kind.value for b in seeded.bugs if not found[b.bug_id]]
        assert missing == []

    def test_clean_scenarios_stay_clean(self):
        seeded = generate_seeded_program(modules=2, bugs_per_kind=1,
                                         clean_scenarios=4)
        result = Checker().check_sources(dict(seeded.program.files))
        ranges = function_line_ranges(result.units)
        spans = [ranges[n] for n in seeded.clean_scenarios]
        hits = [
            m for m in result.messages
            if any(f == m.location.filename and s <= m.location.line <= e
                   for f, s, e in spans)
        ]
        assert hits == []

    def test_subset_of_kinds(self):
        seeded = generate_seeded_program(
            modules=1, bugs_per_kind=2, kinds=[BugKind.LEAK]
        )
        assert all(b.kind is BugKind.LEAK for b in seeded.bugs)
        assert len(seeded.bugs) == 2


class TestDbExample:
    def test_stages_render_distinct_programs(self):
        texts = [tuple(sorted(db_sources(s).items()))
                 for s in range(FINAL_STAGE + 1)]
        assert len(set(texts)) == FINAL_STAGE + 1

    def test_stage0_has_no_annotations(self):
        for text in db_sources(0).values():
            assert "/*@" not in text

    def test_final_stage_checks_clean_under_both_flag_settings(self):
        files = db_sources(FINAL_STAGE)
        assert Checker(flags=NOIMP).check_sources(files).messages == []
        assert Checker().check_sources(files).messages == []

    def test_intermediate_stages_have_messages(self):
        for stage in range(FINAL_STAGE):
            files = db_sources(stage)
            result = Checker().check_sources(files)
            assert len(result.messages) > 0, f"stage {stage} unexpectedly clean"

    def test_census_monotone(self):
        totals = [annotation_census(s).total for s in range(FINAL_STAGE + 1)]
        assert totals == sorted(totals)
        assert totals[0] == 0

    def test_census_composition_matches_paper_shape(self):
        census = annotation_census(FINAL_STAGE)
        # Paper: 15 = 1 null + 1 out + 13 only (plus the unique of §6).
        assert census.only >= census.null  # only dominates
        assert census.out == 1
        assert census.unique == 1

    def test_driver_leaks_present_before_final_stage(self):
        result = Checker(flags=NOIMP).check_sources(db_sources(3))
        driver_msgs = [
            m for m in result.messages if m.location.filename == "drive.c"
        ]
        assert len(driver_msgs) == 6  # the paper's six driver leaks

    def test_db_program_runs_correctly(self):
        from repro.runtime.interp import run_program

        result = run_program(db_sources(FINAL_STAGE), max_steps=5_000_000)
        assert result.exit_code == 0
        assert "hired 5" in result.output
        assert "alice" in result.output
        # section 7 residue: storage reachable from globals leaks at exit
        assert result.leaked_blocks > 0
