"""Unit tests for shard partitioning (repro.incremental.shard)."""

import pytest

from repro.incremental.shard import (
    SHARD_OVERSPLIT,
    STRATEGIES,
    Shard,
    partition_units,
    shard_balance,
    shard_count_for,
)


def _flat(shards):
    return sorted(i for s in shards for i in s.indices)


class TestPartition:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("count,shard_count", [
        (1, 1), (2, 1), (5, 3), (10, 4), (7, 20), (48, 8),
    ])
    def test_true_partition(self, strategy, count, shard_count):
        shards = partition_units(count, shard_count, strategy)
        assert _flat(shards) == list(range(count))
        assert all(len(s) > 0 for s in shards)
        assert len(shards) <= min(shard_count, count)

    def test_empty_input(self):
        assert partition_units(0, 4) == []

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="unknown shard strategy"):
            partition_units(4, 2, "alphabetical")

    def test_interface_clusters_stay_together(self):
        keys = ["a", "b", "a", "b", "a", "c"]
        shards = partition_units(
            len(keys), 3, "interface", cluster_keys=keys
        )
        assert _flat(shards) == list(range(len(keys)))
        for key in set(keys):
            members = {i for i, k in enumerate(keys) if k == key}
            homes = [
                s.index for s in shards if members & set(s.indices)
            ]
            assert len(set(homes)) == 1, f"cluster {key} split across {homes}"

    def test_size_strategy_balances_weights(self):
        # One heavy unit and many light ones: LPT puts the heavy unit
        # alone and spreads the rest.
        weights = [100, 1, 1, 1, 1, 1]
        shards = partition_units(6, 2, "size", weights=weights)
        loads = sorted(
            sum(weights[i] for i in s.indices) for s in shards
        )
        assert loads == [5, 100]

    def test_round_robin_is_modular(self):
        shards = partition_units(7, 3, "round-robin")
        by_index = {s.index: s.indices for s in shards}
        assert by_index[0] == (0, 3, 6)
        assert by_index[1] == (1, 4)
        assert by_index[2] == (2, 5)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_deterministic(self, strategy):
        keys = [f"k{i % 5}" for i in range(23)]
        weights = [(i * 7) % 13 + 1 for i in range(23)]
        first = partition_units(23, 6, strategy, keys, weights)
        second = partition_units(23, 6, strategy, list(keys), list(weights))
        assert first == second

    def test_indices_ascend_within_each_shard(self):
        shards = partition_units(
            12, 4, "interface",
            cluster_keys=[f"k{i % 3}" for i in range(12)],
        )
        for s in shards:
            assert list(s.indices) == sorted(s.indices)


class TestShardCount:
    def test_oversplits_per_worker(self):
        assert shard_count_for(2, 100) == 2 * SHARD_OVERSPLIT

    def test_never_more_shards_than_units(self):
        assert shard_count_for(4, 3) == 3

    def test_at_least_one(self):
        assert shard_count_for(1, 1) == 1


class TestBalance:
    def test_even_partition_is_one(self):
        shards = [Shard(0, (0, 1)), Shard(1, (2, 3))]
        assert shard_balance(shards, None) == 1.0

    def test_skew_shows_up(self):
        shards = [Shard(0, (0, 1, 2)), Shard(1, (3,))]
        assert shard_balance(shards, None) == 1.5

    def test_weighted(self):
        shards = [Shard(0, (0,)), Shard(1, (1,))]
        assert shard_balance(shards, [30, 10]) == 1.5

    def test_empty(self):
        assert shard_balance([], None) == 1.0
