"""Tests for the CLI driver and interface libraries."""

import pytest

from repro.core.api import Checker
from repro.driver.cli import CliError, run
from repro.driver.library import (
    LibraryError,
    load_library,
    merge_symtabs,
    save_library,
)
from repro.frontend.symtab import SymbolTable

SAMPLE = """extern /*@only@*/ char *gname;

void setName (/*@temp@*/ char *pname)
{
  gname = pname;
}
"""

CLEAN = "int f(int x) { return x + 1; }\n"


@pytest.fixture
def sample_file(tmp_path):
    path = tmp_path / "sample.c"
    path.write_text(SAMPLE)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    return str(path)


class TestCli:
    def test_reports_messages_and_exit_status(self, sample_file):
        status, output = run([sample_file])
        assert status == 1
        assert "Only storage gname not released" in output
        assert "2 code warning(s)" in output

    def test_clean_file_exits_zero(self, clean_file):
        status, output = run([clean_file])
        assert status == 0
        assert "0 code warning(s)" in output

    def test_flag_settings(self, sample_file):
        status, _ = run(["-mustfree", "-memtrans", sample_file])
        assert status == 0

    def test_gcmode(self, sample_file):
        status, output = run(["+gcmode", sample_file])
        assert "not released" not in output

    def test_quiet(self, clean_file):
        _, output = run(["-quiet", clean_file])
        assert "warning" not in output

    def test_stats(self, sample_file):
        _, output = run(["-stats", sample_file])
        assert "functions checked: 1" in output
        assert "leak-overwrite" in output

    def test_help(self):
        status, output = run(["--help"])
        assert status == 0
        assert "pylclint" in output

    def test_flags_listing(self):
        status, output = run(["-flags"])
        assert status == 0
        assert "allimponly" in output
        assert "gcmode" in output

    def test_no_input_files(self):
        with pytest.raises(CliError):
            run([])

    def test_unknown_flag(self, clean_file):
        with pytest.raises(CliError):
            run(["-definitelynotaflag", clean_file])

    def test_dot_output(self, clean_file):
        status, output = run(["-dot", "f", clean_file])
        assert 'digraph "f"' in output

    def test_dot_unknown_function(self, clean_file):
        with pytest.raises(CliError):
            run(["-dot", "nonexistent", clean_file])

    def test_headers_on_command_line(self, tmp_path):
        (tmp_path / "api.h").write_text("extern int bump(int x);\n")
        (tmp_path / "use.c").write_text(
            '#include "api.h"\nint g(void) { return bump(1); }\n'
        )
        status, _ = run([str(tmp_path / "use.c"), str(tmp_path / "api.h")])
        assert status == 0

    def test_many_warnings_still_exit_1(self, tmp_path):
        # The exit code signals *that* there are warnings, not how many:
        # counts no longer leak into the status (the old cap-at-125
        # scheme collided with shell signal statuses).
        lines = ["#include <stdlib.h>"]
        for i in range(130):
            lines.append(f"void f{i}(char *p) {{ free(p); }}")
        path = tmp_path / "many.c"
        path.write_text("\n".join(lines))
        status, _ = run(["-quiet", str(path)])
        assert status == 1


class TestLibraries:
    def test_round_trip(self, tmp_path):
        result = Checker().check_sources(
            {"m.c": "extern /*@null@*/ char *gp;\nint helper(int v) { return v; }\n"}
        )
        path = str(tmp_path / "m.lcd")
        save_library(result.symtab, path)
        loaded = load_library(path)
        assert "helper" in loaded.functions
        assert "gp" in loaded.globals
        assert loaded.globals["gp"].annotations.null is not None

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.lcd"
        path.write_bytes(b"not a library")
        with pytest.raises(LibraryError):
            load_library(str(path))

    def test_merge_prefers_definitions(self):
        proto = Checker().check_sources({"a.c": "extern int f(int);\n"})
        defn = Checker().check_sources({"b.c": "int f(int x) { return x; }\n"})
        base = SymbolTable()
        merge_symtabs(base, proto.symtab)
        merge_symtabs(base, defn.symtab)
        assert base.functions["f"].has_definition

    def test_cross_module_checking_with_library(self, tmp_path):
        # Module A defines an allocator with an only return; module B
        # misuses it. Checking B alone with A's library finds the bug.
        mod_a = """#include <stdlib.h>
        /*@null@*/ /*@only@*/ char *mk(void) { return (char *) malloc(4); }
        """
        result_a = Checker().check_sources({"a.c": mod_a})
        lib = str(tmp_path / "a.lcd")
        save_library(result_a.symtab, lib)

        checker = Checker()
        checker.load_library(lib)
        result_b = checker.check_units(
            [checker.parse_unit(
                "void use(void) { char *p = mk(); if (p) { *p = 'x'; } }",
                "b.c",
            )]
        )
        assert any("leak" in m.code.slug for m in result_b.messages)

    def test_cli_dump_and_load(self, tmp_path, clean_file):
        lib = str(tmp_path / "prog.lcd")
        status, output = run(["-dump", lib, clean_file])
        assert status == 0
        assert "interface library written" in output
        status2, _ = run(["-load", lib, clean_file])
        assert status2 == 0


class TestCliErrorHandling:
    def test_parse_error_becomes_a_message(self, tmp_path):
        bad = tmp_path / "broken.c"
        bad.write_text("int x = ;\nint ok(int v) { return v; }\n")
        status, output = run([str(bad)])
        assert status == 1
        assert "Parse error" in output

    def test_lex_error_is_contained_as_a_message(self, tmp_path):
        # An unlexable file no longer aborts the run: it yields one
        # parse-error message and the batch continues.
        bad = tmp_path / "broken.c"
        bad.write_text('char *s = "unterminated\n')
        ok = tmp_path / "ok.c"
        ok.write_text("#include <stdlib.h>\nvoid f(char *p) { free(p); }\n")
        status, output = run([str(bad), str(ok)])
        assert status == 1
        assert "Cannot parse this file" in output
        assert "implicitly only" in output or "free" in output.lower()

    def test_missing_file_is_a_cli_error(self):
        with pytest.raises(CliError, match="cannot read"):
            run(["/nonexistent/definitely/missing.c"])

    def test_missing_file_never_raises_oserror(self):
        # The regression this pins: a missing input must surface as a
        # clean CliError, not a raw FileNotFoundError traceback.
        try:
            run(["/nonexistent/definitely/missing.c"])
        except CliError:
            pass
        else:  # pragma: no cover
            pytest.fail("expected a CliError")

    def test_non_utf8_file_is_a_cli_error(self, tmp_path):
        path = tmp_path / "latin1.c"
        path.write_bytes(b"int x; /* caf\xe9 */\n")
        with pytest.raises(CliError, match="not a UTF-8 text file"):
            run([str(path)])

    def test_main_returns_2_on_cli_error(self, capsys):
        from repro.driver.cli import main

        status = main(["/nonexistent/missing.c"])
        assert status == 2
        assert "pylclint:" in capsys.readouterr().err

    def test_main_returns_2_on_non_utf8(self, tmp_path, capsys):
        from repro.driver.cli import main

        path = tmp_path / "bad.c"
        path.write_bytes(b"\xff\xfeint x;\n")
        status = main([str(path)])
        assert status == 2
        assert "UTF-8" in capsys.readouterr().err


class TestCliIncrementalOptions:
    def test_jobs_option_parses(self, sample_file):
        status, output = run(["--jobs", "2", sample_file])
        assert status == 1
        assert "Only storage gname not released" in output

    def test_jobs_equals_form(self, sample_file):
        status, _ = run(["--jobs=2", sample_file])
        assert status == 1

    def test_jobs_rejects_garbage(self, sample_file):
        with pytest.raises(CliError, match="--jobs"):
            run(["--jobs", "many", sample_file])
        with pytest.raises(CliError, match="--jobs"):
            run(["--jobs", "0", sample_file])
        with pytest.raises(CliError, match="--jobs"):
            run(["--jobs"])

    def test_cache_dir_option(self, sample_file, tmp_path):
        cache_dir = str(tmp_path / "cache")
        status1, out1 = run(["--cache-dir", cache_dir, sample_file])
        status2, out2 = run(["--cache-dir", cache_dir, sample_file])
        assert (status1, out1) == (status2, out2)
        import os

        assert os.path.isdir(os.path.join(cache_dir, "results"))

    def test_no_cache_wins(self, sample_file, tmp_path):
        cache_dir = str(tmp_path / "cache")
        status, _ = run(["--cache-dir", cache_dir, "--no-cache", sample_file])
        assert status == 1
        import os

        assert not os.path.isdir(os.path.join(cache_dir, "results"))

    def test_incremental_stats_rendered(self, sample_file, tmp_path):
        _, output = run(
            ["-stats", "--cache-dir", str(tmp_path / "c"), sample_file]
        )
        assert "incremental statistics:" in output
        assert "result cache:" in output

    def test_daemon_flag_rejected_inside_run(self, sample_file):
        with pytest.raises(CliError, match="daemon"):
            run(["--daemon", sample_file])

    def test_dump_load_with_incremental_engine(self, tmp_path, clean_file):
        lib = str(tmp_path / "prog.lcd")
        status, output = run(
            ["--cache-dir", str(tmp_path / "c"), "-dump", lib, clean_file]
        )
        assert status == 0
        assert "interface library written" in output
        status2, _ = run(["-load", lib, clean_file])
        assert status2 == 0


class TestCliTrace:
    def test_trace_output(self, tmp_path):
        path = tmp_path / "t.c"
        path.write_text(
            "int f(/*@null@*/ int *p) {\n"
            "  if (p != NULL) { return *p; }\n"
            "  return 0;\n"
            "}\n"
        )
        status, output = run(["-quiet", "-trace", "f", str(path)])
        assert "Function Entrance" in output
        assert "possibly null" in output
        assert "Function Exit" in output

    def test_trace_unknown_function(self, clean_file):
        with pytest.raises(CliError):
            run(["-trace", "missing", clean_file])


class TestExitCodeContract:
    """The documented contract: 0 clean, 1 warnings, 2 usage/input
    error, 3 internal error contained."""

    def test_clean_is_0(self, clean_file):
        status, _ = run([clean_file])
        assert status == 0

    def test_warnings_are_1(self, sample_file):
        status, _ = run([sample_file])
        assert status == 1

    def test_parse_errors_are_warnings(self, tmp_path):
        bad = tmp_path / "broken.c"
        bad.write_text("int x = ;\n")
        status, output = run([str(bad)])
        assert status == 1
        assert "Parse error" in output

    def test_usage_errors_are_2(self):
        from repro.driver.cli import main

        assert main(["/nonexistent/definitely/missing.c"]) == 2
        assert main(["-notaflag" * 2]) == 2

    def test_contained_internal_error_is_3(self, clean_file, tmp_path,
                                           monkeypatch):
        from repro.analysis.checker import FunctionChecker

        def boom(self):
            raise RuntimeError("injected fault")

        monkeypatch.setattr(FunctionChecker, "check", boom)
        monkeypatch.chdir(tmp_path)  # crash bundles land under tmp
        status, output = run([clean_file])
        assert status == 3
        assert "Internal error (RuntimeError)" in output
        assert "internal error(s) contained" in output

    def test_internal_beats_warnings(self, sample_file, tmp_path,
                                     monkeypatch):
        from repro.analysis.checker import FunctionChecker

        original = FunctionChecker.check

        def boom(self):
            raise RuntimeError("injected fault")

        monkeypatch.setattr(FunctionChecker, "check", boom)
        monkeypatch.chdir(tmp_path)
        status, _ = run([sample_file])
        assert status == 3
        monkeypatch.setattr(FunctionChecker, "check", original)
        status, _ = run([sample_file])
        assert status == 1
