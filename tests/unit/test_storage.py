"""Tests for references, paths, and the alias map."""

from repro.analysis.storage import AliasMap, Ref


class TestRefConstruction:
    def test_describe_base_kinds(self):
        assert Ref.local("x").describe() == "x"
        assert Ref.arg(0).describe() == "arg1"
        assert Ref.global_("g").describe() == "g"
        assert Ref.ret().describe() == "result"

    def test_describe_paths(self):
        r = Ref.local("l").arrow("next").arrow("this")
        assert r.describe() == "l->next->this"
        assert Ref.local("s").dot("f").describe() == "s.f"
        assert Ref.local("p").deref().describe() == "*p"

    def test_index_collapses_to_deref(self):
        # Paper section 2: unknown indexes all denote the same element.
        assert Ref.local("a").index() == Ref.local("a").deref()

    def test_parent(self):
        r = Ref.local("l").arrow("next").arrow("this")
        assert r.parent() == Ref.local("l").arrow("next")
        assert Ref.local("l").parent() is None

    def test_ancestors_nearest_first(self):
        r = Ref.local("l").arrow("a").arrow("b")
        assert list(r.ancestors()) == [
            Ref.local("l").arrow("a"),
            Ref.local("l"),
        ]

    def test_depth(self):
        assert Ref.local("x").depth == 0
        assert Ref.local("x").arrow("f").depth == 1

    def test_is_prefix_of(self):
        base = Ref.local("l")
        child = base.arrow("next")
        grandchild = child.arrow("this")
        assert base.is_prefix_of(child)
        assert base.is_prefix_of(grandchild)
        assert not child.is_prefix_of(base)
        assert not base.is_prefix_of(base)
        assert not Ref.local("m").is_prefix_of(child)

    def test_replace_prefix(self):
        l = Ref.local("l")
        argl = Ref.arg(0)
        r = l.arrow("next").arrow("this")
        swapped = r.replace_prefix(l, argl)
        assert swapped == argl.arrow("next").arrow("this")

    def test_replace_prefix_deeper_target(self):
        l = Ref.local("l")
        argl_next = Ref.arg(0).arrow("next")
        r = l.arrow("next")
        assert r.replace_prefix(l, argl_next) == argl_next.arrow("next")

    def test_hashable_and_ordered(self):
        s = {Ref.local("a"), Ref.local("a"), Ref.local("b")}
        assert len(s) == 2
        assert sorted([Ref.local("b"), Ref.local("a")])[0] == Ref.local("a")


class TestAliasMap:
    def test_symmetric(self):
        am = AliasMap()
        am.add(Ref.local("a"), Ref.local("b"))
        assert Ref.local("b") in am.aliases_of(Ref.local("a"))
        assert Ref.local("a") in am.aliases_of(Ref.local("b"))

    def test_self_alias_ignored(self):
        am = AliasMap()
        am.add(Ref.local("a"), Ref.local("a"))
        assert am.aliases_of(Ref.local("a")) == frozenset()

    def test_may_alias(self):
        am = AliasMap()
        am.add(Ref.local("a"), Ref.local("b"))
        assert am.may_alias(Ref.local("a"), Ref.local("b"))
        assert am.may_alias(Ref.local("a"), Ref.local("a"))
        assert not am.may_alias(Ref.local("a"), Ref.local("c"))

    def test_clear_removes_both_directions(self):
        am = AliasMap()
        am.add(Ref.local("a"), Ref.local("b"))
        am.clear(Ref.local("a"))
        assert am.aliases_of(Ref.local("b")) == frozenset()
        assert am.aliases_of(Ref.local("a")) == frozenset()

    def test_merge_is_union(self):
        am1 = AliasMap()
        am1.add(Ref.local("l"), Ref.arg(0))
        am2 = AliasMap()
        am2.add(Ref.local("l"), Ref.arg(0).arrow("next"))
        merged = am1.merged(am2)
        aliases = merged.aliases_of(Ref.local("l"))
        # Paper, Figure 6 point 7: l may alias argl or argl->next.
        assert aliases == frozenset({Ref.arg(0), Ref.arg(0).arrow("next")})

    def test_closure_includes_self(self):
        am = AliasMap()
        am.add(Ref.local("a"), Ref.local("b"))
        assert am.closure(Ref.local("a")) == frozenset(
            {Ref.local("a"), Ref.local("b")}
        )

    def test_copy_is_independent(self):
        am = AliasMap()
        am.add(Ref.local("a"), Ref.local("b"))
        clone = am.copy()
        clone.add(Ref.local("a"), Ref.local("c"))
        assert Ref.local("c") not in am.aliases_of(Ref.local("a"))

    def test_set_aliases(self):
        am = AliasMap()
        am.set_aliases(Ref.local("x"), frozenset({Ref.local("y"), Ref.local("x")}))
        assert am.aliases_of(Ref.local("x")) == frozenset({Ref.local("y")})
        assert Ref.local("x") in am.aliases_of(Ref.local("y"))

    def test_equality_ignores_empty_sets(self):
        am1 = AliasMap()
        am2 = AliasMap()
        am1.add(Ref.local("a"), Ref.local("b"))
        am1.clear(Ref.local("a"))
        assert am1 == am2
