"""Tests for annotation parsing and combination rules."""

from repro.annotations.kinds import (
    AllocAnn,
    AnnotationSet,
    DefAnn,
    ExposureAnn,
    NullAnn,
)
from repro.annotations.parse import AnnotationBuilder, parse_spec_words
from repro.frontend.source import BUILTIN_LOCATION


def build(*payloads):
    b = AnnotationBuilder()
    for p in payloads:
        b.add_payload(p, BUILTIN_LOCATION)
    return b


class TestParsing:
    def test_each_category(self):
        ann = parse_spec_words("null out only observer unique returned")
        assert ann.null is NullAnn.NULL
        assert ann.definition is DefAnn.OUT
        assert ann.alloc is AllocAnn.ONLY
        assert ann.exposure is ExposureAnn.OBSERVER
        assert ann.unique
        assert ann.returned

    def test_all_null_annotations(self):
        assert parse_spec_words("notnull").null is NullAnn.NOTNULL
        assert parse_spec_words("relnull").null is NullAnn.RELNULL

    def test_all_definition_annotations(self):
        for word, member in [("out", DefAnn.OUT), ("in", DefAnn.IN),
                             ("partial", DefAnn.PARTIAL), ("reldef", DefAnn.RELDEF),
                             ("undef", DefAnn.UNDEF)]:
            assert parse_spec_words(word).definition is member

    def test_all_allocation_annotations(self):
        for word, member in [("only", AllocAnn.ONLY), ("keep", AllocAnn.KEEP),
                             ("temp", AllocAnn.TEMP), ("owned", AllocAnn.OWNED),
                             ("dependent", AllocAnn.DEPENDENT),
                             ("shared", AllocAnn.SHARED)]:
            assert parse_spec_words(word).alloc is member

    def test_truenull_falsenull(self):
        assert parse_spec_words("truenull").truenull
        assert parse_spec_words("falsenull").falsenull

    def test_names_preserved_in_order(self):
        ann = parse_spec_words("null only")
        assert ann.names == ("null", "only")

    def test_empty(self):
        assert parse_spec_words("").is_empty()

    def test_multiple_payloads_accumulate(self):
        ann = build("null", "only").build()
        assert ann.null is NullAnn.NULL
        assert ann.alloc is AllocAnn.ONLY


class TestProblems:
    def test_same_category_conflict(self):
        b = build("null notnull")
        assert len(b.problems) == 1
        assert "incompatible" in b.problems[0].description

    def test_alloc_conflict(self):
        b = build("only temp")
        assert b.problems

    def test_truenull_falsenull_conflict(self):
        b = build("truenull falsenull")
        assert b.problems

    def test_duplicate_same_word_tolerated(self):
        b = build("null null")
        assert not b.problems

    def test_unknown_word(self):
        b = build("frobnicate")
        assert "unrecognized" in b.problems[0].description


class TestMergedUnder:
    def test_declaration_overrides_typedef(self):
        decl = parse_spec_words("notnull")
        tdef = parse_spec_words("null only")
        merged = decl.merged_under(tdef)
        assert merged.null is NullAnn.NOTNULL  # notnull wins over typedef null
        assert merged.alloc is AllocAnn.ONLY   # inherited

    def test_empty_inherits_everything(self):
        tdef = parse_spec_words("null temp")
        merged = AnnotationSet().merged_under(tdef)
        assert merged.null is NullAnn.NULL
        assert merged.alloc is AllocAnn.TEMP

    def test_boolean_flags_or(self):
        a = parse_spec_words("unique")
        b = parse_spec_words("returned")
        merged = a.merged_under(b)
        assert merged.unique and merged.returned


class TestAnnotationSetHelpers:
    def test_with_alloc(self):
        ann = AnnotationSet().with_alloc(AllocAnn.ONLY)
        assert ann.alloc is AllocAnn.ONLY

    def test_describe(self):
        assert parse_spec_words("null only").describe() == "null only"
        assert AnnotationSet().describe() == "<none>"
