"""Tests for the abstract store: materialization and merging."""

from repro.analysis.states import AllocState, DefState, NullState, RefState
from repro.analysis.storage import Ref
from repro.analysis.store import Store, merge_all


class SimpleEnv:
    """Minimal StateEnv: bases are defined, children inherit sensibly."""

    def base_default(self, ref):
        return RefState()

    def derived_default(self, ref, parent):
        if parent.definition is DefState.ALLOCATED:
            return RefState(definition=DefState.UNDEFINED)
        return RefState(definition=parent.definition)


def store():
    return Store(SimpleEnv())


class TestMaterialization:
    def test_base_default(self):
        s = store()
        st = s.state(Ref.local("x"))
        assert st.definition is DefState.DEFINED

    def test_derived_from_defined(self):
        s = store()
        st = s.state(Ref.local("x").arrow("f"))
        assert st.definition is DefState.DEFINED

    def test_derived_from_allocated(self):
        s = store()
        s.set_state(Ref.local("p"), RefState(definition=DefState.ALLOCATED))
        st = s.state(Ref.local("p").arrow("f"))
        assert st.definition is DefState.UNDEFINED

    def test_peek_does_not_materialize(self):
        s = store()
        assert s.peek(Ref.local("x")) is None
        s.state(Ref.local("x"))
        assert s.peek(Ref.local("x")) is not None

    def test_update(self):
        s = store()
        s.update(Ref.local("x"), lambda st: st.with_null(NullState.ISNULL))
        assert s.state(Ref.local("x")).null is NullState.ISNULL

    def test_update_with_aliases(self):
        s = store()
        s.aliases.add(Ref.local("a"), Ref.local("b"))
        s.update_with_aliases(Ref.local("a"), lambda st: st.with_null(NullState.ISNULL))
        assert s.state(Ref.local("b")).null is NullState.ISNULL

    def test_kill_derived(self):
        s = store()
        s.set_state(Ref.local("p").arrow("f"), RefState(null=NullState.ISNULL))
        s.kill_derived(Ref.local("p"))
        assert s.peek(Ref.local("p").arrow("f")) is None


class TestCopy:
    def test_copy_independent_states(self):
        s = store()
        s.set_state(Ref.local("x"), RefState(null=NullState.ISNULL))
        clone = s.copy()
        clone.set_state(Ref.local("x"), RefState(null=NullState.NOTNULL))
        assert s.state(Ref.local("x")).null is NullState.ISNULL

    def test_copy_sites(self):
        s = store()
        s.sites[(Ref.local("x"), "null")] = "here"
        clone = s.copy()
        assert clone.sites[(Ref.local("x"), "null")] == "here"


class TestMerge:
    def test_clean_merge(self):
        a, b = store(), store()
        a.set_state(Ref.local("x"), RefState(null=NullState.NOTNULL))
        b.set_state(Ref.local("x"), RefState(null=NullState.ISNULL))
        merged, reports = a.merge(b)
        assert merged.state(Ref.local("x")).null is NullState.MAYBENULL
        assert reports == []

    def test_anomalous_merge_reported(self):
        a, b = store(), store()
        a.set_state(Ref.local("e"), RefState(alloc=AllocState.KEPT))
        b.set_state(Ref.local("e"), RefState(alloc=AllocState.ONLY))
        merged, reports = a.merge(b)
        assert merged.state(Ref.local("e")).alloc is AllocState.ERROR
        assert len(reports) == 1
        assert reports[0].ref == Ref.local("e")

    def test_one_sided_key_materializes_other_side(self):
        a, b = store(), store()
        a.set_state(Ref.local("x"), RefState(definition=DefState.PARTIAL))
        merged, _ = a.merge(b)
        assert merged.state(Ref.local("x")).definition is DefState.PARTIAL

    def test_unreachable_branch_dropped(self):
        a, b = store(), store()
        a.set_state(Ref.local("x"), RefState(alloc=AllocState.DEAD))
        a.unreachable = True
        b.set_state(Ref.local("x"), RefState(alloc=AllocState.FRESH))
        merged, reports = a.merge(b)
        assert merged.state(Ref.local("x")).alloc is AllocState.FRESH
        assert reports == []

    def test_both_unreachable(self):
        a, b = store(), store()
        a.unreachable = b.unreachable = True
        merged, _ = a.merge(b)
        assert merged.unreachable

    def test_alias_union(self):
        a, b = store(), store()
        a.aliases.add(Ref.local("l"), Ref.arg(0))
        b.aliases.add(Ref.local("l"), Ref.arg(0).arrow("next"))
        merged, _ = a.merge(b)
        assert merged.aliases.aliases_of(Ref.local("l")) == frozenset(
            {Ref.arg(0), Ref.arg(0).arrow("next")}
        )

    def test_merge_all(self):
        stores = [store() for _ in range(3)]
        states = [NullState.NOTNULL, NullState.NOTNULL, NullState.ISNULL]
        for s, n in zip(stores, states):
            s.set_state(Ref.local("x"), RefState(null=n))
        merged, _ = merge_all(stores)
        assert merged.state(Ref.local("x")).null is NullState.MAYBENULL
