"""Allocation / obligation checking (paper section 4, 'Allocation')."""

from repro import Flags, check_source
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


def codes(source, flags=NOIMP):
    return [m.code for m in check_source(source, "t.c", flags=flags).messages]


def texts(source, flags=NOIMP):
    return [m.text for m in check_source(source, "t.c", flags=flags).messages]


MALLOC_CHECKED = """#include <stdlib.h>
static int *mk(void) {
    int *p = (int *) malloc(sizeof(int));
    if (p == NULL) { exit(1); }
    *p = 0;
    return p;
}
"""


class TestLeaks:
    def test_local_never_freed_leaks_at_scope_exit(self):
        src = """#include <stdlib.h>
        void f(void) {
            char *p = (char *) malloc(10);
            if (p == NULL) { return; }
            *p = 'x';
        }"""
        assert MessageCode.LEAK_SCOPE in codes(src)

    def test_local_freed_no_leak(self):
        src = """#include <stdlib.h>
        void f(void) {
            char *p = (char *) malloc(10);
            if (p == NULL) { return; }
            *p = 'x';
            free(p);
        }"""
        assert codes(src) == []

    def test_overwrite_without_release_leaks(self):
        src = """#include <stdlib.h>
        void f(void) {
            char *p = (char *) malloc(10);
            if (p == NULL) { return; }
            p = (char *) malloc(20);
            free(p);
        }"""
        msgs = texts(src)
        assert any("not released before assignment" in m for m in msgs)

    def test_free_then_reassign_ok(self):
        src = """#include <stdlib.h>
        void f(void) {
            char *p = (char *) malloc(10);
            if (p == NULL) { return; }
            free(p);
            p = (char *) malloc(20);
            if (p == NULL) { return; }
            free(p);
        }"""
        assert codes(src) == []

    def test_unused_fresh_result_is_leak(self):
        src = "#include <stdlib.h>\nvoid f(void) { malloc(10); }"
        assert MessageCode.LEAK_RESULT in codes(src)

    def test_figure4_only_global_overwritten(self):
        src = """extern /*@only@*/ char *gname;
        void setName(/*@temp@*/ char *pname) { gname = pname; }"""
        cs = codes(src)
        assert MessageCode.LEAK_OVERWRITE in cs
        assert MessageCode.TEMP_TO_ONLY in cs

    def test_fresh_returned_without_only_is_suspected_leak(self):
        src = MALLOC_CHECKED
        assert MessageCode.LEAK_RETURN in codes(src)

    def test_fresh_returned_as_only_ok(self):
        src = """#include <stdlib.h>
        static /*@only@*/ int *mk(void) {
            int *p = (int *) malloc(sizeof(int));
            if (p == NULL) { exit(1); }
            *p = 0;
            return p;
        }"""
        assert codes(src) == []

    def test_implicit_only_return_accepts_fresh(self):
        # With implicit annotations on (the default), the unannotated
        # return value takes the obligation: no message (paper section 6).
        assert codes(MALLOC_CHECKED, flags=Flags()) == []

    def test_gc_mode_suppresses_leaks(self):
        src = """#include <stdlib.h>
        void f(void) {
            char *p = (char *) malloc(10);
            if (p == NULL) { return; }
            *p = 'x';
        }"""
        gc = Flags.from_args(["-allimponly", "+gcmode"])
        assert codes(src, flags=gc) == []

    def test_early_return_leaks_locals(self):
        src = """#include <stdlib.h>
        void f(int c) {
            char *p = (char *) malloc(10);
            if (p == NULL) { return; }
            if (c) { return; }
            free(p);
        }"""
        assert MessageCode.LEAK_SCOPE in codes(src)


class TestTransfers:
    def test_free_of_temp_param(self):
        src = """#include <stdlib.h>
        void f(/*@temp@*/ char *p) { free(p); }"""
        msgs = texts(src)
        assert any("Temp storage p passed as only param" in m for m in msgs)

    def test_free_of_implicitly_temp_param(self):
        src = "#include <stdlib.h>\nvoid f(char *p) { free(p); }"
        msgs = texts(src)
        assert any("Implicitly temp storage p passed as only param" in m for m in msgs)

    def test_free_of_only_param_ok(self):
        src = "#include <stdlib.h>\nvoid f(/*@only@*/ char *p) { free(p); }"
        assert codes(src) == []

    def test_free_of_static_string(self):
        src = """#include <stdlib.h>
        void f(void) { char *p = "static"; free(p); }"""
        msgs = texts(src)
        assert any("Static storage" in m for m in msgs)

    def test_double_free_reported(self):
        src = """#include <stdlib.h>
        void f(/*@only@*/ char *p) { free(p); free(p); }"""
        assert MessageCode.USE_AFTER_RELEASE in codes(src)

    def test_use_after_free(self):
        src = """#include <stdlib.h>
        char f(/*@only@*/ char *p) { free(p); return *p; }"""
        assert MessageCode.USE_AFTER_RELEASE in codes(src)

    def test_use_after_transfer_through_alias(self):
        src = """#include <stdlib.h>
        extern void take(/*@only@*/ char *p);
        char f(/*@only@*/ char *p) { take(p); return p[0]; }"""
        assert MessageCode.USE_AFTER_RELEASE in codes(src)

    def test_only_param_not_released(self):
        src = "void f(/*@only@*/ char *p) { }"
        msgs = texts(src)
        assert any("Only storage p not released before return" in m for m in msgs)

    def test_only_param_released_ok(self):
        src = "#include <stdlib.h>\nvoid f(/*@only@*/ char *p) { free(p); }"
        assert codes(src) == []

    def test_only_param_transferred_to_global_ok(self):
        src = """extern /*@only@*/ char *g;
        void f(/*@only@*/ char *p) { g = p; }"""
        # Transfer hits the leak-on-overwrite of g, but p's obligation is
        # satisfied: no 'not released' message for p.
        msgs = texts(src)
        assert not any("Only storage p not released" in m for m in msgs)

    def test_keep_param_usable_after_call(self):
        src = """extern void keepit(/*@keep@*/ char *p);
        char f(/*@only@*/ char *p) { keepit(p); return p[0]; }"""
        assert MessageCode.USE_AFTER_RELEASE not in codes(src)

    def test_kept_storage_not_freed_again(self):
        src = """#include <stdlib.h>
        extern void keepit(/*@keep@*/ char *p);
        void f(/*@only@*/ char *p) { keepit(p); free(p); }"""
        msgs = texts(src)
        assert any("Kept storage" in m for m in msgs)

    def test_fresh_to_temp_target_loses_obligation(self):
        src = """#include <stdlib.h>
        extern /*@temp@*/ char *t;
        void f(void) { t = (char *) malloc(4); }"""
        assert MessageCode.BAD_TRANSFER in codes(src)

    def test_implicitly_temp_assigned_to_only(self):
        src = """extern /*@only@*/ char *g;
        extern char *h;
        void f(void) { g = h; }"""
        cs = codes(src)
        assert MessageCode.IMPLICIT_TRANSFER in cs or MessageCode.LEAK_OVERWRITE in cs

    def test_free_null_is_ok(self):
        src = "#include <stdlib.h>\nvoid f(void) { free(NULL); }"
        assert codes(src) == []

    def test_dependent_may_not_release(self):
        src = """#include <stdlib.h>
        void f(/*@dependent@*/ char *p) { free(p); }"""
        msgs = texts(src)
        assert any("Dependent storage" in m for m in msgs)

    def test_shared_may_not_release(self):
        src = """#include <stdlib.h>
        void f(/*@shared@*/ char *p) { free(p); }"""
        msgs = texts(src)
        assert any("Shared storage" in m for m in msgs)


class TestConfluence:
    def test_free_on_one_branch_only(self):
        src = """#include <stdlib.h>
        void f(/*@only@*/ char *p, int c) {
            if (c) { free(p); }
        }"""
        assert MessageCode.CONFLUENCE in codes(src)

    def test_free_on_both_branches_ok(self):
        src = """#include <stdlib.h>
        void f(/*@only@*/ char *p, int c) {
            if (c) { free(p); } else { free(p); }
        }"""
        assert codes(src) == []

    def test_figure5_kept_vs_only(self):
        src = """typedef /*@null@*/ struct _list {
          /*@only@*/ char *this;
          /*@null@*/ /*@only@*/ struct _list *next;
        } *list;
        extern /*@out@*/ /*@only@*/ void *smalloc(size_t);
        void list_addh(/*@temp@*/ list l, /*@only@*/ char *e) {
          if (l != NULL) {
            while (l->next != NULL) { l = l->next; }
            l->next = (list) smalloc(sizeof(*l->next));
            l->next->this = e;
          }
        }"""
        result = check_source(src, "list.c")
        confluence = [m for m in result.messages if m.code is MessageCode.CONFLUENCE]
        assert len(confluence) == 1
        assert "kept" in confluence[0].text and "only" in confluence[0].text

    def test_return_in_branch_is_not_confluence(self):
        src = """#include <stdlib.h>
        void f(/*@only@*/ char *p, int c) {
            if (c) { free(p); return; }
            free(p);
        }"""
        assert codes(src) == []


class TestCompletelyDestroyed:
    """Paper footnote 5: an out only void * parameter (a deallocator)
    must not receive objects containing live, unshared references."""

    API = """#include <stdlib.h>
    typedef struct _box { /*@only@*/ char *label; int n; } *box;
    """

    def test_freeing_container_with_live_only_field(self):
        src = self.API + """
        void destroy(/*@only@*/ box b) {
            free(b);
        }"""
        msgs = texts(src)
        assert any("not completely destroyed" in m for m in msgs)

    def test_field_released_first_is_clean(self):
        src = self.API + """
        void destroy(/*@only@*/ box b) {
            free(b->label);
            free(b);
        }"""
        assert codes(src) == []

    def test_null_field_needs_no_release(self):
        src = """#include <stdlib.h>
        typedef struct _box { /*@null@*/ /*@only@*/ char *label; } *box;
        void destroy(/*@only@*/ box b) {
            free(b);
        }"""
        # a possibly-null only field may hold no storage: no message
        assert codes(src) == []

    def test_field_transferred_away_is_clean(self):
        src = self.API + """
        extern /*@only@*/ char *keeper;
        void destroy(/*@only@*/ box b) {
            keeper = b->label;
            free(b);
        }"""
        msgs = texts(src)
        assert not any("not completely destroyed" in m for m in msgs)
