"""Tests for the C interpreter (the run-time checking baseline)."""

import pytest

from repro.runtime.heap import RuntimeEventKind
from repro.runtime.interp import InterpreterError, run_program


def run(body, entry="main", **kw):
    return run_program(body, entry=entry, **kw)


class TestBasics:
    def test_return_value_is_exit_code(self):
        assert run("int main(void) { return 7; }").exit_code == 7

    def test_arithmetic(self):
        res = run("""#include <stdio.h>
        int main(void) {
            int a = 6;
            int b = 7;
            printf("%d", a * b + (a - b) / 1 + (a % b));
            return 0;
        }""")
        assert res.output == "47"

    def test_division_by_zero_exits(self):
        res = run("int main(void) { int z = 0; return 1 / z; }")
        assert res.exit_code == 136

    def test_bitwise_and_shifts(self):
        res = run("""#include <stdio.h>
        int main(void) {
            printf("%d %d %d %d", 6 & 3, 6 | 3, 6 ^ 3, 1 << 4);
            return 0;
        }""")
        assert res.output == "2 7 5 16"

    def test_comparisons_and_logic(self):
        res = run("""#include <stdio.h>
        int main(void) {
            printf("%d%d%d%d", 1 < 2, 2 <= 1, 3 == 3, !0 && (0 || 1));
            return 0;
        }""")
        assert res.output == "1011"

    def test_ternary_and_comma(self):
        res = run("""#include <stdio.h>
        int main(void) {
            int x = (1, 2, 3);
            printf("%d", x > 2 ? 10 : 20);
            return 0;
        }""")
        assert res.output == "10"

    def test_char_arithmetic(self):
        res = run("""#include <stdio.h>
        int main(void) { printf("%c", 'a' + 1); return 0; }""")
        assert res.output == "b"


class TestControlFlow:
    def test_while_loop(self):
        res = run("""#include <stdio.h>
        int main(void) {
            int i = 0;
            int total = 0;
            while (i < 5) { total += i; i++; }
            printf("%d", total);
            return 0;
        }""")
        assert res.output == "10"

    def test_for_with_break_continue(self):
        res = run("""#include <stdio.h>
        int main(void) {
            int i;
            int total = 0;
            for (i = 0; i < 100; i++) {
                if (i % 2 == 0) { continue; }
                if (i > 8) { break; }
                total += i;
            }
            printf("%d", total);
            return 0;
        }""")
        assert res.output == "16"  # 1+3+5+7

    def test_do_while(self):
        res = run("""#include <stdio.h>
        int main(void) {
            int i = 10;
            do { i--; } while (i > 3);
            printf("%d", i);
            return 0;
        }""")
        assert res.output == "3"

    def test_switch_with_fallthrough(self):
        res = run("""#include <stdio.h>
        static int classify(int x) {
            switch (x) {
            case 0:
            case 1: return 10;
            case 2: return 20;
            default: return 30;
            }
        }
        int main(void) {
            printf("%d %d %d %d", classify(0), classify(1), classify(2),
                   classify(9));
            return 0;
        }""")
        assert res.output == "10 10 20 30"

    def test_recursion(self):
        res = run("""#include <stdio.h>
        static int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
        int main(void) { printf("%d", fib(12)); return 0; }""")
        assert res.output == "144"

    def test_step_budget(self):
        res = run("int main(void) { while (1) { } return 0; }",
                  max_steps=10_000)
        assert res.exit_code == -1


class TestPointersAndStructs:
    def test_address_of_and_deref(self):
        res = run("""#include <stdio.h>
        static void bump(int *p) { *p = *p + 1; }
        int main(void) {
            int x = 41;
            bump(&x);
            printf("%d", x);
            return 0;
        }""")
        assert res.output == "42"

    def test_struct_by_value_copy(self):
        res = run("""#include <stdio.h>
        typedef struct { int a; int b; } pair;
        static pair swap(pair p) {
            pair q;
            q.a = p.b;
            q.b = p.a;
            return q;
        }
        int main(void) {
            pair p;
            pair q;
            p.a = 1;
            p.b = 2;
            q = swap(p);
            printf("%d%d%d%d", p.a, p.b, q.a, q.b);
            return 0;
        }""")
        assert res.output == "1221"

    def test_array_indexing(self):
        res = run("""#include <stdio.h>
        int main(void) {
            int a[4];
            int i;
            for (i = 0; i < 4; i++) { a[i] = i * i; }
            printf("%d %d", a[2], a[3]);
            return 0;
        }""")
        assert res.output == "4 9"

    def test_pointer_arithmetic(self):
        res = run("""#include <stdio.h>
        int main(void) {
            int a[3];
            int *p = a;
            a[0] = 10; a[1] = 20; a[2] = 30;
            p = p + 2;
            printf("%d %d", *p, *(p - 1));
            return 0;
        }""")
        assert res.output == "30 20"

    def test_linked_structure(self):
        res = run("""#include <stdlib.h>
        #include <stdio.h>
        typedef struct _n { int v; struct _n *next; } node;
        int main(void) {
            node *a = (node *) malloc(sizeof(node));
            node *b = (node *) malloc(sizeof(node));
            if (a == NULL || b == NULL) { return 1; }
            a->v = 1; a->next = b;
            b->v = 2; b->next = NULL;
            printf("%d%d", a->v, a->next->v);
            free(b);
            free(a);
            return 0;
        }""")
        assert res.output == "12"
        assert res.leaked_blocks == 0

    def test_globals(self):
        res = run("""#include <stdio.h>
        int counter = 100;
        static void tick(void) { counter++; }
        int main(void) { tick(); tick(); printf("%d", counter); return 0; }""")
        assert res.output == "102"


class TestStringsAndStdlib:
    def test_string_functions(self):
        res = run("""#include <string.h>
        #include <stdio.h>
        int main(void) {
            char buf[32];
            strcpy(buf, "hello");
            strcat(buf, " world");
            printf("%s %d %d", buf, (int) strlen(buf),
                   strcmp(buf, "hello world"));
            return 0;
        }""")
        assert res.output == "hello world 11 0"

    def test_sprintf(self):
        res = run("""#include <stdio.h>
        int main(void) {
            char buf[64];
            sprintf(buf, "%d-%s", 7, "seven");
            printf("%s", buf);
            return 0;
        }""")
        assert res.output == "7-seven"

    def test_calloc_zeroed(self):
        res = run("""#include <stdlib.h>
        #include <stdio.h>
        int main(void) {
            int *p = (int *) calloc(4, sizeof(int));
            printf("%d", p[0] + p[3]);
            free(p);
            return 0;
        }""")
        assert res.output == "0"
        assert not res.events

    def test_realloc_preserves(self):
        res = run("""#include <stdlib.h>
        #include <stdio.h>
        int main(void) {
            int *p = (int *) malloc(2 * sizeof(int));
            p[0] = 5;
            p[1] = 6;
            p = (int *) realloc(p, 4 * sizeof(int));
            printf("%d%d", p[0], p[1]);
            free(p);
            return 0;
        }""")
        assert res.output == "56"
        assert res.leaked_blocks == 0

    def test_atoi_and_abs(self):
        res = run("""#include <stdlib.h>
        #include <stdio.h>
        int main(void) {
            printf("%d %d", atoi("-42x"), abs(-7));
            return 0;
        }""")
        assert res.output == "-42 7"

    def test_rand_deterministic(self):
        a = run("""#include <stdlib.h>
        #include <stdio.h>
        int main(void) { srand(1); printf("%d %d", rand(), rand()); return 0; }""")
        b = run("""#include <stdlib.h>
        #include <stdio.h>
        int main(void) { srand(1); printf("%d %d", rand(), rand()); return 0; }""")
        assert a.output == b.output

    def test_assert_failure_aborts(self):
        res = run("""#include <assert.h>
        int main(void) { assert(1 == 2); return 0; }""")
        assert res.exit_code == 134

    def test_exit(self):
        res = run("""#include <stdlib.h>
        int main(void) { exit(3); }""")
        assert res.exit_code == 3


class TestDetectors:
    def test_null_deref_detected(self):
        res = run("""#include <stdlib.h>
        int main(void) { int *p = NULL; return *p; }""")
        assert RuntimeEventKind.NULL_DEREF in res.error_kinds()
        assert res.exit_code == 139

    def test_leak_detected_with_site(self):
        res = run("""#include <stdlib.h>
        int main(void) { (void) malloc(16); return 0; }""")
        leaks = res.events_of(RuntimeEventKind.LEAK)
        assert len(leaks) == 1
        assert leaks[0].alloc_site.line == 2

    def test_uninit_read_detected(self):
        res = run("int main(void) { int x; return x; }")
        assert RuntimeEventKind.UNINIT_READ in res.error_kinds()

    def test_clean_program_has_no_events(self):
        res = run("""#include <stdlib.h>
        int main(void) {
            char *p = (char *) malloc(4);
            if (p == NULL) { return 1; }
            p[0] = 'x';
            free(p);
            return 0;
        }""")
        assert res.events == []

    def test_goto_unsupported(self):
        with pytest.raises(InterpreterError):
            run("int main(void) { goto out; out: return 0; }")

    def test_unknown_function(self):
        with pytest.raises(InterpreterError):
            run("int main(void) { return mystery(); }")


class TestEntryPoints:
    def test_alternate_entry(self):
        res = run("""#include <stdio.h>
        void scenario_a(void) { printf("a"); }
        void scenario_b(void) { printf("b"); }
        int main(void) { scenario_a(); scenario_b(); return 0; }""",
                  entry="scenario_b")
        assert res.output == "b"


class TestMoreBuiltins:
    def test_memcmp_strrchr_strstr(self):
        res = run(r"""#include <string.h>
        #include <stdio.h>
        int main(void) {
            printf("%d %s %s", memcmp("ab", "ac", 2),
                   strrchr("ababa", 'b'), strstr("haystack", "st"));
            return 0;
        }""")
        assert res.output == "-1 ba stack"

    def test_ctype_functions(self):
        res = run(r"""#include <ctype.h>
        #include <stdio.h>
        int main(void) {
            printf("%d%d%d%d %c%c", isalpha('a'), isdigit('7'),
                   isupper('Q'), islower('q'),
                   (char) toupper('x'), (char) tolower('Y'));
            return 0;
        }""")
        assert res.output == "1111 Xy"

    def test_strchr_returns_null_on_miss(self):
        res = run(r"""#include <string.h>
        #include <stdio.h>
        int main(void) {
            if (strchr("abc", 'z') == NULL) { printf("missing"); }
            return 0;
        }""")
        assert res.output == "missing"

    def test_enum_constants_at_runtime(self):
        res = run(r"""#include <stdio.h>
        typedef enum { LOW = 1, MID = 5, HIGH = 9 } level;
        int main(void) {
            level v = MID;
            printf("%d %d", v, v == HIGH ? 1 : 0);
            return 0;
        }""")
        assert res.output == "5 0"

    def test_global_initializers(self):
        res = run(r"""#include <stdio.h>
        int base = 40;
        int offsets[3] = {1, 2, 3};
        int main(void) { printf("%d", base + offsets[1]); return 0; }""")
        assert res.output == "42"

    def test_nested_struct_access(self):
        res = run(r"""#include <stdio.h>
        typedef struct { int x; int y; } point;
        typedef struct { point a; point b; } segment;
        int main(void) {
            segment s;
            s.a.x = 1; s.a.y = 2; s.b.x = 3; s.b.y = 4;
            printf("%d", s.a.x + s.a.y + s.b.x + s.b.y);
            return 0;
        }""")
        assert res.output == "10"

    def test_array_of_structs(self):
        res = run(r"""#include <stdio.h>
        typedef struct { int v; } cell;
        int main(void) {
            cell cells[3];
            int i;
            int total = 0;
            for (i = 0; i < 3; i++) { cells[i].v = i * 10; }
            for (i = 0; i < 3; i++) { total += cells[i].v; }
            printf("%d", total);
            return 0;
        }""")
        assert res.output == "30"


class TestStructCopySemantics:
    def test_struct_copy_through_deref(self):
        res = run(r"""#include <stdio.h>
        typedef struct { int a; int b; } pair;
        static void clone(pair *dst, pair *src) { *dst = *src; }
        int main(void) {
            pair x;
            pair y;
            x.a = 7; x.b = 8;
            clone(&y, &x);
            x.a = 0;
            printf("%d%d", y.a, y.b);
            return 0;
        }""")
        assert res.output == "78"

    def test_struct_assignment_is_a_copy(self):
        res = run(r"""#include <stdio.h>
        typedef struct { int v; } box;
        int main(void) {
            box a;
            box b;
            a.v = 5;
            b = a;
            a.v = 9;
            printf("%d%d", a.v, b.v);
            return 0;
        }""")
        assert res.output == "95"

    def test_struct_in_struct_copy(self):
        res = run(r"""#include <stdio.h>
        typedef struct { int x; int y; } point;
        typedef struct { point p; int tag; } node;
        int main(void) {
            node n;
            node m;
            n.p.x = 1; n.p.y = 2; n.tag = 3;
            m = n;
            printf("%d%d%d", m.p.x, m.p.y, m.tag);
            return 0;
        }""")
        assert res.output == "123"
