"""Units for the checking-service protocol layer: request parsing,
correlation-id recovery, the reply builders, and the advisory cache-dir
lock. These are the pieces the stdin shim and the asyncio service share,
so pinning them here pins both transports at once."""

import json
import threading

import pytest

from repro.service.locking import LOCK_FILE_NAME, CacheDirLock
from repro.service.protocol import (
    MAX_REQUEST_BYTES,
    PRIORITIES,
    ProtocolError,
    Request,
    error_reply,
    metrics_reply,
    oversized_reply,
    parse_request_line,
    recover_request_id,
)


class TestParseRequestLine:
    def test_shell_line(self):
        request = parse_request_line("-quiet src/a.c")
        assert request.verb == "check"
        assert request.argv == ["-quiet", "src/a.c"]
        assert request.id is None
        assert request.priority == "interactive"

    def test_json_array(self):
        request = parse_request_line('["-quiet", "src/a.c"]')
        assert request.verb == "check"
        assert request.argv == ["-quiet", "src/a.c"]

    def test_json_array_must_hold_strings(self):
        with pytest.raises(ProtocolError, match="array of strings"):
            parse_request_line('["-quiet", 7]')

    def test_object_form_full(self):
        request = parse_request_line(json.dumps({
            "id": 7, "argv": ["-quiet", "a.c"],
            "priority": "batch", "timeout": 2.5,
        }))
        assert request.verb == "check"
        assert request.id == 7
        assert request.priority == "batch"
        assert request.timeout_s == 2.5

    def test_object_form_defaults(self):
        request = parse_request_line('{"argv": ["a.c"]}')
        assert request.id is None
        assert request.priority == "interactive"
        assert request.timeout_s is None

    def test_object_metrics_and_shutdown_ops(self):
        metrics = parse_request_line('{"op": "metrics", "id": "m1"}')
        assert metrics.verb == "metrics"
        assert metrics.id == "m1"
        assert metrics.priority == "metrics"
        shutdown = parse_request_line('{"op": "shutdown", "id": 9}')
        assert shutdown.verb == "shutdown"
        assert shutdown.id == 9

    def test_bare_verbs(self):
        assert parse_request_line("metrics").verb == "metrics"
        for verb in ("shutdown", "quit", "exit"):
            assert parse_request_line(verb).verb == "shutdown"
        # ... in array spelling too.
        assert parse_request_line('["metrics"]').verb == "metrics"
        assert parse_request_line('["shutdown"]').verb == "shutdown"

    def test_unknown_op_keeps_the_client_id(self):
        with pytest.raises(ProtocolError) as info:
            parse_request_line('{"id": 41, "op": "reticulate"}')
        assert info.value.request_id == 41
        assert "reticulate" in str(info.value)

    def test_bad_priority_and_timeout_keep_the_client_id(self):
        with pytest.raises(ProtocolError) as info:
            parse_request_line('{"id": 5, "argv": [], "priority": "urgent"}')
        assert info.value.request_id == 5
        with pytest.raises(ProtocolError) as info:
            parse_request_line('{"id": 6, "argv": [], "timeout": -1}')
        assert info.value.request_id == 6

    def test_bad_id_type_rejected(self):
        with pytest.raises(ProtocolError, match="integer or string"):
            parse_request_line('{"id": [1], "argv": []}')

    def test_truncated_object_recovers_id(self):
        with pytest.raises(ProtocolError) as info:
            parse_request_line('{"id": 77, "argv": ["-quiet", "a.')
        assert info.value.request_id == 77

    def test_unbalanced_quote_shell_line(self):
        with pytest.raises(ProtocolError, match="malformed request line"):
            parse_request_line('check "unterminated')


class TestRecoverRequestId:
    def test_numeric(self):
        assert recover_request_id('{"id": 123, "argv"') == 123
        assert recover_request_id('{"id":-4,') == -4

    def test_string(self):
        assert recover_request_id('{"id": "req-9", bro') == "req-9"

    def test_escaped_string(self):
        assert recover_request_id('{"id": "a\\"b", ...') == 'a"b'

    def test_nothing_recoverable(self):
        assert recover_request_id("[1, 2, 3") is None
        assert recover_request_id("plain shell line") is None
        assert recover_request_id('{"id": {"nested": 1}}') is None


class TestReplyBuilders:
    def test_client_fixable_kinds_are_status_2(self):
        for kind in ("protocol", "oversized", "usage", "busy",
                     "shutting-down"):
            assert error_reply(1, kind, "x")["status"] == 2

    def test_service_side_kinds_are_status_3(self):
        for kind in ("deadline", "internal"):
            assert error_reply(1, kind, "x")["status"] == 3

    def test_error_reply_shape(self):
        reply = error_reply("r1", "busy", "full", retry_after_ms=250)
        assert reply == {
            "id": "r1", "status": 2, "error": "full", "kind": "busy",
            "retry_after_ms": 250,
        }
        assert "retry_after_ms" not in error_reply("r1", "busy", "full")

    def test_oversized_reply_names_the_limit(self):
        reply = oversized_reply(3, MAX_REQUEST_BYTES + 1)
        assert reply["kind"] == "oversized"
        assert str(MAX_REQUEST_BYTES) in reply["error"]

    def test_metrics_reply_shape(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.inc("a.b")
        reply = metrics_reply(2, registry)
        assert reply["status"] == 0
        assert reply["metrics"]["counters"]["a.b"] == 1


class TestPriorities:
    def test_rank_ordering(self):
        assert (Request("check", [], priority="interactive").rank
                < Request("check", [], priority="batch").rank
                < Request("metrics", [], priority="metrics").rank)

    def test_unknown_priority_ranks_as_batch(self):
        assert Request("check", [], priority="??").rank == PRIORITIES["batch"]


class TestCacheDirLock:
    def test_lock_file_created(self, tmp_path):
        lock = CacheDirLock(str(tmp_path / "cache"))
        with lock.exclusive():
            assert (tmp_path / "cache" / LOCK_FILE_NAME).exists()

    def test_reentrant(self, tmp_path):
        lock = CacheDirLock(str(tmp_path / "cache"))
        with lock.exclusive():
            with lock.exclusive():
                pass
            # Still held by the outer level after the inner exit.
            assert lock.held

    def test_released_after_outermost_exit(self, tmp_path):
        lock = CacheDirLock(str(tmp_path / "cache"))
        with lock.exclusive():
            pass
        assert not lock.held

    def test_exclusion_across_threads(self, tmp_path):
        # The lock serializes critical sections even for independent
        # lock objects on the same directory (as two processes have).
        root = str(tmp_path / "cache")
        order = []
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with CacheDirLock(root).exclusive():
                order.append("holder-in")
                entered.set()
                release.wait(10)
                order.append("holder-out")

        def contender():
            entered.wait(10)
            with CacheDirLock(root).exclusive():
                order.append("contender-in")

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=contender)]
        threads[0].start()
        threads[1].start()
        entered.wait(10)
        release.set()
        for thread in threads:
            thread.join(10)
        assert order == ["holder-in", "holder-out", "contender-in"]
