"""Tests for the flag registry, reporter, and suppression machinery."""

import pytest

from repro.flags.registry import DEFAULT_FLAGS, FLAG_REGISTRY, Flags, UnknownFlag
from repro.frontend.lexer import tokenize
from repro.frontend.source import Location, SourceFile
from repro.frontend.tokens import TokenKind
from repro.messages.message import Message, MessageCode
from repro.messages.reporter import Reporter
from repro.messages.suppress import SuppressionTable


class TestFlags:
    def test_defaults(self):
        assert DEFAULT_FLAGS.enabled("null")
        assert DEFAULT_FLAGS.enabled("allimponly")
        assert not DEFAULT_FLAGS.enabled("gcmode")

    def test_with_flag(self):
        f = DEFAULT_FLAGS.with_flag("null", False)
        assert not f.enabled("null")
        assert DEFAULT_FLAGS.enabled("null")  # immutable

    def test_from_args_minus_and_plus(self):
        f = Flags.from_args(["-null", "+gcmode"])
        assert not f.enabled("null")
        assert f.enabled("gcmode")

    def test_unknown_flag(self):
        with pytest.raises(UnknownFlag):
            Flags.from_args(["-nosuchflag"])
        with pytest.raises(UnknownFlag):
            DEFAULT_FLAGS.enabled("nosuchflag")
        with pytest.raises(UnknownFlag):
            Flags({"bogus": True})

    def test_malformed_arg(self):
        with pytest.raises(UnknownFlag):
            Flags.from_args(["null"])

    def test_registry_has_descriptions(self):
        for info in FLAG_REGISTRY.values():
            assert info.description
            assert info.category

    def test_convenience_properties(self):
        assert DEFAULT_FLAGS.implicit_only
        assert not Flags.from_args(["-allimponly"]).implicit_only
        assert Flags.from_args(["+gcmode"]).gc_mode


def loc(line, filename="t.c"):
    return Location(filename, line, 1)


class TestReporter:
    def test_report_and_render(self):
        r = Reporter()
        r.report(MessageCode.NULL_DEREF, loc(5), "Dereference of possibly null p")
        assert len(r) == 1
        assert "t.c:5" in r.render()

    def test_flag_filtering(self):
        r = Reporter(flags=Flags.from_args(["-null"]))
        r.report(MessageCode.NULL_DEREF, loc(5), "msg")
        assert len(r) == 0
        assert r.suppressed_count == 1

    def test_deduplication(self):
        r = Reporter()
        for _ in range(3):
            r.report(MessageCode.NULL_DEREF, loc(5), "same message")
        assert len(r) == 1

    def test_sub_locations_rendered_indented(self):
        r = Reporter()
        r.report(
            MessageCode.NULL_RET_GLOBAL, loc(6),
            "Function returns with non-null global gname referencing null storage",
            subs=[(loc(5), "Storage gname may become null")],
        )
        text = r.messages[0].render()
        lines = text.split("\n")
        assert lines[0].startswith("t.c:6: ")
        assert lines[1].startswith("   t.c:5: ")

    def test_sorted_by_location(self):
        r = Reporter()
        r.report(MessageCode.NULL_DEREF, loc(9), "later")
        r.report(MessageCode.NULL_DEREF, loc(2), "earlier")
        msgs = r.sorted_messages()
        assert msgs[0].location.line == 2

    def test_by_code(self):
        r = Reporter()
        r.report(MessageCode.NULL_DEREF, loc(1), "a")
        r.report(MessageCode.LEAK_SCOPE, loc(2), "b")
        grouped = r.by_code()
        assert set(grouped) == {MessageCode.NULL_DEREF, MessageCode.LEAK_SCOPE}


def controls_of(text):
    toks = tokenize(SourceFile("t.c", text))
    return [t for t in toks if t.kind is TokenKind.CONTROL]


def msg(line, code=MessageCode.NULL_DEREF):
    return Message(code, loc(line), f"message at {line}")


class TestSuppression:
    def test_ignore_end_region(self):
        table = SuppressionTable.from_controls(
            controls_of("/*@ignore@*/\n\n\n/*@end@*/")
        )
        kept, dropped = table.filter([msg(2), msg(10)])
        assert [m.location.line for m in kept] == [10]
        assert dropped == 1

    def test_unterminated_ignore_suppresses_rest_of_file(self):
        table = SuppressionTable.from_controls(controls_of("/*@ignore@*/"))
        kept, dropped = table.filter([msg(100)])
        assert kept == []
        assert dropped == 1

    def test_end_without_ignore_is_problem(self):
        table = SuppressionTable.from_controls(controls_of("/*@end@*/"))
        assert table.problems

    def test_line_ignore_budget(self):
        table = SuppressionTable.from_controls(controls_of("\n/*@i@*/"))
        kept, dropped = table.filter([msg(2), msg(2)])
        assert dropped == 1  # budget of one
        assert len(kept) == 1

    def test_line_ignore_n(self):
        table = SuppressionTable.from_controls(controls_of("\n/*@i2@*/"))
        kept, dropped = table.filter([msg(2), msg(2), msg(2)])
        assert dropped == 2
        assert len(kept) == 1

    def test_flag_region_suppresses_matching_code_only(self):
        table = SuppressionTable.from_controls(
            controls_of("/*@-null@*/\n\n/*@+null@*/")
        )
        null_msg = msg(2, MessageCode.NULL_DEREF)
        leak_msg = msg(2, MessageCode.LEAK_SCOPE)
        kept, dropped = table.filter([null_msg, leak_msg])
        assert kept == [leak_msg]
        assert dropped == 1

    def test_unknown_flag_in_control_comment(self):
        table = SuppressionTable.from_controls(controls_of("/*@-bogusflag@*/"))
        assert table.problems

    def test_different_file_not_suppressed(self):
        table = SuppressionTable.from_controls(controls_of("/*@ignore@*/"))
        other = Message(MessageCode.NULL_DEREF, loc(1, "other.c"), "m")
        kept, _ = table.filter([other])
        assert kept == [other]
