"""Null-pointer checking behaviour (paper section 4, 'Null Pointers')."""

from repro import Flags, check_source
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


def codes(source, flags=NOIMP):
    return [m.code for m in check_source(source, "t.c", flags=flags).messages]


def texts(source, flags=NOIMP):
    return [m.text for m in check_source(source, "t.c", flags=flags).messages]


class TestDereference:
    def test_deref_possibly_null_param(self):
        src = "int f(/*@null@*/ int *p) { return *p; }"
        assert MessageCode.NULL_DEREF in codes(src)

    def test_deref_after_comparison_guard(self):
        src = """int f(/*@null@*/ int *p) {
            if (p != NULL) { return *p; }
            return 0;
        }"""
        assert codes(src) == []

    def test_deref_after_bare_truth_test(self):
        src = "int f(/*@null@*/ int *p) { if (p) { return *p; } return 0; }"
        assert codes(src) == []

    def test_deref_in_wrong_branch(self):
        src = """int f(/*@null@*/ int *p) {
            if (p == NULL) { return *p; }
            return 0;
        }"""
        assert MessageCode.NULL_DEREF in codes(src)

    def test_negated_guard(self):
        src = "int f(/*@null@*/ int *p) { if (!p) { return 0; } return *p; }"
        assert codes(src) == []

    def test_arrow_access_message_shape(self):
        src = """struct s { int v; };
        int f(/*@null@*/ struct s *p) { return p->v; }"""
        msgs = texts(src)
        assert any(m.startswith("Arrow access from possibly null pointer p") for m in msgs)

    def test_index_of_possibly_null(self):
        src = "int f(/*@null@*/ int *p) { return p[0]; }"
        msgs = texts(src)
        assert any("Index of possibly null pointer" in m for m in msgs)

    def test_guard_with_and_short_circuit(self):
        src = "int f(/*@null@*/ int *p) { if (p != NULL && *p > 0) return 1; return 0; }"
        assert codes(src) == []

    def test_guard_with_or_on_false_branch(self):
        src = """int f(/*@null@*/ int *p) {
            if (p == NULL || *p == 0) { return 0; }
            return *p;
        }"""
        assert codes(src) == []

    def test_assert_guard(self):
        src = """#include <assert.h>
        int f(/*@null@*/ int *p) { assert(p != NULL); return *p; }"""
        assert codes(src) == []

    def test_unannotated_param_assumed_notnull(self):
        src = "int f(int *p) { return *p; }"
        assert codes(src) == []

    def test_malloc_result_possibly_null(self):
        src = """#include <stdlib.h>
        void f(void) { int *p = (int *) malloc(sizeof(int)); *p = 1; free(p); }"""
        assert MessageCode.NULL_DEREF in codes(src)

    def test_malloc_result_checked(self):
        src = """#include <stdlib.h>
        void f(void) {
            int *p = (int *) malloc(sizeof(int));
            if (p == NULL) { exit(1); }
            *p = 1;
            free(p);
        }"""
        assert codes(src) == []

    def test_relnull_deref_allowed(self):
        src = "int f(/*@relnull@*/ int *p) { return *p; }"
        assert codes(src) == []

    def test_null_reported_once_per_ref(self):
        src = """struct s { int a; int b; };
        int f(/*@null@*/ struct s *p) { return p->a + p->b; }"""
        assert codes(src).count(MessageCode.NULL_DEREF) == 1


class TestNullPredicates:
    def test_truenull_guard(self):
        src = """extern /*@truenull@*/ int isNull(/*@null@*/ char *x);
        char f(/*@null@*/ char *p) { if (!isNull(p)) { return *p; } return 'x'; }"""
        assert codes(src) == []

    def test_falsenull_guard(self):
        src = """extern /*@falsenull@*/ int nonNull(/*@null@*/ char *x);
        char f(/*@null@*/ char *p) { if (nonNull(p)) { return *p; } return 'x'; }"""
        assert codes(src) == []

    def test_truenull_true_branch_still_null(self):
        src = """extern /*@truenull@*/ int isNull(/*@null@*/ char *x);
        char f(/*@null@*/ char *p) { if (isNull(p)) { return *p; } return 'x'; }"""
        assert MessageCode.NULL_DEREF in codes(src)


class TestNullAtInterfaces:
    def test_possibly_null_passed_as_notnull_param(self):
        src = """extern void use(char *p);
        void f(/*@null@*/ char *p) { use(p); }"""
        assert MessageCode.NULL_PARAM in codes(src)

    def test_null_literal_passed_as_notnull_param(self):
        src = "extern void use(char *p);\nvoid f(void) { use(NULL); }"
        assert MessageCode.NULL_PARAM in codes(src)

    def test_null_ok_for_null_param(self):
        src = """extern void use(/*@null@*/ char *p);
        void f(/*@null@*/ char *p) { use(p); use(NULL); }"""
        assert codes(src) == []

    def test_figure2_global_null_at_exit(self):
        src = """extern char *gname;
        void setName(/*@null@*/ char *pname) { gname = pname; }"""
        result = check_source(src, "sample.c", flags=NOIMP)
        assert [m.code for m in result.messages] == [MessageCode.NULL_RET_GLOBAL]
        msg = result.messages[0]
        assert "non-null global gname referencing null storage" in msg.text
        assert msg.subs[0].text == "Storage gname may become null"

    def test_global_reassigned_before_exit_ok(self):
        src = """extern char *gname;
        void setName(/*@null@*/ char *pname) {
            gname = pname;
            gname = "fallback";
        }"""
        assert codes(src) == []

    def test_null_annotated_global_ok(self):
        src = """extern /*@null@*/ char *gname;
        void setName(/*@null@*/ char *pname) { gname = pname; }"""
        assert codes(src) == []

    def test_possibly_null_return_as_notnull(self):
        src = "char *f(/*@null@*/ char *p) { return p; }"
        assert MessageCode.NULL_RET_VALUE in codes(src)

    def test_null_return_annotated_ok(self):
        src = "/*@null@*/ char *f(/*@null@*/ char *p) { return p; }"
        assert codes(src) == []

    def test_null_field_derivable_from_return(self):
        src = """#include <stdlib.h>
        typedef struct { /*@null@*/ char *name; int n; } rec;
        rec *mk(void) {
            rec *r = (rec *) malloc(sizeof(rec));
            if (r == NULL) { exit(1); }
            r->name = NULL;
            r->n = 0;
            return r;
        }"""
        # name is annotated null: deriving null storage is fine.
        assert MessageCode.NULL_RET_VALUE not in codes(src)

    def test_unannotated_null_field_derivable_from_return(self):
        src = """#include <stdlib.h>
        typedef struct { char *name; int n; } rec;
        rec *mk(void) {
            rec *r = (rec *) malloc(sizeof(rec));
            if (r == NULL) { exit(1); }
            r->name = NULL;
            r->n = 0;
            return r;
        }"""
        result = check_source(src, "erc.c", flags=NOIMP)
        assert any(
            "derivable from return value" in m.text for m in result.messages
        )


class TestTernaryGuards:
    """The ?: condition guards each arm exactly like an if/else."""

    def test_guard_and_deref_in_true_arm(self):
        src = ("int f(/*@null@*/ int *p) "
               "{ return (p != NULL && *p > 0) ? 1 : 0; }")
        assert codes(src) == []

    def test_bare_truth_guard_in_true_arm(self):
        src = "int f(/*@null@*/ int *p) { return p ? *p : 0; }"
        assert codes(src) == []

    def test_negated_guard_in_false_arm(self):
        src = "int f(/*@null@*/ int *p) { return (p == NULL) ? 0 : *p; }"
        assert codes(src) == []

    def test_deref_in_wrong_arm_is_definitely_null(self):
        src = "int f(/*@null@*/ int *p) { return p ? 0 : *p; }"
        msgs = texts(src)
        assert any("null pointer" in m for m in msgs)

    def test_unrelated_condition_does_not_guard(self):
        src = "int f(/*@null@*/ int *p, int c) { return c ? *p : 0; }"
        assert MessageCode.NULL_DEREF in codes(src)

    def test_guarded_index_in_true_arm(self):
        src = "int f(/*@null@*/ int *p) { return (p != NULL) ? p[0] : 0; }"
        assert codes(src) == []

    def test_nested_ternary_keeps_refinement(self):
        src = ("int f(/*@null@*/ int *p) "
               "{ return p ? (*p > 0 ? *p : 1) : 0; }")
        assert codes(src) == []


class TestAssignmentInCondition:
    """if ((p = e) == NULL) refines p, the assignment's target."""

    def test_malloc_eq_null_early_return(self):
        src = """#include <stdlib.h>
        int f(void) {
            char *s;
            if ((s = (char *) malloc(4)) == NULL) { return 1; }
            s[0] = 'x';
            free(s);
            return 0;
        }"""
        assert codes(src) == []

    def test_malloc_ne_null_block_form(self):
        src = """#include <stdlib.h>
        int f(void) {
            char *t;
            if ((t = (char *) malloc(4)) != NULL) {
                t[0] = 'y';
                free(t);
                return 0;
            }
            return 1;
        }"""
        assert codes(src) == []

    def test_bare_truth_of_assignment(self):
        src = """#include <stdlib.h>
        int f(void) {
            char *s;
            if ((s = (char *) malloc(4))) {
                s[0] = 'x';
                free(s);
            }
            return 0;
        }"""
        assert codes(src) == []

    def test_use_outside_the_guarded_branch_still_flagged(self):
        src = """#include <stdlib.h>
        int f(void) {
            char *s;
            if ((s = (char *) malloc(4)) != NULL) { free(s); return 0; }
            s[0] = 'x';
            return 1;
        }"""
        assert MessageCode.NULL_DEREF in codes(src)

    def test_unchecked_malloc_still_flagged(self):
        src = """#include <stdlib.h>
        int f(void) {
            char *s;
            s = (char *) malloc(4);
            s[0] = 'x';
            free(s);
            return 0;
        }"""
        assert MessageCode.NULL_DEREF in codes(src)
