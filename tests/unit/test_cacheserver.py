"""Unit tests for the shared cache service (repro.incremental.cacheserver)."""

import json
import socket

import pytest

from repro.frontend.source import Location
from repro.incremental.cache import ResultCache, UnitMemo
from repro.incremental.cacheserver import (
    CacheClient,
    CacheServerThread,
    _decode_memo,
    _encode_memo,
)
from repro.messages.message import Message, MessageCode
from repro.obs.metrics import MetricsRegistry

FP = "ab" * 32
KEY = "cd" * 32


def _message():
    return Message(
        code=MessageCode.NULL_DEREF,
        location=Location("u.c", 3, 1),
        text="possible null dereference of p",
    )


def _memo():
    return UnitMemo(
        token_digest="11" * 32,
        iface_digest="22" * 32,
        iface_pickle=b"\x80\x04N.",  # pickled None: payload is opaque bytes
        includes=[("u.h", "33" * 32)],
        enum_consts={"N": 4},
    )


@pytest.fixture()
def server(tmp_path):
    thread = CacheServerThread(cache_dir=str(tmp_path / "shared"))
    try:
        yield thread
    finally:
        thread.close()


class TestRoundTrips:
    def test_ping(self, server):
        client = CacheClient(server.addr)
        assert client.ping()
        client.close()

    def test_result_round_trip(self, server):
        writer = CacheClient(server.addr)
        writer.put_result(FP, [_message()], suppressed=2)
        writer.close()
        reader = CacheClient(server.addr)
        found = reader.get_result(FP)
        assert found is not None
        messages, suppressed = found
        assert suppressed == 2
        assert [m.render() for m in messages] == [_message().render()]
        reader.close()

    def test_memo_round_trip(self, server):
        client = CacheClient(server.addr)
        client.put_memo(KEY, _memo())
        back = client.get_memo(KEY)
        assert back is not None
        assert back.token_digest == _memo().token_digest
        assert back.iface_pickle == _memo().iface_pickle
        assert back.includes == _memo().includes
        assert back.enum_consts == {"N": 4}
        client.close()

    def test_miss_is_not_an_error(self, server):
        client = CacheClient(server.addr)
        assert client.get_result(FP) is None
        assert client.get_memo(KEY) is None
        assert not client.dead
        client.close()

    def test_puts_land_in_the_backing_cache(self, server, tmp_path):
        client = CacheClient(server.addr)
        client.put_result(FP, [_message()], suppressed=0)
        client.close()
        cache = ResultCache(str(tmp_path / "shared"))
        assert cache.get_result(FP) is not None

    def test_stats_op(self, server):
        client = CacheClient(server.addr)
        client.get_result(FP)  # one miss
        stats = client.stats()
        assert stats is not None
        assert stats["counters"]["cacheserver.misses"] >= 1
        client.close()


class TestServerRobustness:
    def _raw(self, server, *lines):
        host, port = server.addr.rsplit(":", 1)
        with socket.create_connection((host, int(port)), timeout=5) as sock:
            file = sock.makefile("rwb")
            file.readline()  # ready line
            replies = []
            for line in lines:
                file.write(line + b"\n")
                file.flush()
                replies.append(json.loads(file.readline()))
            return replies

    def test_garbage_line_gets_error_reply_and_connection_survives(
        self, server
    ):
        replies = self._raw(
            server, b"not json", json.dumps({"op": "ping"}).encode()
        )
        assert replies[0]["ok"] is False
        assert replies[1] == {"ok": True, "pong": True}

    def test_unknown_op_is_rejected(self, server):
        (reply,) = self._raw(server, json.dumps({"op": "explode"}).encode())
        assert reply["ok"] is False and "unknown op" in reply["error"]

    def test_non_hex_key_is_rejected(self, server):
        (reply,) = self._raw(
            server,
            json.dumps(
                {"op": "get", "kind": "result", "key": "../escape"}
            ).encode(),
        )
        assert reply["ok"] is False

    def test_malformed_put_payload_is_rejected(self, server):
        (reply,) = self._raw(
            server,
            json.dumps(
                {"op": "put", "kind": "result", "key": FP,
                 "payload": {"messages": "nope"}}
            ).encode(),
        )
        assert reply["ok"] is False


class TestClientDegradation:
    def test_unreachable_server_degrades_to_miss_with_one_note(self):
        metrics = MetricsRegistry()
        client = CacheClient("127.0.0.1:1", metrics=metrics, timeout=0.5)
        assert client.get_result(FP) is None
        assert client.dead
        # Once dead, further probes are free local misses: no more
        # connect attempts, no more notes.
        assert client.get_memo(KEY) is None
        client.put_result(FP, [], 0)
        notes = client.drain_notes()
        assert len(notes) == 1 and "unavailable" in notes[0]
        assert client.drain_notes() == []
        assert metrics.count("cacheserver.client.errors") == 1

    def test_protocol_garbage_marks_client_dead(self, server):
        client = CacheClient(server.addr)
        assert client.ping()
        # Inject garbage by pointing the buffered file at a closed pipe.
        client._file.close()
        assert client.get_result(FP) is None
        assert client.dead
        client.close()

    def test_bad_address_raises_value_error(self):
        with pytest.raises(ValueError):
            CacheClient("not-an-address")


class TestMemoCodec:
    def test_round_trip(self):
        assert _decode_memo(_encode_memo(_memo())) == _memo()

    @pytest.mark.parametrize("broken", [
        None,
        [],
        {},
        {"token_digest": "x"},
        {**_encode_memo(_memo()), "iface_pickle": "!!not base64!!"},
        {**_encode_memo(_memo()), "enum_consts": {"N": "wat"}},
    ])
    def test_malformed_payloads_decode_to_none(self, broken):
        assert _decode_memo(broken) is None
