"""Checker behaviours not covered elsewhere: enums, casts, statics,
address-of, globals lists, owned/dependent pairs, keep parameters."""

from repro import Flags, check_source
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


def codes(source, flags=NOIMP):
    return [m.code for m in check_source(source, "t.c", flags=flags).messages]


def texts(source, flags=NOIMP):
    return [m.text for m in check_source(source, "t.c", flags=flags).messages]


class TestEnumsAndConstants:
    def test_enum_constants_resolve(self):
        src = """enum mode { OFF, ON = 5, AUTO };
        int f(void) { return ON + AUTO; }"""
        assert codes(src) == []

    def test_enum_in_switch(self):
        src = """typedef enum { RED, GREEN, BLUE } color;
        int f(color c) {
            switch (c) {
            case RED: return 1;
            case GREEN: return 2;
            default: return 3;
            }
        }"""
        assert codes(src) == []

    def test_char_constants(self):
        src = "int f(char c) { return c == 'x' ? 1 : 0; }"
        assert codes(src) == []


class TestCastsAndAddresses:
    def test_cast_preserves_tracking(self):
        src = """#include <stdlib.h>
        void f(void) {
            void *raw = malloc(8);
            char *p = (char *) raw;
            if (p == NULL) { return; }
            free(p);
        }"""
        assert codes(src) == []

    def test_address_of_local_is_static_storage(self):
        src = """#include <stdlib.h>
        void f(void) {
            int x = 1;
            int *p = &x;
            free(p);
        }"""
        msgs = texts(src)
        assert any("Static storage" in m for m in msgs)

    def test_address_of_passed_as_out(self):
        src = """extern void fill(/*@out@*/ int *slot);
        int f(void) {
            int x;
            fill(&x);
            return x;
        }"""
        assert codes(src) == []

    def test_void_pointer_round_trip(self):
        src = """#include <stdlib.h>
        extern void take(/*@only@*/ void *p);
        void f(void) {
            int *p = (int *) malloc(sizeof(int));
            if (p == NULL) { return; }
            *p = 1;
            take((void *) p);
        }"""
        assert codes(src) == []


class TestStatics:
    def test_static_local_zero_initialized(self):
        src = """int f(void) {
            static int counter;
            counter = counter + 1;
            return counter;
        }"""
        assert codes(src) == []

    def test_static_function_checked(self):
        src = """#include <stdlib.h>
        static void helper(void) { malloc(4); }"""
        assert MessageCode.LEAK_RESULT in codes(src)


class TestOwnedDependent:
    def test_owned_global_with_dependent_view(self):
        src = """#include <stdlib.h>
        extern /*@null@*/ /*@owned@*/ char *pool;
        extern /*@null@*/ /*@dependent@*/ char *cursor;
        void init(void) {
            pool = (char *) malloc(64);
            if (pool == NULL) { exit(1); }
            pool[0] = 0;
            cursor = pool;
        }"""
        assert codes(src) == []

    def test_dependent_param_cannot_take_fresh(self):
        src = """#include <stdlib.h>
        extern /*@dependent@*/ char *view;
        void f(void) {
            view = (char *) malloc(8);
        }"""
        assert MessageCode.BAD_TRANSFER in codes(src)

    def test_owned_released_ok(self):
        src = """#include <stdlib.h>
        void f(/*@owned@*/ char *p) { free(p); }"""
        assert codes(src) == []


class TestGlobalsListSemantics:
    def test_killed_global_may_be_released(self):
        src = """#include <stdlib.h>
        extern /*@only@*/ char *cache;
        void drop(void) /*@globals killed cache@*/ {
            free(cache);
        }"""
        assert codes(src) == []

    def test_unlisted_release_reported(self):
        src = """#include <stdlib.h>
        extern /*@only@*/ char *cache;
        void drop(void) {
            free(cache);
        }"""
        assert MessageCode.GLOBAL_RELEASED in codes(src)

    def test_callee_reestablishes_global_state(self):
        src = """extern /*@null@*/ char *buf;
        extern void refill(void) /*@globals buf@*/;
        char f(void) /*@globals buf@*/ {
            buf = NULL;
            refill();
            if (buf != NULL) { return *buf; }
            return ' ';
        }"""
        assert codes(src) == []


class TestKeepSemantics:
    def test_keep_satisfies_obligation(self):
        src = """extern void stash(/*@keep@*/ char *p);
        void f(/*@only@*/ char *p) { stash(p); }"""
        assert codes(src) == []

    def test_keep_param_inside_callee(self):
        # Inside the callee a keep parameter owns the storage and must
        # transfer it onward.
        src = """extern /*@only@*/ char *slot;
        void stash(/*@keep@*/ char *p) { slot = p; }"""
        msgs = texts(src)
        assert not any("not released before return" in m for m in msgs)

    def test_unconsumed_keep_param_reported(self):
        src = "void stash(/*@keep@*/ char *p) { }"
        msgs = texts(src)
        assert any("not released before return" in m for m in msgs)


class TestNotnullOverride:
    def test_notnull_overrides_typedef_null(self):
        src = """typedef /*@null@*/ char *maybe;
        int f(/*@notnull@*/ maybe p) { return *p; }"""
        assert codes(src) == []

    def test_typedef_null_applies_without_override(self):
        src = """typedef /*@null@*/ char *maybe;
        int f(maybe p) { return *p; }"""
        assert MessageCode.NULL_DEREF in codes(src)


class TestStrictIndexFlag:
    SRC = """typedef struct _pair { int a; int b; } pair;
    extern /*@out@*/ /*@only@*/ void *smalloc(size_t);
    int f(void) {
        int *p = (int *) smalloc(4 * sizeof(int));
        p[0] = 1;
        return p[1];  /* same element by default; independent under the flag */
    }
    """

    def test_default_indexes_collapse(self):
        # p[1] reads the same abstract element p[0] defined: no message
        # about the read (the leak of p is still reported).
        msgs = texts(self.SRC)
        assert not any("used before definition" in m for m in msgs)

    def test_strictindex_keeps_elements_apart(self):
        strict = Flags.from_args(["-allimponly", "+strictindex"])
        msgs = texts(self.SRC, flags=strict)
        assert any("used before definition" in m for m in msgs)


class TestImpoutsFlag:
    SRC = """#include <stdlib.h>
    extern void fill(int *slot);
    void f(void) {
        int *p = (int *) malloc(sizeof(int));
        if (p == NULL) { return; }
        fill(p);
        free(p);
    }
    """

    def test_default_requires_defined_argument(self):
        assert MessageCode.PARAM_NOT_DEFINED in codes(self.SRC)

    def test_impouts_assumes_out(self):
        relaxed = Flags.from_args(["-allimponly", "+impouts"])
        assert MessageCode.PARAM_NOT_DEFINED not in codes(self.SRC, flags=relaxed)


class TestRetValOtherFlag:
    SRC = """extern int compute(int x);
    void f(void) { compute(3); }
    """

    def test_default_ignores_unused_results(self):
        assert codes(self.SRC) == []

    def test_flag_reports_ignored_result(self):
        strict = Flags.from_args(["-allimponly", "+retvalother"])
        assert MessageCode.RET_VAL_IGNORED in codes(self.SRC, flags=strict)

    def test_void_cast_is_not_reported(self):
        strict = Flags.from_args(["-allimponly", "+retvalother"])
        src = "extern int compute(int x);\nvoid f(void) { (void) compute(3); }\n"
        assert codes(src, flags=strict) == []

    def test_void_function_not_reported(self):
        strict = Flags.from_args(["-allimponly", "+retvalother"])
        src = "extern void act(void);\nvoid f(void) { act(); }\n"
        assert codes(src, flags=strict) == []
