"""Exposure checking: observer and exposed (paper Appendix B)."""

from repro import Flags, check_source
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])

OBSERVER_API = """typedef struct _rec { int id; char tag; } *rec;
extern /*@observer@*/ rec peek(int which);
"""


def codes(source, flags=NOIMP):
    return [m.code for m in check_source(source, "t.c", flags=flags).messages]


def texts(source, flags=NOIMP):
    return [m.text for m in check_source(source, "t.c", flags=flags).messages]


class TestObserver:
    def test_reading_observer_storage_ok(self):
        src = OBSERVER_API + """
        int f(void) {
            rec r = peek(0);
            return r->id;
        }"""
        assert codes(src) == []

    def test_modifying_observer_storage_reported(self):
        src = OBSERVER_API + """
        void f(void) {
            rec r = peek(0);
            r->id = 99;
        }"""
        result_codes = codes(src)
        assert MessageCode.OBSERVER_MODIFIED in result_codes
        msgs = texts(src)
        assert any("Suspect modification of observer storage r" in m
                   for m in msgs)

    def test_freeing_observer_storage_reported(self):
        src = "#include <stdlib.h>\n" + OBSERVER_API + """
        void f(void) {
            rec r = peek(0);
            free(r);
        }"""
        assert MessageCode.OBSERVER_MODIFIED in codes(src)

    def test_observer_through_copy(self):
        src = OBSERVER_API + """
        void f(void) {
            rec r = peek(0);
            rec s = r;
            s->id = 1;
        }"""
        assert MessageCode.OBSERVER_MODIFIED in codes(src)

    def test_getenv_is_observer_in_stdlib(self):
        src = """#include <stdlib.h>
        void f(void) {
            char *home = getenv("HOME");
            if (home != NULL) {
                home[0] = 'x';
            }
        }"""
        assert MessageCode.OBSERVER_MODIFIED in codes(src)

    def test_observer_flag_disables(self):
        src = OBSERVER_API + """
        void f(void) {
            rec r = peek(0);
            r->id = 99;
        }"""
        off = Flags.from_args(["-allimponly", "-observertrans"])
        assert codes(src, flags=off) == []


class TestExposed:
    def test_exposed_may_be_modified(self):
        src = """typedef struct _b { int size; } *buffer;
        extern /*@exposed@*/ buffer contents(int which);
        void f(void) {
            buffer b = contents(0);
            b->size = 10;
        }"""
        assert codes(src) == []

    def test_exposed_may_not_be_released(self):
        src = """#include <stdlib.h>
        typedef struct _b { int size; } *buffer;
        extern /*@exposed@*/ buffer contents(int which);
        void f(void) {
            buffer b = contents(0);
            free(b);
        }"""
        msgs = texts(src)
        assert any("Dependent storage b passed as only" in m for m in msgs)
