"""Partial-struct field reads (`fielddef` flag).

Reading an unwritten field of a *partially* initialized struct draws the
refined ``uninit-field`` code; a wholly-undefined struct keeps the plain
use-before-def diagnosis, and a fully-written struct is clean.
"""

from repro import Flags, check_source
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])

STRUCT = "struct s { int x; int y; };\n"


def codes(source, flags=NOIMP):
    return [m.code for m in check_source(source, "t.c", flags=flags).messages]


def texts(source, flags=NOIMP):
    return [m.text for m in check_source(source, "t.c", flags=flags).messages]


class TestPartialReads:
    def test_unwritten_field_of_partial_struct(self):
        src = STRUCT + "int f(void) { struct s v; v.x = 1; return v.y; }"
        assert codes(src) == [MessageCode.UNINIT_FIELD]
        assert "v.y read while v is only partially initialized" in texts(src)[0]

    def test_fully_written_struct_is_clean(self):
        src = STRUCT + (
            "int f(void) { struct s v; v.x = 1; v.y = 2; return v.y; }"
        )
        assert codes(src) == []

    def test_reading_the_written_field_is_clean(self):
        src = STRUCT + "int f(void) { struct s v; v.x = 1; return v.x; }"
        assert codes(src) == []

    def test_read_poisons_to_stop_cascades(self):
        # One message per unwritten field, not one per use.
        src = STRUCT + (
            "int f(void) { struct s v; v.x = 1; return v.y + v.y; }"
        )
        assert codes(src) == [MessageCode.UNINIT_FIELD]


class TestDiagnosisBoundary:
    def test_wholly_undefined_struct_keeps_use_before_def(self):
        # No field written at all: that is a plain use-before-def, so
        # the uninitialized-read campaign class keeps its witness.
        src = STRUCT + "int f(void) { struct s v; return v.y; }"
        assert codes(src) == [MessageCode.USE_BEFORE_DEF]

    def test_plain_scalar_keeps_use_before_def(self):
        src = "int f(void) { int x; return x; }"
        assert codes(src) == [MessageCode.USE_BEFORE_DEF]


class TestFlagGating:
    def test_minus_fielddef_falls_back_to_use_before_def(self):
        src = STRUCT + "int f(void) { struct s v; v.x = 1; return v.y; }"
        off = Flags.from_args(["-allimponly", "-fielddef"])
        assert codes(src, off) == [MessageCode.USE_BEFORE_DEF]
