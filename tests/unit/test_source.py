"""Tests for source files and location mapping."""

from repro.frontend.source import BUILTIN_LOCATION, Location, SourceFile, SourceManager


class TestLocation:
    def test_str_is_lclint_style(self):
        assert str(Location("sample.c", 6, 3)) == "sample.c:6"

    def test_ordering_by_file_then_line(self):
        a = Location("a.c", 10, 1)
        b = Location("b.c", 1, 1)
        assert a < b
        assert Location("a.c", 2, 1) < Location("a.c", 10, 1)

    def test_with_column(self):
        loc = Location("f.c", 3, 1).with_column(9)
        assert loc.column == 9
        assert loc.line == 3

    def test_builtin_location(self):
        assert BUILTIN_LOCATION.filename == "<builtin>"


class TestSourceFile:
    def test_offset_to_location_first_line(self):
        sf = SourceFile("t.c", "abc\ndef\n")
        loc = sf.location(1)
        assert (loc.line, loc.column) == (1, 2)

    def test_offset_to_location_later_line(self):
        sf = SourceFile("t.c", "abc\ndef\nghi")
        loc = sf.location(8)
        assert (loc.line, loc.column) == (3, 1)

    def test_line_text(self):
        sf = SourceFile("t.c", "first\nsecond\nthird")
        assert sf.line_text(2) == "second"
        assert sf.line_text(3) == "third"
        assert sf.line_text(99) == ""
        assert sf.line_text(0) == ""

    def test_line_count(self):
        assert SourceFile("t.c", "a\nb\nc").line_count == 3
        assert SourceFile("t.c", "").line_count == 1

    def test_negative_offset_clamped(self):
        sf = SourceFile("t.c", "xyz")
        assert sf.location(-5).line == 1


class TestSourceManager:
    def test_add_and_get(self):
        mgr = SourceManager()
        mgr.add("a.c", "int x;")
        assert mgr.get("a.c") is not None
        assert mgr.get("missing.c") is None

    def test_names_sorted(self):
        mgr = SourceManager()
        mgr.add("z.c", "")
        mgr.add("a.c", "")
        assert mgr.names() == ["a.c", "z.c"]

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "disk.c"
        path.write_text("int y;\n")
        mgr = SourceManager()
        sf = mgr.load(str(path))
        assert sf.text == "int y;\n"
        # Cached: same object on second load.
        assert mgr.load(str(path)) is sf
