"""Checker behaviour across control-flow constructs (loops-as-ifs,
switch, do-while, goto, early exits)."""

from repro import Flags, check_source
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


def codes(source, flags=NOIMP):
    return [m.code for m in check_source(source, "t.c", flags=flags).messages]


class TestLoopsAsIfs:
    def test_while_body_analyzed_once(self):
        src = """#include <stdlib.h>
        void f(int n) {
            while (n > 0) {
                char *p = (char *) malloc(4);
                if (p != NULL) { free(p); }
                n = n - 1;
            }
        }"""
        assert codes(src) == []

    def test_leak_inside_loop_detected(self):
        src = """#include <stdlib.h>
        void f(int n) {
            while (n > 0) {
                char *p = (char *) malloc(4);
                n = n - 1;
            }
        }"""
        assert MessageCode.LEAK_SCOPE in codes(src)

    def test_null_state_merges_after_loop(self):
        src = """typedef /*@null@*/ struct _n { /*@null@*/ struct _n *next; } *node;
        int f(/*@temp@*/ node n) {
            int hops = 0;
            while (n != NULL) {
                n = n->next;
                hops = hops + 1;
            }
            return hops;
        }"""
        assert codes(src) == []

    def test_guard_from_loop_condition_applies_in_body(self):
        src = """int f(/*@null@*/ /*@temp@*/ int *p) {
            int total = 0;
            while (p != NULL) {
                total = total + *p;
                p = NULL;
            }
            return total;
        }"""
        assert codes(src) == []

    def test_for_loop_with_free_in_body(self):
        src = """#include <stdlib.h>
        void f(void) {
            int i;
            for (i = 0; i < 3; i++) {
                int *p = (int *) malloc(sizeof(int));
                if (p == NULL) { return; }
                *p = i;
                free(p);
            }
        }"""
        assert codes(src) == []

    def test_do_while_body_checked(self):
        src = """#include <stdlib.h>
        void f(void) {
            do {
                char *p = (char *) malloc(4);
            } while (0);
        }"""
        assert MessageCode.LEAK_SCOPE in codes(src)

    def test_break_state_merges(self):
        src = """#include <stdlib.h>
        void f(int n, /*@only@*/ char *p) {
            while (n > 0) {
                if (n == 5) { free(p); break; }
                n = n - 1;
            }
        }"""
        # released on the break path only: inconsistent at the join
        assert MessageCode.CONFLUENCE in codes(src)

    def test_continue_state_merges(self):
        src = """void f(int n) {
            int x;
            while (n > 0) {
                if (n == 2) { continue; }
                x = 1;
                n = n - x;
            }
        }"""
        assert codes(src) == []


class TestSwitch:
    def test_release_in_every_case_ok(self):
        src = """#include <stdlib.h>
        void f(int k, /*@only@*/ char *p) {
            switch (k) {
            case 1: free(p); break;
            default: free(p); break;
            }
        }"""
        assert codes(src) == []

    def test_release_missing_in_one_case(self):
        src = """#include <stdlib.h>
        void f(int k, /*@only@*/ char *p) {
            switch (k) {
            case 1: free(p); break;
            default: break;
            }
        }"""
        result = codes(src)
        assert MessageCode.CONFLUENCE in result or (
            MessageCode.ONLY_NOT_RELEASED in result
        )

    def test_switch_without_default_keeps_entry_path(self):
        src = """#include <stdlib.h>
        void f(int k, /*@only@*/ char *p) {
            switch (k) {
            case 1: free(p); break;
            }
        }"""
        # the no-case path reaches exit with p unreleased
        result = codes(src)
        assert result != []

    def test_fallthrough_definition(self):
        src = """int f(int k) {
            int x;
            switch (k) {
            case 1: x = 1;
            case 2: x = 2; break;
            default: x = 3;
            }
            return x;
        }"""
        assert codes(src) == []


class TestEarlyExits:
    def test_exit_call_ends_path(self):
        src = """#include <stdlib.h>
        int f(/*@null@*/ int *p) {
            if (p == NULL) { exit(1); }
            return *p;
        }"""
        assert codes(src) == []

    def test_abort_ends_path(self):
        src = """#include <stdlib.h>
        int f(/*@null@*/ int *p) {
            if (p == NULL) { abort(); }
            return *p;
        }"""
        assert codes(src) == []

    def test_multiple_returns_each_checked(self):
        src = """char *f(int k, /*@null@*/ /*@temp@*/ char *a) {
            if (k) { return a; }
            return "fixed";
        }"""
        result = check_source(src, "t.c", flags=NOIMP)
        # only the possibly-null return is flagged, at its own line
        assert [m.code for m in result.messages] == [MessageCode.NULL_RET_VALUE]
        assert result.messages[0].location.line == 2

    def test_goto_cuts_analysis(self):
        src = """void f(int k) {
            int x;
            if (k) { goto out; }
            x = 1;
            out: ;
        }"""
        assert codes(src) == []


class TestTernaryAndComma:
    def test_ternary_merges_values(self):
        src = """char *f(int k, /*@null@*/ /*@temp@*/ char *a,
                          /*@temp@*/ char *b) {
            char *r = k ? a : b;
            return r;
        }"""
        assert MessageCode.NULL_RET_VALUE in codes(src)

    def test_comma_evaluates_in_order(self):
        src = """int f(void) {
            int x;
            int y;
            y = (x = 3, x + 1);
            return y;
        }"""
        assert codes(src) == []
