"""Tests for the instrumented heap (the run-time baseline's core)."""

from repro.frontend.source import Location
from repro.runtime.heap import (
    NULL,
    UNDEFINED,
    InstrumentedHeap,
    Pointer,
    RuntimeEventKind,
)

LOC = Location("prog.c", 10, 1)
ALLOC_LOC = Location("prog.c", 3, 1)


def heap_and_block(slots=4):
    heap = InstrumentedHeap()
    obj = heap.new_object("heap", slots, slots, ALLOC_LOC, label="blk")
    return heap, obj


class TestLoadStore:
    def test_store_then_load(self):
        heap, obj = heap_and_block()
        heap.store(Pointer(obj, 1), 42, LOC)
        assert heap.load(Pointer(obj, 1), LOC) == 42
        assert heap.events == []

    def test_uninitialized_read(self):
        heap, obj = heap_and_block()
        heap.load(Pointer(obj, 0), LOC)
        assert heap.events[0].kind is RuntimeEventKind.UNINIT_READ
        assert heap.events[0].alloc_site == ALLOC_LOC

    def test_null_read_and_write(self):
        heap, _ = heap_and_block()
        heap.load(NULL, LOC)
        heap.store(NULL, 1, LOC)
        kinds = [e.kind for e in heap.events]
        assert kinds == [RuntimeEventKind.NULL_DEREF, RuntimeEventKind.NULL_DEREF]

    def test_out_of_bounds(self):
        heap, obj = heap_and_block(slots=2)
        heap.store(Pointer(obj, 5), 1, LOC)
        heap.load(Pointer(obj, -1), LOC)
        kinds = {e.kind for e in heap.events}
        assert kinds == {RuntimeEventKind.OUT_OF_BOUNDS}

    def test_use_after_free(self):
        heap, obj = heap_and_block()
        heap.store(Pointer(obj, 0), 7, LOC)
        heap.free(Pointer(obj, 0), LOC)
        heap.load(Pointer(obj, 0), LOC)
        heap.store(Pointer(obj, 0), 8, LOC)
        kinds = [e.kind for e in heap.events]
        assert kinds == [
            RuntimeEventKind.USE_AFTER_FREE,
            RuntimeEventKind.USE_AFTER_FREE,
        ]


class TestFree:
    def test_free_null_is_noop(self):
        heap, _ = heap_and_block()
        heap.free(NULL, LOC)
        assert heap.events == []

    def test_double_free(self):
        heap, obj = heap_and_block()
        heap.free(Pointer(obj, 0), LOC)
        heap.free(Pointer(obj, 0), LOC)
        assert heap.events[0].kind is RuntimeEventKind.DOUBLE_FREE

    def test_interior_pointer_free(self):
        heap, obj = heap_and_block()
        heap.free(Pointer(obj, 2), LOC)
        assert heap.events[0].kind is RuntimeEventKind.INVALID_FREE
        assert "interior" in heap.events[0].detail
        assert not obj.freed

    def test_free_of_non_heap(self):
        heap = InstrumentedHeap()
        obj = heap.new_object("static", 2, 2, ALLOC_LOC)
        heap.free(Pointer(obj, 0), LOC)
        assert heap.events[0].kind is RuntimeEventKind.INVALID_FREE

    def test_counters(self):
        heap = InstrumentedHeap()
        a = heap.new_object("heap", 1, 1, ALLOC_LOC)
        b = heap.new_object("heap", 1, 1, ALLOC_LOC)
        heap.new_object("local", 1, 1, ALLOC_LOC)
        assert heap.alloc_count == 2
        assert heap.peak_live == 2
        heap.free(Pointer(a, 0), LOC)
        assert heap.free_count == 1
        assert heap.live_blocks == 1
        assert heap.leaked_blocks() == [b]


class TestLeakReporting:
    def test_report_leaks(self):
        heap, obj = heap_and_block()
        count = heap.report_leaks()
        assert count == 1
        leak = heap.events[-1]
        assert leak.kind is RuntimeEventKind.LEAK
        assert leak.alloc_site == ALLOC_LOC

    def test_freed_blocks_not_leaked(self):
        heap, obj = heap_and_block()
        heap.free(Pointer(obj, 0), LOC)
        assert heap.report_leaks() == 0

    def test_event_render(self):
        heap, obj = heap_and_block()
        heap.load(Pointer(obj, 0), LOC)
        text = heap.events[0].render()
        assert "prog.c:10" in text
        assert "uninitialized" in text
        assert "prog.c:3" in text


class TestUndefinedSentinel:
    def test_singleton(self):
        from repro.runtime.heap import _Undefined

        assert _Undefined() is UNDEFINED

    def test_repr(self):
        assert repr(UNDEFINED) == "UNDEFINED"


class TestPointer:
    def test_null(self):
        assert NULL.is_null
        assert repr(NULL) == "NULL"

    def test_not_null(self):
        heap, obj = heap_and_block()
        assert not Pointer(obj, 1).is_null
