"""Tests for the token-stream preprocessor."""

import pytest

from repro.frontend.preprocessor import (
    PreprocessError,
    Preprocessor,
    parse_int_constant,
)
from repro.frontend.source import SourceManager
from repro.frontend.tokens import TokenKind


def pp_values(text, defines=None, headers=None, sources=None):
    mgr = sources or SourceManager()
    pp = Preprocessor(mgr, defines=defines, system_headers=headers)
    toks = pp.preprocess_text(text, "t.c")
    return [t.value for t in toks if t.kind is not TokenKind.EOF]


class TestObjectMacros:
    def test_simple_define(self):
        assert pp_values("#define N 10\nint x = N;") == ["int", "x", "=", "10", ";"]

    def test_cmdline_define(self):
        assert pp_values("int x = N;", defines={"N": "42"}) == [
            "int", "x", "=", "42", ";",
        ]

    def test_undef(self):
        values = pp_values("#define N 10\n#undef N\nint x = N;")
        assert values == ["int", "x", "=", "N", ";"]

    def test_nested_expansion(self):
        values = pp_values("#define A B\n#define B 7\nA")
        assert values == ["7"]

    def test_self_reference_does_not_loop(self):
        values = pp_values("#define X X\nX")
        assert values == ["X"]

    def test_null_macro(self):
        values = pp_values("NULL", defines={"NULL": "((void *)0)"})
        assert values == ["(", "(", "void", "*", ")", "0", ")"]


class TestFunctionMacros:
    def test_simple_call(self):
        values = pp_values("#define SQR(x) ((x) * (x))\nSQR(a)")
        assert values == ["(", "(", "a", ")", "*", "(", "a", ")", ")"]

    def test_two_arguments(self):
        values = pp_values("#define ADD(a, b) a + b\nADD(1, 2)")
        assert values == ["1", "+", "2"]

    def test_nested_parens_in_argument(self):
        values = pp_values("#define ID(x) x\nID(f(a, b))")
        assert values == ["f", "(", "a", ",", "b", ")"]

    def test_name_without_call_is_plain(self):
        values = pp_values("#define F(x) x\nint F;")
        assert values == ["int", "F", ";"]

    def test_stringize(self):
        values = pp_values("#define S(x) #x\nS(abc)")
        assert values == ['"abc"']

    def test_token_paste(self):
        values = pp_values("#define GLUE(a, b) a ## b\nGLUE(foo, bar)")
        assert values == ["foobar"]

    def test_wrong_arity_raises(self):
        with pytest.raises(PreprocessError):
            pp_values("#define F(a, b) a\nF(1)")

    def test_variadic(self):
        values = pp_values("#define V(...) __VA_ARGS__\nV(1, 2)")
        assert values == ["1", ",", "2"]


class TestConditionals:
    def test_ifdef_taken(self):
        assert pp_values("#define A\n#ifdef A\nx\n#endif") == ["x"]

    def test_ifdef_not_taken(self):
        assert pp_values("#ifdef A\nx\n#endif") == []

    def test_ifndef(self):
        assert pp_values("#ifndef A\nx\n#endif") == ["x"]

    def test_else(self):
        assert pp_values("#ifdef A\nx\n#else\ny\n#endif") == ["y"]

    def test_elif(self):
        text = "#define B 1\n#if 0\nx\n#elif B\ny\n#else\nz\n#endif"
        assert pp_values(text) == ["y"]

    def test_nested_conditionals(self):
        text = "#define A\n#ifdef A\n#ifdef B\nx\n#else\ny\n#endif\n#endif"
        assert pp_values(text) == ["y"]

    def test_if_defined(self):
        assert pp_values("#define A\n#if defined(A)\nx\n#endif") == ["x"]

    def test_if_arithmetic(self):
        assert pp_values("#if 2 + 2 == 4\nx\n#endif") == ["x"]
        assert pp_values("#if 1 > 2\nx\n#endif") == []

    def test_if_logical_and_ternary(self):
        assert pp_values("#if 1 && (0 || 1)\nx\n#endif") == ["x"]
        assert pp_values("#if 1 ? 0 : 1\nx\n#endif") == []

    def test_undefined_identifier_is_zero(self):
        assert pp_values("#if UNDEFINED_THING\nx\n#endif") == []

    def test_unterminated_conditional_raises(self):
        with pytest.raises(PreprocessError):
            pp_values("#ifdef A\nx")

    def test_stray_endif_raises(self):
        with pytest.raises(PreprocessError):
            pp_values("#endif")

    def test_include_guard_idiom(self):
        text = "#ifndef H\n#define H\nint x;\n#endif"
        assert pp_values(text) == ["int", "x", ";"]


class TestIncludes:
    def test_local_include(self):
        mgr = SourceManager()
        mgr.add("defs.h", "int from_header;")
        values = pp_values('#include "defs.h"\nint after;', sources=mgr)
        assert values == ["int", "from_header", ";", "int", "after", ";"]

    def test_system_include(self):
        values = pp_values(
            "#include <lib.h>\nx", headers={"lib.h": "int provided;"}
        )
        assert values == ["int", "provided", ";", "x"]

    def test_missing_include_raises(self):
        with pytest.raises(PreprocessError):
            pp_values('#include "nonexistent.h"')

    def test_double_include_is_once(self):
        mgr = SourceManager()
        mgr.add("h.h", "int once;")
        values = pp_values('#include "h.h"\n#include "h.h"', sources=mgr)
        assert values.count("once") == 1

    def test_nested_include(self):
        mgr = SourceManager()
        mgr.add("inner.h", "int inner;")
        mgr.add("outer.h", '#include "inner.h"\nint outer;')
        values = pp_values('#include "outer.h"', sources=mgr)
        assert values == ["int", "inner", ";", "int", "outer", ";"]

    def test_macros_propagate_from_headers(self):
        mgr = SourceManager()
        mgr.add("m.h", "#define FROM_HEADER 5")
        values = pp_values('#include "m.h"\nFROM_HEADER', sources=mgr)
        assert values == ["5"]


class TestDirectivesMisc:
    def test_error_directive(self):
        with pytest.raises(PreprocessError, match="boom"):
            pp_values("#error boom")

    def test_error_in_untaken_branch_ignored(self):
        assert pp_values("#if 0\n#error no\n#endif\nx") == ["x"]

    def test_pragma_ignored(self):
        assert pp_values("#pragma pack(1)\nx") == ["x"]

    def test_unknown_directive_raises(self):
        with pytest.raises(PreprocessError):
            pp_values("#frobnicate")

    def test_macro_use_location(self):
        mgr = SourceManager()
        pp = Preprocessor(mgr, defines={"M": "1 + 2"})
        toks = pp.preprocess_text("x\nM", "t.c")
        expanded = [t for t in toks if t.value in ("1", "+", "2")]
        assert all(t.location.line == 2 for t in expanded)


class TestIntConstants:
    def test_decimal(self):
        assert parse_int_constant("42") == 42

    def test_hex(self):
        assert parse_int_constant("0x1F") == 31

    def test_octal(self):
        assert parse_int_constant("077") == 63

    def test_suffixes_stripped(self):
        assert parse_int_constant("10UL") == 10
        assert parse_int_constant("7L") == 7
