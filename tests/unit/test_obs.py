"""The observability layer: span tracing, metrics, sinks, CLI bundle."""

import json

import pytest

from repro.obs import (
    ChromeTraceSink,
    JsonLinesSink,
    MemorySink,
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    Observability,
    Tracer,
)
from repro.obs.metrics import GLOBAL_METRICS, LATENCY_BUCKETS_S
from repro.obs.trace import NULL_SPAN


# ---------------------------------------------------------------------------
# spans and tracers
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_record_parentage(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("batch", cat="batch") as batch:
            with tracer.span("unit", cat="unit", unit="a.c") as unit:
                with tracer.span("parse") as parse:
                    pass
        by_name = {e["name"]: e for e in sink.events}
        assert set(by_name) == {"batch", "unit", "parse"}
        assert by_name["batch"]["parent"] is None
        assert by_name["unit"]["parent"] == by_name["batch"]["id"]
        assert by_name["parse"]["parent"] == by_name["unit"]["id"]
        assert by_name["unit"]["args"] == {"unit": "a.c"}
        assert (batch.id, unit.id, parse.id) == tuple(
            by_name[n]["id"] for n in ("batch", "unit", "parse")
        )

    def test_siblings_share_a_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("batch"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        by_name = {e["name"]: e for e in sink.events}
        assert by_name["first"]["parent"] == by_name["batch"]["id"]
        assert by_name["second"]["parent"] == by_name["batch"]["id"]

    def test_span_measures_duration(self):
        tracer = Tracer()  # sink-less: still measures
        sp = tracer.span("work")
        duration = sp.end()
        assert duration >= 0.0
        assert sp.duration == duration

    def test_double_end_is_idempotent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        sp = tracer.span("once")
        sp.end()
        sp.end()
        assert len(sink.events) == 1

    def test_annotate_lands_in_args(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        sp = tracer.span("batch")
        sp.annotate(units=3)
        sp.end()
        assert sink.events[0]["args"] == {"units": 3}

    def test_sinkless_tracer_is_not_emitting(self):
        assert Tracer().emitting is False
        assert Tracer(MemorySink()).emitting is True

    def test_add_complete_is_a_child_of_the_open_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("preprocess") as sp:
            tracer.add_complete("lex", start=sp.start, duration=0.001)
        lex = next(e for e in sink.events if e["name"] == "lex")
        pre = next(e for e in sink.events if e["name"] == "preprocess")
        assert lex["parent"] == pre["id"]
        assert lex["dur_us"] == 1000

    def test_add_complete_without_sink_is_a_no_op(self):
        tracer = Tracer()
        tracer.add_complete("lex", start=0.0, duration=0.001)  # no crash

    def test_out_of_order_end_tolerated(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.end()  # straggler: inner still open
        inner.end()
        assert {e["name"] for e in sink.events} == {"outer", "inner"}

    def test_timestamps_are_relative_to_the_tracer_epoch(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("a"):
            pass
        event = sink.events[0]
        assert event["ts_us"] >= 0
        assert event["dur_us"] >= 0

    def test_close_closes_the_sink(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.close()
        assert sink.closed


class TestNullTracer:
    def test_is_not_emitting(self):
        assert NULL_TRACER.emitting is False
        assert NullTracer.emitting is False

    def test_span_is_the_shared_inert_span(self):
        sp = NULL_TRACER.span("anything", cat="unit", unit="x")
        assert sp is NULL_SPAN
        with sp as inner:
            inner.annotate(ignored=True)
        assert sp.end() == 0.0
        assert sp.duration == 0.0

    def test_close_and_add_complete_are_no_ops(self):
        NULL_TRACER.add_complete("lex", start=0.0, duration=1.0)
        NULL_TRACER.close()


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("cache.result.hit")
        reg.inc("cache.result.hit", 2)
        assert reg.count("cache.result.hit") == 3
        assert reg.count("never.touched") == 0

    def test_histogram_buckets_by_latency(self):
        reg = MetricsRegistry()
        reg.observe("engine.run_s", 0.003)
        reg.observe("engine.run_s", 0.05)
        reg.observe("engine.run_s", 100.0)
        hist = reg.histogram("engine.run_s")
        assert hist.count == 3
        assert hist.sum_s == pytest.approx(100.053)
        dumped = hist.to_dict()
        assert dumped["buckets"]["<=0.005"] == 1
        assert dumped["buckets"]["<=0.1"] == 1
        assert dumped["buckets"]["+inf"] == 1

    def test_bucket_count_matches_bounds(self):
        reg = MetricsRegistry()
        reg.observe("x", 0.0)
        dumped = reg.histogram("x").to_dict()
        assert len(dumped["buckets"]) == len(LATENCY_BUCKETS_S) + 1

    def test_to_dict_is_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.inc("b.counter")
        reg.inc("a.counter")
        reg.observe("z.hist", 0.01)
        out = reg.to_dict()
        assert list(out["counters"]) == ["a.counter", "b.counter"]
        assert list(out["histograms"]) == ["z.hist"]

    def test_dump_json_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("engine.units", 6)
        path = tmp_path / "sub" / "metrics.json"
        reg.dump_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["counters"]["engine.units"] == 6

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("b", 0.1)
        reg.reset()
        assert reg.to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_global_registry_exists_and_is_a_registry(self):
        assert isinstance(GLOBAL_METRICS, MetricsRegistry)

    def test_gauges_hold_the_latest_level(self):
        reg = MetricsRegistry()
        reg.set_gauge("service.queue.depth", 7)
        reg.set_gauge("service.queue.depth", 3)  # gauges can go down
        assert reg.gauge("service.queue.depth") == 3
        assert reg.gauge("never.set") == 0
        assert reg.to_dict()["gauges"] == {"service.queue.depth": 3}

    def test_thread_safety_under_contention(self):
        import threading

        reg = MetricsRegistry()

        def hammer():
            for _ in range(500):
                reg.inc("hits")
                reg.observe("lat", 0.002)
                reg.set_gauge("depth", 1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.count("hits") == 8 * 500
        assert reg.histogram("lat").count == 8 * 500


class TestHistogramPercentile:
    def test_empty_is_zero(self):
        from repro.obs.metrics import Histogram

        assert Histogram().percentile(0.5) == 0.0

    def test_interpolates_inside_a_bucket(self):
        from repro.obs.metrics import Histogram

        hist = Histogram()
        for _ in range(100):
            hist.observe(0.003)  # all in the (0.001, 0.005] bucket
        p50 = hist.percentile(0.5)
        assert 0.001 <= p50 <= 0.005

    def test_percentiles_are_monotone(self):
        reg = MetricsRegistry()
        for seconds in (0.0005, 0.002, 0.002, 0.05, 0.3, 1.5):
            reg.observe("lat", seconds)
        hist = reg.histogram("lat")
        assert (hist.percentile(0.5)
                <= hist.percentile(0.9)
                <= hist.percentile(0.99))

    def test_overflow_bucket_reports_its_lower_bound(self):
        from repro.obs.metrics import Histogram

        hist = Histogram()
        hist.observe(100.0)
        assert hist.percentile(0.99) == LATENCY_BUCKETS_S[-1]

    def test_p50_lands_in_the_median_bucket(self):
        from repro.obs.metrics import Histogram

        hist = Histogram()
        for _ in range(10):
            hist.observe(0.0005)  # <=0.001
        for _ in range(10):
            hist.observe(1.0)  # <=2.0
        # The median straddles the two populations; p50 must not be in
        # the far tail of either.
        assert hist.percentile(0.4) <= 0.001
        assert hist.percentile(0.6) > 0.5


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------


def _trace_three_spans(sink):
    tracer = Tracer(sink)
    with tracer.span("batch", cat="batch", units=1):
        with tracer.span("unit", cat="unit", unit="a.c"):
            pass
        with tracer.span("analyze"):
            pass
    tracer.close()


class TestJsonLinesSink:
    def test_streams_one_event_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _trace_three_spans(JsonLinesSink(str(path)))
        lines = path.read_text().strip().split("\n")
        events = [json.loads(line) for line in lines]
        assert [e["name"] for e in events] == ["unit", "analyze", "batch"]
        batch = events[-1]
        assert all(e["parent"] == batch["id"] for e in events[:-1])

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "trace.jsonl"
        _trace_three_spans(JsonLinesSink(str(path)))
        assert path.exists()


class TestChromeTraceSink:
    def test_writes_complete_events_on_close(self, tmp_path):
        path = tmp_path / "trace.json"
        _trace_three_spans(ChromeTraceSink(str(path)))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert len(events) == 3
        assert all(e["ph"] == "X" for e in events)
        # ts-sorted: the batch span opened first.
        assert events[0]["name"] == "batch"
        assert events[0]["args"]["units"] == 1
        child = next(e for e in events if e["name"] == "unit")
        assert child["args"]["parent_span_id"] == events[0]["args"]["span_id"]

    def test_events_carry_pid_tid(self, tmp_path):
        path = tmp_path / "trace.json"
        _trace_three_spans(ChromeTraceSink(str(path)))
        events = json.loads(path.read_text())["traceEvents"]
        assert all(e["pid"] == 1 and e["tid"] == 1 for e in events)


# ---------------------------------------------------------------------------
# the CLI bundle
# ---------------------------------------------------------------------------


class TestObservability:
    def test_default_is_sinkless_and_global(self):
        obs = Observability()
        assert obs.tracer.emitting is False
        assert obs.metrics is GLOBAL_METRICS
        obs.finish()  # no outputs: a no-op

    def test_from_options_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            Observability.from_options(
                trace_out="t.json", trace_format="xml"
            )

    def test_from_options_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs = Observability.from_options(trace_out=str(path))
        assert obs.tracer.emitting
        with obs.tracer.span("batch"):
            pass
        obs.finish()
        assert json.loads(path.read_text().strip())["name"] == "batch"

    def test_from_options_chrome(self, tmp_path):
        path = tmp_path / "t.json"
        obs = Observability.from_options(
            trace_out=str(path), trace_format="chrome"
        )
        with obs.tracer.span("batch"):
            pass
        obs.finish()
        assert "traceEvents" in json.loads(path.read_text())

    def test_finish_writes_metrics_dump(self, tmp_path):
        path = tmp_path / "metrics.json"
        obs = Observability.from_options(metrics_out=str(path))
        assert obs.tracer.emitting is False
        obs.metrics.inc("obs.test.finish_writes_metrics")
        obs.finish()
        payload = json.loads(path.read_text())
        assert payload["counters"]["obs.test.finish_writes_metrics"] >= 1


class TestCrashBundleCounters:
    def test_written_bundle_is_counted(self, tmp_path):
        from repro.core.faults import write_crash_bundle

        before = GLOBAL_METRICS.count("crashes.bundles.written")
        path = write_crash_bundle(
            str(tmp_path / "crashes"), phase="analyze", unit="t.c",
            exc=ValueError("boom"), function="f", source_text="int x;",
        )
        assert path is not None
        assert GLOBAL_METRICS.count("crashes.bundles.written") == before + 1

    def test_unwritable_bundle_counts_a_failure(self, tmp_path):
        from repro.core.faults import write_crash_bundle

        target = tmp_path / "not-a-dir"
        target.write_text("a file where the crash dir should be")
        before = GLOBAL_METRICS.count("crashes.bundles.failed")
        path = write_crash_bundle(
            str(target), phase="parse", unit="t.c", exc=ValueError("boom"),
        )
        assert path is None
        assert GLOBAL_METRICS.count("crashes.bundles.failed") == before + 1
