"""Serialization round-trips for :class:`Message` (the cache layer's
wire format): code, location, text, and sub-locations must all survive."""

import json

from hypothesis import given, settings, strategies as st

from repro.core.api import Checker
from repro.frontend.source import Location
from repro.messages.message import Message, MessageCode, SubLocation

_codes = st.sampled_from(list(MessageCode))
_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1,
    max_size=20,
)
_locations = st.builds(
    Location,
    filename=_names,
    line=st.integers(min_value=0, max_value=10**6),
    column=st.integers(min_value=0, max_value=500),
)
_subs = st.tuples() | st.tuples(
    st.builds(SubLocation, location=_locations, text=_names)
) | st.tuples(
    st.builds(SubLocation, location=_locations, text=_names),
    st.builds(SubLocation, location=_locations, text=_names),
)
_messages = st.builds(
    Message, code=_codes, location=_locations, text=_names, subs=_subs
)

BUGGY = """#include <stdlib.h>
extern /*@only@*/ char *gname;
void f(/*@null@*/ char *p, /*@temp@*/ char *q, int c) {
    char *r = (char *) malloc(4);
    gname = q;
    if (c) { free(r); }
    *p = 'x';
}
"""


class TestMessageRoundTrip:
    def test_simple_round_trip(self):
        msg = Message(
            MessageCode.NULL_DEREF, Location("a.c", 4, 9),
            "Possible dereference of null pointer p",
            (SubLocation(Location("a.c", 2, 1), "Storage p may become null"),),
        )
        clone = Message.from_dict(msg.to_dict())
        assert clone == msg
        assert clone.render() == msg.render()

    def test_json_safe(self):
        msg = Message(MessageCode.LEAK_SCOPE, Location("a.c", 1, 1), "leak")
        wire = json.dumps(msg.to_dict())
        assert Message.from_dict(json.loads(wire)) == msg

    def test_unknown_slug_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            MessageCode.from_slug("no-such-check")

    @given(_messages)
    @settings(max_examples=60, deadline=None)
    def test_any_message_survives_json(self, msg):
        wire = json.dumps(msg.to_dict())
        clone = Message.from_dict(json.loads(wire))
        assert clone == msg
        assert clone.render() == msg.render()
        assert clone.sort_key() == msg.sort_key()

    def test_real_checker_messages_round_trip(self):
        result = Checker().check_sources({"b.c": BUGGY})
        assert result.messages, "expected anomalies in the fixture"
        for msg in result.messages:
            clone = Message.from_dict(json.loads(json.dumps(msg.to_dict())))
            assert clone.render() == msg.render()


class TestCachedEqualsFresh:
    """Cached (serialized + reloaded) runs must render identically to
    fresh ones — the cache can never change what the user sees."""

    @given(stage=st.integers(min_value=0, max_value=4))
    @settings(max_examples=3, deadline=None)
    def test_db_stage_renders_identically_through_cache(self, stage):
        import tempfile

        from repro.bench.dbexample import db_sources
        from repro.incremental import IncrementalChecker, ResultCache

        files = db_sources(stage)
        fresh = Checker().check_sources(dict(files))
        root = tempfile.mkdtemp(prefix="msgcache-")
        IncrementalChecker(cache=ResultCache(root)).check_sources(dict(files))
        cached = IncrementalChecker(cache=ResultCache(root)).check_sources(
            dict(files)
        )
        assert cached.render() == fresh.render()
