"""Tests for the public facade (repro.core.api)."""

import pytest

from repro import CheckResult, Checker, Flags, check_files, check_source
from repro.messages.message import MessageCode

LEAKY = """#include <stdlib.h>
void f(void) {
    char *p = (char *) malloc(4);
    if (p == NULL) { return; }
    *p = 'x';
}
"""


class TestCheckSource:
    def test_returns_check_result(self):
        result = check_source(LEAKY, name="leaky.c")
        assert isinstance(result, CheckResult)
        assert len(result) == 1
        assert result.messages[0].code is MessageCode.LEAK_SCOPE

    def test_default_name(self):
        result = check_source("int x;")
        assert result.messages == []
        assert result.units[0].name == "<string>"

    def test_flags_parameter(self):
        result = check_source(LEAKY, flags=Flags.from_args(["+gcmode"]))
        assert result.messages == []

    def test_extra_sources_for_includes(self):
        result = check_source(
            '#include "mine.h"\nint f(void) { return VALUE; }\n',
            name="main.c",
            extra_sources={"mine.h": "#define VALUE 42\n"},
        )
        assert result.messages == []

    def test_render_includes_summary(self):
        result = check_source(LEAKY)
        text = result.render()
        assert "1 code warning(s)" in text

    def test_by_code_and_codes(self):
        result = check_source(LEAKY)
        assert result.codes() == [MessageCode.LEAK_SCOPE]
        assert set(result.by_code()) == {MessageCode.LEAK_SCOPE}


class TestCheckFiles:
    def test_paths(self, tmp_path):
        path = tmp_path / "x.c"
        path.write_text(LEAKY)
        result = check_files([str(path)])
        assert len(result.messages) == 1
        assert result.messages[0].location.filename == str(path)

    def test_header_and_source(self, tmp_path):
        (tmp_path / "api.h").write_text("extern int inc(int v);\n")
        (tmp_path / "impl.c").write_text(
            '#include "api.h"\nint inc(int v) { return v + 1; }\n'
        )
        result = check_files([str(tmp_path / "impl.c"), str(tmp_path / "api.h")])
        assert result.messages == []


class TestCheckerObject:
    def test_reusable_sources(self):
        checker = Checker()
        checker.sources.add("shared.h", "typedef int myint;\n")
        a = checker.parse_unit('#include "shared.h"\nmyint x;\n', "a.c")
        b = checker.parse_unit('#include "shared.h"\nmyint y;\n', "b.c")
        result = checker.check_units([a, b])
        assert result.messages == []
        assert result.symtab.global_var("x") is not None
        assert result.symtab.global_var("y") is not None

    def test_defines_parameter(self):
        checker = Checker(defines={"LIMIT": "10"})
        parsed = checker.parse_unit("int cap = LIMIT;", "d.c")
        result = checker.check_units([parsed])
        assert result.messages == []

    def test_annotation_problems_become_messages(self):
        result = check_source("extern /*@null notnull@*/ char *p;\n")
        assert any(
            m.code is MessageCode.ANNOTATION_PROBLEM for m in result.messages
        )

    def test_suppressed_counted(self):
        src = "#include <stdlib.h>\nvoid f(char *p) { /*@i@*/ free(p); }\n"
        result = check_source(src)
        assert result.messages == []
        assert result.suppressed >= 1

    def test_prelude_symbols_always_available(self):
        # no #include needed: the annotated stdlib is the ambient library,
        # as in LCLint
        result = check_source("void f(char *p) { free(p); }")
        assert any(
            m.code is MessageCode.IMPLICIT_TRANSFER for m in result.messages
        )


class TestDeterminism:
    def test_same_input_same_output(self):
        a = check_source(LEAKY, name="same.c")
        b = check_source(LEAKY, name="same.c")
        assert [m.render() for m in a.messages] == [
            m.render() for m in b.messages
        ]

    def test_unit_order_does_not_change_message_set(self):
        files1 = {"a.c": LEAKY.replace("f(", "fa("),
                  "b.c": LEAKY.replace("f(", "fb(")}
        r1 = Checker().check_sources(files1)
        files2 = dict(reversed(list(files1.items())))
        r2 = Checker().check_sources(files2)
        assert {m.render() for m in r1.messages} == {
            m.render() for m in r2.messages
        }
