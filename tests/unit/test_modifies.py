"""Modifies-clause checking (LCL specifications; paper section 2 lists
'constraints on what may be modified ... by a called function')."""

from repro import Checker, Flags, check_source
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


def codes(source, flags=NOIMP):
    return [m.code for m in check_source(source, "t.c", flags=flags).messages]


def texts(source, flags=NOIMP):
    return [m.text for m in check_source(source, "t.c", flags=flags).messages]


class TestModifiesClauses:
    def test_listed_modification_ok(self):
        src = """extern int counter;
        void tick(void) /*@globals counter@*/ /*@modifies counter@*/ {
            counter = counter + 1;
        }"""
        assert codes(src) == []

    def test_unlisted_modification_reported(self):
        src = """extern int counter;
        extern int other;
        void f(void) /*@globals counter, other@*/ /*@modifies counter@*/ {
            counter = 1;
            other = 2;
        }"""
        msgs = texts(src)
        assert any("Undocumented modification of global other" in m
                   for m in msgs)
        assert not any("of global counter" in m for m in msgs)

    def test_modifies_nothing(self):
        src = """extern int g;
        void peek(void) /*@globals g@*/ /*@modifies nothing@*/ {
            g = 1;
        }"""
        assert MessageCode.MODIFIES in codes(src)

    def test_no_clause_means_no_check(self):
        src = """extern int g;
        void f(void) { g = 1; }"""
        assert MessageCode.MODIFIES not in codes(src)

    def test_field_modification_counts(self):
        src = """typedef struct { int v; } box;
        extern box state;
        void f(void) /*@modifies nothing@*/ { state.v = 3; }"""
        assert MessageCode.MODIFIES in codes(src)

    def test_clause_on_prototype_checks_definition(self):
        src = """extern int g;
        extern void f(void) /*@modifies nothing@*/;
        void f(void) { g = 1; }"""
        assert MessageCode.MODIFIES in codes(src)

    def test_flag_disables(self):
        src = """extern int g;
        void f(void) /*@modifies nothing@*/ { g = 1; }"""
        off = Flags.from_args(["-allimponly", "-mods"])
        assert MessageCode.MODIFIES not in codes(src, flags=off)

    def test_lcl_spec_modifies(self):
        checker = Checker(flags=NOIMP)
        spec = checker.parse_unit(
            "extern int total;\nvoid accumulate(int v) /*@modifies total@*/;\n",
            "acc.lcl",
        )
        impl = checker.parse_unit(
            "extern int total;\nextern int calls;\n"
            "void accumulate(int v) { total = total + v; calls = calls + 1; }\n",
            "acc.c",
        )
        result = checker.check_units([spec, impl])
        assert any(
            "Undocumented modification of global calls" in m.text
            for m in result.messages
        )
