"""Out-of-bounds index checking against known extents (`bounds` flag).

The checker knows an extent from a declared array size or a
``/*@size(N)@*/`` annotation, and an index range from constants, guard
refinement, and the canonical counting-loop widening. It warns only when
the known range provably reaches outside the extent — unknown indices
stay silent, so range understatement is FP-safe.
"""

from repro import Flags, check_source
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


def codes(source, flags=NOIMP):
    return [m.code for m in check_source(source, "t.c", flags=flags).messages]


def texts(source, flags=NOIMP):
    return [m.text for m in check_source(source, "t.c", flags=flags).messages]


class TestConstantIndex:
    def test_constant_index_past_extent(self):
        src = "void f(void) { int a[4]; a[5] = 1; }"
        assert codes(src) == [MessageCode.ARRAY_BOUNDS]
        assert "index 5, 4 elements" in texts(src)[0]

    def test_constant_index_at_extent(self):
        # a[4] is one past the end of int a[4]
        src = "void f(void) { int a[4]; a[4] = 1; }"
        assert codes(src) == [MessageCode.ARRAY_BOUNDS]

    def test_negative_constant_index(self):
        src = "void f(void) { int a[4]; a[-1] = 1; }"
        assert codes(src) == [MessageCode.ARRAY_BOUNDS]

    def test_last_valid_index_is_clean(self):
        src = "void f(void) { int a[4]; a[3] = 1; a[0] = 2; }"
        assert codes(src) == []


class TestLoopBounds:
    def test_off_by_one_loop_bound(self):
        src = """void f(void) {
            int a[4];
            int i;
            for (i = 0; i <= 4; i++) { a[i] = i * 2; }
        }"""
        assert codes(src) == [MessageCode.ARRAY_BOUNDS]
        assert "index may reach 4, 4 elements" in texts(src)[0]

    def test_exclusive_loop_bound_is_clean(self):
        src = """void f(void) {
            int a[4];
            int i;
            for (i = 0; i < 4; i++) { a[i] = i * 2; }
        }"""
        assert codes(src) == []

    def test_one_report_per_index_not_per_use(self):
        # After the first report the index's range is forgotten, so a
        # single bad bound does not cascade into a message per access.
        src = """void f(void) {
            int a[4];
            int b[4];
            int i;
            for (i = 0; i <= 4; i++) { a[i] = 1; b[i] = 2; }
        }"""
        assert codes(src) == [MessageCode.ARRAY_BOUNDS]


class TestGuardRefinement:
    def test_range_guard_makes_index_clean(self):
        src = """void f(int i) {
            int a[4];
            if (i >= 0 && i < 4) { a[i] = 1; }
        }"""
        assert codes(src) == []

    def test_loose_guard_still_warns(self):
        src = """void f(int i) {
            int a[4];
            if (i >= 0 && i < 8) { a[i] = 1; }
        }"""
        assert codes(src) == [MessageCode.ARRAY_BOUNDS]

    def test_equality_guard_pins_the_index(self):
        clean = """void f(int i) {
            int a[4];
            if (i == 2) { a[i] = 1; }
        }"""
        bad = """void f(int i) {
            int a[4];
            if (i == 9) { a[i] = 1; }
        }"""
        assert codes(clean) == []
        assert codes(bad) == [MessageCode.ARRAY_BOUNDS]

    def test_unknown_index_stays_silent(self):
        # No range knowledge => no claim. Understating is FP-safe.
        src = "void f(int i) { int a[4]; a[i] = 1; }"
        assert codes(src) == []


class TestSizeAnnotation:
    def test_size_annotation_bounds_a_pointer(self):
        src = """void f(/*@size(4)@*/ int *p) { p[6] = 1; }"""
        assert codes(src) == [MessageCode.ARRAY_BOUNDS]
        assert "index 6, 4 elements" in texts(src)[0]

    def test_size_annotation_in_range_is_clean(self):
        src = """void f(/*@size(4)@*/ int *p) { p[3] = 1; }"""
        assert codes(src) == []

    def test_unannotated_pointer_has_no_extent(self):
        src = "void f(int *p) { p[6] = 1; }"
        assert codes(src) == []

    def test_malformed_size_annotation_is_reported(self):
        src = "extern void g(/*@size(wat)@*/ int *p);"
        assert MessageCode.ANNOTATION_PROBLEM in codes(src)

    def test_size_zero_is_malformed(self):
        # Satellite regression: a zero extent used to be accepted and
        # fed the bounds checker a vacuous bound.
        src = "extern void g(/*@size(0)@*/ int *p);"
        assert MessageCode.ANNOTATION_PROBLEM in codes(src)
        problems = [t for t in texts(src) if "size annotation" in t]
        assert problems and "positive integer extent" in problems[0]

    def test_size_negative_is_malformed(self):
        src = "extern void g(/*@size(-1)@*/ int *p);"
        assert MessageCode.ANNOTATION_PROBLEM in codes(src)

    def test_size_one_is_the_smallest_valid_extent(self):
        clean = "void f(/*@size(1)@*/ int *p) { p[0] = 1; }"
        assert codes(clean) == []
        bad = "void f(/*@size(1)@*/ int *p) { p[1] = 1; }"
        assert codes(bad) == [MessageCode.ARRAY_BOUNDS]


class TestFlagGating:
    def test_minus_bounds_silences_the_checker(self):
        src = "void f(void) { int a[4]; a[5] = 1; }"
        off = Flags.from_args(["-allimponly", "-bounds"])
        assert codes(src, off) == []
