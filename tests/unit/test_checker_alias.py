"""Aliasing checks (paper section 4, 'Aliasing'; Figure 8)."""

from repro import Flags, check_source
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


def codes(source, flags=NOIMP):
    return [m.code for m in check_source(source, "t.c", flags=flags).messages]


def texts(source, flags=NOIMP):
    return [m.text for m in check_source(source, "t.c", flags=flags).messages]


STRCPYISH = """extern void copy(/*@unique@*/ /*@out@*/ char *dst, char *src);
"""


class TestUnique:
    def test_two_external_params_may_alias(self):
        src = STRCPYISH + "void f(char *a, char *b) { copy(a, b); }"
        msgs = texts(src)
        assert any("declared unique but may be aliased externally" in m for m in msgs)

    def test_figure8_field_and_param(self):
        src = """#include <string.h>
        typedef struct { char *name; int salary; } employee;
        int setName(employee *e, char *s) { strcpy(e->name, s); return 1; }"""
        msgs = texts(src)
        assert any(
            "Parameter 1 (e->name) to function strcpy is declared unique "
            "but may be aliased externally by parameter 2 (s)" == m
            for m in msgs
        )

    def test_unique_source_param_suppresses(self):
        src = """#include <string.h>
        typedef struct { char *name; int salary; } employee;
        int setName(employee *e, /*@unique@*/ char *s) {
            strcpy(e->name, s); return 1;
        }"""
        assert MessageCode.UNIQUE_ALIAS not in codes(src)

    def test_local_buffer_cannot_alias_param(self):
        src = STRCPYISH + """
        #include <stdlib.h>
        void f(char *src) {
            char *buf = (char *) malloc(64);
            if (buf == NULL) { return; }
            copy(buf, src);
            free(buf);
        }"""
        assert MessageCode.UNIQUE_ALIAS not in codes(src)

    def test_definite_alias_always_reported(self):
        src = STRCPYISH + "void f(char *a) { copy(a, a); }"
        assert MessageCode.UNIQUE_ALIAS in codes(src)

    def test_local_alias_of_param_detected(self):
        src = STRCPYISH + "void f(char *a) { char *b = a; copy(b, a); }"
        assert MessageCode.UNIQUE_ALIAS in codes(src)

    def test_only_param_cannot_be_externally_aliased(self):
        src = STRCPYISH + """
        #include <stdlib.h>
        void f(/*@only@*/ char *dst, char *src) {
            copy(dst, src);
            free(dst);
        }"""
        assert MessageCode.UNIQUE_ALIAS not in codes(src)


class TestReturned:
    def test_returned_param_aliases_result(self):
        # strcpy(dst, src) returns dst: assigning the result must not
        # transfer any obligation or lose track of dst.
        src = """#include <string.h>
        void f(/*@unique@*/ /*@out@*/ char *buf, char *s) {
            char *r = strcpy(buf, s);
            r[0] = 'x';
        }"""
        assert codes(src) == []

    def test_returned_only_param_round_trip(self):
        src = """#include <stdlib.h>
        extern /*@returned@*/ char *touch(/*@returned@*/ /*@temp@*/ char *p);
        void f(void) {
            char *p = (char *) malloc(8);
            char *q;
            if (p == NULL) { return; }
            q = touch(p);
            free(p);
        }"""
        # q aliases p; freeing once through p is correct.
        assert MessageCode.USE_AFTER_RELEASE not in codes(src)


class TestAliasStateFlow:
    def test_null_knowledge_flows_through_alias(self):
        src = """int f(/*@null@*/ int *p) {
            int *q = p;
            if (q != NULL) { return *p; }
            return 0;
        }"""
        assert codes(src) == []

    def test_free_through_alias_kills_original(self):
        src = """#include <stdlib.h>
        char f(void) {
            char *p = (char *) malloc(4);
            char *q;
            if (p == NULL) { return 'x'; }
            q = p;
            free(q);
            return *p;
        }"""
        assert MessageCode.USE_AFTER_RELEASE in codes(src)

    def test_rebinding_breaks_alias(self):
        src = """#include <stdlib.h>
        void f(/*@null@*/ /*@temp@*/ int *p) {
            int *q = p;
            q = (int *) malloc(sizeof(int));
            if (q == NULL) { return; }
            *q = 1;
            free(q);
        }"""
        # After rebinding, q no longer aliases p; freeing q is fine.
        assert codes(src) == []
