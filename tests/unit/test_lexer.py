"""Tests for the annotation-preserving C lexer.

Most tests are parameterized over both scanning engines: the production
master-regex lexer and the retained character-at-a-time reference
scanner must agree everywhere (the property suite in
``tests/property/test_lexer_parity.py`` fuzzes this agreement).
"""

import pickle

import pytest

from repro.frontend.lexer import LexError, reference_tokenize, tokenize
from repro.frontend.source import SourceFile
from repro.frontend.tokens import Token, TokenKind

ENGINES = [tokenize, reference_tokenize]


def lex(text):
    return [t for t in tokenize(SourceFile("t.c", text)) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_keywords_and_identifiers(self):
        toks = lex("int foo; while whilst")
        assert [(t.kind, t.value) for t in toks[:2]] == [
            (TokenKind.KEYWORD, "int"),
            (TokenKind.IDENT, "foo"),
        ]
        kinds = {t.value: t.kind for t in toks}
        assert kinds["while"] is TokenKind.KEYWORD
        assert kinds["whilst"] is TokenKind.IDENT

    def test_punctuators_longest_match(self):
        toks = lex("a <<= b >> c->d ... e")
        values = [t.value for t in toks if t.kind is TokenKind.PUNCT]
        assert "<<=" in values
        assert ">>" in values
        assert "->" in values
        assert "..." in values

    def test_integer_constants(self):
        toks = lex("0 42 0x1F 077 10L 3U")
        assert all(t.kind is TokenKind.INT_CONST for t in toks)

    def test_float_constants(self):
        toks = lex("1.5 2e10 3.14f .5 1e-3")
        assert all(t.kind is TokenKind.FLOAT_CONST for t in toks)

    def test_number_at_end_of_file_terminates(self):
        # Regression: "" in "uUlL" is True, which once caused a hang.
        toks = lex("32767")
        assert toks[0].value == "32767"

    def test_char_constants(self):
        toks = lex(r"'a' '\n' '\\' '\0'")
        assert all(t.kind is TokenKind.CHAR_CONST for t in toks)

    def test_string_literals(self):
        toks = lex(r'"hello" "with \"quote\"" ""')
        assert all(t.kind is TokenKind.STRING for t in toks)
        assert toks[0].value == '"hello"'

    def test_locations(self):
        toks = lex("int\n  x;")
        assert toks[0].location.line == 1
        assert toks[1].location.line == 2
        assert toks[1].location.column == 3


class TestComments:
    def test_plain_comments_discarded(self):
        assert [t.value for t in lex("a /* comment */ b")] == ["a", "b"]

    def test_line_comments_discarded(self):
        assert [t.value for t in lex("a // comment\nb")] == ["a", "b"]

    def test_annotation_comment_preserved(self):
        toks = lex("/*@null@*/ char *p;")
        assert toks[0].kind is TokenKind.ANNOTATION
        assert toks[0].value == "null"

    def test_annotation_without_trailing_at(self):
        toks = lex("/*@only temp*/ int x;")
        assert toks[0].kind is TokenKind.ANNOTATION
        assert toks[0].value == "only temp"

    def test_multiword_annotation(self):
        toks = lex("/*@null out only@*/ void *p;")
        assert toks[0].value == "null out only"

    def test_in_annotation_is_not_control(self):
        toks = lex("/*@in@*/ int *p;")
        assert toks[0].kind is TokenKind.ANNOTATION

    def test_ignore_control_comment(self):
        toks = lex("/*@ignore@*/ x /*@end@*/")
        assert toks[0].kind is TokenKind.CONTROL
        assert toks[0].value == "ignore"
        assert toks[2].kind is TokenKind.CONTROL

    def test_i_control_comment(self):
        toks = lex("/*@i@*/ /*@i3@*/")
        assert all(t.kind is TokenKind.CONTROL for t in toks)

    def test_flag_control_comments(self):
        toks = lex("/*@-null@*/ x /*@+null@*/")
        assert toks[0].kind is TokenKind.CONTROL
        assert toks[0].value == "-null"
        assert toks[2].value == "+null"

    def test_drop_annotations_mode(self):
        toks = tokenize(SourceFile("t.c", "/*@null@*/ int x;"), keep_annotations=False)
        assert toks[0].kind is TokenKind.KEYWORD


class TestLexErrors:
    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            lex("a /* never closed")

    def test_unterminated_annotation(self):
        with pytest.raises(LexError):
            lex("/*@null")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            lex('"abc')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            lex('"abc\ndef"')

    def test_bad_character(self):
        with pytest.raises(LexError):
            lex("int `x;")

    def test_error_carries_location(self):
        try:
            lex('x\n"unterminated')
        except LexError as exc:
            assert exc.location.line == 2
        else:  # pragma: no cover
            pytest.fail("expected LexError")


class TestBackslashContinuation:
    def test_backslash_newline_joins(self):
        toks = lex("ab\\\ncd")
        assert toks[0].value == "ab"  # identifier scanning stops at backslash
        # The continuation is consumed as whitespace between tokens.
        assert [t.value for t in toks] == ["ab", "cd"]


class TestAnnotationRunRegression:
    """A long run of dropped annotations must not recurse per comment."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_many_dropped_annotations_no_recursion(self, engine):
        # Far deeper than the default recursion limit: the old
        # _scan_special_comment recursed once per skipped annotation.
        text = "/*@null@*/ " * 5000 + "int x;"
        toks = engine(SourceFile("t.c", text), keep_annotations=False)
        assert [t.value for t in toks[:3]] == ["int", "x", ";"]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_dropped_annotation_at_eof(self, engine):
        toks = engine(SourceFile("t.c", "x /*@null@*/"), keep_annotations=False)
        assert [t.kind for t in toks] == [TokenKind.IDENT, TokenKind.EOF]


class TestHexWithoutDigits:
    """A bare ``0x`` is not a valid integer constant."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("text", ["0x", "0X", "0x;", "0xUL", "0x + 1"])
    def test_bare_hex_prefix_rejected(self, engine, text):
        with pytest.raises(LexError) as exc:
            engine(SourceFile("t.c", text))
        assert "hexadecimal constant has no digits" in str(exc.value)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_real_hex_constants_still_accepted(self, engine):
        toks = engine(SourceFile("t.c", "0x1F 0XaB 0x0L"))
        assert all(
            t.kind is TokenKind.INT_CONST
            for t in toks
            if t.kind is not TokenKind.EOF
        )


class TestLazyTokens:
    def test_location_is_computed_lazily(self):
        toks = lex("int\n  x;")
        tok = toks[1]
        assert tok._location is None  # not materialized by lexing
        assert tok.location.line == 2
        assert tok.location.column == 3
        assert tok._location is not None  # cached after first access

    def test_line_property_matches_location(self):
        toks = lex("a\nb\n  c")
        assert [t.line for t in toks] == [t.location.line for t in toks]

    def test_coords_without_location(self):
        toks = lex("a\n  b")
        assert toks[1].coords() == ("t.c", 2, 3)

    def test_keyword_and_punct_spellings_are_interned(self):
        a = lex("int x; int y;")
        b = lex("int z;")
        assert a[0].value is b[0].value  # "int" shared across lexes
        assert a[2].value is b[2].value  # ";" shared across lexes

    def test_tokens_pickle_with_materialized_location(self):
        toks = lex("int\n  x;")
        clones = pickle.loads(pickle.dumps(toks))
        assert [(t.kind, t.value) for t in clones] == [
            (t.kind, t.value) for t in toks
        ]
        assert [t.location for t in clones] == [t.location for t in toks]
        # The clone must not drag the source file along.
        assert clones[0]._source is None

    def test_token_equality_and_str(self):
        a = lex("x")[0]
        b = tokenize(SourceFile("t.c", "x"))[0]
        assert a == b
        assert str(a) == "x"
        c = Token(TokenKind.IDENT, "x", SourceFile("u.c", "x").location(0))
        assert a != c  # different filename
