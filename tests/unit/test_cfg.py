"""Tests for the loops-as-ifs CFG builder (paper Figure 6, section 2)."""

from repro.analysis.cfg import build_cfg
from repro.core.api import Checker


def cfg_of(source):
    parsed = Checker().parse_unit(source, "t.c")
    fdef = parsed.unit.functions()[0]
    return build_cfg(fdef)


class TestStraightLine:
    def test_minimal_function(self):
        cfg = cfg_of("void f(void) { }")
        assert cfg.is_acyclic()
        assert cfg.path_count() == 1
        assert cfg.branch_count == 0

    def test_sequence(self):
        cfg = cfg_of("void f(int x) { x = 1; x = 2; x = 3; }")
        assert cfg.path_count() == 1
        labels = [n.label for n in cfg.nodes if n.kind == "stmt"]
        assert labels == ["x = 1", "x = 2", "x = 3"]

    def test_return_goes_to_exit(self):
        cfg = cfg_of("int f(void) { return 1; }")
        ret = next(n for n in cfg.nodes if n.label == "return 1")
        assert (cfg.exit, "") in cfg.successors(ret.node_id)


class TestBranches:
    def test_if_has_two_paths(self):
        cfg = cfg_of("void f(int x) { if (x) { x = 1; } }")
        assert cfg.branch_count == 1
        assert cfg.path_count() == 2

    def test_if_else(self):
        cfg = cfg_of("void f(int x) { if (x) { x = 1; } else { x = 2; } }")
        assert cfg.path_count() == 2

    def test_nested_ifs_multiply_paths(self):
        cfg = cfg_of("void f(int a, int b) { if (a) { } if (b) { } }")
        assert cfg.path_count() == 4

    def test_early_return_path(self):
        cfg = cfg_of("int f(int x) { if (x) { return 1; } return 0; }")
        assert cfg.path_count() == 2

    def test_edge_labels(self):
        cfg = cfg_of("void f(int x) { if (x) { x = 1; } else { x = 2; } }")
        labels = {lbl for _, _, lbl in cfg.edges if lbl}
        assert "true" in labels
        assert "false" in labels


class TestLoopsHaveNoBackEdges:
    def test_while_is_acyclic(self):
        cfg = cfg_of("void f(int x) { while (x) { x = x - 1; } }")
        assert cfg.is_acyclic()
        assert cfg.path_count() == 2  # zero or one iterations

    def test_for_is_acyclic(self):
        cfg = cfg_of(
            "void f(void) { int i; for (i = 0; i < 3; i++) { i = i; } }"
        )
        assert cfg.is_acyclic()

    def test_do_while_is_acyclic(self):
        cfg = cfg_of("void f(int x) { do { x = 1; } while (x); }")
        assert cfg.is_acyclic()
        assert cfg.path_count() == 1  # body exactly once in the model

    def test_break_reaches_loop_exit(self):
        cfg = cfg_of("void f(int x) { while (x) { if (x) { break; } x = 1; } }")
        assert cfg.is_acyclic()
        assert any(lbl == "break" for _, _, lbl in cfg.edges)

    def test_continue_edge(self):
        cfg = cfg_of(
            "void f(int x) { while (x) { if (x) { continue; } x = 1; } }"
        )
        assert cfg.is_acyclic()
        assert any(lbl == "continue" for _, _, lbl in cfg.edges)

    def test_infinite_for_without_break_has_no_exit_path(self):
        cfg = cfg_of("void f(void) { for (;;) { } }")
        assert cfg.is_acyclic()
        assert cfg.path_count() == 0

    def test_infinite_for_with_break(self):
        cfg = cfg_of("void f(int x) { for (;;) { if (x) { break; } } }")
        assert cfg.path_count() >= 1


class TestSwitch:
    def test_switch_cases_and_fallthrough(self):
        cfg = cfg_of(
            """void f(int x) {
                switch (x) {
                case 1: x = 10; break;
                case 2: x = 20;
                default: x = 0;
                }
            }"""
        )
        assert cfg.is_acyclic()
        assert any(lbl == "case" for _, _, lbl in cfg.edges)
        assert any(lbl == "fallthrough" for _, _, lbl in cfg.edges)

    def test_switch_without_default_has_skip_edge(self):
        cfg = cfg_of(
            "void f(int x) { switch (x) { case 1: x = 1; break; } }"
        )
        assert any(lbl == "no case" for _, _, lbl in cfg.edges)


class TestFigure6:
    SOURCE = """typedef /*@null@*/ struct _list {
      /*@only@*/ char *this;
      /*@null@*/ /*@only@*/ struct _list *next;
    } *list;
    extern /*@out@*/ /*@only@*/ void *smalloc(size_t);
    void list_addh(/*@temp@*/ list l, /*@only@*/ char *e) {
      if (l != NULL) {
        while (l->next != NULL) { l = l->next; }
        l->next = (list) smalloc(sizeof(*l->next));
        l->next->this = e;
      }
    }"""

    def test_structure(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.function == "list_addh"
        assert cfg.branch_count == 2  # the if and the while
        assert cfg.path_count() == 3
        assert cfg.is_acyclic()

    def test_dot_output(self):
        cfg = cfg_of(self.SOURCE)
        dot = cfg.to_dot()
        assert dot.startswith('digraph "list_addh"')
        assert "Function Entrance" in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_topological_order_starts_at_entry(self):
        cfg = cfg_of(self.SOURCE)
        order = cfg.topological_order()
        assert order[0] == cfg.entry
        position = {n: i for i, n in enumerate(order)}
        for src, dst, _ in cfg.edges:
            if src in position and dst in position:
                assert position[src] < position[dst]


class TestGotoAndLabels:
    def test_goto_cuts_flow(self):
        cfg = cfg_of("void f(void) { goto out; out: ; }")
        assert cfg.is_acyclic()

    def test_label_statement(self):
        cfg = cfg_of("void f(int x) { top: x = 1; }")
        assert any(n.label == "top:" for n in cfg.nodes)
