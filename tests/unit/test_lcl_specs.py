"""LCL specification files: bare annotation words (paper section 4).

"We can use annotations in LCL specifications, or directly in the source
code as syntactic comments." The paper writes the standard library specs
in LCL form: ``null out only void *malloc (size_t size);``.
"""

from repro import Checker, Flags
from repro.annotations.kinds import AllocAnn, DefAnn, NullAnn
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


def parse_lcl(text: str):
    checker = Checker()
    return checker, checker.parse_unit(text, "spec.lcl")


class TestLclParsing:
    def test_malloc_spec_verbatim_from_paper(self):
        checker, parsed = parse_lcl(
            "null out only void *my_alloc (size_t size);\n"
        )
        result = checker.check_units([parsed])
        sig = result.symtab.function("my_alloc")
        ann = sig.ret_annotations
        assert ann.null is NullAnn.NULL
        assert ann.definition is DefAnn.OUT
        assert ann.alloc is AllocAnn.ONLY

    def test_free_spec_verbatim_from_paper(self):
        checker, parsed = parse_lcl(
            "void my_free (null out only void *ptr);\n"
        )
        result = checker.check_units([parsed])
        ann = result.symtab.function("my_free").params[0].annotations
        assert ann.null is NullAnn.NULL
        assert ann.alloc is AllocAnn.ONLY

    def test_strcpy_spec_verbatim_from_paper(self):
        checker, parsed = parse_lcl(
            "char *my_strcpy (out returned unique char *s1, char *s2);\n"
        )
        result = checker.check_units([parsed])
        ann = result.symtab.function("my_strcpy").params[0].annotations
        assert ann.definition is DefAnn.OUT
        assert ann.returned
        assert ann.unique

    def test_bare_words_not_consumed_in_c_mode(self):
        # In a .c file, 'out' is an ordinary identifier.
        checker = Checker()
        parsed = checker.parse_unit("int out;\nint f(void) { return out; }\n",
                                    "plain.c")
        result = checker.check_units([parsed])
        assert result.symtab.global_var("out") is not None
        assert result.messages == []

    def test_annotation_words_usable_as_names_after_type(self):
        checker, parsed = parse_lcl("int count (int only_mode);\n")
        result = checker.check_units([parsed])
        assert result.symtab.function("count") is not None


class TestLclDrivesChecking:
    def test_spec_checked_against_implementation(self):
        spec = "only char *make_label (temp char *base);\n"
        impl = """#include <string.h>
        #include <stdlib.h>
        char *make_label (char *base)
        {
          char *copy = (char *) malloc(strlen(base) + 2);
          if (copy == NULL) { exit(1); }
          strcpy(copy, base);
          return copy;
        }
        """
        checker = Checker(flags=NOIMP)
        spec_unit = checker.parse_unit(spec, "label.lcl")
        impl_unit = checker.parse_unit(impl, "label.c")
        result = checker.check_units([spec_unit, impl_unit])
        assert result.messages == []

    def test_spec_violation_detected(self):
        spec = "void consume (only char *p);\n"
        impl = "void caller (/*@temp@*/ char *q) { consume(q); }\n"
        checker = Checker(flags=NOIMP)
        result = checker.check_units(
            [checker.parse_unit(spec, "c.lcl"), checker.parse_unit(impl, "c.c")]
        )
        assert any(m.code is MessageCode.BAD_TRANSFER for m in result.messages)


class TestKillref:
    API = """typedef struct _h { int refs; } *handle;
    extern /*@refcounted@*/ handle handle_get(int which);
    extern void handle_release(/*@killref@*/ handle h);
    """

    def test_refcounted_round_trip_clean(self):
        src = self.API + """
        void f(void) {
            handle h = handle_get(0);
            handle_release(h);
        }"""
        checker = Checker(flags=NOIMP)
        result = checker.check_units([checker.parse_unit(src, "h.c")])
        assert result.messages == []

    def test_non_refcounted_killref_reported(self):
        src = self.API + """
        void f(/*@temp@*/ handle h) {
            handle_release(h);
        }"""
        checker = Checker(flags=NOIMP)
        result = checker.check_units([checker.parse_unit(src, "h.c")])
        assert any(
            "passed as killref" in m.text for m in result.messages
        )

    def test_refcounted_not_freeable(self):
        src = "#include <stdlib.h>\n" + self.API + """
        void f(void) {
            handle h = handle_get(0);
            free(h);
        }"""
        checker = Checker(flags=NOIMP)
        result = checker.check_units([checker.parse_unit(src, "h.c")])
        assert any("Refcounted storage" in m.text for m in result.messages)
