"""Tests for the expression renderer and the C type model."""

from repro.annotations.kinds import EMPTY_ANNOTATIONS
from repro.core.api import Checker
from repro.frontend import cast as A
from repro.frontend.ctypes import (
    Array,
    EnumType,
    FieldDecl,
    FunctionType,
    ParamType,
    Pointer,
    Primitive,
    StructType,
    TypedefType,
    is_pointerish,
    pointee_type,
    strip_typedefs,
    struct_fields,
)
from repro.frontend.render import render_expr


def render_of(statement: str) -> str:
    source = f"void f(int a, int b, int *p) {{ {statement}; }}"
    parsed = Checker().parse_unit(source, "r.c")
    stmt = parsed.unit.functions()[0].body.items[0]
    return render_expr(stmt.expr)


class TestRenderer:
    def test_simple_assignment(self):
        assert render_of("a = b") == "a = b"

    def test_precedence_no_redundant_parens(self):
        assert render_of("a = a + b * 2") == "a = a + b * 2"

    def test_parens_preserved_when_needed(self):
        assert render_of("a = (a + b) * 2") == "a = (a + b) * 2"

    def test_member_chain(self):
        source = """struct s { int x; struct s *next; };
        void f(struct s *p) { p->next->x = 1; }"""
        parsed = Checker().parse_unit(source, "r.c")
        stmt = parsed.unit.functions()[0].body.items[0]
        assert render_expr(stmt.expr) == "p->next->x = 1"

    def test_unary_and_deref(self):
        assert render_of("a = -*p") == "a = -*p"
        assert render_of("a = !(a && b)") == "a = !(a && b)"

    def test_call_and_index(self):
        source = "extern int g(int, int);\nvoid f(int *p) { p[2] = g(1, 2); }"
        parsed = Checker().parse_unit(source, "r.c")
        stmt = parsed.unit.functions()[0].body.items[0]
        assert render_expr(stmt.expr) == "p[2] = g(1, 2)"

    def test_nested_ternary_condition_parenthesized(self):
        expr = A.Ternary(
            None,
            cond=A.Ternary(None, cond=A.Ident(None, name="a"),
                           then=A.Ident(None, name="b"),
                           other=A.Ident(None, name="c")),
            then=A.IntLit(None, value=1, spelling="1"),
            other=A.IntLit(None, value=2, spelling="2"),
        )
        assert render_expr(expr) == "(a ? b : c) ? 1 : 2"

    def test_sizeof_forms(self):
        assert render_of("a = sizeof(*p)") == "a = sizeof(*p)"

    def test_init_list(self):
        expr = A.InitList(None, items=[A.IntLit(None, value=1, spelling="1"),
                                       A.IntLit(None, value=2, spelling="2")])
        assert render_expr(expr) == "{1, 2}"

    def test_associativity_parens(self):
        # (a - b) - c prints without parens; a - (b - c) keeps them
        assert render_of("a = a - b - 2") == "a = a - b - 2"
        assert render_of("a = a - (b - 2)") == "a = a - (b - 2)"


class TestCTypes:
    def test_strip_typedefs(self):
        inner = Pointer(Primitive("char"))
        t1 = TypedefType("string", inner, EMPTY_ANNOTATIONS)
        t2 = TypedefType("alias", t1, EMPTY_ANNOTATIONS)
        assert strip_typedefs(t2) is inner

    def test_is_pointerish(self):
        assert is_pointerish(Pointer(Primitive("int")))
        assert is_pointerish(Array(Primitive("char"), 4))
        assert not is_pointerish(Primitive("int"))
        assert is_pointerish(
            TypedefType("p", Pointer(Primitive("int")), EMPTY_ANNOTATIONS)
        )

    def test_pointee(self):
        assert pointee_type(Pointer(Primitive("int"))) == Primitive("int")
        assert pointee_type(Primitive("int")) is None

    def test_struct_identity_semantics(self):
        a = StructType("s", fields=[])
        b = StructType("s", fields=[])
        assert a == a
        assert a != b
        assert len({a, b}) == 2

    def test_struct_fields_helper(self):
        s = StructType("s")
        s.fields = [FieldDecl("x", Primitive("int"), EMPTY_ANNOTATIONS)]
        ptr = Pointer(s)
        assert struct_fields(s) == s.fields
        assert struct_fields(Primitive("int")) == []
        assert s.field_named("x") is not None
        assert s.field_named("nope") is None

    def test_incomplete_struct(self):
        s = StructType("fwd")
        assert not s.is_complete
        s.fields = []
        assert s.is_complete

    def test_function_type_str(self):
        f = FunctionType(
            Primitive("int"),
            [ParamType("x", Primitive("int"), EMPTY_ANNOTATIONS)],
            variadic=True,
        )
        assert "..." in str(f)
        assert f.is_function()

    def test_enum_type(self):
        e = EnumType("color", {"RED": 0})
        assert "color" in str(e)
        assert e != EnumType("color", {"RED": 0})

    def test_str_forms(self):
        assert str(Primitive("unsigned long")) == "unsigned long"
        assert "*" in str(Pointer(Primitive("char")))
        assert "[4]" in str(Array(Primitive("int"), 4))
        assert "struct" in str(StructType("node"))
        assert "union" in str(StructType("u", is_union=True))
