"""Tests for the dataflow state lattices and confluence rules."""

from repro.analysis.states import (
    AllocState,
    DefState,
    NullState,
    RefState,
    from_annotations,
    initial_alloc,
    initial_def,
    initial_null,
    merge_alloc,
    merge_def,
    merge_null,
)
from repro.annotations.parse import parse_spec_words


class TestDefMerge:
    def test_same_is_identity(self):
        for st in DefState:
            merged, anomaly = merge_def(st, st)
            assert merged is st
            assert anomaly is None

    def test_weakest_assumption(self):
        merged, _ = merge_def(DefState.DEFINED, DefState.PARTIAL)
        assert merged is DefState.PARTIAL
        merged, _ = merge_def(DefState.ALLOCATED, DefState.DEFINED)
        assert merged is DefState.ALLOCATED
        merged, _ = merge_def(DefState.UNDEFINED, DefState.PARTIAL)
        assert merged is DefState.UNDEFINED

    def test_dead_on_one_path_is_anomaly(self):
        merged, anomaly = merge_def(DefState.DEAD, DefState.DEFINED)
        assert merged is DefState.ERROR
        assert anomaly is not None
        assert "dead" in anomaly.describe("x")

    def test_error_is_absorbing(self):
        merged, anomaly = merge_def(DefState.ERROR, DefState.DEFINED)
        assert merged is DefState.ERROR
        assert anomaly is None


class TestNullMerge:
    def test_same(self):
        assert merge_null(NullState.NOTNULL, NullState.NOTNULL) is NullState.NOTNULL

    def test_disagreement_weakens_to_maybenull(self):
        assert merge_null(NullState.NOTNULL, NullState.ISNULL) is NullState.MAYBENULL
        assert merge_null(NullState.MAYBENULL, NullState.NOTNULL) is NullState.MAYBENULL

    def test_relnull_absorbs(self):
        assert merge_null(NullState.RELNULL, NullState.NOTNULL) is NullState.RELNULL

    def test_commutative(self):
        for a in NullState:
            for b in NullState:
                assert merge_null(a, b) is merge_null(b, a)


class TestAllocMerge:
    def test_figure5_kept_vs_only_is_anomaly(self):
        merged, anomaly = merge_alloc(AllocState.KEPT, AllocState.ONLY)
        assert merged is AllocState.ERROR
        assert anomaly is not None
        assert {anomaly.left, anomaly.right} == {"kept", "only"}

    def test_released_on_one_path_is_anomaly(self):
        merged, anomaly = merge_alloc(AllocState.DEAD, AllocState.FRESH)
        assert merged is AllocState.ERROR
        assert anomaly is not None

    def test_fresh_and_only_compatible(self):
        merged, anomaly = merge_alloc(AllocState.FRESH, AllocState.ONLY)
        assert merged is AllocState.ONLY
        assert anomaly is None

    def test_implicit_defers(self):
        merged, _ = merge_alloc(AllocState.IMPLICIT, AllocState.FRESH)
        assert merged is AllocState.FRESH

    def test_commutative(self):
        for a in AllocState:
            for b in AllocState:
                ma, _ = merge_alloc(a, b)
                mb, _ = merge_alloc(b, a)
                assert ma is mb

    def test_error_absorbing(self):
        merged, anomaly = merge_alloc(AllocState.ERROR, AllocState.ONLY)
        assert merged is AllocState.ERROR
        assert anomaly is None


class TestObligations:
    def test_holders(self):
        holders = {s for s in AllocState if s.holds_obligation()}
        assert holders == {AllocState.FRESH, AllocState.ONLY,
                           AllocState.OWNED, AllocState.KEEP}

    def test_usability(self):
        assert not AllocState.DEAD.usable()
        assert not AllocState.ERROR.usable()
        assert AllocState.KEPT.usable()


class TestInitialStates:
    def test_null_annotation(self):
        assert initial_null(parse_spec_words("null"), True) is NullState.MAYBENULL
        assert initial_null(parse_spec_words("relnull"), True) is NullState.RELNULL
        assert initial_null(parse_spec_words(""), True) is NullState.NOTNULL
        assert initial_null(parse_spec_words("null"), False) is NullState.NOTNULL

    def test_def_annotation(self):
        assert initial_def(parse_spec_words("out")) is DefState.ALLOCATED
        assert initial_def(parse_spec_words("undef")) is DefState.UNDEFINED
        assert initial_def(parse_spec_words("partial")) is DefState.PARTIAL
        assert initial_def(parse_spec_words("")) is DefState.DEFINED

    def test_alloc_annotation(self):
        assert initial_alloc(parse_spec_words("only")) is AllocState.ONLY
        assert initial_alloc(parse_spec_words("temp")) is AllocState.TEMP
        assert initial_alloc(parse_spec_words("")) is AllocState.IMPLICIT
        assert (
            initial_alloc(parse_spec_words(""), default=AllocState.TEMP)
            is AllocState.TEMP
        )

    def test_from_annotations_malloc_spec(self):
        st = from_annotations(parse_spec_words("null out only"), is_pointer=True)
        assert st.null is NullState.MAYBENULL
        assert st.definition is DefState.ALLOCATED
        assert st.alloc is AllocState.ONLY


class TestRefStateMerge:
    def test_merged_reports_all_anomalies(self):
        a = RefState(DefState.DEAD, NullState.NOTNULL, AllocState.DEAD)
        b = RefState(DefState.DEFINED, NullState.NOTNULL, AllocState.FRESH)
        merged, anomalies = a.merged(b)
        assert merged.definition is DefState.ERROR
        assert merged.alloc is AllocState.ERROR
        assert len(anomalies) == 2

    def test_merged_clean(self):
        a = RefState(DefState.DEFINED, NullState.NOTNULL, AllocState.TEMP)
        b = RefState(DefState.PARTIAL, NullState.ISNULL, AllocState.TEMP)
        merged, anomalies = a.merged(b)
        assert anomalies == []
        assert merged.definition is DefState.PARTIAL
        assert merged.null is NullState.MAYBENULL

    def test_with_helpers(self):
        st = RefState()
        assert st.with_null(NullState.ISNULL).null is NullState.ISNULL
        assert st.with_definition(DefState.DEAD).definition is DefState.DEAD
        assert st.with_alloc(AllocState.ONLY).alloc is AllocState.ONLY
