"""Definition checking (paper section 4, 'Definition')."""

from repro import Flags, check_source
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


def codes(source, flags=NOIMP):
    return [m.code for m in check_source(source, "t.c", flags=flags).messages]


def texts(source, flags=NOIMP):
    return [m.text for m in check_source(source, "t.c", flags=flags).messages]


class TestUseBeforeDefinition:
    def test_uninitialized_local_used(self):
        src = "int f(void) { int x; return x; }"
        assert MessageCode.USE_BEFORE_DEF in codes(src)

    def test_initialized_local_ok(self):
        src = "int f(void) { int x = 1; return x; }"
        assert codes(src) == []

    def test_assigned_then_used_ok(self):
        src = "int f(void) { int x; x = 2; return x; }"
        assert codes(src) == []

    def test_lvalue_use_of_undefined_ok(self):
        # Undefined storage may be used as an lvalue (paper section 3).
        src = "void f(void) { int x; x = 1; }"
        assert codes(src) == []

    def test_defined_on_one_branch_weakest_assumption(self):
        # Paper section 2: a use after a branch that only sometimes defines
        # the variable is reported (deliberate unsoundness).
        src = """int f(int c) {
            int x;
            if (c) { x = 1; }
            return x;
        }"""
        assert MessageCode.USE_BEFORE_DEF in codes(src)

    def test_defined_on_both_branches_ok(self):
        src = """int f(int c) {
            int x;
            if (c) { x = 1; } else { x = 2; }
            return x;
        }"""
        assert codes(src) == []

    def test_sizeof_does_not_need_value(self):
        src = "unsigned long f(void) { int x; return sizeof(x); }"
        assert codes(src) == []

    def test_deref_of_allocated_storage_is_undefined(self):
        src = """#include <stdlib.h>
        int f(void) {
            int *p = (int *) malloc(sizeof(int));
            int v;
            if (p == NULL) { return 0; }
            v = *p;
            free(p);
            return v;
        }"""
        assert MessageCode.USE_BEFORE_DEF in codes(src)

    def test_compound_assignment_defines(self):
        src = "int f(void) { int x; x = 0; x += 2; return x; }"
        assert codes(src) == []


class TestOutParameters:
    def test_out_param_may_be_undefined_inside(self):
        src = "void init(/*@out@*/ int *p) { *p = 0; }"
        assert codes(src) == []

    def test_out_param_used_before_defined_inside(self):
        src = "int bad(/*@out@*/ int *p) { return *p; }"
        assert MessageCode.USE_BEFORE_DEF in codes(src)

    def test_out_param_must_be_defined_at_return(self):
        src = "void init(/*@out@*/ int *p) { }"
        msgs = texts(src)
        assert any("not completely defined at return" in m for m in msgs)

    def test_allocated_storage_passed_as_out_ok(self):
        src = """#include <stdlib.h>
        extern void init(/*@out@*/ int *p);
        void f(void) {
            int *p = (int *) malloc(sizeof(int));
            if (p == NULL) { return; }
            init(p);
            free(p);
        }"""
        assert codes(src) == []

    def test_allocated_storage_passed_as_in_param_reported(self):
        src = """#include <stdlib.h>
        extern void use(int *p);
        void f(void) {
            int *p = (int *) malloc(sizeof(int));
            if (p == NULL) { return; }
            use(p);
            free(p);
        }"""
        assert MessageCode.PARAM_NOT_DEFINED in codes(src)

    def test_out_param_defined_after_call(self):
        src = """extern void init(/*@out@*/ int *p);
        int f(int *storage) { init(storage); return *storage; }"""
        assert codes(src) == []


class TestStructCompleteness:
    STRUCT = """typedef struct _pair { int a; int b; } *pair;
    extern /*@out@*/ /*@only@*/ void *smalloc(size_t);
    """

    def test_partially_initialized_struct_param(self):
        src = self.STRUCT + """
        void fill(/*@out@*/ pair p) { p->a = 1; }"""
        msgs = texts(src)
        assert any("p->b" in m and "not completely defined" in m for m in msgs)

    def test_fully_initialized_struct_ok(self):
        src = self.STRUCT + """
        void fill(/*@out@*/ pair p) { p->a = 1; p->b = 2; }"""
        assert codes(src) == []

    def test_figure5_incomplete_definition(self):
        src = """typedef /*@null@*/ struct _list {
          /*@only@*/ char *this;
          /*@null@*/ /*@only@*/ struct _list *next;
        } *list;
        extern /*@out@*/ /*@only@*/ void *smalloc(size_t);
        void list_addh(/*@temp@*/ list l, /*@only@*/ char *e) {
          if (l != NULL) {
            while (l->next != NULL) { l = l->next; }
            l->next = (list) smalloc(sizeof(*l->next));
            l->next->this = e;
          }
        }"""
        msgs = texts(check_source(src, "t.c").messages and src or src)
        msgs = texts(src, flags=Flags())
        assert any(
            "l->next->next" in m and "not completely defined" in m for m in msgs
        )

    def test_figure5_fixed_by_defining_next(self):
        src = """typedef /*@null@*/ struct _list {
          /*@only@*/ char *this;
          /*@null@*/ /*@only@*/ struct _list *next;
        } *list;
        extern /*@out@*/ /*@only@*/ void *smalloc(size_t);
        void list_addh(/*@temp@*/ list l, /*@only@*/ char *e) {
          if (l != NULL) {
            while (l->next != NULL) { l = l->next; }
            l->next = (list) smalloc(sizeof(*l->next));
            l->next->this = e;
            l->next->next = NULL;
          } else {
            /*@i@*/ ;
          }
        }"""
        msgs = texts(src, flags=Flags())
        assert not any("not completely defined" in m for m in msgs)

    def test_partial_annotation_relaxes_field_checking(self):
        src = """typedef /*@partial@*/ struct _rec { int a; int b; } *rec;
        extern /*@out@*/ /*@only@*/ void *smalloc(size_t);
        void fill(/*@out@*/ rec r) { r->a = 1; }"""
        assert codes(src) == []

    def test_reldef_relaxes(self):
        src = """typedef struct _rec { int a; /*@reldef@*/ int b; } *rec;
        void fill(/*@out@*/ rec r) { r->a = 1; }"""
        assert codes(src) == []


class TestGlobalsDefinition:
    def test_undef_global_may_be_undefined_at_entry(self):
        src = """extern int g;
        void init(void) /*@globals undef g@*/ { g = 1; }"""
        assert codes(src) == []

    def test_undef_global_must_be_defined_at_exit(self):
        src = """extern int g;
        void init(void) /*@globals undef g@*/ { }"""
        assert MessageCode.GLOBAL_UNDEFINED in codes(src)

    def test_callee_requiring_defined_global(self):
        src = """extern int g;
        extern void use(void) /*@globals g@*/;
        void f(void) /*@globals undef g@*/ { use(); g = 1; }"""
        assert MessageCode.GLOBAL_UNDEFINED in codes(src)

    def test_global_defined_before_callee_ok(self):
        src = """extern int g;
        extern void use(void) /*@globals g@*/;
        void f(void) /*@globals undef g@*/ { g = 1; use(); }"""
        assert codes(src) == []
