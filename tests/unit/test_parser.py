"""Tests for the recursive-descent C parser."""

import pytest

from repro.frontend import cast as A
from repro.frontend import parse_source
from repro.frontend.ctypes import (
    Array,
    FunctionType,
    Pointer,
    Primitive,
    StructType,
    TypedefType,
    strip_typedefs,
)
from repro.frontend.parser import ParseError


def parse(text):
    unit, _, _ = parse_source(text, "t.c")
    return unit


def first_decl(text):
    unit = parse(text)
    decl = unit.items[0]
    assert isinstance(decl, A.Declaration)
    return decl.declarators[0]


def only_function(text):
    unit = parse(text)
    fns = unit.functions()
    assert len(fns) == 1
    return fns[0]


class TestDeclarations:
    def test_simple_int(self):
        d = first_decl("int x;")
        assert d.name == "x"
        assert isinstance(d.ctype, Primitive)
        assert d.ctype.name == "int"

    def test_pointer(self):
        d = first_decl("char *p;")
        assert isinstance(d.ctype, Pointer)
        assert d.ctype.to == Primitive("char")

    def test_pointer_to_pointer(self):
        d = first_decl("char **pp;")
        assert isinstance(d.ctype, Pointer)
        assert isinstance(d.ctype.to, Pointer)

    def test_unsigned_long(self):
        d = first_decl("unsigned long ul;")
        assert d.ctype.name == "unsigned long"

    def test_multi_word_order_insensitive(self):
        assert first_decl("long unsigned x;").ctype.name == "unsigned long"
        assert first_decl("int long x;").ctype.name == "long"

    def test_array(self):
        d = first_decl("int a[10];")
        assert isinstance(d.ctype, Array)
        assert d.ctype.size == 10

    def test_array_of_pointers(self):
        d = first_decl("char *a[4];")
        assert isinstance(d.ctype, Array)
        assert isinstance(d.ctype.of, Pointer)

    def test_pointer_to_array(self):
        d = first_decl("char (*p)[4];")
        assert isinstance(d.ctype, Pointer)
        assert isinstance(d.ctype.to, Array)

    def test_function_returning_pointer(self):
        d = first_decl("void *f(int n);")
        assert isinstance(d.ctype, FunctionType)
        assert isinstance(d.ctype.ret, Pointer)

    def test_function_pointer(self):
        d = first_decl("int (*fp)(char c);")
        assert isinstance(d.ctype, Pointer)
        assert isinstance(d.ctype.to, FunctionType)

    def test_multiple_declarators(self):
        unit = parse("int a, *b, c[2];")
        decl = unit.items[0]
        names = [d.name for d in decl.declarators]
        assert names == ["a", "b", "c"]
        assert isinstance(decl.declarators[1].ctype, Pointer)

    def test_storage_classes(self):
        unit = parse("extern int e; static int s;")
        assert unit.items[0].storage == "extern"
        assert unit.items[1].storage == "static"

    def test_initializer(self):
        d = first_decl("int x = 42;")
        assert isinstance(d.init, A.IntLit)
        assert d.init.value == 42

    def test_brace_initializer(self):
        d = first_decl("int a[2] = {1, 2};")
        assert isinstance(d.init, A.InitList)
        assert len(d.init.items) == 2

    def test_variadic_function(self):
        d = first_decl("int printf(char *fmt, ...);")
        assert d.ctype.variadic

    def test_void_parameter_list(self):
        d = first_decl("int f(void);")
        assert d.ctype.params == []
        assert not d.ctype.old_style

    def test_old_style_empty_params(self):
        d = first_decl("int f();")
        assert d.ctype.old_style


class TestTypedefs:
    def test_typedef_then_use(self):
        unit = parse("typedef unsigned long size_t;\nsize_t n;")
        d = unit.items[1].declarators[0]
        assert isinstance(d.ctype, TypedefType)
        assert d.ctype.name == "size_t"

    def test_typedef_pointer(self):
        unit = parse("typedef struct _s { int x; } *sp;\nsp v;")
        d = unit.items[1].declarators[0]
        actual = strip_typedefs(d.ctype)
        assert isinstance(actual, Pointer)
        assert isinstance(strip_typedefs(actual.to), StructType)

    def test_typedef_annotations_carried(self):
        unit = parse("typedef /*@null@*/ char *maybe;\nmaybe m;")
        d = unit.items[1].declarators[0]
        assert isinstance(d.ctype, TypedefType)
        assert "null" in d.ctype.annotations.names


class TestStructsAndEnums:
    def test_struct_fields(self):
        unit = parse("struct point { int x; int y; };")
        decl = unit.items[0]
        # tag-only declaration has no declarators but registers the type
        assert decl.declarators == []

    def test_struct_variable(self):
        d = first_decl("struct point { int x; int y; } p;")
        st = strip_typedefs(d.ctype)
        assert isinstance(st, StructType)
        assert [f.name for f in st.fields] == ["x", "y"]

    def test_self_referential_struct(self):
        d = first_decl("struct node { int v; struct node *next; } n;")
        st = strip_typedefs(d.ctype)
        next_field = st.field_named("next")
        assert isinstance(next_field.ctype, Pointer)
        assert strip_typedefs(next_field.ctype.to) is st

    def test_union(self):
        d = first_decl("union u { int i; char c; } v;")
        assert strip_typedefs(d.ctype).is_union

    def test_field_annotations(self):
        d = first_decl("struct s { /*@null@*/ char *p; } v;")
        fld = strip_typedefs(d.ctype).field_named("p")
        assert "null" in fld.annotations.names

    def test_enum_values(self):
        unit = parse("enum color { RED, GREEN = 5, BLUE } c;")
        d = unit.items[0].declarators[0]
        et = strip_typedefs(d.ctype)
        assert et.enumerators == {"RED": 0, "GREEN": 5, "BLUE": 6}

    def test_bitfields_accepted(self):
        d = first_decl("struct flags { unsigned a : 1; unsigned b : 2; } f;")
        st = strip_typedefs(d.ctype)
        assert len(st.fields) == 2


class TestAnnotationsOnDeclarations:
    def test_param_annotation(self):
        f = only_function("void f(/*@null@*/ char *p) { }")
        assert "null" in f.params[0].annotations.names

    def test_return_annotation(self):
        unit = parse("extern /*@null@*/ /*@only@*/ void *mk(void);")
        d = unit.items[0].declarators[0]
        assert set(d.annotations.names) == {"null", "only"}

    def test_multiword_annotation_comment(self):
        unit = parse("extern /*@null out only@*/ void *m(unsigned long s);")
        d = unit.items[0].declarators[0]
        assert set(d.annotations.names) == {"null", "out", "only"}

    def test_global_annotation(self):
        d = first_decl("extern /*@only@*/ char *gname;")
        assert "only" in d.annotations.names

    def test_incompatible_annotations_reported(self):
        _, _, problems = parse_source("extern /*@null@*/ /*@notnull@*/ char *p;", "t.c")
        assert any("incompatible" in p.description for p in problems)

    def test_unrecognized_annotation_reported(self):
        _, _, problems = parse_source("extern /*@bogus@*/ char *p;", "t.c")
        assert any("unrecognized" in p.description for p in problems)

    def test_globals_clause(self):
        code = "extern int g;\nvoid f(void) /*@globals g@*/ { }"
        unit = parse(code)
        f = unit.functions()[0]
        assert [g.name for g in f.globals_list] == ["g"]

    def test_globals_clause_undef(self):
        code = "extern int g;\nvoid f(void) /*@globals undef g@*/ { }"
        f = parse(code).functions()[0]
        assert f.globals_list[0].undef


class TestStatements:
    def test_if_else(self):
        f = only_function("void f(int x) { if (x) x = 1; else x = 2; }")
        stmt = f.body.items[0]
        assert isinstance(stmt, A.If)
        assert stmt.orelse is not None

    def test_while(self):
        f = only_function("void f(int x) { while (x) x = x - 1; }")
        assert isinstance(f.body.items[0], A.While)

    def test_do_while(self):
        f = only_function("void f(int x) { do { x = 1; } while (x); }")
        assert isinstance(f.body.items[0], A.DoWhile)

    def test_for(self):
        f = only_function("void f(void) { int i; for (i = 0; i < 3; i++) ; }")
        stmt = f.body.items[1]
        assert isinstance(stmt, A.For)
        assert stmt.cond is not None
        assert stmt.step is not None

    def test_switch_cases(self):
        code = """void f(int x) {
            switch (x) {
            case 1: x = 10; break;
            default: x = 0;
            }
        }"""
        f = only_function(code)
        sw = f.body.items[0]
        assert isinstance(sw, A.Switch)
        cases = [i for i in sw.body.items if isinstance(i, A.Case)]
        assert len(cases) == 2
        assert cases[1].value is None

    def test_return_value(self):
        f = only_function("int f(void) { return 7; }")
        ret = f.body.items[0]
        assert isinstance(ret, A.Return)
        assert ret.value.value == 7

    def test_goto_and_label(self):
        f = only_function("void f(void) { goto out; out: ; }")
        assert isinstance(f.body.items[0], A.Goto)
        assert isinstance(f.body.items[1], A.Label)

    def test_break_continue(self):
        f = only_function("void f(int x) { while (x) { if (x) break; continue; } }")
        body = f.body.items[0].body
        assert isinstance(body.items[0].then, A.Break)
        assert isinstance(body.items[1], A.Continue)

    def test_block_end_location(self):
        f = only_function("void f(void)\n{\n  ;\n}\n")
        assert f.body.end_location.line == 4

    def test_local_declarations(self):
        f = only_function("void f(void) { int x; char *p; x = 1; }")
        decls = [i for i in f.body.items if isinstance(i, A.Declaration)]
        assert len(decls) == 2


class TestExpressions:
    def expr(self, text):
        f = only_function(f"void f(int a, int b, int *p) {{ {text}; }}")
        stmt = f.body.items[0]
        assert isinstance(stmt, A.ExprStmt)
        return stmt.expr

    def test_precedence_mul_over_add(self):
        e = self.expr("a = 1 + 2 * 3")
        assert isinstance(e.value, A.Binary)
        assert e.value.op == "+"
        assert e.value.rhs.op == "*"

    def test_assignment_right_associative(self):
        e = self.expr("a = b = 1")
        assert isinstance(e.value, A.Assign)

    def test_ternary(self):
        e = self.expr("a = b ? 1 : 2")
        assert isinstance(e.value, A.Ternary)

    def test_logical_operators(self):
        e = self.expr("a = a && b || a")
        assert e.value.op == "||"

    def test_unary_deref_and_addr(self):
        e = self.expr("a = *p")
        assert isinstance(e.value, A.Unary)
        assert e.value.op == "*"
        e2 = self.expr("p = &a")
        assert e2.value.op == "&"

    def test_postfix_increment(self):
        e = self.expr("a++")
        assert isinstance(e, A.Unary)
        assert e.op == "p++"

    def test_member_access(self):
        f = only_function(
            "struct s { int x; };\n"
            "void f(struct s v, struct s *q) { v.x = 1; q->x = 2; }"
        )
        dot = f.body.items[0].expr.target
        arrow = f.body.items[1].expr.target
        assert isinstance(dot, A.Member) and not dot.arrow
        assert isinstance(arrow, A.Member) and arrow.arrow

    def test_cast(self):
        e = self.expr("p = (int *) 0")
        assert isinstance(e.value, A.Cast)

    def test_sizeof_type_and_expr(self):
        assert isinstance(self.expr("a = sizeof(int)").value, A.SizeofType)
        assert isinstance(self.expr("a = sizeof(a)").value, A.SizeofExpr)

    def test_sizeof_deref(self):
        e = self.expr("a = sizeof(*p)")
        assert isinstance(e.value, A.SizeofExpr)

    def test_call_with_args(self):
        f = only_function("extern int g(int, int);\nvoid f(int a) { g(a, 2); }")
        call = f.body.items[0].expr
        assert isinstance(call, A.Call)
        assert len(call.args) == 2

    def test_index(self):
        f = only_function("void f(int *p) { p[3] = 1; }")
        assert isinstance(f.body.items[0].expr.target, A.Index)

    def test_comma_expression(self):
        e = self.expr("a = 1, b = 2")
        assert isinstance(e, A.Comma)

    def test_string_concatenation(self):
        f = only_function('extern void g(char *);\nvoid f(void) { g("ab" "cd"); }')
        arg = f.body.items[0].expr.args[0]
        assert isinstance(arg, A.StringLit)
        assert arg.value == "abcd"


def parse_errors_of(text):
    from repro.frontend.preprocessor import Preprocessor
    from repro.frontend.source import SourceManager
    from repro.frontend.parser import Parser

    pp = Preprocessor(SourceManager())
    toks = pp.preprocess_text(text, "t.c")
    parser = Parser(toks, "t.c")
    parser.parse_translation_unit()
    return parser.parse_errors


class TestParseErrors:
    def test_missing_semicolon(self):
        assert parse_errors_of("int x")

    def test_unterminated_block(self):
        assert parse_errors_of("void f(void) { int x;")

    def test_nested_function_rejected(self):
        errors = parse_errors_of("void f(void) { void g(void) { } }")
        assert any("nested function" in str(e) for e in errors)

    def test_error_has_location(self):
        errors = parse_errors_of("void f(void) {\n  int x\n}")
        assert errors and errors[0].location.line >= 2


class TestWalk:
    def test_walk_visits_subtree(self):
        unit = parse("void f(int x) { if (x) x = 1; }")
        nodes = list(A.walk(unit))
        assert any(isinstance(n, A.If) for n in nodes)
        assert any(isinstance(n, A.Assign) for n in nodes)


class TestErrorRecovery:
    def test_parsing_continues_after_a_bad_declaration(self):
        unit, _, _ = parse_source(
            "int before(int x) { return x; }\n"
            "int broken(int x) { return + ; }\n"
            "int after(int x) { return x; }\n",
            "rec.c",
        )
        names = [f.name for f in unit.functions()]
        assert names == ["before", "after"]

    def test_errors_recorded_with_locations(self):
        from repro.frontend.preprocessor import Preprocessor
        from repro.frontend.source import SourceManager
        from repro.frontend.parser import Parser

        pp = Preprocessor(SourceManager())
        toks = pp.preprocess_text("int a;\nint broken( { ;\nint b;\n", "e.c")
        parser = Parser(toks, "e.c")
        unit = parser.parse_translation_unit()
        assert parser.parse_errors
        assert parser.parse_errors[0].location.line >= 2

    def test_recovery_makes_progress_on_garbage(self):
        unit, _, _ = parse_source("= = = = ;\nint ok;\n", "g.c")
        # must terminate and still see the following declaration
        assert any(
            d.name == "ok"
            for decl in unit.declarations()
            for d in decl.declarators
        )
