"""Unit tests for the fault-containment layer: crash bundles, degraded
unit outputs, and the parallel scheduler's fallback bookkeeping."""

import json
import os

import pytest

from repro.core.api import (
    Checker,
    build_program_symtab,
    check_parsed_unit,
    failed_parsed_unit,
    unit_interface,
)
from repro.core.faults import (
    FatalError,
    MAX_CRASH_BUNDLES,
    frontend_fatal,
    write_crash_bundle,
)
from repro.frontend.lexer import LexError
from repro.frontend.source import Location
from repro.messages.message import MessageCode


def _bundles(directory):
    if not os.path.isdir(directory):
        return []
    return sorted(n for n in os.listdir(directory) if n.endswith(".json"))


class TestCrashBundles:
    def test_bundle_contents(self, tmp_path):
        crash_dir = str(tmp_path / "crashes")
        try:
            raise ValueError("kaboom")
        except ValueError as exc:
            path = write_crash_bundle(
                crash_dir, phase="check", unit="u.c", function="f",
                exc=exc, source_text="int x;",
            )
        assert path is not None and os.path.isfile(path)
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["phase"] == "check"
        assert payload["unit"] == "u.c"
        assert payload["function"] == "f"
        assert payload["exception"] == "ValueError: kaboom"
        assert "Traceback" in payload["traceback"]
        assert len(payload["source_digest"]) == 64

    def test_unwritable_directory_returns_none(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        path = write_crash_bundle(
            str(blocker / "nested"), phase="check", unit="u.c",
            exc=RuntimeError("x"),
        )
        assert path is None

    def test_pruning_caps_bundle_count(self, tmp_path):
        crash_dir = str(tmp_path / "crashes")
        os.makedirs(crash_dir)
        for i in range(MAX_CRASH_BUNDLES + 5):
            with open(os.path.join(crash_dir, f"crash-0-{i:04d}.json"),
                      "w") as handle:
                handle.write("{}")
        write_crash_bundle(crash_dir, phase="check", unit="u.c",
                           exc=RuntimeError("x"))
        assert len(_bundles(crash_dir)) <= MAX_CRASH_BUNDLES


class TestFrontendFatals:
    def test_lex_error_becomes_failed_unit(self):
        checker = Checker()
        pu = checker.parse_unit('char *s = "unterminated\n', "bad.c")
        assert pu.fatal_error is not None
        assert pu.fatal_error.kind == "frontend"
        assert pu.degraded
        assert pu.unit.functions() == []

    def test_failed_unit_reports_one_parse_error(self):
        fatal = frontend_fatal(
            LexError("unterminated string", Location("bad.c", 3, 1)), "bad.c"
        )
        pu = failed_parsed_unit("bad.c", fatal)
        symtab = build_program_symtab([unit_interface(pu)])
        out = check_parsed_unit(pu, symtab, Checker().flags)
        assert out.degraded
        assert out.internal_errors == 0
        parse_errors = [
            m for m in out.messages if m.code is MessageCode.PARSE_ERROR
        ]
        assert len(parse_errors) == 1
        assert parse_errors[0].location.line == 3
        assert "unterminated string" in parse_errors[0].text

    def test_internal_fatal_reports_internal_error(self):
        fatal = FatalError(
            kind="internal", location=Location("u.c", 1, 0),
            description="Internal error while parsing this file: "
                        "RuntimeError: x (file skipped)",
        )
        pu = failed_parsed_unit("u.c", fatal)
        symtab = build_program_symtab([unit_interface(pu)])
        out = check_parsed_unit(pu, symtab, Checker().flags)
        assert out.degraded
        assert out.internal_errors == 1
        assert [m.code for m in out.messages] == [MessageCode.INTERNAL_ERROR]


class TestPerFunctionContainment:
    def test_one_bad_function_does_not_hide_the_rest(self, tmp_path,
                                                     monkeypatch):
        from repro.analysis.checker import FunctionChecker

        original = FunctionChecker.check

        def selective(self):
            if self.fdef.name == "boom":
                raise RuntimeError("injected")
            return original(self)

        monkeypatch.setattr(FunctionChecker, "check", selective)
        crash_dir = str(tmp_path / "crashes")
        checker = Checker(crash_dir=crash_dir)
        pu = checker.parse_unit(
            "#include <stdlib.h>\n"
            "void boom(void) { }\n"
            "void leaky(char *p) { free(p); }\n",
            "u.c",
        )
        symtab = build_program_symtab([unit_interface(pu)])
        out = check_parsed_unit(pu, symtab, checker.flags,
                                crash_dir=crash_dir)
        codes = [m.code for m in out.messages]
        assert MessageCode.INTERNAL_ERROR in codes
        assert out.degraded and out.internal_errors == 1
        # the other function's real warning survived
        assert any(c is not MessageCode.INTERNAL_ERROR for c in codes)
        assert _bundles(crash_dir)

    def test_clean_unit_is_not_degraded(self):
        checker = Checker()
        pu = checker.parse_unit("int f(int x) { return x; }\n", "u.c")
        symtab = build_program_symtab([unit_interface(pu)])
        out = check_parsed_unit(pu, symtab, checker.flags)
        assert not out.degraded
        assert out.internal_errors == 0


class TestParallelFallback:
    def _parsed(self, texts):
        checker = Checker()
        return [
            checker.parse_unit(text, f"u{i}.c")
            for i, text in enumerate(texts)
        ]

    def test_unpicklable_state_no_longer_forces_serial(self):
        # Shared state travels through fork-inherited memory, so
        # unpicklable members (which used to force a serial fallback)
        # parallelize like anything else.
        from repro.incremental import parallel

        if not parallel.fork_available():
            pytest.skip("needs fork")
        units = self._parsed(["int f(void) { return 1; }",
                              "int g(void) { return 2; }"])
        symtab = build_program_symtab([unit_interface(u) for u in units])
        outputs, notes = parallel.check_units_parallel(
            units, symtab, Checker().flags,
            {"bad": lambda: None},  # unpicklable enum_consts
            jobs=2,
        )
        assert outputs is not None and len(outputs) == 2
        assert notes == []

    def test_single_unit_stays_serial_silently(self):
        from repro.incremental.parallel import check_units_parallel

        units = self._parsed(["int f(void) { return 1; }"])
        symtab = build_program_symtab([unit_interface(u) for u in units])
        outputs, notes = check_units_parallel(
            units, symtab, Checker().flags, {}, jobs=4
        )
        assert outputs is None
        assert notes == []

    def test_dead_task_is_retried_serially(self, monkeypatch):
        from repro.incremental import parallel

        if not parallel.fork_available():
            pytest.skip("needs fork")

        # Workers inherit the monkeypatched task through fork; the
        # parent retries each shard with the real check function.
        monkeypatch.setattr(parallel, "_check_shard_task", _die_task)
        units = self._parsed(["int f(void) { return 1; }",
                              "int g(void) { return 2; }"])
        symtab = build_program_symtab([unit_interface(u) for u in units])
        outputs, notes = parallel.check_units_parallel(
            units, symtab, Checker().flags, {}, jobs=2
        )
        assert outputs is not None and len(outputs) == 2
        assert all(out is not None for out in outputs)
        assert len(notes) == 2
        assert all("re-checked serially" in note for note in notes)

    def test_broken_pool_falls_back_serially_once(self, monkeypatch):
        # Satellite regression: a collapsed pool used to be recorded as
        # one retry per surviving unit. It must cost one fallback with
        # one note, and every unit must still be checked.
        from repro.incremental import parallel
        from repro.obs.metrics import MetricsRegistry

        if not parallel.fork_available():
            pytest.skip("needs fork")
        monkeypatch.setattr(parallel, "_check_shard_task", _break_pool_task)
        units = self._parsed([
            f"int f{i}(void) {{ return {i}; }}" for i in range(4)
        ])
        symtab = build_program_symtab([unit_interface(u) for u in units])
        metrics = MetricsRegistry()
        outputs, notes = parallel.check_units_parallel(
            units, symtab, Checker().flags, {}, jobs=2, metrics=metrics
        )
        assert outputs is not None and len(outputs) == 4
        assert all(out is not None for out in outputs)
        assert len(notes) == 1
        assert "BrokenProcessPool" in notes[0]
        assert metrics.count("engine.parallel.fallbacks") == 1
        assert metrics.count("engine.parallel.unit_retries") == 0

    def test_task_payload_does_not_scale_with_unit_count(self, monkeypatch):
        # Satellite regression: shared state used to be pickled into
        # every worker via initargs, multiplying peak memory by the job
        # count. Tasks must now carry only shard indices, so the bytes
        # pickled per submit stay tiny however large the units are.
        import pickle as pickle_mod
        from concurrent.futures import ProcessPoolExecutor

        from repro.incremental import parallel

        if not parallel.fork_available():
            pytest.skip("needs fork")
        big_body = "".join(f"    int a{i} = {i};\n" for i in range(2000))
        units = self._parsed([
            f"int f{i}(void) {{\n{big_body}    return {i}; }}"
            for i in range(3)
        ])
        assert sum(len(u.unit.name) for u in units)  # parsed fine
        payload_sizes = []
        real_submit = ProcessPoolExecutor.submit

        def recording_submit(self, fn, *args, **kwargs):
            payload_sizes.append(len(pickle_mod.dumps((args, kwargs))))
            return real_submit(self, fn, *args, **kwargs)

        monkeypatch.setattr(
            ProcessPoolExecutor, "submit", recording_submit
        )
        symtab = build_program_symtab([unit_interface(u) for u in units])
        outputs, notes = parallel.check_units_parallel(
            units, symtab, Checker().flags, {}, jobs=2
        )
        assert outputs is not None and len(outputs) == 3
        assert payload_sizes, "parallel path did not submit tasks"
        assert max(payload_sizes) < 4096, payload_sizes
        assert parallel._PARENT_STATE is None  # no lingering references

    def test_keyboard_interrupt_propagates(self, monkeypatch):
        from repro.incremental import parallel

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", interrupt)
        units = self._parsed(["int f(void) { return 1; }",
                              "int g(void) { return 2; }"])
        symtab = build_program_symtab([unit_interface(u) for u in units])
        with pytest.raises(KeyboardInterrupt):
            parallel.check_units_parallel(
                units, symtab, Checker().flags, {}, jobs=2
            )


def _die_task(indices):
    raise RuntimeError(f"worker died on {indices}")


def _break_pool_task(indices):
    from concurrent.futures.process import BrokenProcessPool

    raise BrokenProcessPool(f"simulated collapse on {indices}")


class TestCancelScopes:
    def test_checkpoint_is_a_no_op_without_a_scope(self):
        from repro.core.faults import active_cancel_scope, cancel_checkpoint

        assert active_cancel_scope() is None
        cancel_checkpoint()  # must not raise

    def test_cancelled_scope_raises_at_the_checkpoint(self):
        from repro.core.faults import (
            CancelScope,
            RequestCancelled,
            cancel_checkpoint,
            cancel_scope,
        )

        scope = CancelScope()
        with cancel_scope(scope):
            cancel_checkpoint()  # not yet cancelled: passes
            scope.cancel("deadline exceeded")
            with pytest.raises(RequestCancelled, match="deadline exceeded"):
                cancel_checkpoint()

    def test_scope_restored_on_exit_and_nestable(self):
        from repro.core.faults import (
            CancelScope,
            active_cancel_scope,
            cancel_scope,
        )

        outer, inner = CancelScope(), CancelScope()
        with cancel_scope(outer):
            with cancel_scope(inner):
                assert active_cancel_scope() is inner
            assert active_cancel_scope() is outer
        assert active_cancel_scope() is None

    def test_cancellation_escapes_exception_containment(self):
        # RequestCancelled is a BaseException precisely so that the
        # per-unit `except Exception` containment cannot swallow it.
        from repro.core.faults import RequestCancelled

        assert not issubclass(RequestCancelled, Exception)
        assert issubclass(RequestCancelled, BaseException)

    def test_scopes_are_thread_local(self):
        import threading

        from repro.core.faults import (
            CancelScope,
            active_cancel_scope,
            cancel_scope,
        )

        seen = {}

        def probe():
            seen["other-thread"] = active_cancel_scope()

        with cancel_scope(CancelScope()):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join(10)
        assert seen["other-thread"] is None

    def test_engine_stops_at_a_unit_boundary(self, tmp_path):
        # Cancel between units of a batch: the engine raises out of its
        # unit loop instead of finishing the remaining units.
        from repro.core.faults import (
            CancelScope,
            RequestCancelled,
            cancel_scope,
        )
        from repro.driver import cli

        sources = []
        for index in range(4):
            src = tmp_path / f"u{index}.c"
            src.write_text(f"int f{index}(void) {{ return {index}; }}\n")
            sources.append(str(src))
        scope = CancelScope()
        scope.cancel("test cancel")
        with cancel_scope(scope):
            with pytest.raises(RequestCancelled):
                cli.run(["-quiet", *sources])
