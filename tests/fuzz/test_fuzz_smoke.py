"""Time-bounded fuzz smoke test: the checker never raises, never hangs.

Hypothesis generates C-ish token soup and structured mutations of a real
program; totality is the only property — any input, however broken, must
come back as a normal :class:`CheckResult` (possibly full of parse-error
messages), never as an exception. Each example runs under a hypothesis
deadline so a hang fails fast; CI additionally runs this file as a
separate job with a hard timeout.
"""

import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import check_source
from repro.core.api import CheckResult

#: Crash bundles from fuzz runs must not land in the working tree.
CRASH_DIR = tempfile.mkdtemp(prefix="pylclint-fuzz-crashes-")

FUZZ_SETTINGS = settings(
    max_examples=60,
    deadline=4000,  # ms per example: catches hangs, tolerates cold starts
    suppress_health_check=[HealthCheck.too_slow],
)

_FRAGMENTS = st.sampled_from([
    "int", "char *", "void", "struct s", "typedef", "extern", "static",
    "x", "y", "fn", "main", "0", "1", "0x", "'c'", '"str"', '"unterminated',
    "{", "}", "(", ")", "[", "]", ";", ",", "=", "+", "->", ".", "*", "&",
    "if", "else", "while", "for", "return", "switch", "case", "goto",
    "/*@null@*/", "/*@only@*/", "/*@out@*/", "/*@unrecognized@*/",
    "/*@", "@*/", "/*", "//", "#include <stdlib.h>", "#include \"nope.h\"",
    "#define X 1", "#define", "#if 0", "#endif", "#garbage",
    "malloc(4)", "free(p)", "\\", "\x00", "\x01", "é", "\n", "  ",
])


@st.composite
def _token_soup(draw):
    parts = draw(st.lists(_FRAGMENTS, min_size=0, max_size=60))
    sep = draw(st.sampled_from([" ", "\n"]))
    return sep.join(parts)


WELL_FORMED = """#include <stdlib.h>
typedef struct pair { int a; int b; } pair;
static pair *mk(void) { return (pair *) malloc(sizeof(pair)); }
int sum(/*@null@*/ pair *p) {
  if (p == NULL) { return 0; }
  return p->a + p->b;
}
void drive(void) {
  pair *p = mk();
  if (p != NULL) { p->a = 1; p->b = 2; free(p); }
}
"""


@st.composite
def _mutated_program(draw):
    """Cut, duplicate, or splice garbage into a real program — the shape
    of damage real-world generated/truncated inputs actually have."""
    text = WELL_FORMED
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.sampled_from(["cut", "dup", "splice"]))
        if len(text) < 2:
            break
        lo = draw(st.integers(0, len(text) - 1))
        hi = draw(st.integers(lo, min(len(text), lo + 80)))
        if kind == "cut":
            text = text[:lo] + text[hi:]
        elif kind == "dup":
            text = text[:hi] + text[lo:hi] + text[hi:]
        else:
            text = text[:lo] + draw(_FRAGMENTS) + text[lo:]
    return text


def _check_totality(source):
    result = check_source(source, "fuzz.c", crash_dir=CRASH_DIR)
    assert isinstance(result, CheckResult)
    for message in result.messages:
        assert message.render()
    return result


class TestFuzzSmoke:
    @FUZZ_SETTINGS
    @given(_token_soup())
    def test_token_soup_never_raises(self, source):
        _check_totality(source)

    @FUZZ_SETTINGS
    @given(_mutated_program())
    def test_mutated_program_never_raises(self, source):
        _check_totality(source)

    @FUZZ_SETTINGS
    @given(st.text(max_size=200))
    def test_arbitrary_text_never_raises(self, source):
        _check_totality(source)

    def test_no_internal_errors_on_empty_and_trivial(self):
        for source in ("", ";", "\n\n", "int x;"):
            result = _check_totality(source)
            assert result.internal_errors == 0

    def test_known_bad_inputs_degrade_not_crash(self):
        for source in (
            'char *s = "unterminated',
            "int f( {",
            '#include "definitely-missing.h"\nint x;',
            "\x01\x02\x03",
        ):
            result = _check_totality(source)
            # malformed input is a frontend fatal (parse-error message),
            # never a contained *internal* error
            assert result.internal_errors == 0, source
