"""Fuzz the instrumented-heap interpreter: contained failures only.

Every parseable generated input gets executed function by function under
a small step budget. The totality contract mirrors the checker's: the
interpreter may report runtime events, raise
:class:`~repro.runtime.interp.InterpreterError`, or exhaust its
:class:`~repro.runtime.interp.StepBudgetExceeded` budget — but no other
exception type may ever escape, and a completed run must return a
well-formed result. The difftest campaign leans on exactly this
contract (an interpreter failure is a verdict, not a crash), so this is
the fuzz-shaped proof it holds.
"""

import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import Checker
from repro.frontend.symtab import SymbolTable
from repro.runtime.interp import (
    Interpreter,
    InterpreterError,
    StepBudgetExceeded,
)

CRASH_DIR = tempfile.mkdtemp(prefix="pylclint-fuzz-interp-crashes-")

FUZZ_SETTINGS = settings(
    max_examples=40,
    deadline=4000,
    suppress_health_check=[HealthCheck.too_slow],
)

WELL_FORMED = """#include <stdlib.h>
typedef struct node { int v; struct node *next; } node;
static node *mk(int v) {
  node *n = (node *) malloc(sizeof(node));
  if (n != NULL) { n->v = v; n->next = NULL; }
  return n;
}
void push_pop(void) {
  node *a = mk(1);
  node *b = mk(2);
  if (a != NULL && b != NULL) { a->next = b; }
  if (a != NULL) { free(a->next); free(a); }
}
void looped(void) {
  int i = 0;
  node *n = mk(0);
  while (i < 10) { i = i + 1; }
  free(n);
}
void buggy(void) {
  node *n = mk(3);
  free(n);
  free(n);
}
"""

_FRAGMENTS = st.sampled_from([
    "free(n)", "free(a)", "malloc(0)", "n = NULL", "i = i + 1",
    "while (1) { }", "return", ";", "{", "}", "int q;", "q = *p;",
    "n->v = 9", "n->next = n", "/*@only@*/", "#define X",
])


@st.composite
def _mutated_program(draw):
    text = WELL_FORMED
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.sampled_from(["cut", "dup", "splice"]))
        if len(text) < 2:
            break
        lo = draw(st.integers(0, len(text) - 1))
        hi = draw(st.integers(lo, min(len(text), lo + 60)))
        if kind == "cut":
            text = text[:lo] + text[hi:]
        elif kind == "dup":
            text = text[:hi] + text[lo:hi] + text[hi:]
        else:
            text = text[:lo] + draw(_FRAGMENTS) + text[lo:]
    return text


def _parse(source):
    """Parse with the real frontend; None when the input is unparseable
    (the checker reports parse errors — those inputs have no functions
    to execute and are out of scope here)."""
    checker = Checker(crash_dir=CRASH_DIR)
    try:
        parsed = checker.parse_unit(source, "fuzz.c")
    except Exception:
        return None
    symtab = SymbolTable()
    symtab.add_unit(parsed.unit)
    return parsed.unit, symtab, parsed.enum_consts


def _execute_everything(source):
    """Run every zero-argument function; only contained outcomes allowed."""
    parsed = _parse(source)
    if parsed is None:
        return 0
    unit, symtab, enum_consts = parsed
    executed = 0
    for fdef in unit.functions():
        if fdef.params:
            continue     # fuzz entry points are the void(void) functions
        try:
            # construction evaluates global initializers, so it can fail
            # the same contained way running can
            interp = Interpreter(
                [unit], symtab, enum_consts,
                max_steps=5_000, max_call_depth=32,
            )
            result = interp.run(fdef.name)
        except (InterpreterError, StepBudgetExceeded, RecursionError):
            continue     # a contained verdict, exactly as documented
        assert result.exit_code is not None
        # a tripped budget surfaces as steps == max_steps + 1
        assert result.steps <= 5_001
        for event in result.events:
            assert event.kind is not None
        executed += 1
    return executed


class TestFuzzInterpreter:
    @FUZZ_SETTINGS
    @given(_mutated_program())
    def test_mutated_programs_execute_or_fail_contained(self, source):
        _execute_everything(source)

    @FUZZ_SETTINGS
    @given(st.lists(_FRAGMENTS, max_size=30))
    def test_fragment_soup_bodies_execute_or_fail_contained(self, parts):
        body = "\n  ".join(p + ";" if not p.endswith(("{", "}", ";")) else p
                           for p in parts)
        source = (
            "#include <stdlib.h>\n"
            "void fuzz_entry(void)\n{\n  int i;\n  char *p;\n  char *n;\n  "
            "char *a;\n" + ("  " + body + "\n" if body else "")
            + "}\n"
        )
        _execute_everything(source)

    def test_well_formed_baseline_runs(self):
        # the unmutated program must actually execute (guards against the
        # fuzz property passing vacuously because nothing ever parses)
        assert _execute_everything(WELL_FORMED) >= 3

    def test_runaway_loop_hits_step_budget_not_hang(self):
        source = "void spin(void)\n{\n  int i;\n  i = 0;\n  " \
                 "while (1) { i = i + 1; }\n}\n"
        parsed = _parse(source)
        assert parsed is not None
        unit, symtab, enum_consts = parsed
        interp = Interpreter([unit], symtab, enum_consts, max_steps=2_000)
        try:
            result = interp.run("spin")
        except StepBudgetExceeded:
            return
        # the budget may also surface as a completed, truncated run
        assert result.steps <= 2_001
