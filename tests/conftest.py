def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden snapshot files instead of comparing",
    )
