"""Property tests for the seeded mutation engine.

A differential campaign is only replayable if every variant is a pure
function of its integer seed — no wall clock, no hash-randomized
iteration order. These tests pin that: the engine's output is stable
within a process (hypothesis over random seeds), identical across
subprocesses launched with *different* ``PYTHONHASHSEED`` values, and
every emitted variant — planted or clean, across all ten bug kinds —
parses cleanly under both parser engines, so a mutation recipe can
never silently degrade a campaign into parse-error exclusions.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.bench.seeding import BugKind
from repro.core.api import Checker
from repro.difftest.mutations import MutationEngine
from repro.frontend.parser import parser_engine

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def _fingerprint(seed: int) -> str:
    """A stable digest of everything observable about one variant."""
    variant = MutationEngine().variant(seed)
    payload = {
        "files": variant.files,
        "scenarios": variant.scenarios,
        "target": variant.target,
        "planted": (
            variant.planted.to_dict() if variant.planted is not None else None
        ),
        "window": list(variant.window_lines),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


_SUBPROCESS_PROG = """
import json, sys
sys.path.insert(0, {src!r})
from tests.property.test_mutation_props import _fingerprint
print(json.dumps([_fingerprint(s) for s in {seeds!r}]))
"""


def _fingerprints_under_hashseed(seeds: list[int], hashseed: str) -> list[str]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR), str(SRC_DIR.parent)]
    )
    prog = _SUBPROCESS_PROG.format(src=str(SRC_DIR), seeds=seeds)
    out = subprocess.run(
        [sys.executable, "-c", prog],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout)


class TestSeedPurity:
    @given(st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=25, deadline=None)
    def test_variant_is_a_pure_function_of_seed(self, seed):
        assert _fingerprint(seed) == _fingerprint(seed)

    def test_variants_identical_across_hash_seeds(self):
        # Seeds chosen to cover planted variants of several kinds plus a
        # plain clean control and a guard-idiom control (clean_every=8).
        seeds = [0, 1, 7, 10, 12, 15, 26, 63]
        a = _fingerprints_under_hashseed(seeds, "0")
        b = _fingerprints_under_hashseed(seeds, "424242")
        assert a == b


def _parse_errors(engine: str, files: dict[str, str]) -> list[str]:
    """Parse every .c unit of a variant under one engine, preprocessed
    against the variant's own headers; returns all frontend problems."""
    problems = []
    with parser_engine(engine):
        checker = Checker()
        for name, text in files.items():
            if name.endswith(".h"):
                checker.sources.add(name, text)
        for name, text in files.items():
            if name.endswith(".h"):
                continue
            pu = checker.parse_unit(text, name)
            if pu.fatal_error is not None:
                problems.append(f"{name}: {pu.fatal_error.description}")
            problems.extend(f"{name}: {e}" for e in pu.parse_errors)
    return problems


class TestVariantsParse:
    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_every_variant_parses_with_both_engines(self, seed):
        variant = MutationEngine().variant(seed)
        assert _parse_errors("table", variant.files) == []
        assert _parse_errors("reference", variant.files) == []

    def test_every_bug_kind_recipe_parses(self):
        # Deterministic sweep: keep drawing seeds until every kind has
        # appeared at least once, parsing each draw along the way.
        engine = MutationEngine()
        remaining = set(BugKind)
        for seed in range(120):
            variant = engine.variant(seed)
            if variant.planted is not None:
                remaining.discard(variant.planted.kind)
            assert _parse_errors("table", variant.files) == [], seed
            if not remaining:
                break
        assert not remaining
