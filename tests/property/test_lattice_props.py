"""Property tests for the dataflow lattices (confluence algebra)."""

from hypothesis import given, strategies as st

from repro.analysis.states import (
    AllocState,
    DefState,
    NullState,
    RefState,
    merge_alloc,
    merge_def,
    merge_null,
)

def_states = st.sampled_from(list(DefState))
null_states = st.sampled_from(list(NullState))
alloc_states = st.sampled_from(list(AllocState))
ref_states = st.builds(RefState, def_states, null_states, alloc_states)


class TestMergeAlgebra:
    @given(def_states, def_states)
    def test_def_merge_commutative(self, a, b):
        assert merge_def(a, b)[0] is merge_def(b, a)[0]

    @given(def_states)
    def test_def_merge_idempotent(self, a):
        merged, anomaly = merge_def(a, a)
        assert merged is a
        assert anomaly is None

    @given(null_states, null_states)
    def test_null_merge_commutative(self, a, b):
        assert merge_null(a, b) is merge_null(b, a)

    @given(null_states)
    def test_null_merge_idempotent(self, a):
        assert merge_null(a, a) is a

    @given(null_states, null_states, null_states)
    def test_null_merge_associative(self, a, b, c):
        assert merge_null(merge_null(a, b), c) is merge_null(a, merge_null(b, c))

    @given(alloc_states, alloc_states)
    def test_alloc_merge_commutative(self, a, b):
        assert merge_alloc(a, b)[0] is merge_alloc(b, a)[0]

    @given(alloc_states)
    def test_alloc_merge_idempotent(self, a):
        merged, anomaly = merge_alloc(a, a)
        assert merged is a
        assert anomaly is None

    @given(alloc_states, alloc_states)
    def test_alloc_anomaly_implies_error(self, a, b):
        merged, anomaly = merge_alloc(a, b)
        if anomaly is not None:
            assert merged is AllocState.ERROR

    @given(def_states, def_states)
    def test_def_merge_never_invents_definedness(self, a, b):
        """The merge uses the weakest assumption: a merged DEFINED state
        requires both sides DEFINED."""
        merged, _ = merge_def(a, b)
        if merged is DefState.DEFINED:
            assert a is DefState.DEFINED and b is DefState.DEFINED

    @given(null_states, null_states)
    def test_null_merge_preserves_possible_nullness(self, a, b):
        """If either side may be null, the merge may be null (or is a
        relaxed state)."""
        merged = merge_null(a, b)
        if a.possibly_null() or b.possibly_null():
            assert merged.possibly_null() or merged in (
                NullState.RELNULL, NullState.UNKNOWN,
            )


class TestRefStateMerge:
    @given(ref_states, ref_states)
    def test_commutative(self, a, b):
        left, _ = a.merged(b)
        right, _ = b.merged(a)
        assert left == right

    @given(ref_states)
    def test_idempotent_and_anomaly_free(self, a):
        merged, anomalies = a.merged(a)
        assert merged == a
        assert anomalies == []

    @given(ref_states, ref_states)
    def test_total(self, a, b):
        merged, anomalies = a.merged(b)
        assert isinstance(merged, RefState)
        assert all(hasattr(x, "describe") for x in anomalies)

    @given(ref_states, ref_states)
    def test_error_states_absorb(self, a, b):
        poisoned = a.with_alloc(AllocState.ERROR)
        merged, anomalies = poisoned.merged(b)
        assert merged.alloc is AllocState.ERROR
        assert not any(x.kind == "alloc" for x in anomalies)
