"""Property tests for the checking-service line protocol.

Two invariants are fuzzed here, per the reply-schema contract in
``repro.service.protocol``:

* **totality** — whatever bytes arrive (truncated JSON, NUL bytes,
  interleaved verbs, cap-boundary lines), every request line gets
  exactly one well-formed JSON reply and the server survives;
* **transport parity** — the legacy stdin/stdout shim and the asyncio
  service produce the same replies for the same request lines, modulo
  volatile fields (timings, latency summaries, metric snapshots).
"""

import asyncio
import json
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.incremental.server import DaemonServer
from repro.obs.metrics import MetricsRegistry
from repro.service.client import ServiceClient
from repro.service.protocol import MAX_REQUEST_BYTES
from repro.service.server import CheckingService

# -- strategies --------------------------------------------------------------

# Tokens that are deterministic to "check": flags, missing files, and
# option-looking noise. None of these name a real file.
_TOKENS = st.sampled_from([
    "-quiet", "zz_no_such_file.c", "zz_also_missing.c", "--not-an-option",
    "metrics", "shutdown", "plain", "-stats",
])

_IDS = st.one_of(
    st.integers(-999999, 999999),
    st.text(
        alphabet=st.characters(
            blacklist_categories=("Cs",),
            blacklist_characters='"\\\n\r',
        ),
        min_size=1, max_size=8,
    ),
)

_ARGVS = st.lists(_TOKENS, max_size=3)


@st.composite
def _object_lines(draw):
    obj = {"argv": draw(_ARGVS)}
    if draw(st.booleans()):
        obj["id"] = draw(_IDS)
    if draw(st.booleans()):
        obj["priority"] = draw(
            st.sampled_from(["interactive", "batch", "metrics", "bogus"])
        )
    if draw(st.booleans()):
        obj["op"] = draw(st.sampled_from(["check", "metrics", "reticulate"]))
    return json.dumps(obj)


@st.composite
def _truncated_object_lines(draw):
    whole = draw(_object_lines())
    cut = draw(st.integers(1, max(1, len(whole) - 1)))
    return whole[:cut]


_GARBAGE = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",),
        blacklist_characters="\n\r",
    ),
    max_size=30,
)

_ARRAY_LINES = _ARGVS.map(json.dumps)

_LINES = st.one_of(
    _ARRAY_LINES,
    _object_lines(),
    _truncated_object_lines(),
    _GARBAGE,
    st.just("metrics"),
)

def _ends_session(line):
    """True for any spelling of the shutdown verb (bare, array, object)."""
    from repro.service.protocol import ProtocolError, parse_request_line

    try:
        return parse_request_line(line).verb == "shutdown"
    except ProtocolError:
        return False  # malformed lines get an error reply, not a bye


#: Lines guaranteed not to end the session (for reply-count properties).
_NON_ENDING_LINES = _LINES.filter(
    lambda line: line.strip() and not _ends_session(line)
)


# -- helpers -----------------------------------------------------------------


def _run_shim(lines):
    import io

    stdin = io.StringIO("\n".join(list(lines) + ["shutdown"]) + "\n")
    stdout = io.StringIO()
    server = DaemonServer(cache_dir=None, stdin=stdin, stdout=stdout)
    assert server.serve() == 0
    return [json.loads(l) for l in stdout.getvalue().splitlines()]


def _normalize(reply):
    """Strip volatile fields so transports can be compared exactly."""
    out = dict(reply)
    out.pop("stats", None)
    out.pop("latency", None)
    out.pop("retry_after_ms", None)
    if "metrics" in out:
        out["metrics"] = "<snapshot>"
    if "ready" in out:
        return {"ready": True}
    return out


def _multiset(replies):
    return sorted(
        json.dumps(_normalize(r), sort_keys=True, ensure_ascii=False)
        for r in replies
    )


@pytest.fixture(scope="module")
def service():
    svc = CheckingService(
        cache_dir=None, workers=1, metrics=MetricsRegistry(),
        max_inflight=64,
    )
    started = threading.Event()
    holder = {}

    def runner():
        async def main():
            await svc.start()
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await svc._stopped.wait()

        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(30)
    yield svc
    future = asyncio.run_coroutine_threadsafe(svc.shutdown(), holder["loop"])
    future.result(30)
    thread.join(30)


def _run_service(service, lines):
    host, port = service.bound_addr.rsplit(":", 1)
    replies = []
    with ServiceClient.connect_tcp(host, int(port)) as client:
        replies.append(client.ready)
        try:
            for line in lines:
                client.send_line(line)
            client.send_line("shutdown")
        except OSError:
            # A line mid-stream ended the session server-side; the
            # shim drops post-shutdown lines the same way.
            pass
        while True:
            reply = client.recv_reply()
            if reply is None:
                break
            replies.append(reply)
    return replies


# -- properties --------------------------------------------------------------


class TestFramingTotality:
    @settings(max_examples=40, deadline=None)
    @given(lines=st.lists(_NON_ENDING_LINES, max_size=5))
    def test_one_well_formed_reply_per_request(self, lines):
        replies = _run_shim(lines)
        served = [l for l in lines if l.strip()]
        # ready + one reply per non-blank line + bye; every line of
        # output parsed as JSON already (json.loads in _run_shim).
        assert len(replies) == len(served) + 2
        assert replies[0]["ready"] is True
        assert replies[-1]["bye"] is True
        for reply in replies[1:-1]:
            assert "id" in reply
            assert "status" in reply

    @settings(max_examples=40, deadline=None)
    @given(lines=st.lists(_LINES, max_size=5))
    def test_shim_never_dies_and_always_says_bye(self, lines):
        replies = _run_shim(lines)
        assert replies[0]["ready"] is True
        assert replies[-1]["bye"] is True

    @settings(max_examples=30, deadline=None)
    @given(line=_truncated_object_lines())
    def test_truncated_object_recovers_declared_id(self, line):
        from repro.service.protocol import recover_request_id

        replies = _run_shim([line])
        reply = replies[1]
        recovered = recover_request_id(line)
        if recovered is not None:
            assert reply["id"] == recovered


class TestTransportParity:
    @settings(max_examples=30, deadline=None)
    @given(lines=st.lists(_LINES, max_size=5))
    def test_shim_and_service_replies_agree(self, service, lines):
        shim_replies = _run_shim(lines)
        service_replies = _run_service(service, lines)
        # Replies may arrive in a different order over the async
        # transport (errors are replied inline, checks via the queue),
        # so compare as multisets after stripping volatile fields.
        assert _multiset(shim_replies) == _multiset(service_replies)


class TestCapBoundary:
    def _padded_object(self, target_len: int) -> str:
        line = '{"id": 77, "argv": ["zz_no_such_file.c"]'
        return line + " " * (target_len - len(line) - 1) + "}"

    def test_line_at_exact_cap_is_served_normally(self, service):
        line = self._padded_object(MAX_REQUEST_BYTES)
        assert len(line) == MAX_REQUEST_BYTES
        for replies in (_run_shim([line]), _run_service(service, [line])):
            body = [r for r in replies if r.get("id") == 77]
            assert len(body) == 1
            assert body[0]["kind"] == "usage"  # parsed + executed

    def test_line_one_over_cap_is_rejected_with_id(self, service):
        line = self._padded_object(MAX_REQUEST_BYTES + 1)
        assert len(line) == MAX_REQUEST_BYTES + 1
        for replies in (_run_shim([line]), _run_service(service, [line])):
            body = [r for r in replies if r.get("id") == 77]
            assert len(body) == 1
            assert body[0]["kind"] == "oversized"
            assert body[0]["status"] == 2

    def test_nul_bytes_get_one_reply_each(self, service):
        lines = ["\x00", "a\x00b", '{"id": 1, "argv": ["\x00"]}']
        shim_replies = _run_shim(lines)
        service_replies = _run_service(service, lines)
        assert len(shim_replies) == len(lines) + 2
        assert _multiset(shim_replies) == _multiset(service_replies)
