"""Parity suite: the table-driven expression core against the reference.

The cold-path overhaul replaced the parser's layered binary-expression
cascade (one recursive function per precedence level) with a single
table-driven precedence-climbing loop. The retained cascade — selected
with :func:`parser_engine` — is the executable specification. These
tests assert that both engines build structurally identical ASTs
(dataclass ``repr`` equality, which covers every node field including
operator spellings and source locations) with identical recovery
behaviour — on hypothesis-generated C-ish expression soup, adversarial
hand-picked fragments, and every unit of the real ``examples/db`` tree.

Mirrors ``tests/property/test_lexer_parity.py``, one layer up.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import Checker
from repro.frontend.lexer import LexError, tokenize
from repro.frontend.parser import ParseError, Parser, parser_engine
from repro.frontend.source import SourceFile

EXAMPLES_DB = Path(__file__).resolve().parents[2] / "examples" / "db"


def _parse_with(engine: str, text: str):
    """Parse ``text`` as a translation unit under one expression engine.

    Returns ``(repr(unit), error_strings)`` — the AST's dataclass repr
    is a deep structural fingerprint (node types, fields, operator
    spellings, locations) — or ``(None, [message])`` when the frontend
    rejected the input entirely.
    """
    with parser_engine(engine):
        try:
            toks = tokenize(SourceFile("p.c", text))
            parser = Parser(toks, "p.c")
            unit = parser.parse_translation_unit()
        except (LexError, ParseError) as exc:
            return None, [str(exc)]
    errors = [str(e) for e in parser.parse_errors]
    return repr(unit), errors


def assert_parser_parity(text: str) -> None:
    table = _parse_with("table", text)
    reference = _parse_with("reference", text)
    assert table == reference, text


# -- hypothesis-generated C-ish inputs ---------------------------------------

# Atoms and operators biased toward the rewritten code paths: binary
# operator chains across every precedence level, ternaries, casts,
# postfix chains, and assignment operators.
_ATOMS = st.sampled_from(
    ["x", "y", "_z", "f(1)", "g(x, y)", "a[i]", "s.f", "p->n",
     "42", "0x1F", "'c'", "\"s\"", "1.5", "sizeof(int)", "sizeof x",
     "(int) x", "(char *) p", "*p", "&x", "!x", "~x", "-x", "+x",
     "++x", "x++", "--y", "y--"]
)

_BINOPS = st.sampled_from(
    ["+", "-", "*", "/", "%", "<<", ">>", "<", ">", "<=", ">=",
     "==", "!=", "&", "^", "|", "&&", "||", ","]
)

_ASSIGNS = st.sampled_from(
    ["=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "^=", "|="]
)


@st.composite
def _expressions(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    parts = [draw(_ATOMS)]
    for _ in range(n - 1):
        parts.append(draw(_BINOPS))
        parts.append(draw(_ATOMS))
    expr = " ".join(parts)
    if draw(st.booleans()):
        expr = f"{draw(_ATOMS)} ? {expr} : {draw(_ATOMS)}"
    if draw(st.booleans()):
        expr = f"x {draw(_ASSIGNS)} {expr}"
    return expr


@st.composite
def _functions(draw):
    exprs = draw(st.lists(_expressions(), min_size=1, max_size=4))
    body = "".join(f"  {e};\n" for e in exprs)
    return (
        "struct s { int f; struct s *n; };\n"
        "int f(int x, int y, char *p) {\n"
        f"{body}"
        "  return x;\n"
        "}\n"
    )


class TestHypothesisParity:
    @given(_functions())
    @settings(max_examples=200, deadline=None)
    def test_expression_soup_parity(self, text):
        assert_parser_parity(text)

    @given(
        st.lists(
            st.sampled_from(
                ["x", "+", "*", "?", ":", "(", ")", "=", "42", ";",
                 "int", "if", "{", "}", "&&", ","]
            ),
            max_size=25,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_token_soup_parity(self, parts):
        """Malformed input: identical recovery, errors, and AST."""
        assert_parser_parity(
            "int f(void) { " + " ".join(parts) + " ; return 0; }"
        )


class TestAdversarialFragments:
    FRAGMENTS = [
        # Precedence and associativity edges across the table.
        "int f(void) { return 1 + 2 * 3 - 4 / 5 % 6; }",
        "int f(void) { return 1 << 2 >> 3 << 4; }",
        "int f(void) { return 1 < 2 == 3 > 4 != 5 <= 6; }",
        "int f(void) { return 1 & 2 ^ 3 | 4 && 5 || 6; }",
        "int f(int a, int b) { return a = b = a + 1; }",
        "int f(int a) { return a ? a ? 1 : 2 : a ? 3 : 4; }",
        "int f(int a) { return a, a + 1, a + 2; }",
        # Cast / unary / postfix interleavings.
        "int f(char *p) { return *(int *) p + sizeof(int) * 2; }",
        "int f(int x) { return -x - -x - - -x; }",
        "int f(int *p) { return *p++ + ++*p; }",
        "int f(int a) { return (a) + (a)(1); }",  # call vs paren
        # Declarations with initializer expressions.
        "int g = 1 + 2 * 3;",
        "int h[3] = {1, 2 & 3, 4 | 5};",
        # Recovery: the engines must fail identically too.
        "int f(void) { return 1 + ; }",
        "int f(void) { return (1 + 2; }",
        "int f(void) { 1 ? 2 ; }",
    ]

    @pytest.mark.parametrize("text", FRAGMENTS)
    def test_fragment_parity(self, text):
        assert_parser_parity(text)


class TestExamplesDbParity:
    """Every unit of the paper's real program, fully preprocessed."""

    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES_DB.glob("*.c")), ids=lambda p: p.name
    )
    def test_db_unit_parity(self, path):
        headers = {p.name: p.read_text(encoding="utf-8")
                   for p in EXAMPLES_DB.glob("*.h")}
        text = path.read_text(encoding="utf-8")
        results = []
        for engine in ("table", "reference"):
            with parser_engine(engine):
                checker = Checker()
                for name, htext in headers.items():
                    checker.sources.add(name, htext)
                pu = checker.parse_unit(text, path.name)
            results.append((
                repr(pu.unit),
                dict(pu.enum_consts),
                [str(e) for e in pu.parse_errors],
                pu.fatal_error is None,
            ))
        assert results[0] == results[1], path.name

    def test_db_units_found(self):
        assert len(list(EXAMPLES_DB.glob("*.c"))) >= 5
