"""Property tests for the frontend: lexer totality, render/parse round
trips, and preprocessor conditional evaluation."""

from hypothesis import given, settings, strategies as st

from repro.frontend import cast as A
from repro.frontend.lexer import LexError, tokenize
from repro.frontend.parser import Parser
from repro.frontend.preprocessor import Preprocessor, parse_int_constant
from repro.frontend.render import render_expr
from repro.frontend.source import SourceFile, SourceManager
from repro.frontend.tokens import TokenKind


class TestLexerTotality:
    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                   max_size=200))
    @settings(max_examples=200)
    def test_lexer_terminates_on_printable_input(self, text):
        """Any printable input either tokenizes or raises LexError —
        never hangs, never raises anything else."""
        try:
            toks = tokenize(SourceFile("fuzz.c", text))
        except LexError:
            return
        assert toks[-1].kind is TokenKind.EOF

    @given(st.text(alphabet="0123456789abcdefxXuUlL.eE+-", max_size=12))
    @settings(max_examples=200)
    def test_number_scanning_terminates(self, text):
        try:
            tokenize(SourceFile("n.c", "0" + text))
        except LexError:
            pass

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_int_constant_round_trip(self, value):
        assert parse_int_constant(str(value)) == value
        assert parse_int_constant(hex(value)) == value
        assert parse_int_constant(str(value) + "UL") == value

    @given(st.lists(st.sampled_from(
        ["int", "x", "42", "+", "(", ")", ";", "{", "}", "/*@null@*/",
         "->", "danger", "0x1F", '"s"', "'c'"]), max_size=30))
    @settings(max_examples=100)
    def test_token_stream_stable_under_relex(self, words):
        """Lexing the spelling of a token stream yields the same stream."""
        text = " ".join(words)
        toks1 = tokenize(SourceFile("a.c", text))
        spelling = " ".join(t.value for t in toks1 if t.kind is not TokenKind.EOF
                            and t.kind is not TokenKind.ANNOTATION)
        toks2 = tokenize(SourceFile("b.c", spelling))
        kinds1 = [t.kind for t in toks1 if t.kind not in
                  (TokenKind.EOF, TokenKind.ANNOTATION)]
        kinds2 = [t.kind for t in toks2 if t.kind is not TokenKind.EOF]
        assert kinds1 == kinds2


# -- expression round trips ---------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "p", "q"])


def _exprs() -> st.SearchStrategy:
    leaves = st.one_of(
        st.integers(min_value=0, max_value=999).map(
            lambda v: A.IntLit(None, value=v, spelling=str(v))
        ),
        _names.map(lambda n: A.Ident(None, name=n)),
    )

    def extend(children):
        binops = st.sampled_from(["+", "-", "*", "/", "==", "!=", "<",
                                  "&&", "||", "&", "|", "^", "<<"])
        unops = st.sampled_from(["-", "!", "~", "*"])
        return st.one_of(
            st.tuples(binops, children, children).map(
                lambda t: A.Binary(None, op=t[0], lhs=t[1], rhs=t[2])
            ),
            st.tuples(unops, children).map(
                lambda t: A.Unary(None, op=t[0], operand=t[1])
            ),
            st.tuples(children, children, children).map(
                lambda t: A.Ternary(None, cond=t[0], then=t[1], other=t[2])
            ),
            st.tuples(children, _names).map(
                lambda t: A.Member(None, obj=t[0], fieldname=t[1], arrow=True)
            ),
            st.tuples(children, children).map(
                lambda t: A.Index(None, array=t[0], index=t[1])
            ),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def _strip_locations(expr: A.Expr):
    """Structural digest of an expression, ignoring locations/spellings."""
    if isinstance(expr, A.IntLit):
        return ("int", expr.value)
    if isinstance(expr, A.Ident):
        return ("ident", expr.name)
    if isinstance(expr, A.Binary):
        return ("bin", expr.op, _strip_locations(expr.lhs),
                _strip_locations(expr.rhs))
    if isinstance(expr, A.Unary):
        return ("un", expr.op, _strip_locations(expr.operand))
    if isinstance(expr, A.Ternary):
        return ("tern", _strip_locations(expr.cond),
                _strip_locations(expr.then), _strip_locations(expr.other))
    if isinstance(expr, A.Member):
        return ("member", expr.fieldname, expr.arrow,
                _strip_locations(expr.obj))
    if isinstance(expr, A.Index):
        return ("index", _strip_locations(expr.array),
                _strip_locations(expr.index))
    return ("other", type(expr).__name__)


def _parse_expr(text: str) -> A.Expr:
    manager = SourceManager()
    pp = Preprocessor(manager)
    toks = pp.preprocess_text(f"int _probe(int a, int b, int c, int p, int q)"
                              f" {{ return {text}; }}", "rt.c")
    parser = Parser(toks, "rt.c")
    unit = parser.parse_translation_unit()
    ret = unit.functions()[0].body.items[0]
    return ret.value


class TestRenderParseRoundTrip:
    @given(_exprs())
    @settings(max_examples=150, deadline=None)
    def test_round_trip(self, expr):
        """parse(render(e)) is structurally identical to e.

        This pins both the renderer's precedence-aware parenthesization
        and the parser's precedence climbing against each other.
        """
        text = render_expr(expr)
        reparsed = _parse_expr(text)
        assert _strip_locations(reparsed) == _strip_locations(expr)

    @given(_exprs())
    @settings(max_examples=60, deadline=None)
    def test_render_is_fixpoint(self, expr):
        once = render_expr(expr)
        twice = render_expr(_parse_expr(once))
        assert once == twice


class TestPreprocessorConditionals:
    @given(st.integers(0, 40), st.integers(0, 40), st.integers(1, 9))
    @settings(max_examples=100)
    def test_if_arithmetic_matches_python(self, a, b, c):
        expr = f"({a} + {b}) * {c} > {a} * {c} || {a} == {b}"
        expected = (a + b) * c > a * c or a == b
        pp = Preprocessor(SourceManager())
        toks = pp.preprocess_text(f"#if {expr}\nyes\n#endif\n", "c.c")
        values = [t.value for t in toks if t.kind is TokenKind.IDENT]
        assert ("yes" in values) == expected

    @given(st.booleans(), st.booleans())
    def test_nested_defined(self, da, db):
        lines = []
        if da:
            lines.append("#define A")
        if db:
            lines.append("#define B")
        lines.append("#if defined(A) && !defined(B)\nhit\n#endif")
        pp = Preprocessor(SourceManager())
        toks = pp.preprocess_text("\n".join(lines), "d.c")
        values = [t.value for t in toks if t.kind is TokenKind.IDENT]
        assert ("hit" in values) == (da and not db)
