"""Property tests: flag configurations, suppression filtering, db-example
rendering, and runtime determinism."""

from hypothesis import given, settings, strategies as st

from repro import Checker, Flags
from repro.bench.dbexample import FINAL_STAGE, db_sources
from repro.flags.registry import FLAG_REGISTRY
from repro.frontend.source import Location
from repro.messages.message import Message, MessageCode
from repro.messages.suppress import SuppressionTable, _LineIgnore, _Region

_flag_names = sorted(FLAG_REGISTRY)
_flag_configs = st.dictionaries(
    st.sampled_from(_flag_names), st.booleans(), max_size=6
)

BUGGY = """#include <stdlib.h>
void f(/*@null@*/ char *p, int c) {
    char *q = (char *) malloc(4);
    if (c) { free(q); }
    *p = 'x';
}
"""


class TestFlagConfigurations:
    @given(_flag_configs)
    @settings(max_examples=40, deadline=None)
    def test_any_flag_config_is_safe(self, config):
        flags = Flags(dict(config))
        result = Checker(flags=flags).check_sources({"b.c": BUGGY})
        for message in result.messages:
            assert flags.enabled(message.code.flag)

    @given(_flag_configs)
    @settings(max_examples=20, deadline=None)
    def test_all_off_silences_everything(self, config):
        silenced = {info.name: False for info in FLAG_REGISTRY.values()
                    if info.category not in ("implicit", "behaviour")}
        flags = Flags(silenced)
        result = Checker(flags=flags).check_sources({"b.c": BUGGY})
        assert result.messages == []


def _msg(line, code=MessageCode.NULL_DEREF, filename="x.c"):
    return Message(code, Location(filename, line, 1), f"m{line}")


class TestSuppressionProperties:
    @given(st.lists(st.integers(1, 50), max_size=12),
           st.integers(1, 50), st.integers(1, 50))
    @settings(max_examples=60)
    def test_region_filter_partitions(self, lines, lo, hi):
        start, end = min(lo, hi), max(lo, hi)
        table = SuppressionTable()
        table.regions.append(_Region("x.c", start, end, None))
        msgs = [_msg(line) for line in lines]
        kept, dropped = table.filter(msgs)
        assert len(kept) + dropped == len(msgs)
        for message in kept:
            assert not (start <= message.location.line <= end)

    @given(st.lists(st.integers(1, 10), min_size=1, max_size=10),
           st.integers(1, 5))
    @settings(max_examples=60)
    def test_line_budget_never_overdrawn(self, lines, budget):
        table = SuppressionTable()
        table.line_ignores.append(_LineIgnore("x.c", 5, budget))
        msgs = [_msg(line) for line in lines]
        kept, dropped = table.filter(msgs)
        on_line = sum(1 for line in lines if line == 5)
        assert dropped == min(budget, on_line)
        assert len(kept) == len(msgs) - dropped


class TestDbExampleProperties:
    @given(st.integers(0, FINAL_STAGE))
    @settings(max_examples=10, deadline=None)
    def test_rendering_deterministic(self, stage):
        assert db_sources(stage) == db_sources(stage)

    @given(st.integers(0, FINAL_STAGE - 1))
    @settings(max_examples=5, deadline=None)
    def test_later_stages_only_add_text(self, stage):
        early = db_sources(stage)
        late = db_sources(stage + 1)
        assert set(early) == set(late)
        # annotations only accumulate
        for name in early:
            assert early[name].count("/*@") <= late[name].count("/*@")


class TestRuntimeDeterminism:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_seeded_rand_reproducible(self, seed):
        from repro.runtime.interp import run_program

        src = (
            "#include <stdlib.h>\n#include <stdio.h>\n"
            "int main(void) { srand(%d); printf(\"%%d %%d\", rand(), rand());"
            " return 0; }" % seed
        )
        assert run_program(src).output == run_program(src).output
