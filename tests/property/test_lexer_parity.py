"""Parity suite: the master-regex lexer against the reference scanner.

The retained character-at-a-time :class:`ReferenceLexer` is the
executable specification of the token language. These tests assert that
the production regex lexer produces identical ``(kind, value, line,
column)`` streams — on hypothesis-generated C-ish inputs, on adversarial
hand-picked fragments, and on every file of the real ``examples/db``
tree — and that lazily computed token locations round-trip offsets
correctly at line boundaries.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend.lexer import (
    LexError,
    reference_tokenize,
    tokenize,
)
from repro.frontend.source import SourceFile
from repro.frontend.tokens import TokenKind

EXAMPLES_DB = Path(__file__).resolve().parents[2] / "examples" / "db"


def stream(tokens):
    return [(t.kind, t.value) + t.coords()[1:] for t in tokens]


def assert_parity(text: str, keep_annotations: bool = True) -> None:
    """Both engines agree on the stream — or raise the same LexError."""
    regex_err = ref_err = None
    regex_toks = ref_toks = None
    try:
        regex_toks = tokenize(
            SourceFile("p.c", text), keep_annotations=keep_annotations
        )
    except LexError as exc:
        regex_err = str(exc)
    try:
        ref_toks = reference_tokenize(
            SourceFile("p.c", text), keep_annotations=keep_annotations
        )
    except LexError as exc:
        ref_err = str(exc)
    assert regex_err == ref_err, (text, regex_err, ref_err)
    if regex_toks is not None:
        assert stream(regex_toks) == stream(ref_toks), text


# -- hypothesis-generated C-ish inputs ---------------------------------------

_WORDS = st.sampled_from(
    [
        "int", "while", "foo", "_bar", "x9", "sizeof", "struct",
        "0", "42", "0x1F", "077", "10L", "3U", "1.5", "2e10", "3.14f",
        ".5", "1e-3", "1f", "0x1UF",
        "'a'", r"'\n'", '"str"', r'"with \"q\""', '""',
        "/*@null@*/", "/*@only temp*/", "/*@ignore@*/", "/*@end@*/",
        "/*@i3@*/", "/*@-null@*/", "/* plain */", "// line",
        "<<=", ">>=", "...", "##", "#", "->", "++", "<=", "==", "&&",
        "(", ")", "[", "]", "{", "}", ",", ";", "*", "&", ".", "?",
    ]
)

_SEPARATORS = st.sampled_from([" ", "\t", "\n", "\n\n", " \t ", "\\\n", " "])


@st.composite
def _cish_programs(draw):
    words = draw(st.lists(_WORDS, max_size=40))
    seps = [draw(_SEPARATORS) for _ in words]
    return "".join(w + s for w, s in zip(words, seps))


class TestHypothesisParity:
    @given(_cish_programs())
    @settings(max_examples=300, deadline=None)
    def test_cish_input_parity(self, text):
        assert_parity(text)

    @given(_cish_programs())
    @settings(max_examples=100, deadline=None)
    def test_cish_input_parity_dropping_annotations(self, text):
        assert_parity(text, keep_annotations=False)

    @given(
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=120,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_printable_soup_parity(self, text):
        """Arbitrary printable input: same stream or same LexError."""
        assert_parity(text)

    @given(
        st.text(alphabet="0123456789abcdefxXuUlL.eE+-fF", max_size=14)
    )
    @settings(max_examples=300, deadline=None)
    def test_number_spelling_parity(self, text):
        assert_parity("0" + text + " end")


class TestAdversarialFragments:
    FRAGMENTS = [
        "",
        "\n\n\n",
        "// comment only",
        "/* comment only */",
        "a//b\nc",
        "a/**/b",
        "/**@*/",
        "/*@*/",
        "x/*@only temp*/y",
        "int x = 0x1F; float y = .5f;",
        "1..2",
        "1.e5",
        "1e+",
        "0x1F.5",
        "123abc",
        "0x10LF",
        'p = "a\\\nb";',
        "ab\\\ncd",
        "a\\\n\\\nb",
        "#define F(x) ((x)+1)\nF(2)\n",
        "'\\''",
        '"\\\\"',
        "x;\t// trailing\n",
        "/*@null@*//*@out@*/int*p;",
    ]

    @pytest.mark.parametrize("text", FRAGMENTS)
    def test_fragment_parity(self, text):
        assert_parity(text)
        assert_parity(text, keep_annotations=False)


class TestExamplesDbParity:
    """The full examples/db tree: the paper's real program."""

    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES_DB.glob("*.[ch]")), ids=lambda p: p.name
    )
    def test_db_file_parity(self, path):
        text = path.read_text(encoding="utf-8")
        regex_toks = tokenize(SourceFile(path.name, text))
        ref_toks = reference_tokenize(SourceFile(path.name, text))
        assert stream(regex_toks) == stream(ref_toks)

    def test_db_files_found(self):
        assert len(list(EXAMPLES_DB.glob("*.[ch]"))) >= 10


class TestOffsetRoundTrip:
    """Lazy locations: offsets must map to correct line/column pairs."""

    def test_locations_at_line_boundaries(self):
        text = "a\nbb\n\n  c\nd"
        source = SourceFile("r.c", text)
        toks = [
            t
            for t in tokenize(source)
            if t.kind is not TokenKind.EOF
        ]
        # Naive independently-computed expectation.
        expected = []
        for tok in toks:
            offset = tok.offset
            line = text.count("\n", 0, offset) + 1
            column = offset - (text.rfind("\n", 0, offset) + 1) + 1
            expected.append((line, column))
        assert [(t.location.line, t.location.column) for t in toks] == expected

    @given(
        st.lists(
            st.sampled_from(["x", "yy", "42", ";", "\n", " ", "\n\n"]),
            max_size=60,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_every_token_offset_round_trips(self, parts):
        text = "".join(parts)
        source = SourceFile("r.c", text)
        try:
            toks = tokenize(source)
        except LexError:
            return
        for tok in toks:
            offset = tok.offset
            assert offset is not None
            line = text.count("\n", 0, offset) + 1
            column = offset - (text.rfind("\n", 0, offset) + 1) + 1
            assert tok.coords() == ("r.c", line, column)
            assert (tok.location.line, tok.location.column) == (line, column)

    def test_eof_token_at_end_of_text(self):
        source = SourceFile("r.c", "x\n")
        eof = tokenize(source)[-1]
        assert eof.kind is TokenKind.EOF
        assert eof.location.line == 2
        assert eof.location.column == 1
