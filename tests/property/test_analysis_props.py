"""Property tests for the analysis: generated programs, store algebra,
CFG invariants, and static/dynamic agreement on clean code."""

from hypothesis import given, settings, strategies as st

from repro import Checker
from repro.analysis.cfg import build_cfg
from repro.analysis.states import AllocState, DefState, NullState, RefState
from repro.analysis.storage import Ref
from repro.analysis.store import Store
from repro.bench.generator import generate_program

# ---------------------------------------------------------------------------
# random structured C programs (statement soup over a fixed frame)
# ---------------------------------------------------------------------------

_COND = st.sampled_from(["x > 0", "y != 0", "x == y", "x < 10", "y"])
_SIMPLE = st.sampled_from(
    ["x = x + 1;", "y = x * 2;", "x = y - 3;", "y = y ^ x;", "x = 0;",
     "y = 1;", ";"]
)


def _stmts() -> st.SearchStrategy[str]:
    def extend(children):
        blocks = st.lists(children, min_size=1, max_size=3).map(
            lambda body: "{ " + " ".join(body) + " }"
        )
        return st.one_of(
            st.tuples(_COND, blocks).map(
                lambda t: f"if ({t[0]}) {t[1]}"
            ),
            st.tuples(_COND, blocks, blocks).map(
                lambda t: f"if ({t[0]}) {t[1]} else {t[2]}"
            ),
            st.tuples(_COND, blocks).map(
                lambda t: f"while ({t[0]}) {t[1]}"
            ),
            st.tuples(_COND, blocks).map(
                lambda t: f"do {t[1]} while ({t[0]});"
            ),
            blocks,
        )

    return st.recursive(_SIMPLE, extend, max_leaves=14)


def _program(statements: list[str]) -> str:
    body = "\n  ".join(statements)
    return f"int f(int x, int y) {{\n  {body}\n  return x + y;\n}}\n"


class TestGeneratedPrograms:
    @given(st.lists(_stmts(), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_checker_terminates_and_is_quiet_on_scalar_code(self, stmts):
        """Scalar-only structured programs have no memory errors; the
        checker must terminate and stay silent on them."""
        result = Checker().check_sources({"gen.c": _program(stmts)})
        assert result.messages == []

    @given(st.lists(_stmts(), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_cfg_is_always_a_dag(self, stmts):
        parsed = Checker().parse_unit(_program(stmts), "gen.c")
        cfg = build_cfg(parsed.unit.functions()[0])
        assert cfg.is_acyclic()
        assert cfg.execution_points() >= 2  # entry and something

    @given(st.lists(_stmts(), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_interpreter_agrees_programs_are_clean(self, stmts):
        """The runtime baseline sees no memory events on scalar code."""
        from repro.runtime.interp import run_program

        source = _program(stmts)
        result = run_program(
            "#include <stdio.h>\n" + source
            + "int main(void) { printf(\"%d\", f(3, 4)); return 0; }\n",
            max_steps=200_000,
        )
        assert result.events == []


class TestGeneratorPrograms:
    @given(st.integers(1, 3), st.integers(1, 3), st.integers(0, 2),
           st.integers(0, 2**30))
    @settings(max_examples=15, deadline=None)
    def test_generated_annotated_programs_check_clean(
        self, modules, fillers, scenarios, seed
    ):
        program = generate_program(
            modules=modules, filler_functions=fillers,
            scenarios_per_module=scenarios, seed=seed,
        )
        result = Checker().check_sources(dict(program.files))
        assert result.messages == [], [m.render() for m in result.messages]


# ---------------------------------------------------------------------------
# store algebra
# ---------------------------------------------------------------------------


class _Env:
    def base_default(self, ref):
        return RefState()

    def derived_default(self, ref, parent):
        return RefState(definition=parent.definition)


_refs = st.sampled_from(
    [Ref.local("a"), Ref.local("b"), Ref.global_("g"),
     Ref.local("a").arrow("f"), Ref.arg(0)]
)
_states = st.builds(
    RefState,
    st.sampled_from(list(DefState)),
    st.sampled_from(list(NullState)),
    st.sampled_from(list(AllocState)),
)


def _store(assignments: list[tuple[Ref, RefState]]) -> Store:
    store = Store(_Env())
    for ref, state in assignments:
        store.set_state(ref, state)
    return store


_store_contents = st.lists(st.tuples(_refs, _states), max_size=5)


class TestStoreMergeAlgebra:
    @given(_store_contents, _store_contents)
    @settings(max_examples=80, deadline=None)
    def test_merge_commutative_on_states(self, a_items, b_items):
        a1, b1 = _store(a_items), _store(b_items)
        a2, b2 = _store(a_items), _store(b_items)
        left, _ = a1.merge(b1)
        right, _ = b2.merge(a2)
        keys = set(left.states) | set(right.states)
        for key in keys:
            assert left.state(key) == right.state(key)

    @given(_store_contents)
    @settings(max_examples=50, deadline=None)
    def test_merge_idempotent(self, items):
        a, b = _store(items), _store(items)
        merged, reports = a.merge(b)
        assert reports == []
        for ref, state in items:
            assert merged.state(ref) == _store(items).state(ref)

    @given(_store_contents, _store_contents)
    @settings(max_examples=50, deadline=None)
    def test_unreachable_is_identity(self, a_items, b_items):
        a, b = _store(a_items), _store(b_items)
        b.unreachable = True
        merged, reports = a.merge(b)
        assert reports == []
        for ref in a.states:
            assert merged.state(ref) == a.state(ref)
