"""Property tests: shard partitioning is a true partition, shard-order
execution merges back byte-identically to serial, and the benchmark
program generator is deterministic across interpreter hash seeds."""

import hashlib
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import (
    Checker,
    build_program_symtab,
    check_parsed_unit,
    unit_interface,
)
from repro.incremental.shard import (
    STRATEGIES,
    partition_units,
    shard_balance,
)

_strategy = st.sampled_from(STRATEGIES)


@st.composite
def _partition_inputs(draw):
    count = draw(st.integers(min_value=0, max_value=60))
    shard_count = draw(st.integers(min_value=1, max_value=24))
    keys = draw(st.one_of(
        st.none(),
        st.lists(st.sampled_from("abcdefgh"), min_size=count,
                 max_size=count),
    ))
    weights = draw(st.one_of(
        st.none(),
        st.lists(st.integers(min_value=1, max_value=5000), min_size=count,
                 max_size=count),
    ))
    return count, shard_count, keys, weights


class TestPartitionProperties:
    @given(_strategy, _partition_inputs())
    @settings(max_examples=200, deadline=None)
    def test_every_index_lands_in_exactly_one_shard(self, strategy, inputs):
        count, shard_count, keys, weights = inputs
        shards = partition_units(count, shard_count, strategy, keys, weights)
        flat = [i for s in shards for i in s.indices]
        assert sorted(flat) == list(range(count))
        assert len(flat) == len(set(flat))
        assert all(len(s.indices) > 0 for s in shards)
        assert len(shards) <= min(shard_count, count) or count == 0

    @given(_strategy, _partition_inputs())
    @settings(max_examples=100, deadline=None)
    def test_partition_is_deterministic(self, strategy, inputs):
        count, shard_count, keys, weights = inputs
        first = partition_units(count, shard_count, strategy, keys, weights)
        again = partition_units(
            count, shard_count, strategy,
            list(keys) if keys is not None else None,
            list(weights) if weights is not None else None,
        )
        assert first == again

    @given(_partition_inputs())
    @settings(max_examples=100, deadline=None)
    def test_interface_strategy_never_splits_a_cluster(self, inputs):
        count, shard_count, keys, weights = inputs
        if keys is None:
            keys = [f"k{i % 4}" for i in range(count)]
        shards = partition_units(count, shard_count, "interface",
                                 keys, weights)
        home = {}
        for shard in shards:
            for i in shard.indices:
                assert home.setdefault(keys[i], shard.index) == shard.index

    @given(_strategy, _partition_inputs())
    @settings(max_examples=60, deadline=None)
    def test_balance_is_at_least_one(self, strategy, inputs):
        count, shard_count, keys, weights = inputs
        shards = partition_units(count, shard_count, strategy, keys, weights)
        assert shard_balance(shards, weights) >= 1.0


_UNIT_TEXTS = [
    "#include <stdlib.h>\n"
    "void f0(void) { char *p = (char *) malloc(4); }\n",
    "void f1(/*@null@*/ int *p) { *p = 1; }\n",
    "int f2(void) { int a[4]; a[4] = 1; return 0; }\n",
    "#include <stdlib.h>\n"
    "void f3(void) { char *p = (char *) malloc(2); free(p); free(p); }\n",
    "int f4(int x) { return x + 1; }\n",
    "void f5(/*@size(2)@*/ int *p) { p[3] = 9; }\n",
]


def _parsed_units():
    checker = Checker()
    units = [
        checker.parse_unit(text, f"u{i}.c")
        for i, text in enumerate(_UNIT_TEXTS)
    ]
    symtab = build_program_symtab([unit_interface(u) for u in units])
    return units, symtab, checker.flags


class TestShardedExecutionMergesToSerial:
    """Running the checker shard-by-shard, in any shard layout, then
    placing outputs back by unit index must reproduce the serial
    transcript byte for byte."""

    @given(_strategy, st.integers(min_value=1, max_value=12))
    @settings(max_examples=25, deadline=None)
    def test_merged_output_matches_serial(self, strategy, shard_count):
        units, symtab, flags = _parsed_units()
        serial = [check_parsed_unit(u, symtab, flags) for u in units]
        serial_render = [
            [m.render() for m in out.messages] for out in serial
        ]
        assert any(serial_render), "corpus must produce messages"

        shards = partition_units(
            len(units), shard_count, strategy,
            cluster_keys=[f"c{i % 3}" for i in range(len(units))],
            weights=[max(1, len(t)) for t in _UNIT_TEXTS],
        )
        slots = [None] * len(units)
        for shard in shards:
            for i in shard.indices:
                slots[i] = check_parsed_unit(units[i], symtab, flags)
        assert all(out is not None for out in slots)
        merged_render = [
            [m.render() for m in out.messages] for out in slots
        ]
        assert merged_render == serial_render


_GEN_SNIPPET = """\
import hashlib, sys
from repro.bench.generator import generate_program_of_size

program = generate_program_of_size(int(sys.argv[1]))
digest = hashlib.sha256()
for name in sorted(program.files):
    digest.update(name.encode())
    digest.update(program.files[name].encode())
print(digest.hexdigest())
"""


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("target_loc", [2000, 50000])
    def test_stable_across_hash_seeds(self, target_loc):
        # The scaling benchmark and the distributed byte-identity check
        # both lean on the generator producing the same corpus in every
        # process; a dict-ordering or hash-seed dependency would
        # silently break cross-process cache sharing.
        digests = set()
        for seed in ("0", "1", "random"):
            proc = subprocess.run(
                [sys.executable, "-c", _GEN_SNIPPET, str(target_loc)],
                capture_output=True, text=True, timeout=120,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed,
                     "PATH": "/usr/bin:/bin"},
            )
            assert proc.returncode == 0, proc.stderr
            digests.add(proc.stdout.strip())
        assert len(digests) == 1
