"""Robustness: the checker and interpreter terminate on arbitrary
pointer-manipulating programs without crashing.

The checker is allowed to report anything on these programs (most have
real bugs); what is pinned is totality — no exceptions, no hangs — and
agreement on basic outcomes.
"""

from hypothesis import given, settings, strategies as st

from repro import Checker
from repro.analysis.cfg import build_cfg

_PTR_STMTS = st.sampled_from([
    "p = (char *) malloc(8);",
    "q = p;",
    "p = q;",
    "free(p);",
    "free(q);",
    "p = NULL;",
    "if (p != NULL) { *p = 'x'; }",
    "if (p == NULL) { return; }",
    "n = n + 1;",
    "p = s;",
])


def _program(statements: list[str]) -> str:
    body = "\n  ".join(statements)
    return (
        "#include <stdlib.h>\n"
        "void f(/*@null@*/ /*@temp@*/ char *s, int n) {\n"
        "  char *p = NULL;\n"
        "  char *q = NULL;\n"
        f"  {body}\n"
        "}\n"
    )


_LOOPY = st.sampled_from([
    "while (n > 0) {{ {inner} n = n - 1; }}",
    "for (n = 0; n < 4; n++) {{ {inner} }}",
    "do {{ {inner} }} while (n);",
    "if (n) {{ {inner} }} else {{ {inner} }}",
    "switch (n) {{ case 1: {inner} break; default: {inner} }}",
])


@st.composite
def _nested_programs(draw):
    depth = draw(st.integers(0, 3))
    inner = " ".join(draw(st.lists(_PTR_STMTS, min_size=1, max_size=4)))
    for _ in range(depth):
        shape = draw(_LOOPY)
        inner = shape.format(inner=inner)
    extra = draw(st.lists(_PTR_STMTS, max_size=3))
    return _program([inner] + extra)


class TestCheckerTotality:
    @given(_nested_programs())
    @settings(max_examples=80, deadline=None)
    def test_checker_never_crashes(self, source):
        result = Checker().check_sources({"fuzz.c": source})
        for message in result.messages:
            assert message.location.filename == "fuzz.c"
            assert message.render()

    @given(_nested_programs())
    @settings(max_examples=40, deadline=None)
    def test_cfg_always_dag(self, source):
        parsed = Checker().parse_unit(source, "fuzz.c")
        for fdef in parsed.unit.functions():
            assert build_cfg(fdef).is_acyclic()

    @given(_nested_programs())
    @settings(max_examples=25, deadline=None)
    def test_messages_deterministic(self, source):
        a = Checker().check_sources({"fuzz.c": source})
        b = Checker().check_sources({"fuzz.c": source})
        assert [m.render() for m in a.messages] == [
            m.render() for m in b.messages
        ]

    @given(_nested_programs())
    @settings(max_examples=25, deadline=None)
    def test_flags_only_remove_messages(self, source):
        """Disabling check classes never creates new messages."""
        from repro import Flags

        full = Checker().check_sources({"fuzz.c": source})
        relaxed_flags = Flags.from_args(
            ["-mustfree", "-usereleased", "-branchstate"]
        )
        relaxed = Checker(flags=relaxed_flags).check_sources({"fuzz.c": source})
        full_texts = {m.render() for m in full.messages}
        for message in relaxed.messages:
            assert message.render() in full_texts
