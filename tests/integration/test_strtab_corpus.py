"""A second realistic corpus: an annotated string-interning table.

Exercises the methodology the paper's introduction motivates — abstract
types with explicit, annotated interfaces — on a hash table with
separate chaining: allocation in two layers (table, buckets, strings),
recursive destruction, lookups, and a driver. The annotated version
checks clean *and* runs clean under the instrumented heap; seeded
mistakes are caught by both tools in their respective ways.
"""

from repro import Checker, Flags
from repro.messages.message import MessageCode
from repro.runtime.interp import run_program

NOIMP = Flags.from_args(["-allimponly"])

STRTAB_H = """#ifndef STRTAB_H
#define STRTAB_H
#include <stdlib.h>

#define STRTAB_BUCKETS 8

typedef /*@null@*/ struct _entry {
  /*@only@*/ char *text;
  int uses;
  /*@null@*/ /*@only@*/ struct _entry *next;
} *entry;

typedef struct {
  /*@only@*/ /*@reldef@*/ entry buckets[STRTAB_BUCKETS];
  int count;
} *strtab;

extern /*@only@*/ strtab strtab_create(void);
extern void strtab_destroy(/*@null@*/ /*@only@*/ strtab t);
extern int strtab_intern(strtab t, /*@temp@*/ char *text);
extern int strtab_uses(strtab t, /*@temp@*/ char *text);
extern int strtab_count(strtab t);

#endif
"""

STRTAB_C = """#include <stdlib.h>
#include <stdio.h>
#include <string.h>
#include "strtab.h"

static int strtab_hash(/*@temp@*/ char *text)
{
  int h = 0;
  int i;
  for (i = 0; text[i] != '\\0'; i++) {
    h = (h * 31 + text[i]) % STRTAB_BUCKETS;
  }
  if (h < 0) {
    h = -h;
  }
  return h;
}

static /*@only@*/ char *dup_text(/*@temp@*/ char *text)
{
  char *copy = (char *) malloc(strlen(text) + 1);
  if (copy == NULL) {
    exit(EXIT_FAILURE);
  }
  strcpy(copy, text);
  return copy;
}

/*@only@*/ strtab strtab_create(void)
{
  strtab t = (strtab) malloc(sizeof(*t));
  int i;
  if (t == NULL) {
    exit(EXIT_FAILURE);
  }
  for (i = 0; i < STRTAB_BUCKETS; i++) {
    t->buckets[i] = NULL;
  }
  t->count = 0;
  return t;
}

static void entries_free(/*@null@*/ /*@only@*/ entry e)
{
  if (e != NULL) {
    entries_free(e->next);
    free(e->text);
    free(e);
  }
}

void strtab_destroy(/*@null@*/ /*@only@*/ strtab t)
{
  int i;
  if (t != NULL) {
    for (i = 0; i < STRTAB_BUCKETS; i++) {
      entries_free(t->buckets[i]);
      t->buckets[i] = NULL;
    }
    free(t);
  }
}

static /*@null@*/ /*@dependent@*/ entry
strtab_find(strtab t, /*@temp@*/ char *text)
{
  entry cur = t->buckets[strtab_hash(text)];
  while (cur != NULL) {
    if (strcmp(cur->text, text) == 0) {
      return cur;
    }
    cur = cur->next;
  }
  return NULL;
}

int strtab_intern(strtab t, /*@temp@*/ char *text)
{
  entry found = strtab_find(t, text);
  entry fresh;
  int slot;
  if (found != NULL) {
    found->uses = found->uses + 1;
    return found->uses;
  }
  fresh = (entry) malloc(sizeof(*fresh));
  if (fresh == NULL) {
    exit(EXIT_FAILURE);
  }
  slot = strtab_hash(text);
  fresh->text = dup_text(text);
  fresh->uses = 1;
  fresh->next = t->buckets[slot];
  t->buckets[slot] = fresh;
  t->count = t->count + 1;
  return 1;
}

int strtab_uses(strtab t, /*@temp@*/ char *text)
{
  entry found = strtab_find(t, text);
  if (found == NULL) {
    return 0;
  }
  return found->uses;
}

int strtab_count(strtab t)
{
  return t->count;
}
"""

MAIN_C = """#include <stdio.h>
#include "strtab.h"

int main(void)
{
  strtab t = strtab_create();
  (void) strtab_intern(t, "alpha");
  (void) strtab_intern(t, "beta");
  (void) strtab_intern(t, "alpha");
  (void) strtab_intern(t, "gamma");
  (void) strtab_intern(t, "alpha");
  printf("count=%d alpha=%d beta=%d missing=%d\\n",
         strtab_count(t), strtab_uses(t, "alpha"),
         strtab_uses(t, "beta"), strtab_uses(t, "zeta"));
  strtab_destroy(t);
  return 0;
}
"""

FILES = {"strtab.h": STRTAB_H, "strtab.c": STRTAB_C, "main.c": MAIN_C}


class TestStaticChecking:
    def test_annotated_corpus_checks_clean(self):
        result = Checker(flags=NOIMP).check_sources(dict(FILES))
        assert result.messages == [], [m.render() for m in result.messages]

    def test_clean_under_default_flags_too(self):
        result = Checker().check_sources(dict(FILES))
        assert result.messages == []

    def test_forgotten_text_free_detected(self):
        broken = dict(FILES)
        broken["strtab.c"] = broken["strtab.c"].replace(
            "    entries_free(e->next);\n    free(e->text);\n",
            "    entries_free(e->next);\n",
        )
        result = Checker(flags=NOIMP).check_sources(broken)
        assert any(
            m.code is MessageCode.ONLY_NOT_RELEASED and "e->text" in m.text
            for m in result.messages
        ), [m.render() for m in result.messages]

    def test_storing_temp_text_detected(self):
        broken = dict(FILES)
        broken["strtab.c"] = broken["strtab.c"].replace(
            "fresh->text = dup_text(text);", "fresh->text = text;"
        )
        result = Checker(flags=NOIMP).check_sources(broken)
        assert any(
            m.code is MessageCode.TEMP_TO_ONLY for m in result.messages
        )

    def test_missing_null_guard_detected(self):
        broken = dict(FILES)
        broken["strtab.c"] = broken["strtab.c"].replace(
            """  entry found = strtab_find(t, text);
  if (found == NULL) {
    return 0;
  }
  return found->uses;""",
            """  entry found = strtab_find(t, text);
  return found->uses;""",
        )
        result = Checker(flags=NOIMP).check_sources(broken)
        assert any(
            m.code is MessageCode.NULL_DEREF for m in result.messages
        )


class TestDynamicExecution:
    def test_program_runs_correctly_and_cleanly(self):
        result = run_program(dict(FILES), max_steps=2_000_000)
        assert result.exit_code == 0
        assert result.output.strip() == "count=3 alpha=3 beta=1 missing=0"
        assert result.events == []
        assert result.leaked_blocks == 0

    def test_runtime_catches_the_forgotten_free(self):
        broken = dict(FILES)
        broken["strtab.c"] = broken["strtab.c"].replace(
            "    entries_free(e->next);\n    free(e->text);\n",
            "    entries_free(e->next);\n",
        )
        result = run_program(broken, max_steps=2_000_000)
        assert result.leaked_blocks == 3  # the three interned strings

    def test_static_and_dynamic_agree_on_the_fix(self):
        # the annotated fix (free the text) satisfies both tools
        static = Checker(flags=NOIMP).check_sources(dict(FILES))
        dynamic = run_program(dict(FILES), max_steps=2_000_000)
        assert static.messages == []
        assert dynamic.leaked_blocks == 0
