"""Integration tests for the asyncio checking service: concurrency,
backpressure, deadlines, prioritization, graceful drain, and reply
parity with the one-shot CLI — all over real sockets against an
in-process server."""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.driver import cli
from repro.obs.metrics import MetricsRegistry
from repro.service.client import ServiceClient
from repro.service.server import CheckingService

WARNING_SOURCE = (
    "#include <stdlib.h>\n"
    "char *g(void) { char *p = (char *) malloc(8); *p = 'x'; return p; }\n"
)


class _ServiceHandle:
    """A CheckingService running on its own event-loop thread."""

    def __init__(self, service: CheckingService) -> None:
        self.service = service
        self._started = threading.Event()
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(30):
            raise RuntimeError("service failed to start")

    def _run(self) -> None:
        async def main():
            await self.service.start()
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self.service._stopped.wait()

        asyncio.run(main())

    def client(self) -> ServiceClient:
        host, port = self.service.bound_addr.rsplit(":", 1)
        return ServiceClient.connect_tcp(host, int(port))

    def shutdown(self) -> None:
        if self._loop is None or not self._thread.is_alive():
            return
        try:
            future = asyncio.run_coroutine_threadsafe(
                self.service.shutdown(), self._loop
            )
            future.result(30)
        except RuntimeError:
            pass  # the loop already finished draining
        self._thread.join(30)

    @property
    def metrics(self) -> MetricsRegistry:
        return self.service.metrics


@pytest.fixture
def start_service(tmp_path):
    handles = []

    def _start(**kwargs) -> _ServiceHandle:
        kwargs.setdefault("cache_dir", str(tmp_path / "svc-cache"))
        kwargs.setdefault("metrics", MetricsRegistry())
        handle = _ServiceHandle(CheckingService(**kwargs))
        handles.append(handle)
        return handle

    yield _start
    for handle in handles:
        handle.shutdown()


@pytest.fixture
def warning_file(tmp_path):
    src = tmp_path / "warn.c"
    src.write_text(WARNING_SOURCE)
    return str(src)


def _block_until(event: threading.Event, reply=(0, "blocked-done")):
    """A fake ``cli.run`` that parks the worker until *event* is set."""

    def fake_run(argv, cache=None, jobs=None):
        event.wait(30)
        return reply

    return fake_run


class TestServiceBasics:
    def test_ready_line_and_check_matches_one_shot(
        self, start_service, warning_file
    ):
        oracle_status, oracle_output = cli.run(["-quiet", warning_file])
        handle = start_service()
        with handle.client() as client:
            assert client.ready["ready"] is True
            assert client.ready["max_inflight"] == handle.service.max_inflight
            reply = client.check(["-quiet", warning_file], request_id=1)
        assert reply["id"] == 1
        assert reply["status"] == oracle_status
        assert reply["output"] == oracle_output  # byte-identical
        assert reply["stats"]["cache_misses"] >= 1

    def test_unix_socket_transport(self, start_service, tmp_path,
                                    warning_file):
        path = str(tmp_path / "svc.sock")
        handle = start_service(port=None, unix_path=path)
        with ServiceClient.connect_unix(path) as client:
            reply = client.check(["-quiet", warning_file], request_id="u1")
        assert reply["id"] == "u1"
        assert reply["status"] in (0, 1)

    def test_shared_cache_across_sessions(self, start_service, warning_file):
        handle = start_service()
        with handle.client() as first:
            cold = first.check(["-quiet", warning_file], request_id=1)
        with handle.client() as second:
            warm = second.check(["-quiet", warning_file], request_id=2)
        assert cold["output"] == warm["output"]
        assert warm["stats"]["cache_hits"] >= 1
        assert warm["stats"]["cache_misses"] == 0

    def test_session_bye_reports_counts(self, start_service, warning_file):
        handle = start_service()
        with handle.client() as client:
            client.check(["-quiet", warning_file], request_id=1)
            client.send_line('check "unterminated quote')
            error = client.recv_reply()
            assert error["kind"] == "protocol"
            bye = client.shutdown()
        assert bye["bye"] is True
        assert bye["requests"] == 2
        assert bye["errors"] == 1

    def test_metrics_verb_reports_latency_percentiles(
        self, start_service, warning_file
    ):
        handle = start_service()
        with handle.client() as client:
            client.check(["-quiet", warning_file], request_id=1)
            reply = client.metrics(request_id="m")
        assert reply["id"] == "m"
        assert reply["status"] == 0
        assert reply["metrics"]["counters"]["service.requests.admitted"] >= 1
        assert reply["latency"]["count"] >= 1
        assert reply["latency"]["p99_ms"] >= reply["latency"]["p50_ms"]


class TestServiceConcurrency:
    def test_many_concurrent_clients_all_served(
        self, start_service, warning_file
    ):
        oracle_status, oracle_output = cli.run(["-quiet", warning_file])
        handle = start_service(workers=4, max_inflight=256)
        results = {}
        errors = []

        def one_client(index: int) -> None:
            try:
                with handle.client() as client:
                    for n in range(3):
                        request_id = f"c{index}-{n}"
                        reply = client.check(
                            ["-quiet", warning_file], request_id=request_id
                        )
                        results[request_id] = reply
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=one_client, args=(i,)) for i in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not errors
        assert len(results) == 16 * 3
        for request_id, reply in results.items():
            assert reply["id"] == request_id
            assert reply["status"] == oracle_status
            assert reply["output"] == oracle_output

    def test_busy_backpressure_with_retry_after(
        self, start_service, monkeypatch
    ):
        release = threading.Event()
        monkeypatch.setattr(cli, "run", _block_until(release))
        handle = start_service(max_inflight=1, workers=1)
        blocker = handle.client()
        try:
            blocker.send_line(json.dumps(
                {"id": "hog", "argv": ["x.c"]}
            ))
            deadline = time.time() + 10
            while (time.time() < deadline
                   and handle.metrics.count("service.requests.admitted") < 1):
                time.sleep(0.01)  # wait for the hog to occupy the slot
            with handle.client() as second:
                reply = second.check(["x.c"], request_id="turned-away")
                assert reply["kind"] == "busy"
                assert reply["status"] == 2
                assert reply["id"] == "turned-away"
                assert reply["retry_after_ms"] >= 1
            release.set()
            assert blocker.recv_reply()["id"] == "hog"
        finally:
            release.set()
            blocker.close()

    def test_queued_deadline_expires_without_running(
        self, start_service, monkeypatch
    ):
        release = threading.Event()
        monkeypatch.setattr(cli, "run", _block_until(release))
        handle = start_service(workers=1, max_inflight=8)
        hog = handle.client()
        victim = handle.client()
        try:
            hog.send_line(json.dumps({"id": "hog", "argv": ["x.c"]}))
            time.sleep(0.2)  # let the hog reach the worker
            victim.send_line(json.dumps(
                {"id": "late", "argv": ["x.c"], "timeout": 0.05}
            ))
            time.sleep(0.3)  # deadline passes while queued
            release.set()
            reply = victim.recv_reply()
            assert reply["id"] == "late"
            assert reply["kind"] == "deadline"
            assert reply["status"] == 3
            assert "queued" in reply["error"]
            assert hog.recv_reply()["id"] == "hog"
        finally:
            release.set()
            hog.close()
            victim.close()

    def test_running_request_cancelled_at_unit_boundary(
        self, start_service, monkeypatch
    ):
        from repro.core.faults import cancel_checkpoint

        def slow_cooperative_run(argv, cache=None, jobs=None):
            for _ in range(500):
                cancel_checkpoint()
                time.sleep(0.01)
            return 0, "never finished"

        monkeypatch.setattr(cli, "run", slow_cooperative_run)
        handle = start_service(workers=1)
        with handle.client() as client:
            reply = client.check(["x.c"], request_id="doomed", timeout=0.2)
        assert reply["id"] == "doomed"
        assert reply["kind"] == "deadline"
        assert reply["status"] == 3
        assert handle.metrics.count("service.requests.timed_out") == 1

    def test_interactive_beats_batch_in_the_queue(
        self, start_service, monkeypatch
    ):
        release = threading.Event()
        started_order = []
        lock = threading.Lock()

        def recording_run(argv, cache=None, jobs=None):
            with lock:
                started_order.append(argv[0])
            release.wait(30)
            return 0, "done"

        monkeypatch.setattr(cli, "run", recording_run)
        handle = start_service(workers=1, max_inflight=16)
        hog = handle.client()
        queued = handle.client()
        try:
            hog.send_line(json.dumps({"id": "hog", "argv": ["hog.c"]}))
            time.sleep(0.2)  # hog occupies the only worker
            queued.send_line(json.dumps(
                {"id": "b", "argv": ["batch.c"], "priority": "batch"}
            ))
            queued.send_line(json.dumps(
                {"id": "i", "argv": ["inter.c"], "priority": "interactive"}
            ))
            time.sleep(0.2)  # both are queued behind the hog
            release.set()
            first = queued.recv_reply()
            second = queued.recv_reply()
            assert first["id"] == "i"
            assert second["id"] == "b"
            assert started_order == ["hog.c", "inter.c", "batch.c"]
        finally:
            release.set()
            hog.close()
            queued.close()


class TestServiceRobustness:
    def test_malformed_line_echoes_recoverable_id(self, start_service):
        handle = start_service()
        with handle.client() as client:
            client.send_line('{"id": "req-7", "argv": ["a.c"')  # truncated
            reply = client.recv_reply()
            assert reply["id"] == "req-7"
            assert reply["kind"] == "protocol"
            assert reply["status"] == 2

    def test_oversized_line_echoes_recoverable_id(self, start_service):
        from repro.service.protocol import MAX_REQUEST_BYTES

        handle = start_service()
        with handle.client() as client:
            huge = ('{"id": 42, "argv": ["'
                    + "x" * (MAX_REQUEST_BYTES + 10) + '"]}')
            client.send_line(huge)
            reply = client.recv_reply()
            assert reply["id"] == 42
            assert reply["kind"] == "oversized"
            # The session survives oversized abuse:
            second = client.metrics(request_id="after")
            assert second["id"] == "after"

    def test_internal_error_contained_to_one_request(
        self, start_service, warning_file, monkeypatch
    ):
        original = cli.run

        def sometimes_broken(argv, cache=None, jobs=None):
            if any("trigger.c" in a for a in argv):
                raise RuntimeError("checker blew up")
            return original(argv, cache=cache, jobs=jobs)

        monkeypatch.setattr(cli, "run", sometimes_broken)
        handle = start_service()
        with handle.client() as client:
            bad = client.check(["trigger.c"], request_id=1)
            good = client.check(["-quiet", warning_file], request_id=2)
        assert bad["status"] == 3
        assert bad["kind"] == "internal"
        assert "RuntimeError" in bad["error"]
        assert good["id"] == 2
        assert "error" not in good

    def test_mid_request_disconnect_is_contained(
        self, start_service, monkeypatch
    ):
        # A client that vanishes mid-request must not take the service
        # (or its worker) with it: the job completes into a dead socket
        # and every other session keeps being served.
        release = threading.Event()
        monkeypatch.setattr(cli, "run", _block_until(release))
        handle = start_service(workers=1)
        doomed = handle.client()
        doomed.send_line(json.dumps({"id": 1, "argv": ["x.c"]}))
        time.sleep(0.2)  # the request reaches the worker
        doomed.close()  # vanish mid-request
        release.set()
        monkeypatch.setattr(
            cli, "run", lambda argv, cache=None, jobs=None: (0, "ok")
        )
        with handle.client() as other:
            reply = other.check(["y.c"], request_id="alive")
        assert reply["id"] == "alive"
        assert reply["status"] == 0

    def test_drain_sends_bye_then_refuses_connections(
        self, start_service, warning_file
    ):
        handle = start_service()
        client = handle.client()
        try:
            reply = client.check(["-quiet", warning_file], request_id=1)
            assert reply["id"] == 1
            handle.shutdown()
            bye = client.recv_reply()
            assert bye["bye"] is True
            assert bye["requests"] == 1
            host, port = handle.service.bound_addr.rsplit(":", 1)
            with pytest.raises(OSError):
                socket.create_connection((host, int(port)), timeout=2)
        finally:
            client.close()
