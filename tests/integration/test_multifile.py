"""Integration tests: multi-file programs, headers, cross-module checking."""

from repro import Checker, Flags
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


class TestHeadersAndIncludes:
    def test_annotations_flow_from_headers(self):
        files = {
            "alloc.h": (
                "extern /*@null@*/ /*@only@*/ char *mk(int n);\n"
                "extern void rel(/*@null@*/ /*@only@*/ char *p);\n"
            ),
            "use.c": (
                '#include "alloc.h"\n'
                "void f(void) {\n"
                "  char *p = mk(4);\n"
                "  if (p != NULL) { *p = 'x'; }\n"
                "  rel(p);\n"
                "}\n"
            ),
        }
        result = Checker(flags=NOIMP).check_sources(files)
        assert result.messages == []

    def test_missing_release_across_modules(self):
        files = {
            "alloc.h": "extern /*@null@*/ /*@only@*/ char *mk(int n);\n",
            "use.c": (
                '#include "alloc.h"\n'
                "void f(void) {\n"
                "  char *p = mk(4);\n"
                "  if (p != NULL) { *p = 'x'; }\n"
                "}\n"
            ),
        }
        result = Checker(flags=NOIMP).check_sources(files)
        assert any(m.code is MessageCode.LEAK_SCOPE for m in result.messages)

    def test_interface_seen_without_include(self):
        """Like LCLint with interface libraries: the merged symbol table
        lets a call site be checked against another unit's definition."""
        files = {
            "impl.c": "#include <stdlib.h>\n"
                      "/*@null@*/ /*@only@*/ int *make(void) {\n"
                      "  return (int *) malloc(sizeof(int));\n"
                      "}\n",
            "client.c": "extern /*@null@*/ /*@only@*/ int *make(void);\n"
                        "int g(void) {\n"
                        "  int *p = make();\n"
                        "  return p == NULL ? 0 : 1;\n"
                        "}\n",
        }
        result = Checker(flags=NOIMP).check_sources(files)
        # client leaks p on the non-null path
        assert any("leak" in m.code.slug for m in result.messages)

    def test_messages_carry_the_right_filenames(self):
        files = {
            "one.c": "#include <stdlib.h>\nvoid f(char *p) { free(p); }\n",
            "two.c": "#include <stdlib.h>\nvoid g(char *q) { free(q); }\n",
        }
        result = Checker(flags=NOIMP).check_sources(files)
        names = {m.location.filename for m in result.messages}
        assert names == {"one.c", "two.c"}

    def test_include_guard_shared_header(self):
        files = {
            "shared.h": "#ifndef SHARED_H\n#define SHARED_H\n"
                        "typedef struct { int v; } box;\n#endif\n",
            "a.c": '#include "shared.h"\nint fa(box b) { return b.v; }\n',
            "b.c": '#include "shared.h"\nint fb(box b) { return b.v; }\n',
        }
        result = Checker().check_sources(files)
        assert result.messages == []


class TestSuppressionEndToEnd:
    def test_ignore_region_in_context(self):
        source = """#include <stdlib.h>
void noisy(char *p) {
/*@ignore@*/
  free(p);
/*@end@*/
}
void still_noisy(char *p) {
  free(p);
}
"""
        result = Checker(flags=NOIMP).check_sources({"s.c": source})
        assert len(result.messages) == 1
        assert result.messages[0].location.line == 8
        assert result.suppressed >= 1

    def test_local_flag_region(self):
        source = """#include <stdlib.h>
/*@-memimplicit@*/
void quiet(char *p) { free(p); }
/*@+memimplicit@*/
void loud(char *p) { free(p); }
"""
        result = Checker(flags=NOIMP).check_sources({"s.c": source})
        lines = [m.location.line for m in result.messages]
        assert lines == [5]


class TestRelaxedAnnotations:
    def test_relnull_field(self):
        source = """#include <stdlib.h>
        typedef struct _n {
          /*@relnull@*/ char *label;  /* set before use by convention */
          int v;
        } *node;
        int get(node n) { return n->label[0] + n->v; }
        void put(node n) { n->label = NULL; }
        """
        result = Checker(flags=NOIMP).check_sources({"n.c": source})
        assert result.messages == []

    def test_partial_struct(self):
        source = """typedef /*@partial@*/ struct { int a; int b; } *pair;
        extern /*@out@*/ /*@only@*/ void *smalloc(size_t);
        void init_a(/*@out@*/ pair p) { p->a = 1; }
        """
        result = Checker(flags=NOIMP).check_sources({"p.c": source})
        assert result.messages == []


class TestGlobalsLists:
    def test_globals_state_tracked_through_calls(self):
        source = """extern /*@null@*/ char *cache;
        static void fill(void) /*@globals cache@*/ {
          cache = "data";
        }
        char use(void) /*@globals cache@*/ {
          fill();
          if (cache != NULL) { return *cache; }
          return ' ';
        }
        """
        result = Checker(flags=NOIMP).check_sources({"g.c": source})
        assert result.messages == []
