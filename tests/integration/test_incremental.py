"""End-to-end tests for the incremental parallel checking engine.

Pins the acceptance properties: warm-cache re-checks are >= 5x faster
than cold checks, parallel runs emit byte-identical output to serial
runs, and a corrupted or version-mismatched cache silently rebuilds.
"""

import io
import json
import os
import time

import pytest

from repro.bench.dbexample import db_sources
from repro.core.api import Checker
from repro.driver.cli import run
from repro.incremental import DaemonServer, IncrementalChecker, ResultCache
from repro.incremental.cache import CACHE_FORMAT_VERSION


@pytest.fixture(scope="module")
def db_files():
    # Stage 1 keeps a healthy population of real messages in play.
    return db_sources(1)


def _renders(result):
    return [m.render() for m in result.messages]


class TestEquivalence:
    """The engine must be invisible in the output, whatever the path."""

    def test_cold_engine_matches_classic(self, db_files, tmp_path):
        classic = Checker().check_sources(dict(db_files))
        engine = IncrementalChecker(cache=ResultCache(str(tmp_path / "c")))
        incremental = engine.check_sources(dict(db_files))
        assert _renders(incremental) == _renders(classic)
        assert incremental.suppressed == classic.suppressed

    def test_warm_engine_matches_classic(self, db_files, tmp_path):
        root = str(tmp_path / "c")
        IncrementalChecker(cache=ResultCache(root)).check_sources(dict(db_files))
        warm = IncrementalChecker(cache=ResultCache(root))
        result = warm.check_sources(dict(db_files))
        assert warm.stats.cache_misses == 0
        assert warm.stats.cache_hits == warm.stats.units
        assert _renders(result) == _renders(Checker().check_sources(dict(db_files)))

    def test_parallel_matches_serial(self, db_files):
        serial = IncrementalChecker(jobs=1).check_sources(dict(db_files))
        parallel_engine = IncrementalChecker(jobs=4)
        parallel = parallel_engine.check_sources(dict(db_files))
        # Same messages, same order, same text.
        assert _renders(parallel) == _renders(serial)
        assert parallel.suppressed == serial.suppressed

    def test_parallel_with_cache_matches(self, db_files, tmp_path):
        classic = Checker().check_sources(dict(db_files))
        engine = IncrementalChecker(
            cache=ResultCache(str(tmp_path / "c")), jobs=3
        )
        result = engine.check_sources(dict(db_files))
        assert _renders(result) == _renders(classic)

    def test_every_db_stage_matches(self, tmp_path):
        for stage in range(5):
            files = db_sources(stage)
            classic = Checker().check_sources(dict(files))
            root = str(tmp_path / f"stage{stage}")
            IncrementalChecker(cache=ResultCache(root)).check_sources(dict(files))
            warm = IncrementalChecker(cache=ResultCache(root)).check_sources(
                dict(files)
            )
            assert _renders(warm) == _renders(classic), f"stage {stage}"


class TestInvalidation:
    def test_body_edit_rechecks_only_that_unit(self, db_files, tmp_path):
        root = str(tmp_path / "c")
        IncrementalChecker(cache=ResultCache(root)).check_sources(dict(db_files))
        edited = dict(db_files)
        edited["drive.c"] = edited["drive.c"].replace(
            "int hired = 0;", "int hired = 0; int touched = 0; (void) touched;"
        )
        engine = IncrementalChecker(cache=ResultCache(root))
        result = engine.check_sources(edited)
        assert engine.stats.cache_misses == 1
        assert engine.stats.cache_hits == engine.stats.units - 1
        assert _renders(result) == _renders(Checker().check_sources(dict(edited)))

    def test_comment_only_edit_stays_fully_cached(self, db_files, tmp_path):
        # Comments are stripped before tokenization, so an edit that adds
        # one on an existing line changes neither the token stream nor
        # any location: the result cache stays fully warm.
        root = str(tmp_path / "c")
        IncrementalChecker(cache=ResultCache(root)).check_sources(dict(db_files))
        edited = dict(db_files)
        edited["drive.c"] = edited["drive.c"].replace(
            "int hired = 0;", "int hired = 0; /* touched */"
        )
        engine = IncrementalChecker(cache=ResultCache(root))
        engine.check_sources(edited)
        assert engine.stats.cache_misses == 0
        assert engine.stats.memo_misses == 1  # raw text did change

    def test_interface_edit_rechecks_everything(self, db_files, tmp_path):
        root = str(tmp_path / "c")
        IncrementalChecker(cache=ResultCache(root)).check_sources(dict(db_files))
        edited = dict(db_files)
        edited["erc.h"] = edited["erc.h"].replace(
            "extern int erc_size(erc c);",
            "extern int erc_size(erc c);\nextern int erc_cap(erc c);",
        )
        engine = IncrementalChecker(cache=ResultCache(root))
        engine.check_sources(edited)
        assert engine.stats.cache_misses == engine.stats.units

    def test_flag_change_rechecks_without_reparsing(self, db_files, tmp_path):
        from repro.flags.registry import Flags

        root = str(tmp_path / "c")
        IncrementalChecker(cache=ResultCache(root)).check_sources(dict(db_files))
        engine = IncrementalChecker(
            flags=Flags.from_args(["-allimponly"]), cache=ResultCache(root)
        )
        result = engine.check_sources(dict(db_files))
        assert engine.stats.cache_misses == engine.stats.units
        assert engine.stats.memo_hits == engine.stats.units
        classic = Checker(flags=Flags.from_args(["-allimponly"])).check_sources(
            dict(db_files)
        )
        assert _renders(result) == _renders(classic)


class TestWarmSpeedup:
    def test_warm_recheck_at_least_5x_faster(self, tmp_path):
        files = db_sources()  # final stage: the full annotated program
        root = str(tmp_path / "c")

        cold_engine = IncrementalChecker(cache=ResultCache(root))
        t0 = time.perf_counter()
        cold_result = cold_engine.check_sources(dict(files))
        cold = time.perf_counter() - t0
        assert cold_engine.stats.cache_misses == cold_engine.stats.units

        warm_engine = IncrementalChecker(cache=ResultCache(root))
        t0 = time.perf_counter()
        warm_result = warm_engine.check_sources(dict(files))
        warm = time.perf_counter() - t0
        assert warm_engine.stats.cache_hits == warm_engine.stats.units

        assert _renders(warm_result) == _renders(cold_result)
        assert cold >= 5 * warm, (
            f"warm re-check not fast enough: cold={cold * 1000:.1f}ms "
            f"warm={warm * 1000:.1f}ms ({cold / warm:.1f}x)"
        )


class TestCorruptionTolerance:
    def test_scribbled_cache_files_silently_rebuild(self, db_files, tmp_path):
        root = str(tmp_path / "c")
        first = IncrementalChecker(cache=ResultCache(root)).check_sources(
            dict(db_files)
        )
        for sub in ("units", "results"):
            directory = os.path.join(root, sub)
            for name in os.listdir(directory):
                with open(os.path.join(directory, name), "wb") as handle:
                    handle.write(b"\x00garbage\xff" * 7)
        engine = IncrementalChecker(cache=ResultCache(root))
        result = engine.check_sources(dict(db_files))
        assert engine.stats.cache_misses == engine.stats.units  # all rebuilt
        assert _renders(result) == _renders(first)
        # ... and the rebuilt entries serve the next run.
        again = IncrementalChecker(cache=ResultCache(root))
        again.check_sources(dict(db_files))
        assert again.stats.cache_misses == 0

    def test_version_mismatch_is_a_warning_not_a_crash(self, db_files, tmp_path):
        root = str(tmp_path / "c")
        IncrementalChecker(cache=ResultCache(root)).check_sources(dict(db_files))
        with open(os.path.join(root, "meta.json"), "w") as handle:
            json.dump({"format": CACHE_FORMAT_VERSION + 9, "engine": 0}, handle)
        cache = ResultCache(root)
        assert any("rebuilding" in n for n in cache.notes)
        engine = IncrementalChecker(cache=cache)
        result = engine.check_sources(dict(db_files))
        assert any("rebuilding" in n for n in engine.stats.notes)
        assert _renders(result) == _renders(Checker().check_sources(dict(db_files)))

    def test_truncated_meta_and_results_via_cli(self, tmp_path):
        # Through the CLI: a trashed cache must only change timings.
        src = tmp_path / "one.c"
        src.write_text("#include <stdlib.h>\nvoid f(char *p) { free(p); }\n")
        cache_dir = str(tmp_path / "cache")
        status1, out1 = run(["--cache-dir", cache_dir, str(src)])
        with open(os.path.join(cache_dir, "meta.json"), "w") as handle:
            handle.write("}{")
        status2, out2 = run(["--cache-dir", cache_dir, str(src)])
        assert status1 == status2
        assert [l for l in out1.splitlines() if "warning:" not in l] == [
            l for l in out2.splitlines() if "warning:" not in l
        ]


class TestDaemon:
    def _files_on_disk(self, tmp_path):
        paths = []
        for name, text in db_sources(1).items():
            path = tmp_path / name
            path.write_text(text)
            paths.append(str(path))
        return sorted(paths)

    def test_daemon_round_trip_and_cache_warmup(self, tmp_path):
        paths = self._files_on_disk(tmp_path)
        request = json.dumps(["-quiet", "-stats"] + paths)
        stdin = io.StringIO(request + "\n" + request + "\nshutdown\n")
        stdout = io.StringIO()
        server = DaemonServer(
            cache_dir=str(tmp_path / "daemon-cache"), stdin=stdin, stdout=stdout
        )
        assert server.serve() == 0
        lines = [json.loads(l) for l in stdout.getvalue().splitlines()]
        assert lines[0]["ready"] is True
        first, second = lines[1], lines[2]
        assert first["status"] == second["status"]
        assert first["stats"]["cache_misses"] > 0
        assert second["stats"]["cache_misses"] == 0
        assert second["stats"]["cache_hits"] == first["stats"]["cache_misses"]
        # identical rendered messages from cold and warm requests
        strip = lambda text: [
            l for l in text.splitlines() if "statistics" not in l
            and not l.startswith("  ")
        ]
        assert strip(first["output"]) == strip(second["output"])
        assert lines[-1]["bye"] is True
        assert lines[-1]["requests"] == 2

    def test_daemon_plain_text_requests(self, tmp_path):
        src = tmp_path / "ok.c"
        src.write_text("int f(int x) { return x + 1; }\n")
        stdin = io.StringIO(f"-quiet {src}\nshutdown\n")
        stdout = io.StringIO()
        DaemonServer(cache_dir=None, stdin=stdin, stdout=stdout).serve()
        lines = [json.loads(l) for l in stdout.getvalue().splitlines()]
        assert lines[1]["status"] == 0

    def test_daemon_survives_bad_requests(self, tmp_path):
        stdin = io.StringIO(
            '["-quiet", "/nonexistent/nope.c"]\n'
            "[malformed json\n"
            "shutdown\n"
        )
        stdout = io.StringIO()
        server = DaemonServer(
            cache_dir=str(tmp_path / "c"), stdin=stdin, stdout=stdout
        )
        assert server.serve() == 0
        lines = [json.loads(l) for l in stdout.getvalue().splitlines()]
        assert "error" in lines[1]
        assert "error" in lines[2]
        assert lines[-1]["errors"] == 2


class TestGeneratedProgramParallel:
    def test_many_unit_program_parallel_equals_serial(self):
        from repro.bench.generator import generate_program

        program = generate_program(modules=5, filler_functions=3, seed=11)
        serial = IncrementalChecker(jobs=1).check_sources(dict(program.files))
        parallel = IncrementalChecker(jobs=4).check_sources(dict(program.files))
        assert _renders(parallel) == _renders(serial)
        classic = Checker().check_sources(dict(program.files))
        assert _renders(parallel) == _renders(classic)
