"""Golden snapshot: the checker's complete output over the paper's program.

The snapshot pins the *entire* user-visible message stream — text,
ordering, locations, follow-up lines — for every annotation stage of the
``examples/db`` program, plus the CLI run (with ``-stats``) over the
on-disk final stage. Any change to message wording, ordering or
rendering shows up as a byte-level diff against the committed file.

When a change is intentional, regenerate with::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_db.py \
        --update-golden
"""

import os

import pytest

from repro.bench.dbexample import FINAL_STAGE, db_sources
from repro.core.api import Checker
from repro.driver.cli import run

GOLDEN = os.path.join(os.path.dirname(__file__), "..", "golden")
GOLDEN_FILE = os.path.abspath(os.path.join(GOLDEN, "examples_db.golden"))
REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)


def _render_stage(stage: int) -> str:
    result = Checker().check_sources(db_sources(stage))
    lines = [f"== stage {stage} =="]
    lines.extend(m.render() for m in result.messages)
    lines.append(f"{len(result.messages)} code warning(s)")
    return "\n".join(lines)


def _render_cli() -> str:
    paths = sorted(
        os.path.join("examples", "db", name)
        for name in os.listdir(os.path.join(REPO_ROOT, "examples", "db"))
        if name.endswith((".c", ".h"))
    )
    cwd = os.getcwd()
    os.chdir(REPO_ROOT)          # golden must not embed absolute paths
    try:
        status, output = run(["-stats"] + paths)
    finally:
        os.chdir(cwd)
    return "\n".join([f"== cli -stats (exit {status}) ==", output])


def _current_output() -> str:
    sections = [_render_stage(s) for s in range(FINAL_STAGE + 1)]
    sections.append(_render_cli())
    return "\n\n".join(sections) + "\n"


def test_examples_db_output_matches_golden(request):
    actual = _current_output()
    if request.config.getoption("--update-golden"):
        os.makedirs(os.path.dirname(GOLDEN_FILE), exist_ok=True)
        with open(GOLDEN_FILE, "w", encoding="utf-8") as handle:
            handle.write(actual)
        pytest.skip("golden file updated")
    assert os.path.exists(GOLDEN_FILE), (
        "no golden file committed; run with --update-golden once"
    )
    with open(GOLDEN_FILE, "r", encoding="utf-8") as handle:
        expected = handle.read()
    assert actual == expected, (
        "examples/db output diverged from the golden snapshot; if the "
        "change is intentional, regenerate with --update-golden"
    )
