"""End-to-end fault containment.

One malformed or crash-inducing translation unit in a batch must cost
exactly its own results: every healthy unit's warnings are reported
byte-identically to a run without the bad unit, the run completes, and
degraded results are never served from the cache.
"""

import json
import os

import pytest

from repro.core.api import Checker
from repro.driver.cli import run
from repro.incremental.cache import ResultCache
from repro.incremental.engine import IncrementalChecker
from repro.messages.message import MessageCode

DB_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples", "db")


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


FILE_A = """#include <stdlib.h>
void leak_a(void) { char *p = (char *) malloc(4); if (p) { *p = 'a'; } }
"""

FILE_B_BROKEN = """int broken(int x) { return x + ; }
int also_fine(int y) { return y; }
"""

FILE_C = """#include <stdlib.h>
char use_c(/*@only@*/ char *p) { free(p); return *p; }
"""


class TestThreeFileBatch:
    def test_middle_file_syntax_error_hides_nothing(self, tmp_path):
        a = _write(tmp_path, "a.c", FILE_A)
        b = _write(tmp_path, "b.c", FILE_B_BROKEN)
        c = _write(tmp_path, "c.c", FILE_C)

        status, output = run(["-quiet", a, b, c])
        assert status == 1

        parse_errors = [
            line for line in output.splitlines() if "Parse error" in line
        ]
        assert len(parse_errors) == 1
        assert parse_errors[0].startswith(b)

        # every warning of the healthy files, byte-identically
        _, healthy_only = run(["-quiet", a, c])
        kept = [line for line in output.splitlines() if b not in line]
        assert kept == healthy_only.splitlines()
        assert any(line.startswith(a) for line in kept)
        assert any(line.startswith(c) for line in kept)

    def test_result_object_marks_the_degraded_unit(self, tmp_path):
        checker = Checker(crash_dir=str(tmp_path / "crashes"))
        result = checker.check_sources(
            {"a.c": FILE_A, "b.c": FILE_B_BROKEN, "c.c": FILE_C}
        )
        assert result.degraded_units == ["b.c"]
        assert result.internal_errors == 0
        # recovery kept the parseable tail of b.c
        assert any(
            m.code is MessageCode.PARSE_ERROR for m in result.messages
        )


class TestCorruptedExamplesBatch:
    """The acceptance scenario: the examples/db tree with one corrupted
    file still yields every healthy warning, byte-identically."""

    def _db_sources(self):
        files = {}
        for name in sorted(os.listdir(DB_DIR)):
            if name.endswith((".c", ".h")):
                with open(os.path.join(DB_DIR, name), encoding="utf-8") as f:
                    files[name] = f.read()
        return files

    def test_one_corrupted_unit_costs_only_itself(self, tmp_path):
        files = self._db_sources()
        healthy_paths = []
        for name, text in files.items():
            healthy_paths.append(_write(tmp_path, name, text))
        corrupt = _write(
            tmp_path, "zz_corrupt.c",
            "/* deliberately corrupted */\nint oops( { ;;; \x01\n",
        )

        status_bad, out_bad = run(["-quiet"] + healthy_paths + [corrupt])
        status_ok, out_ok = run(["-quiet"] + healthy_paths)

        assert status_bad == 1
        bad_lines = [
            line for line in out_bad.splitlines() if corrupt not in line
        ]
        assert bad_lines == out_ok.splitlines()
        own = [line for line in out_bad.splitlines() if corrupt in line]
        assert own and all(
            "Parse error" in line or "Cannot parse" in line for line in own
        )


class TestInjectedFaultWithCache:
    def _inject(self, monkeypatch, victim="boom"):
        from repro.analysis.checker import FunctionChecker

        original = FunctionChecker.check

        def selective(self):
            if self.fdef.name == victim:
                raise RuntimeError("injected analysis fault")
            return original(self)

        monkeypatch.setattr(FunctionChecker, "check", selective)

    def test_crash_bundle_and_no_cache_poisoning(self, tmp_path, monkeypatch):
        self._inject(monkeypatch)
        sources = {
            "good.c": "#include <stdlib.h>\n"
                      "void leaky(char *p) { free(p); }\n",
            "bad.c": "void boom(void) { }\n",
        }
        cache_root = str(tmp_path / "cache")
        crash_dir = os.path.join(cache_root, "crashes")

        engine = IncrementalChecker(cache=ResultCache(cache_root))
        result = engine.check_sources(dict(sources))

        # the fault was contained: run completed, message + bundle exist
        codes = [m.code for m in result.messages]
        assert MessageCode.INTERNAL_ERROR in codes
        assert result.internal_errors == 1
        assert result.degraded_units == ["bad.c"]
        assert engine.stats.degraded_units == 1
        bundles = os.listdir(crash_dir)
        assert len(bundles) == 1
        with open(os.path.join(crash_dir, bundles[0])) as handle:
            payload = json.load(handle)
        assert payload["function"] == "boom"
        assert "injected analysis fault" in payload["traceback"]

        # second run: healthy unit is a cache hit, degraded unit is not
        engine2 = IncrementalChecker(cache=ResultCache(cache_root))
        result2 = engine2.check_sources(dict(sources))
        assert engine2.stats.cache_hits == 1
        assert engine2.stats.cache_misses == 1
        assert [m.render() for m in result2.messages] == [
            m.render() for m in result.messages
        ]

    def test_recheck_after_fix_sees_the_fix(self, tmp_path, monkeypatch):
        sources = {"bad.c": "void boom(void) { }\n"}
        cache_root = str(tmp_path / "cache")

        with pytest.MonkeyPatch.context() as patch:
            self._inject(patch)
            engine = IncrementalChecker(cache=ResultCache(cache_root))
            broken = engine.check_sources(dict(sources))
        assert broken.internal_errors == 1

        # the checker bug is "fixed" (patch reverted): the degraded unit
        # was never cached, so the re-check reports the clean result
        engine2 = IncrementalChecker(cache=ResultCache(cache_root))
        fixed = engine2.check_sources(dict(sources))
        assert fixed.internal_errors == 0
        assert fixed.degraded_units == []
        assert engine2.stats.cache_misses == 1

    def test_cli_exit_3_and_parallel_parity(self, tmp_path, monkeypatch):
        self._inject(monkeypatch)
        monkeypatch.chdir(tmp_path)
        bad = _write(tmp_path, "bad.c", "void boom(void) { }\n")
        good = _write(
            tmp_path, "good.c",
            "#include <stdlib.h>\nvoid leaky(char *p) { free(p); }\n",
        )
        status, output = run([bad, good])
        assert status == 3
        assert "Internal error (RuntimeError)" in output

        serial = IncrementalChecker(jobs=1).check_sources(
            {"bad.c": "void boom(void) { }\n",
             "two.c": "int f(int x) { return x; }\n"}
        )
        parallel = IncrementalChecker(jobs=2).check_sources(
            {"bad.c": "void boom(void) { }\n",
             "two.c": "int f(int x) { return x; }\n"}
        )
        assert [m.render() for m in parallel.messages] == [
            m.render() for m in serial.messages
        ]
        assert parallel.internal_errors == serial.internal_errors == 1
