"""End-to-end ``-dump`` / ``-load`` round trip on the examples/db program.

The paper's modular-checking claim (section 7) rests on interface
libraries: dumping a checked program's interface and reloading it must
reproduce the same warnings. Previously only covered by synthetic unit
tests; this drives the real CLI over the on-disk example program.
"""

import os

import pytest

from repro.driver.cli import run
from repro.driver.library import load_library

EXAMPLES_DB = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "db"
)


@pytest.fixture(scope="module")
def db_paths():
    directory = os.path.abspath(EXAMPLES_DB)
    if not os.path.isdir(directory):  # pragma: no cover
        pytest.skip("examples/db not present")
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith((".c", ".h"))
    )


class TestDumpLoadRoundTrip:
    def test_dump_then_load_reproduces_warnings(self, db_paths, tmp_path):
        lib = str(tmp_path / "db.lcd")
        status1, out1 = run(["-quiet", "-dump", lib] + db_paths)
        assert os.path.isfile(lib)

        status2, out2 = run(["-quiet", "-load", lib] + db_paths)
        assert status2 == status1
        assert out2.splitlines()[: len(out1.splitlines())] == out1.splitlines()

    def test_dumped_library_contains_the_interfaces(self, db_paths, tmp_path):
        lib = str(tmp_path / "db.lcd")
        run(["-quiet", "-dump", lib] + db_paths)
        loaded = load_library(lib)
        for name in ("erc_create", "empset_insert", "db_hire", "eref_alloc"):
            assert name in loaded.functions, name
        assert loaded.functions["erc_create"].ret_annotations.alloc is not None

    def test_single_module_against_library_matches_whole_program(
        self, db_paths, tmp_path
    ):
        # Re-checking just drive.c against the dumped interface library
        # must reproduce exactly the drive.c warnings of the full run —
        # the "representative module re-checked in under 10 seconds"
        # workflow of the paper.
        lib = str(tmp_path / "db.lcd")
        _, full_out = run(["-quiet", "-dump", lib] + db_paths)
        full_drive = [
            line for line in full_out.splitlines() if "drive.c" in line
        ]

        drive = [p for p in db_paths if p.endswith("drive.c")]
        headers = [p for p in db_paths if p.endswith(".h")]
        _, single_out = run(["-quiet", "-load", lib] + drive + headers)
        single_drive = [
            line for line in single_out.splitlines() if "drive.c" in line
        ]
        assert single_drive == full_drive
