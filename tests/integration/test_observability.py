"""End-to-end observability: traces, metrics, and the untouched default.

The acceptance bar: a traced run of the db example produces properly
nested batch > unit > phase > function spans plus a metrics dump with
non-zero cache and phase counters, while a run *without* ``--trace-out``
is byte-identical to the classic path.
"""

import io
import json
import os

import pytest

from repro.bench.dbexample import db_sources
from repro.driver.cli import CliError, run
from repro.incremental import DaemonServer, IncrementalChecker, ResultCache


@pytest.fixture()
def db_paths(tmp_path):
    paths = []
    for name, text in db_sources(1).items():
        path = tmp_path / name
        path.write_text(text)
        paths.append(str(path))
    return sorted(paths)


def _read_events(path):
    return [json.loads(line) for line in
            path.read_text().strip().splitlines()]


class TestTraceOutput:
    def test_spans_nest_batch_unit_phase_function(self, db_paths, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        status, _ = run(
            ["--cache-dir", str(tmp_path / "cache"),
             "--trace-out", str(trace),
             "--metrics-out", str(metrics)] + db_paths
        )
        assert status in (0, 1)
        events = _read_events(trace)
        by_id = {e["id"]: e for e in events}
        by_cat: dict = {}
        for event in events:
            by_cat.setdefault(event["cat"], []).append(event)

        batches = by_cat.get("batch", [])
        assert len(batches) == 1
        batch_id = batches[0]["id"]
        assert batches[0]["parent"] is None

        units = by_cat.get("unit", [])
        assert len(units) >= len(db_paths)
        analyze_ids = {
            e["id"] for e in by_cat.get("phase", []) if e["name"] == "analyze"
        }
        for unit in units:
            assert unit["parent"] == batch_id or unit["parent"] in analyze_ids

        unit_ids = {u["id"] for u in units}
        phases = by_cat.get("phase", [])
        # lex events stream out before their preprocess parent closes, so
        # collect parent ids before checking containment.
        preprocess_ids = {
            e["id"] for e in phases if e["name"] == "preprocess"
        }
        for event in phases:
            if event["name"] in ("preprocess", "parse"):
                assert event["parent"] in unit_ids, event
            elif event["name"] == "lex":
                assert event["parent"] in preprocess_ids, event
            elif event["name"] == "analyze":
                assert event["parent"] == batch_id

        functions = by_cat.get("function", [])
        assert functions, "expected per-function spans in an emitting trace"
        for event in functions:
            assert event["parent"] in unit_ids
            assert by_id[event["parent"]]["args"].get("stage") == "analyze"

    def test_metrics_dump_has_cache_and_phase_counters(
        self, db_paths, tmp_path
    ):
        metrics = tmp_path / "metrics.json"
        status, _ = run(
            ["--cache-dir", str(tmp_path / "cache"),
             "--metrics-out", str(metrics)] + db_paths
        )
        assert status in (0, 1)
        payload = json.loads(metrics.read_text())
        counters = payload["counters"]
        assert counters.get("engine.runs", 0) >= 1
        assert counters.get("engine.units", 0) >= len(db_paths)
        assert counters.get("cache.result.miss", 0) >= len(db_paths)
        assert payload["histograms"].get("engine.run_s", {}).get("count", 0) \
            >= 1

    def test_chrome_export_is_loadable_shape(self, db_paths, tmp_path):
        trace = tmp_path / "trace.json"
        status, _ = run(
            ["--trace-out", str(trace), "--trace-format", "chrome"]
            + db_paths
        )
        assert status in (0, 1)
        payload = json.loads(trace.read_text())
        events = payload["traceEvents"]
        assert events
        assert all(e["ph"] == "X" for e in events)
        assert all("span_id" in e["args"] for e in events)

    def test_unknown_trace_format_is_a_usage_error(self, db_paths, tmp_path):
        with pytest.raises(CliError):
            run(["--trace-out", str(tmp_path / "t"),
                 "--trace-format", "xml"] + db_paths)


class TestDefaultPathUntouched:
    def test_output_identical_with_and_without_tracing(
        self, db_paths, tmp_path
    ):
        plain_status, plain_out = run(list(db_paths))
        traced_status, traced_out = run(
            ["--trace-out", str(tmp_path / "trace.jsonl"),
             "--metrics-out", str(tmp_path / "metrics.json")] + db_paths
        )
        assert traced_status == plain_status
        assert traced_out == plain_out


class TestDaemonMetricsVerb:
    def test_metrics_request_reports_registry_snapshot(self, tmp_path):
        paths = []
        for name, text in db_sources(1).items():
            path = tmp_path / name
            path.write_text(text)
            paths.append(str(path))
        request = json.dumps(["-quiet"] + sorted(paths))
        stdin = io.StringIO(request + "\nmetrics\nshutdown\n")
        stdout = io.StringIO()
        server = DaemonServer(
            cache_dir=str(tmp_path / "cache"), stdin=stdin, stdout=stdout
        )
        assert server.serve() == 0
        lines = [json.loads(l) for l in stdout.getvalue().splitlines()]
        reply = lines[2]
        assert reply["status"] == 0
        counters = reply["metrics"]["counters"]
        assert counters.get("daemon.requests.metrics", 0) >= 1
        assert counters.get(f"daemon.requests.status.{lines[1]['status']}",
                            0) >= 1
        assert counters.get("engine.runs", 0) >= 1


class TestDroppedEntrySurfacing:
    def test_corrupt_memo_becomes_a_run_note(self, tmp_path):
        files = db_sources(1)
        root = str(tmp_path / "cache")
        IncrementalChecker(cache=ResultCache(root)).check_sources(dict(files))
        units_dir = os.path.join(root, "units")
        victims = os.listdir(units_dir)
        assert victims
        with open(os.path.join(units_dir, victims[0]), "wb") as handle:
            handle.write(b"\x00 corrupt")
        engine = IncrementalChecker(cache=ResultCache(root))
        engine.check_sources(dict(files))
        assert any("dropped 1 corrupt" in note for note in
                   engine.stats.notes)


class TestDifftestMetrics:
    def test_campaign_metrics_out(self, tmp_path):
        from repro.difftest.cli import run_difftest

        metrics = tmp_path / "difftest-metrics.json"
        status, _ = run_difftest(
            ["--seeds", "3", "--no-corpus", "--quiet",
             "--metrics-out", str(metrics)]
        )
        assert status in (0, 1)
        counters = json.loads(metrics.read_text())["counters"]
        assert counters.get("difftest.variants", 0) >= 3
