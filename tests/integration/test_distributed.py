"""End-to-end tests for distributed checking: sharded parallel runs and
the shared cache service.

Pins the tentpole acceptance properties: a sharded parallel run and a
cache-server-assisted run both emit byte-identical output to a serial
run; a warm cache server lets a worker with a fresh local cache skip
the frontend entirely; and a dead or dying server degrades to plain
checking with a single note, never an error.
"""

import pytest

from repro.bench.seeding import generate_seeded_program
from repro.core.api import Checker
from repro.incremental import (
    CacheClient,
    CacheServerThread,
    IncrementalChecker,
    ResultCache,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def corpus():
    # A multi-module program with seeded bugs keeps real messages in
    # play, so byte-identity is a meaningful comparison.
    return dict(generate_seeded_program(modules=4).program.files)


@pytest.fixture(scope="module")
def serial_renders(corpus):
    result = Checker().check_sources(dict(corpus))
    renders = [m.render() for m in result.messages]
    assert renders, "seeded corpus must produce messages"
    return renders


def _renders(result):
    return [m.render() for m in result.messages]


class TestShardedParallelIdentity:
    @pytest.mark.parametrize("strategy", ["interface", "size", "round-robin"])
    def test_sharded_run_is_byte_identical(
        self, corpus, serial_renders, strategy, tmp_path
    ):
        from repro.incremental import parallel

        if not parallel.fork_available():
            pytest.skip("needs fork")
        engine = IncrementalChecker(
            cache=ResultCache(str(tmp_path / "c")),
            jobs=3,
            shard_strategy=strategy,
            metrics=MetricsRegistry(),
        )
        result = engine.check_sources(dict(corpus))
        assert _renders(result) == serial_renders
        assert engine.metrics.count("engine.shard.count") > 0


class TestCacheServerFlow:
    def test_distributed_run_is_byte_identical_and_skips_frontend(
        self, corpus, serial_renders, tmp_path
    ):
        # Producer: cold serial run populating the shared cache dir.
        shared = str(tmp_path / "shared")
        producer = IncrementalChecker(cache=ResultCache(shared))
        producer.check_sources(dict(corpus))

        server = CacheServerThread(cache_dir=shared)
        try:
            # Consumer: fresh local cache, warm server. Every unit
            # should resolve via remote memo + result without parsing.
            metrics = MetricsRegistry()
            client = CacheClient(server.addr, metrics=metrics)
            consumer = IncrementalChecker(
                cache=ResultCache(str(tmp_path / "local")),
                remote=client,
                metrics=metrics,
            )
            result = consumer.check_sources(dict(corpus))
            assert _renders(result) == serial_renders
            assert consumer.stats.remote_misses == 0
            assert consumer.stats.remote_hits >= consumer.stats.units
            assert consumer.stats.memo_hits == consumer.stats.units
            assert "cache server:" in consumer.stats.render()

            # Remote hits were copied into the local cache: a second
            # run is fully local-warm with zero server traffic.
            before = metrics.count("cacheserver.client.hits")
            again = IncrementalChecker(
                cache=ResultCache(str(tmp_path / "local")),
                remote=CacheClient(server.addr, metrics=metrics),
            )
            rerun = again.check_sources(dict(corpus))
            assert _renders(rerun) == serial_renders
            assert again.stats.cache_hits == again.stats.units
            assert metrics.count("cacheserver.client.hits") == before
            client.close()
        finally:
            server.close()

    def test_fresh_server_gets_populated_by_the_first_run(
        self, corpus, serial_renders, tmp_path
    ):
        server = CacheServerThread(cache_dir=str(tmp_path / "shared"))
        try:
            first = IncrementalChecker(
                cache=ResultCache(str(tmp_path / "a")),
                remote=CacheClient(server.addr),
            )
            first.check_sources(dict(corpus))
            assert first.stats.remote_hits == 0

            second = IncrementalChecker(
                cache=ResultCache(str(tmp_path / "b")),
                remote=CacheClient(server.addr),
            )
            result = second.check_sources(dict(corpus))
            assert _renders(result) == serial_renders
            assert second.stats.remote_misses == 0
            assert second.stats.remote_hits >= second.stats.units
        finally:
            server.close()

    def test_dead_server_degrades_to_plain_checking(
        self, corpus, serial_renders, tmp_path
    ):
        client = CacheClient("127.0.0.1:1", timeout=0.5)
        engine = IncrementalChecker(
            cache=ResultCache(str(tmp_path / "c")), remote=client
        )
        result = engine.check_sources(dict(corpus))
        assert _renders(result) == serial_renders
        assert client.dead
        notes = [n for n in engine.stats.notes if "unavailable" in n]
        assert len(notes) == 1

    def test_server_dying_mid_run_degrades_cleanly(
        self, corpus, serial_renders, tmp_path
    ):
        server = CacheServerThread(cache_dir=str(tmp_path / "shared"))
        client = CacheClient(server.addr)
        assert client.ping()
        server.close()  # server goes away while the client holds a socket
        engine = IncrementalChecker(
            cache=ResultCache(str(tmp_path / "c")), remote=client
        )
        result = engine.check_sources(dict(corpus))
        assert _renders(result) == serial_renders
        assert client.dead
