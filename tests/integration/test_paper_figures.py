"""End-to-end reproduction of every figure in the paper.

Each test checks the exact program text from the paper (modulo OCR
cleanup) and asserts the messages LCLint is reported to produce, with
the same two-part shape and source lines.
"""

from repro import Flags, check_source
from repro.messages.message import MessageCode

#: Section 6 runs with -allimponly "for expository purposes"; the small
#: sample.c figures present their output the same way.
NOIMP = Flags.from_args(["-allimponly"])

FIG1 = """extern char *gname;

void setName (char *pname)
{
  gname = pname;
}
"""

FIG2 = """extern char *gname;

void setName (/*@null@*/ char *pname)
{
  gname = pname;
}
"""

FIG3 = """extern char *gname;

extern /*@truenull@*/ int isNull (/*@null@*/ char *x);

void setName (/*@null@*/ char *pname)
{
  if (!isNull (pname)) {
    gname = pname;
  }
}
"""

FIG4 = """extern /*@only@*/ char *gname;

void setName (/*@temp@*/ char *pname)
{
  gname = pname;
}
"""

FIG5 = """typedef /*@null@*/ struct _list
{
  /*@only@*/ char *this;
  /*@null@*/ /*@only@*/ struct _list *next;
} *list;

extern /*@out@*/ /*@only@*/ void *
smalloc (size_t);

void
list_addh (/*@temp@*/ list l,
           /*@only@*/ char *e)
{
  if (l != NULL)
  {
    while (l->next != NULL)
    {
      l = l->next;
    }

    l->next = (list)
      smalloc (sizeof (*l->next));
    l->next->this = e;
  }
}
"""


class TestFigure1:
    def test_unannotated_sample_is_clean_without_implicit_annotations(self):
        result = check_source(FIG1, "sample.c", flags=NOIMP)
        assert result.messages == []

    def test_with_implicit_only_the_lost_reference_is_reported(self):
        # Figure 1's discussion: "line 4 loses the last reference to this
        # storage and it can never be deallocated" -- visible once gname
        # is (implicitly) only.
        result = check_source(FIG1, "sample.c", flags=Flags())
        assert any(
            m.code in (MessageCode.LEAK_OVERWRITE, MessageCode.IMPLICIT_TRANSFER)
            for m in result.messages
        )


class TestFigure2:
    def test_exact_message(self):
        result = check_source(FIG2, "sample.c", flags=NOIMP)
        assert len(result.messages) == 1
        msg = result.messages[0]
        assert msg.code is MessageCode.NULL_RET_GLOBAL
        assert msg.location.line == 6
        assert msg.text == (
            "Function returns with non-null global gname referencing "
            "null storage"
        )
        assert len(msg.subs) == 1
        assert msg.subs[0].location.line == 5
        assert msg.subs[0].text == "Storage gname may become null"

    def test_fix_by_null_annotation_on_global(self):
        fixed = FIG2.replace(
            "extern char *gname;", "extern /*@null@*/ char *gname;"
        )
        assert check_source(fixed, "sample.c", flags=NOIMP).messages == []

    def test_fix_by_removing_param_annotation(self):
        fixed = FIG2.replace("/*@null@*/ ", "")
        assert check_source(fixed, "sample.c", flags=NOIMP).messages == []

    def test_reassignment_before_return_is_no_anomaly(self):
        # "It would not be an anomaly to assign gname to NULL in the body
        # of setName, as long as it is re-assigned to a non-null value
        # before the function returns."
        body = """extern char *gname;
        void setName (/*@null@*/ char *pname)
        {
          gname = pname;
          gname = "default";
        }
        """
        assert check_source(body, "sample.c", flags=NOIMP).messages == []


class TestFigure3:
    def test_truenull_fix_is_clean(self):
        assert check_source(FIG3, "sample.c", flags=NOIMP).messages == []


class TestFigure4:
    def test_two_messages(self):
        result = check_source(FIG4, "sample.c", flags=NOIMP)
        assert [m.code for m in result.messages] == [
            MessageCode.LEAK_OVERWRITE,
            MessageCode.TEMP_TO_ONLY,
        ]

    def test_leak_message_shape(self):
        result = check_source(FIG4, "sample.c", flags=NOIMP)
        leak = result.messages[0]
        assert leak.location.line == 5
        assert leak.text == (
            "Only storage gname not released before assignment: gname = pname"
        )
        assert leak.subs[0].location.line == 1
        assert leak.subs[0].text == "Storage gname becomes only"

    def test_temp_message_shape(self):
        result = check_source(FIG4, "sample.c", flags=NOIMP)
        temp = result.messages[1]
        assert temp.location.line == 5
        assert temp.text.startswith("Temp storage pname assigned to only")
        assert temp.subs[0].location.line == 3
        assert temp.subs[0].text == "Storage pname becomes temp"

    def test_fix_by_only_parameter(self):
        fixed = FIG4.replace("/*@temp@*/", "/*@only@*/")
        result = check_source(fixed, "sample.c", flags=NOIMP)
        # gname still leaks (not released before assignment), but the
        # transfer itself is now consistent.
        assert all(m.code is not MessageCode.TEMP_TO_ONLY for m in result.messages)


class TestFigure5:
    def test_exactly_the_two_paper_anomalies(self):
        result = check_source(FIG5, "list.c")
        assert len(result.messages) == 2
        confluence, incomplete = result.messages
        assert confluence.code is MessageCode.CONFLUENCE
        assert "kept" in confluence.text and "only" in confluence.text
        assert "e" in confluence.text.split()
        assert incomplete.code is MessageCode.INCOMPLETE_DEF
        assert "l->next->next" in incomplete.text

    def test_confluence_reported_at_the_if(self):
        result = check_source(FIG5, "list.c")
        confluence = result.messages[0]
        assert confluence.location.line == 14  # the if statement

    def test_fixed_version_is_clean(self):
        fixed = """typedef /*@null@*/ struct _list
        {
          /*@only@*/ char *this;
          /*@null@*/ /*@only@*/ struct _list *next;
        } *list;

        extern /*@out@*/ /*@only@*/ void *smalloc (size_t);
        extern void free_string (/*@only@*/ char *s);

        void list_addh (/*@temp@*/ list l, /*@only@*/ char *e)
        {
          if (l != NULL)
          {
            while (l->next != NULL)
            {
              l = l->next;
            }
            l->next = (list) smalloc (sizeof (*l->next));
            l->next->this = e;
            l->next->next = NULL;
          }
          else
          {
            free_string (e);
          }
        }
        """
        assert check_source(fixed, "list.c").messages == []


FIG7 = """#include <stdlib.h>

typedef struct _elem { int val; struct _elem *next; } *ercElem;

typedef struct {
  ercElem vals;
  int size;
} *erc;

extern void error (/*@temp@*/ char *msg);

erc erc_create (void)
{
  erc c = (erc) malloc (sizeof (*c));

  if (c == NULL) {
    error ("malloc returned null");
    exit (EXIT_FAILURE);
  }

  c->vals = NULL;
  c->size = 0;
  return c;
}
"""


class TestFigure7:
    def test_null_vals_derivable_from_return(self):
        result = check_source(FIG7, "erc.c", flags=NOIMP)
        null_msgs = [m for m in result.messages if m.code is MessageCode.NULL_RET_VALUE]
        assert len(null_msgs) == 1
        msg = null_msgs[0]
        assert msg.text == "Null storage c->vals derivable from return value: c"
        assert msg.subs[0].text == "Storage c->vals becomes null"
        assert msg.subs[0].location.line == 21

    def test_allimponly_also_reports_missing_only_on_return(self):
        # Section 6: "Two messages concern the return statements in
        # erc_create and erc_sprint ... a memory leak is suspected."
        result = check_source(FIG7, "erc.c", flags=NOIMP)
        assert any(m.code is MessageCode.LEAK_RETURN for m in result.messages)

    def test_fix_with_null_field_annotation(self):
        fixed = FIG7.replace("ercElem vals;", "/*@null@*/ ercElem vals;")
        result = check_source(fixed, "erc.c", flags=NOIMP)
        assert all(m.code is not MessageCode.NULL_RET_VALUE for m in result.messages)

    def test_implicit_annotations_make_it_clean(self):
        fixed = FIG7.replace("ercElem vals;", "/*@null@*/ ercElem vals;")
        result = check_source(fixed, "erc.c", flags=Flags())
        assert result.messages == []


FIG8 = """#include <string.h>

typedef struct {
  char *name;
  int salary;
} employee;

int employee_setName (employee *e, char *s)
{
  strcpy (e->name, s);
  return 1;
}
"""


class TestFigure8:
    def test_exact_unique_message(self):
        result = check_source(FIG8, "employee.c", flags=NOIMP)
        assert len(result.messages) == 1
        assert result.messages[0].text == (
            "Parameter 1 (e->name) to function strcpy is declared unique "
            "but may be aliased externally by parameter 2 (s)"
        )

    def test_unique_annotation_documents_and_fixes(self):
        fixed = FIG8.replace("char *s)", "/*@unique@*/ char *s)")
        assert check_source(fixed, "employee.c", flags=NOIMP).messages == []
