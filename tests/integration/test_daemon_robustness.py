"""The daemon must answer an error reply — and keep serving — no matter
what one request throws at it: malformed JSON, oversized lines, inputs
that crash the checker internals."""

import io
import json

from repro.incremental.server import DaemonServer, MAX_REQUEST_BYTES


def _serve(tmp_path, lines):
    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()
    server = DaemonServer(
        cache_dir=str(tmp_path / "cache"), stdin=stdin, stdout=stdout
    )
    assert server.serve() == 0
    return server, [json.loads(l) for l in stdout.getvalue().splitlines()]


def _good_request(tmp_path):
    src = tmp_path / "ok.c"
    src.write_text("int f(int x) { return x + 1; }\n")
    return json.dumps(["-quiet", str(src)])


class TestDaemonRobustness:
    def test_malformed_json_gets_error_reply_and_daemon_lives(self, tmp_path):
        _, replies = _serve(tmp_path, [
            "[this is not json",
            _good_request(tmp_path),
            "shutdown",
        ])
        assert replies[1]["status"] == 2
        assert "malformed" in replies[1]["error"]
        assert replies[2]["status"] == 0  # next request served normally
        assert replies[-1]["bye"] is True

    def test_oversized_request_rejected_not_fatal(self, tmp_path):
        huge = "[" + "\"x\"," * (MAX_REQUEST_BYTES // 4) + "\"x\"]"
        assert len(huge) > MAX_REQUEST_BYTES
        _, replies = _serve(tmp_path, [
            huge,
            _good_request(tmp_path),
            "shutdown",
        ])
        assert replies[1]["status"] == 2
        assert "too large" in replies[1]["error"]
        assert replies[2]["status"] == 0
        assert replies[-1]["bye"] is True

    def test_internal_error_reply_is_status_3(self, tmp_path, monkeypatch):
        from repro.driver import cli

        original = cli.run

        def sometimes_broken(argv, cache=None, jobs=None):
            if any("trigger.c" in a for a in argv):
                raise RuntimeError("checker blew up")
            return original(argv, cache=cache, jobs=jobs)

        monkeypatch.setattr(cli, "run", sometimes_broken)
        trigger = tmp_path / "trigger.c"
        trigger.write_text("int x;\n")
        server, replies = _serve(tmp_path, [
            json.dumps([str(trigger)]),
            _good_request(tmp_path),
            "shutdown",
        ])
        assert replies[1]["status"] == 3
        assert "internal error" in replies[1]["error"]
        assert "RuntimeError" in replies[1]["error"]
        assert replies[2]["status"] == 0  # daemon survived
        assert server.stats.errors == 1
        assert replies[-1]["errors"] == 1

    def test_contained_unit_crash_reported_in_stats(self, tmp_path,
                                                    monkeypatch):
        # A crash *inside* per-function analysis is contained by the
        # checking layer itself: the daemon reply is a normal status-3
        # run with output, not an error reply.
        from repro.analysis.checker import FunctionChecker

        def boom(self):
            raise RuntimeError("injected")

        monkeypatch.setattr(FunctionChecker, "check", boom)
        src = tmp_path / "boom.c"
        src.write_text("void f(void) { }\n")
        _, replies = _serve(tmp_path, [
            json.dumps(["-quiet", "--cache-dir", str(tmp_path / "cache"),
                        str(src)]),
            "shutdown",
        ])
        assert replies[1]["status"] == 3
        assert "Internal error" in replies[1]["output"]
        assert replies[1]["stats"]["internal_errors"] == 1
        assert replies[1]["stats"]["degraded_units"] == 1
