"""Hash-seed determinism: same seed, same bytes, regardless of process.

Everything seeded in this repo claims replayability: the benchmark
generator, the checker's message stream, and the difftest campaign. A
stray ``hash()``-ordered set iteration or string-seeded RNG breaks that
silently — within one process the output still looks stable. These
tests run the same work in two fresh subprocesses with *different*
``PYTHONHASHSEED`` values and require byte-identical output.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
SRC = os.path.join(REPO_ROOT, "src")


def _run_snippet(code: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def _both_hash_seeds(code: str) -> tuple[str, str]:
    return _run_snippet(code, "0"), _run_snippet(code, "4242")


GENERATOR_SNIPPET = """
from repro.bench.generator import generate_program
program = generate_program(
    modules=2, filler_functions=2, scenarios_per_module=2, seed=11,
)
for name in sorted(program.files):
    print(f"=== {name} ===")
    print(program.files[name])
print(program.functions)
print(program.scenarios)
"""

CHECKER_SNIPPET = """
from repro.bench.seeding import generate_seeded_program
from repro.core.api import Checker
seeded = generate_seeded_program(
    modules=2, bugs_per_kind=1, clean_scenarios=2, seed=5,
)
result = Checker().check_sources(seeded.program.files)
for message in result.messages:
    print(message.render())
for bug in seeded.bugs:
    print(bug.kind.value, bug.scenario)
"""

DIFFTEST_SNIPPET = """
from repro.difftest import CampaignConfig, run_campaign
result = run_campaign(
    CampaignConfig(seeds=10, jobs=1, corpus_dir=None,
                   flag_args=("-usereleased",))
)
print(result.render())
for outcome in result.outcomes:
    print(outcome.seed, outcome.planted_class, outcome.plant_confirmed,
          [ (d.direction, d.error_class) for d in outcome.discrepancies ])
for item in result.shrunk:
    print(item.case.name, list(item.case.window), item.probes)
"""


@pytest.mark.parametrize(
    "name,snippet",
    [
        ("generator", GENERATOR_SNIPPET),
        ("checker", CHECKER_SNIPPET),
        ("difftest", DIFFTEST_SNIPPET),
    ],
)
def test_output_is_hash_seed_independent(name, snippet):
    first, second = _both_hash_seeds(snippet)
    assert first == second, (
        f"{name} output depends on PYTHONHASHSEED — a hash-ordered "
        f"iteration or non-integer RNG seed crept in"
    )
    assert first.strip(), f"{name} snippet produced no output"
