"""Integration smoke tests: the example scripts run, and the experiment
harness produces the paper's shapes at small scale."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "Arrow access from possibly null pointer c" in output
        assert "memory leak" in output
        assert "gc'd targets" in output

    def test_annotate_iteratively(self):
        output = run_example("annotate_iteratively.py")
        assert "stage" in output
        # final row shows zero messages under both flag settings
        final = [l for l in output.splitlines() if l.strip().startswith("4")]
        assert final and "0" in final[0]
        assert "final annotation census" in output

    def test_static_vs_dynamic(self):
        output = run_example("static_vs_dynamic.py")
        assert "static:  10/10" in output
        assert "runtime: 5/10" in output

    def test_explore_cfg(self):
        output = run_example("explore_cfg.py")
        assert "acyclic (no back edges): True" in output
        assert 'digraph "list_addh"' in output

    def test_figure6_walkthrough(self):
        output = run_example("figure6_walkthrough.py")
        assert "allocation state of e becomes kept" in output
        assert "may alias {arg1, arg1->next}" in output
        assert "kept on one branch, only on the other" in output

    def test_lcl_specs(self):
        output = run_example("lcl_specs.py")
        assert "clean — implementation satisfies the specification" in output
        assert "Temp storage key assigned to only e->key" in output
        assert "not completely destroyed" in output

    def test_db_artifacts_in_sync_with_templates(self):
        from repro.bench.dbexample import FINAL_STAGE, db_sources

        rendered = db_sources(FINAL_STAGE)
        for name, text in rendered.items():
            on_disk = (EXAMPLES / "db" / name).read_text()
            assert on_disk == text, f"examples/db/{name} is stale"


class TestHarnessSmoke:
    def test_figures_all_match(self):
        from repro.bench.harness import figure_experiments

        assert all(f.ok for f in figure_experiments())

    def test_scaling_small(self):
        from repro.bench.harness import linearity_ratio, scaling_experiment

        rows = scaling_experiment(targets=(600, 1200))
        assert len(rows) == 2
        assert rows[0]["messages"] == 0
        assert rows[1]["loc"] > rows[0]["loc"]
        assert linearity_ratio(rows) < 4.0

    def test_modular_speedup(self, tmp_path):
        from repro.bench.harness import modular_experiment

        info = modular_experiment(target_loc=2500, tmpdir=str(tmp_path))
        assert info["module_seconds"] < info["full_seconds"]
        # the real experiment (bench_modular) demonstrates the magnitude;
        # here only the direction is asserted, to stay timing-robust
        assert info["speedup"] > 1.0

    def test_burden(self):
        from repro.bench.harness import burden_experiment

        info = burden_experiment(target_loc=1200)
        assert info["messages_annotated"] == 0
        assert info["messages_unannotated"] > 0

    def test_static_vs_runtime_small(self):
        from repro.bench.harness import static_vs_runtime_experiment

        outcome = static_vs_runtime_experiment(
            coverages=(0.5, 1.0), bugs_per_kind=1, modules=2
        )
        rows = outcome["rows"]
        assert rows[0]["static_rate"] == 1.0
        assert rows[0]["runtime_rate"] < 1.0
        assert rows[1]["runtime_rate"] == 1.0
        assert outcome["static_false_positives_in_clean"] == 0


class TestInterpreterFunctionPointers:
    def test_call_through_function_pointer_variable(self):
        from repro.runtime.interp import run_program

        source = """#include <stdio.h>
        static int twice(int x) { return 2 * x; }
        static int thrice(int x) { return 3 * x; }
        int main(void) {
            int (*op)(int x);
            op = twice;
            printf("%d", op(5));
            op = thrice;
            printf(" %d", op(5));
            return 0;
        }"""
        result = run_program(source)
        assert result.output == "10 15"
