"""End-to-end tests for the differential fault-injection campaign.

The expensive full pipeline runs once per flag configuration at small
seed counts; assertions then probe the resulting matrices, corpus and
exit codes from multiple angles.
"""

import json
import os

import pytest

from repro.difftest import (
    CampaignConfig,
    DualRunner,
    MutationEngine,
    load_corpus,
    replay_case,
    run_campaign,
    shrink_discrepancy,
)
from repro.difftest.cli import (
    EXIT_DISCREPANT,
    EXIT_OK,
    EXIT_USAGE,
    DifftestCliError,
    parse_args,
    run_difftest,
)
from repro.difftest.mutations import CAMPAIGN_CLASSES
from repro.driver.cli import main as driver_main


@pytest.fixture(scope="module")
def default_campaign():
    return run_campaign(CampaignConfig(seeds=16, jobs=1, corpus_dir=None))


@pytest.fixture(scope="module")
def blinded_campaign(tmp_path_factory):
    """The forced discrepancy: -usereleased blinds static UAF detection."""
    corpus = tmp_path_factory.mktemp("corpus")
    result = run_campaign(CampaignConfig(
        seeds=16, jobs=1, corpus_dir=str(corpus),
        flag_args=("-usereleased",),
    ))
    return result, str(corpus)


def test_default_campaign_has_no_discrepancies(default_campaign):
    assert default_campaign.clean_exit
    assert default_campaign.discrepancy_count == 0
    assert not default_campaign.shrunk


def test_default_campaign_static_recall_is_total(default_campaign):
    total = default_campaign.static_matrix.total()
    assert total.fn == 0 and total.fp == 0
    assert total.tp == default_campaign.planted_count


def test_default_campaign_runtime_misses_untested_scenarios(default_campaign):
    # at 50% coverage the run-time detector must miss roughly half the
    # plants; at minimum it cannot see everything static sees
    total = default_campaign.runtime_matrix.total()
    assert total.fn > 0
    assert total.tp + total.fn == default_campaign.planted_count


def test_campaign_includes_clean_control_variants(default_campaign):
    assert default_campaign.clean_count > 0


def test_campaign_render_mentions_every_class(default_campaign):
    text = default_campaign.render()
    for cls in CAMPAIGN_CLASSES:
        assert cls in text
    assert "no static/ground-truth discrepancies" in text


def test_parallel_campaign_matches_serial(default_campaign):
    parallel = run_campaign(
        CampaignConfig(seeds=16, jobs=2, corpus_dir=None)
    )
    assert parallel.render() == default_campaign.render()


def test_blinded_campaign_surfaces_static_fns(blinded_campaign):
    result, _ = blinded_campaign
    assert not result.clean_exit
    directions = {
        d.direction for o in result.outcomes for d in o.discrepancies
    }
    assert directions == {"static-fn"}
    classes = {
        d.error_class for o in result.outcomes for d in o.discrepancies
    }
    assert classes <= {"use-after-free", "double-free"}
    assert result.static_matrix.at("use-after-free").fn > 0


def test_blinded_campaign_leaves_other_classes_intact(blinded_campaign):
    result, _ = blinded_campaign
    for cls in ("null-dereference", "invalid-free", "leak"):
        assert result.static_matrix.at(cls).fn == 0


def test_blinded_campaign_shrinks_and_persists(blinded_campaign):
    result, corpus = blinded_campaign
    assert result.shrunk
    cases = load_corpus(corpus)
    assert len(cases) == len(result.shrunk)
    for item in result.shrunk:
        assert item.minimized_window <= item.original_window
        assert item.path is not None and os.path.exists(item.path)
    # at least one window genuinely reduced (the double-free recipe
    # carries a removable printf) whenever a double free was planted
    if any(i.discrepancy.error_class == "double-free" for i in result.shrunk):
        assert any(
            i.minimized_window < i.original_window for i in result.shrunk
        )


def test_persisted_cases_replay_under_matching_flags(blinded_campaign):
    _, corpus = blinded_campaign
    from repro.flags.registry import Flags

    runner = DualRunner(flags=Flags.from_args(["-usereleased"]))
    for case in load_corpus(corpus):
        report = replay_case(case, runner)
        assert report.reproduced, (case.name, report.problems)


def test_persisted_case_diverges_under_default_flags(blinded_campaign):
    _, corpus = blinded_campaign
    cases = load_corpus(corpus)
    report = replay_case(cases[0], DualRunner())
    assert not report.reproduced


def test_corpus_json_is_self_contained(blinded_campaign):
    result, corpus = blinded_campaign
    name = result.shrunk[0].case.name
    with open(os.path.join(corpus, f"{name}.json")) as handle:
        data = json.load(handle)
    assert data["schema"] == 1
    assert "driver.c" in data["files"]
    assert data["expected"]["oracle_classes"]
    assert data["direction"] == "static-fn"


def test_shrink_predicate_rejects_destroyed_programs(blinded_campaign):
    result, _ = blinded_campaign
    item = result.shrunk[0]
    engine = MutationEngine()
    runner = DualRunner()
    # shrinking with default flags: the discrepancy does not hold at all,
    # so nothing can be removed and the original window survives
    variant = engine.variant(item.discrepancy.seed)
    shrunk = shrink_discrepancy(
        engine, runner, variant, item.discrepancy, max_probes=20
    )
    assert not shrunk.reduced
    assert shrunk.window == variant.window_lines


# ---------------------------------------------------------------------------
# command line
# ---------------------------------------------------------------------------


def test_cli_campaign_smoke(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    status, output = run_difftest([
        "--seeds", "8", "--corpus", str(corpus), "--quiet",
    ])
    assert status == EXIT_OK
    assert "differential fault injection: 8 variants" in output
    assert not corpus.exists()   # nothing to persist


def test_cli_blinded_campaign_exits_nonzero(tmp_path):
    corpus = tmp_path / "corpus"
    status, output = run_difftest([
        "--seeds", "8", "--corpus", str(corpus), "--quiet", "-usereleased",
    ])
    assert status == EXIT_DISCREPANT
    assert "minimized and persisted" in output
    assert list(corpus.glob("*.json"))


def test_cli_replay_all(tmp_path):
    corpus = tmp_path / "corpus"
    run_difftest([
        "--seeds", "8", "--corpus", str(corpus), "--quiet", "-usereleased",
    ])
    status, output = run_difftest([
        "--replay", "--corpus", str(corpus), "-usereleased",
    ])
    assert status == EXIT_OK
    assert "reproduced" in output
    # replaying under the wrong flags must fail loudly
    status, output = run_difftest(["--replay", "--corpus", str(corpus)])
    assert status == EXIT_DISCREPANT
    assert "DIVERGED" in output


def test_cli_replay_empty_corpus_is_ok(tmp_path):
    status, output = run_difftest(
        ["--replay", "--corpus", str(tmp_path / "none")]
    )
    assert status == EXIT_OK
    assert "no corpus cases" in output


def test_cli_rejects_bad_arguments():
    with pytest.raises(DifftestCliError):
        parse_args(["--seeds", "zero"])
    with pytest.raises(DifftestCliError):
        parse_args(["--coverage", "1.5"])
    with pytest.raises(DifftestCliError):
        parse_args(["bogus-positional"])
    with pytest.raises(DifftestCliError):
        run_difftest(["--seeds", "1", "-notarealflag"])


def test_cli_help():
    status, output = run_difftest(["--help"])
    assert status == EXIT_OK
    assert "--replay" in output


def test_driver_dispatches_difftest_subcommand(capsys):
    status = driver_main(["difftest", "--seeds", "2", "--no-corpus"])
    assert status == EXIT_OK
    assert "differential fault injection" in capsys.readouterr().out


def test_driver_difftest_usage_error(capsys):
    status = driver_main(["difftest", "--seeds", "nope"])
    assert status == EXIT_USAGE
    assert "repro difftest" in capsys.readouterr().err
