"""Deep-fidelity tests: the tracing engine reproduces the paper's
section 5 point-by-point narration of Figure 6."""

from repro.analysis.engine import trace_source

FIG5 = """typedef /*@null@*/ struct _list {
  /*@only@*/ char *this;
  /*@null@*/ /*@only@*/ struct _list *next;
} *list;

extern /*@out@*/ /*@only@*/ void *smalloc (size_t);

void list_addh (/*@temp@*/ list l, /*@only@*/ char *e)
{
  if (l != NULL)
  {
    while (l->next != NULL)
    {
      l = l->next;
    }
    l->next = (list) smalloc (sizeof (*l->next));
    l->next->this = e;
  }
}
"""


def trace_of():
    trace, messages = trace_source(FIG5, "list_addh")
    return trace, messages


def point(trace, label_part):
    return next(p for p in trace if label_part in p.label)


class TestEntryStates:
    """Paper: 'Here, the dataflow values are set according to the
    annotations and type definitions.'"""

    def test_parameter_l(self):
        trace, _ = trace_of()
        entry = trace[0]
        assert entry.label == "Function Entrance"
        # possibly-null (typedef null), completely-defined, temp
        assert entry.state_of("l") == "completely defined / possibly null / temp"

    def test_parameter_e(self):
        trace, _ = trace_of()
        entry = trace[0]
        # completely-defined, not-null, only
        assert entry.state_of("e") == "completely defined / notnull / only"

    def test_l_aliases_argl_at_entry(self):
        trace, _ = trace_of()
        assert trace[0].aliases_of("l") == ("arg1",)


class TestLoopExit:
    """Paper, point 7: 'l may alias argl or argl->next. In reality, l may
    alias argl->next^i for any i >= 0 ... the only aliases of l that are
    detected are argl and argl->next.'"""

    def test_alias_set_is_exactly_the_papers(self):
        trace, _ = trace_of()
        after_loop = point(trace, "while")
        assert after_loop.aliases_of("l") == ("arg1", "arg1->next")


class TestAllocationAssignment:
    """Paper, point 8: 'after the assignment l->next is characterized as
    allocated, non-null, and only ... the state of argl->next is also
    allocated, non-null, and only ... l is now characterized as
    partially-defined.'"""

    def test_l_next_state(self):
        trace, _ = trace_of()
        after = point(trace, "smalloc")
        assert after.state_of("l->next") == "allocated / notnull / only"
        assert after.state_of("arg1->next") == "allocated / notnull / only"

    def test_l_becomes_partially_defined(self):
        trace, _ = trace_of()
        after = point(trace, "smalloc")
        assert after.state_of("l").startswith("partially defined")


class TestObligationTransfer:
    """Paper: 'The assignment transfers the obligation to release
    storage ... the allocation state of e becomes kept. ... Since e
    aliases arg2, the allocation state of arg2 is also set to kept.'"""

    def test_e_becomes_kept(self):
        trace, _ = trace_of()
        after = point(trace, "this = e")
        assert after.state_of("e").endswith("kept")
        assert after.state_of("arg2").endswith("kept")

    def test_next_next_is_undefined(self):
        trace, _ = trace_of()
        after = point(trace, "this = e")
        assert after.state_of("arg1->next->next").startswith("undefined")


class TestConfluence:
    """Paper, point 10: kept on the true branch, only on the false branch
    -- 'LCLint reports this as a program anomaly. To prevent further
    errors, the allocation state of e is set to a special error
    marker.'"""

    def test_e_poisoned_after_merge(self):
        trace, _ = trace_of()
        merged = point(trace, "if (")
        assert merged.state_of("e").endswith("error")

    def test_exit_messages_are_the_papers_two(self):
        _, messages = trace_of()
        texts = [m.text for m in messages]
        assert len(texts) == 2
        assert any("kept" in t and "only" in t for t in texts)
        assert any("l->next->next" in t for t in texts)


class TestTraceRendering:
    def test_render_is_readable(self):
        trace, _ = trace_of()
        text = trace[0].render()
        assert "Function Entrance" in text
        assert "l:" in text

    def test_trace_function_not_found(self):
        import pytest

        with pytest.raises(ValueError):
            trace_source("int x;", "missing")
