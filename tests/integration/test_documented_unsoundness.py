"""Fidelity tests for the paper's *documented* imprecision (section 2).

"LCLint may produce messages for correct code ... The alternative would
be not reporting many anomalies that are likely errors." and "LCLint may
also fail to produce messages for certain kinds of incorrect code in
some contexts."

These tests pin the deliberate false positives and false negatives so
that future changes cannot silently 'fix' them into a different analysis
than the paper describes.
"""

from repro import Flags, check_source
from repro.messages.message import MessageCode

NOIMP = Flags.from_args(["-allimponly"])


def codes(source, flags=NOIMP):
    return [m.code for m in check_source(source, "t.c", flags=flags).messages]


class TestDocumentedFalsePositives:
    def test_correlated_branches(self):
        """Paper: 'a use-before-definition error in a branch that would
        only be taken if an earlier branch initialized the variable'."""
        src = """int f(int c) {
            int x;
            if (c > 0) { x = 1; }
            if (c > 0) { return x; }  /* correlated: actually safe */
            return 0;
        }"""
        assert MessageCode.USE_BEFORE_DEF in codes(src)

    def test_error_handling_inconsistency(self):
        """Paper section 7: 'the most common problem was where different
        branches of an if statement used storage inconsistently' — often
        error-recovery code; reported, suppressible."""
        src = """#include <stdlib.h>
        extern int failed(void);
        void f(/*@only@*/ char *p) {
            if (failed()) {
                free(p);   /* error path releases early */
                return;
            }
            free(p);
        }"""
        # return-based version is clean (each path checked separately)
        assert codes(src) == []
        src_merge = """#include <stdlib.h>
        extern int failed(void);
        void f(/*@only@*/ char *p, int retry) {
            if (failed()) { free(p); }
            if (retry) { }
        }"""
        assert MessageCode.CONFLUENCE in codes(src_merge)

    def test_suppression_is_the_sanctioned_remedy(self):
        src = """#include <stdlib.h>
        extern int failed(void);
        void f(/*@only@*/ char *p, int retry) {
            /*@ignore@*/
            if (failed()) { free(p); }
            /*@end@*/
            if (retry) { }
        }"""
        result = check_source(src, "t.c", flags=NOIMP)
        assert result.messages == []
        assert result.suppressed >= 1


class TestDocumentedFalseNegatives:
    def test_second_iteration_alias_missed(self):
        """Paper: 'if an alias is not detected because it would be
        produced only after the second iteration of a loop, LCLint will
        fail to detect an error involving the use of released storage'."""
        # r aliases p only from the SECOND iteration (r = q after q = p);
        # the zero-or-one-iteration model sees r ~ q only, so the use of
        # r after free(p) is missed when n >= 2.
        src = """#include <stdlib.h>
        void f(int n) {
            char *p = (char *) malloc(4);
            char *q = (char *) malloc(4);
            char *r = NULL;
            int i;
            if (p == NULL || q == NULL) { return; }
            p[0] = 'a';
            q[0] = 'b';
            for (i = 0; i < n; i++) { r = q; q = p; }
            free(p);
            if (r != NULL) {
                r[0] = 'c';   /* use after free when n >= 2 */
            }
        }"""
        assert MessageCode.USE_AFTER_RELEASE not in codes(src)

    def test_loop_effects_beyond_one_iteration_missed(self):
        """Loops are 'identical to executing the loop zero or one times':
        state changes that require two iterations are invisible."""
        src = """#include <stdlib.h>
        typedef /*@null@*/ struct _n {
            /*@null@*/ /*@only@*/ struct _n *next;
        } *node;
        void f(/*@temp@*/ node head) {
            node cur = head;
            while (cur != NULL) {
                cur = cur->next;
            }
            /* freeing the *third* element specifically is invisible */
        }"""
        assert codes(src) == []

    def test_goto_paths_not_joined(self):
        """The structured analysis does not join goto paths, so errors
        reachable only through a goto are missed."""
        src = """#include <stdlib.h>
        void f(/*@only@*/ char *p, int c) {
            if (c) { goto skip; }
            free(p);
            return;
        skip:
            return;  /* p leaks on this path */
        }"""
        # the leak on the goto path is not reported (documented miss)
        assert MessageCode.LEAK_SCOPE not in codes(src)

    def test_default_index_collapse_hides_per_element_errors(self):
        """Section 2: unknown indexes are 'all the same element' by
        default, so per-element definedness errors are missed ...
        """
        src = """typedef struct _v { int n; } v;
        extern /*@out@*/ /*@only@*/ void *smalloc(size_t);
        extern void sink(/*@only@*/ int *p);
        int f(void) {
            int *p = (int *) smalloc(4 * sizeof(int));
            p[0] = 1;
            sink(p);
            return p == (int *) 0 ? 0 : 1;
        }"""
        assert MessageCode.PARAM_NOT_DEFINED not in codes(src)

    def test_strictindex_restores_the_check(self):
        """... and +strictindex restores per-element tracking."""
        src = """extern /*@out@*/ /*@only@*/ void *smalloc(size_t);
        extern void sink(/*@only@*/ int *p);
        int g(void) {
            int *p = (int *) smalloc(4 * sizeof(int));
            p[0] = 1;
            sink(p);
            return 1;
        }"""
        strict = Flags.from_args(["-allimponly", "+strictindex"])
        assert MessageCode.PARAM_NOT_DEFINED in codes(src, flags=strict)


class TestLikelyCaseOverWorstCase:
    """'Instead of using worst-case assumptions, LCLint uses
    approximations that follow from likely-case assumptions.'"""

    def test_unknown_function_calls_do_not_invalidate_state(self):
        src = """#include <stdlib.h>
        extern void log_event(int code);
        void f(void) {
            char *p = (char *) malloc(4);
            if (p == NULL) { return; }
            log_event(1);   /* worst-case would havoc p; we keep the state */
            *p = 'x';
            free(p);
        }"""
        assert codes(src) == []

    def test_null_check_assumed_intentional_after_report(self):
        """After a possibly-null deref is reported once, the reference is
        assumed checked to avoid message cascades."""
        src = """struct s { int a; int b; };
        int f(/*@null@*/ struct s *p) { return p->a + p->b; }"""
        result_codes = codes(src)
        assert result_codes.count(MessageCode.NULL_DEREF) == 1
