"""Expression-level transfer functions (paper sections 4 and 5).

This module provides :class:`ExprMixin`, the expression evaluator mixed
into :class:`~repro.analysis.checker.FunctionChecker`. It computes
abstract :class:`Value` results, performs use checks (use before
definition, use after release, dereference of possibly-null pointers)
and implements the assignment rules: release-obligation transfer, leak
detection on overwrite, annotation-transfer mismatches, alias updates,
and definition-state propagation to base storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..annotations.kinds import AllocAnn, DefAnn
from ..frontend import cast as A
from ..frontend.ctypes import (
    Array,
    CType,
    is_pointerish,
    pointee_type,
    strip_typedefs,
)
from ..frontend.render import render_expr
from ..frontend.source import Location
from ..messages.message import MessageCode
from .guards import is_null_literal
from .states import AllocState, DefState, NullState, RefState
from .storage import Ref
from .store import Store


@dataclass(frozen=True)
class Value:
    """Abstract result of evaluating an expression."""

    state: RefState
    ref: Ref | None = None
    ctype: CType | None = None
    null_literal: bool = False
    fresh_call: str | None = None  # callee that produced a fresh obligation
    alias_refs: frozenset[Ref] = field(default_factory=frozenset)

    @staticmethod
    def plain(ctype: CType | None = None) -> "Value":
        """A defined, non-null, unobligated scalar value."""
        return Value(
            RefState(DefState.DEFINED, NullState.NOTNULL, AllocState.IMPLICIT),
            ctype=ctype,
        )

    @staticmethod
    def null(ctype: CType | None = None) -> "Value":
        return Value(
            RefState(DefState.DEFINED, NullState.ISNULL, AllocState.IMPLICIT),
            ctype=ctype,
            null_literal=True,
        )


def _index_key(index_expr: A.Expr) -> str:
    """Reference key for an index under +strictindex: constant indexes
    denote distinct elements; unknown indexes share one '?' element."""
    if isinstance(index_expr, A.IntLit):
        return str(index_expr.value)
    if isinstance(index_expr, A.CharLit):
        return str(index_expr.value)
    return "?"


def _constant_value(value: int) -> Value:
    """An integer constant: a plain value carrying its exact range (and
    the null-literal marker for 0)."""
    base = Value.null() if value == 0 else Value.plain()
    return replace(base, state=base.state.with_range((value, value)))


class _LazyRender:
    """Renders an expression only if the message actually fires.

    Module-level (not a per-call closure class): ``_transfer_obligation``
    runs for every assignment, and creating a class object each call cost
    more than the analysis work around it.
    """

    __slots__ = ("expr",)

    def __init__(self, expr: A.Expr) -> None:
        self.expr = expr

    def __str__(self) -> str:
        return render_expr(self.expr)


class ExprMixin:
    """Expression evaluation; mixed into FunctionChecker.

    Host requirements (provided by FunctionChecker): ``reporter``,
    ``flags``, ``resolve_name``, ``ref_type``, ``declared_annotations``,
    ``effective_alloc_ann``, ``decl_site``, ``describe_ref``,
    ``signature``, ``handle_call``, ``materialize_children``,
    ``eval_condition`` and ``_report_merges``.
    """

    # -- reference resolution (also used by guard analysis) -----------------

    def resolve_ref_quiet(self, expr: A.Expr, store: Store) -> Ref | None:
        """Resolve an expression to a reference without reporting checks."""
        if isinstance(expr, A.Ident):
            kind, info = self.resolve_name(expr.name)
            if kind == "local":
                return Ref.local(expr.name)
            if kind == "global":
                return Ref.global_(expr.name)
            return None
        if isinstance(expr, A.Member):
            base = self.resolve_ref_quiet(expr.obj, store)
            if base is None:
                return None
            return base.arrow(expr.fieldname) if expr.arrow else base.dot(expr.fieldname)
        if isinstance(expr, A.Index):
            base = self.resolve_ref_quiet(expr.array, store)
            if base is None:
                return None
            return base.index(strict=self.flags.enabled("strictindex"),
                              key=_index_key(expr.index))
        if isinstance(expr, A.Unary) and expr.op == "*":
            base = self.resolve_ref_quiet(expr.operand, store)
            return base.deref() if base is not None else None
        if isinstance(expr, A.Cast):
            return self.resolve_ref_quiet(expr.operand, store)
        if isinstance(expr, A.Assign) and expr.op == "=":
            # The value of '(p = e)' is whatever p now holds, so a guard
            # on the assignment expression refines p itself — the
            # 'if ((s = malloc(n)) == NULL)' idiom (paper section 4).
            return self.resolve_ref_quiet(expr.target, store)
        return None

    # -- use checks --------------------------------------------------------------

    def check_usable(self, ref: Ref, store: Store, loc: Location) -> None:
        """Checks for using *ref* as an rvalue (paper section 3)."""
        st = store.state(ref)
        name = self.describe_ref(ref)
        if st.definition is DefState.UNDEFINED:
            ann = self.declared_annotations(ref)
            if ann.definition in (DefAnn.RELDEF, DefAnn.PARTIAL):
                # relaxed definition checking: assumed defined when used
                store.set_state(ref, st.with_definition(DefState.DEFINED))
                return
            code = MessageCode.USE_BEFORE_DEF
            text = f"Value {name} used before definition"
            if ref.path and ref.path[-1][0] in ("dot", "arrow") and (
                self.flags.enabled("fielddef")
            ):
                # Reading an unwritten field of a struct that *other*
                # writes left partially defined is its own class; a read
                # from wholly-undefined storage stays use-before-def.
                parent = ref.parent()
                if parent is not None and (
                    store.state(parent).definition is DefState.PARTIAL
                ):
                    code = MessageCode.UNINIT_FIELD
                    text = (
                        f"Field {name} read while "
                        f"{self.describe_ref(parent)} is only partially "
                        f"initialized"
                    )
            self.reporter.report(code, loc, text)
            # poison to avoid cascades
            store.set_state(ref, st.with_definition(DefState.ERROR))
        elif st.definition is DefState.DEAD or st.alloc is AllocState.DEAD:
            self.reporter.report(
                MessageCode.USE_AFTER_RELEASE, loc,
                f"Storage {name} used after release",
                subs=self._site_subs(store, ref, "release"),
            )
            store.set_state(
                ref, RefState(DefState.ERROR, st.null, AllocState.ERROR)
            )

    def check_deref(
        self, base: Value, store: Store, loc: Location, how: str, expr: A.Expr
    ) -> None:
        """Check a dereference (``*p``, ``p->f``, ``p[i]``) for null misuse."""
        st = base.state
        if st.null is NullState.RELNULL:
            return
        if not st.null.possibly_null():
            return
        name = self.describe_ref(base.ref) if base.ref is not None else render_expr(expr)
        access = {
            "arrow": "Arrow access from",
            "deref": "Dereference of",
            "index": "Index of",
        }[how]
        kind = "null" if st.null.definitely_null() else "possibly null"
        self.reporter.report(
            MessageCode.NULL_DEREF, loc,
            f"{access} {kind} pointer {name}: {render_expr(expr)}",
            subs=self._site_subs(store, base.ref, "null") if base.ref else None,
        )
        if base.ref is not None:
            # Assume the check was meant: stop repeating the message.
            store.update_with_aliases(
                base.ref, lambda s: s.with_null(NullState.NOTNULL)
            )

    def _site_subs(
        self, store: Store, ref: Ref | None, kind: str
    ) -> list[tuple[Location, str]] | None:
        if ref is None:
            return None
        loc = store.sites.get((ref, kind))
        if loc is None:
            return None
        name = self.describe_ref(ref)
        text = {
            "null": f"Storage {name} may become null",
            "release": f"Storage {name} is released",
        }[kind]
        return [(loc, text)]

    # -- rvalue / lvalue evaluation ---------------------------------------------

    def eval_rvalue(self, expr: A.Expr, store: Store) -> Value:
        value = self._eval(expr, store, want_lvalue=False)
        return value

    def eval_lvalue(self, expr: A.Expr, store: Store) -> Value:
        return self._eval(expr, store, want_lvalue=True)

    def _eval(self, expr: A.Expr, store: Store, want_lvalue: bool) -> Value:
        method = getattr(self, f"_eval_{type(expr).__name__.lower()}", None)
        if method is None:
            return Value.plain()
        return method(expr, store, want_lvalue)

    # Each _eval_* handler: (expr, store, want_lvalue) -> Value.

    def _eval_intlit(self, expr: A.IntLit, store: Store, want_lvalue: bool) -> Value:
        return _constant_value(expr.value)

    def _eval_floatlit(self, expr, store, want_lvalue) -> Value:
        return Value.plain()

    def _eval_charlit(self, expr: A.CharLit, store, want_lvalue) -> Value:
        return _constant_value(expr.value)

    def _eval_stringlit(self, expr, store, want_lvalue) -> Value:
        return Value(
            RefState(DefState.DEFINED, NullState.NOTNULL, AllocState.STATIC)
        )

    def _eval_ident(self, expr: A.Ident, store: Store, want_lvalue: bool) -> Value:
        kind, info = self.resolve_name(expr.name)
        if kind == "local":
            ref = Ref.local(expr.name)
        elif kind == "global":
            ref = Ref.global_(expr.name)
            self.note_global_use(expr.name)
        elif kind == "func":
            return Value(
                RefState(DefState.DEFINED, NullState.NOTNULL, AllocState.STATIC)
            )
        elif kind == "enum":
            return _constant_value(info) if isinstance(info, int) else Value.plain()
        else:
            return Value.plain()
        if not want_lvalue:
            self.check_usable(ref, store, expr.location)
        return Value(store.state(ref), ref=ref, ctype=self.ref_type(ref))

    def _eval_member(self, expr: A.Member, store: Store, want_lvalue: bool) -> Value:
        if expr.arrow:
            obj = self.eval_rvalue(expr.obj, store)
            self.check_deref(obj, store, expr.location, "arrow", expr)
        else:
            obj = self._eval(expr.obj, store, want_lvalue=True)
        if obj.ref is None:
            return Value.plain()
        ref = (
            obj.ref.arrow(expr.fieldname)
            if expr.arrow
            else obj.ref.dot(expr.fieldname)
        )
        if not want_lvalue:
            self.check_usable(ref, store, expr.location)
        return Value(store.state(ref), ref=ref, ctype=self.ref_type(ref))

    def _eval_index(self, expr: A.Index, store: Store, want_lvalue: bool) -> Value:
        # Indexing an array names its storage without reading the array
        # designator itself; indexing a pointer reads (and dereferences)
        # the pointer value.
        qref = self.resolve_ref_quiet(expr.array, store)
        base_is_array = False
        if qref is not None:
            qtype = self.ref_type(qref)
            base_is_array = qtype is not None and isinstance(
                strip_typedefs(qtype), Array
            )
        arr = self._eval(expr.array, store, want_lvalue=base_is_array)
        self.eval_rvalue(expr.index, store)
        if not base_is_array and arr.ctype is not None and is_pointerish(arr.ctype):
            self.check_deref(arr, store, expr.location, "index", expr)
        if qref is not None and self.flags.enabled("bounds"):
            self._check_index_bounds(qref, expr, store)
        if arr.ref is None:
            return Value.plain()
        ref = arr.ref.index(strict=self.flags.enabled("strictindex"),
                            key=_index_key(expr.index))
        if not want_lvalue:
            self.check_usable(ref, store, expr.location)
        return Value(store.state(ref), ref=ref, ctype=self.ref_type(ref))

    def _index_extent(self, qref: Ref) -> int | None:
        """The known element count of the indexed storage: a constant
        array extent, or a ``/*@size(N)@*/`` annotation on a pointer."""
        qtype = self.ref_type(qref)
        if qtype is not None:
            stripped = strip_typedefs(qtype)
            if isinstance(stripped, Array) and stripped.size is not None:
                return stripped.size
        ann = self.declared_annotations(qref)
        return ann.size_bound

    def _check_index_bounds(self, qref: Ref, expr: A.Index, store: Store) -> None:
        """Out-of-bounds index checking against known extents.

        Only indexes with *known* value information (a constant, or a
        range established by constant assignment, guard refinement or a
        canonical loop bound) can violate: unknown indexes stay silent,
        which keeps the checker quiet on code it cannot reason about.
        """
        extent = self._index_extent(qref)
        if extent is None:
            return
        name = self.describe_ref(qref)
        const = self._const_int(expr.index)
        if const is not None:
            if const < 0 or const >= extent:
                self.reporter.report(
                    MessageCode.ARRAY_BOUNDS, expr.location,
                    f"Likely out-of-bounds access of {name} (index {const}, "
                    f"{extent} elements): {render_expr(expr)}",
                )
            return
        iref = self.resolve_ref_quiet(expr.index, store)
        if iref is None:
            return
        st = store.peek(iref)
        rng = st.rng if st is not None else None
        if rng is None:
            return
        lo, hi = rng
        if lo is not None and hi is not None and lo > hi:
            return  # infeasible: a guard contradicted the known value
        if hi is not None and hi >= extent:
            worst = hi
        elif lo is not None and lo < 0:
            worst = lo
        else:
            return
        self.reporter.report(
            MessageCode.ARRAY_BOUNDS, expr.location,
            f"Possible out-of-bounds access of {name} (index may reach "
            f"{worst}, {extent} elements): {render_expr(expr)}",
        )
        # Assume the access was meant to be in range: forget the range so
        # the same index does not re-report at every later access.
        store.update(iref, lambda s: s.with_range(None))

    def _eval_unary(self, expr: A.Unary, store: Store, want_lvalue: bool) -> Value:
        op = expr.op
        if op == "*":
            operand = self.eval_rvalue(expr.operand, store)
            self.check_deref(operand, store, expr.location, "deref", expr)
            if operand.ref is None:
                return Value.plain()
            ref = operand.ref.deref()
            if not want_lvalue:
                self.check_usable(ref, store, expr.location)
            return Value(store.state(ref), ref=ref, ctype=self.ref_type(ref))
        if op == "&":
            inner = self.eval_lvalue(expr.operand, store)
            return Value(
                RefState(DefState.DEFINED, NullState.NOTNULL, AllocState.STATIC),
                alias_refs=frozenset({inner.ref} if inner.ref else ()),
            )
        if op in ("++", "--", "p++", "p--"):
            target = self.eval_rvalue(expr.operand, store)
            if target.ref is not None:
                # The mutated value no longer matches any recorded range.
                store.update(
                    target.ref,
                    lambda s: s.with_definition(DefState.DEFINED).with_range(None),
                )
            return Value(target.state, ctype=target.ctype)
        if op == "!":
            self.eval_rvalue(expr.operand, store)
            return Value.plain()
        # '-', '+', '~'
        self.eval_rvalue(expr.operand, store)
        return Value.plain()

    def _eval_binary(self, expr: A.Binary, store: Store, want_lvalue: bool) -> Value:
        lhs = self.eval_rvalue(expr.lhs, store)
        rhs = self.eval_rvalue(expr.rhs, store)
        # Pointer arithmetic yields an offset pointer into the same object:
        # it shares the storage but must not carry the release obligation.
        for side in (lhs, rhs):
            if side.ctype is not None and is_pointerish(side.ctype) and expr.op in ("+", "-"):
                offset_state = RefState(
                    side.state.definition, side.state.null, AllocState.DEPENDENT
                )
                return Value(offset_state, ctype=side.ctype)
        return Value.plain()

    def _eval_ternary(self, expr: A.Ternary, store: Store, want_lvalue: bool) -> Value:
        # The condition guards each arm exactly like an if/else:
        # 'p ? *p : 0' evaluates '*p' knowing p is not null (Figure 2's
        # guard recognition, applied at expression granularity).
        true_store, false_store = self.eval_condition(expr.cond, store)
        then = self.eval_rvalue(expr.then, true_store)
        other = self.eval_rvalue(expr.other, false_store)
        merged_store, reports = true_store.merge(false_store)
        self._report_merges(reports, expr.location)
        store.absorb(merged_store)
        merged, _ = then.state.merged(other.state)
        return Value(merged, ctype=then.ctype or other.ctype)

    def _eval_comma(self, expr: A.Comma, store: Store, want_lvalue: bool) -> Value:
        result = Value.plain()
        for item in expr.exprs:
            result = self.eval_rvalue(item, store)
        return result

    def _eval_cast(self, expr: A.Cast, store: Store, want_lvalue: bool) -> Value:
        if is_null_literal(expr.operand):
            return Value.null(expr.to_type)
        inner = self._eval(expr.operand, store, want_lvalue)
        return replace(inner, ctype=expr.to_type)

    def _eval_sizeofexpr(self, expr: A.SizeofExpr, store: Store, want_lvalue: bool) -> Value:
        # sizeof does not evaluate (or need the definedness of) its operand.
        return Value.plain()

    def _eval_sizeoftype(self, expr, store, want_lvalue) -> Value:
        return Value.plain()

    def _eval_call(self, expr: A.Call, store: Store, want_lvalue: bool) -> Value:
        return self.handle_call(expr, store)

    def _eval_assign(self, expr: A.Assign, store: Store, want_lvalue: bool) -> Value:
        return self.handle_assignment(expr, store)

    # -- assignment -----------------------------------------------------------

    def handle_assignment(self, expr: A.Assign, store: Store) -> Value:
        loc = expr.location
        if expr.op != "=":
            # Compound assignment: target is read and written; no pointer
            # obligation semantics (arithmetic on the pointed value).
            self.eval_rvalue(expr.target, store)
            value = self.eval_rvalue(expr.value, store)
            target = self.eval_lvalue(expr.target, store)
            if target.ref is not None:
                store.update(
                    target.ref,
                    lambda s: s.with_definition(DefState.DEFINED).with_range(None),
                )
            return value

        value = self.eval_rvalue(expr.value, store)
        target = self.eval_lvalue(expr.target, store)
        tref = target.ref
        if tref is None:
            return value

        # Observer storage must not be modified through derived references
        # (Appendix B: "Returned storage must not be modified ... by caller").
        if tref.depth > 0:
            for ancestor in tref.ancestors():
                if store.state(ancestor).alloc is AllocState.OBSERVER:
                    self.reporter.report(
                        MessageCode.OBSERVER_MODIFIED, loc,
                        f"Suspect modification of observer storage "
                        f"{self.describe_ref(ancestor)}: {render_expr(expr)}",
                    )
                    break

        if tref.base.kind == "global":
            self.note_global_assignment(tref.base.name, loc)

        equivalents = self.equivalent_refs(tref, store)
        old = store.state(tref)

        self._check_overwrite_leak(tref, old, value, store, loc, expr)
        new_alloc = self._transfer_obligation(tref, value, store, loc, expr)
        new_state = RefState(
            definition=self._assigned_definition(value),
            null=value.state.null,
            alloc=new_alloc,
            rng=value.state.rng,
        )

        self._degrade_or_promote_ancestors(tref, new_state, store, equivalents)

        # Snapshot the source's derived storage and its alias candidates
        # BEFORE mutating the store: after 'x = y', x->f carries y->f's
        # state, and after 'l = l->next' the old target must be named
        # through a stable reference (argl->next), not the rebound l —
        # so the candidates must be computed while l's aliases survive.
        derived_states: list[tuple[Ref, RefState]] = []
        alias_candidates = set(value.alias_refs)
        if value.ref is not None:
            derived_states = [
                (k, st)
                for k, st in store.states.items()
                if value.ref.is_prefix_of(k)
            ]
            alias_candidates |= self.equivalent_refs(value.ref, store)
        alias_candidates = {
            cand
            for cand in alias_candidates
            if cand != tref and not tref.is_prefix_of(cand)
        }

        targets = equivalents if tref.depth > 0 else {tref}
        for target_ref in targets:
            store.kill_derived(target_ref)
            store.set_state(target_ref, new_state)
            if new_state.null.possibly_null():
                store.set_site(target_ref, "null", loc)
        if tref.depth == 0:
            store.clear_aliases(tref)
        if value.ref is not None:
            for target_ref in targets:
                for k, st in derived_states:
                    store.set_state(
                        k.replace_prefix(value.ref, target_ref), st
                    )

        # New aliases: the target now refers to whatever the value did.
        for target_ref in targets:
            for cand in alias_candidates:
                if cand != target_ref:
                    store.add_alias(target_ref, cand)

        return Value(new_state, ref=tref, ctype=target.ctype)

    def _assigned_definition(self, value: Value) -> DefState:
        d = value.state.definition
        if d in (DefState.DEAD, DefState.ERROR):
            return DefState.DEFINED  # already reported at the use
        return d

    def _check_overwrite_leak(
        self,
        tref: Ref,
        old: RefState,
        value: Value,
        store: Store,
        loc: Location,
        expr: A.Assign,
    ) -> None:
        """Paper Figure 4: 'Only storage gname not released before assignment'."""
        if self.flags.gc_mode:
            return
        if not old.alloc.holds_obligation():
            return
        if old.definition in (DefState.UNDEFINED, DefState.DEAD, DefState.ERROR):
            return
        if old.null.definitely_null():
            return  # a null pointer carries no storage to release
        if old.alloc is not AllocState.FRESH and old.null.possibly_null():
            # Annotation-derived only storage that may be null (an unvisited
            # list link, say) may hold no storage at all; storage the frame
            # allocated itself (FRESH) is reported regardless.
            return
        if value.ref is not None and store.aliases.may_alias(tref, value.ref):
            return  # self-assignment through an alias
        name = self.describe_ref(tref)
        ann_word = "only" if old.alloc is not AllocState.FRESH else "fresh"
        subs = []
        site = self.decl_site(tref)
        if site is not None and old.alloc is not AllocState.FRESH:
            subs.append((site, f"Storage {name} becomes only"))
        else:
            alloc_site = store.sites.get((tref, "fresh"))
            if alloc_site is not None:
                subs.append((alloc_site, f"Fresh storage {name} allocated"))
        self.reporter.report(
            MessageCode.LEAK_OVERWRITE, loc,
            f"{ann_word.capitalize()} storage {name} not released before "
            f"assignment: {render_expr(expr)}",
            subs=subs or None,
        )

    def _transfer_obligation(
        self,
        tref: Ref,
        value: Value,
        store: Store,
        loc: Location,
        expr: A.Assign,
    ) -> AllocState:
        """Compute the target's allocation state; apply transfer rules."""
        target_ann = self.effective_alloc_ann(tref)
        tname = self.describe_ref(tref)
        # rendering is only needed when a message fires; keep it lazy
        rendered = _LazyRender(expr)

        def target_obligation_state() -> AllocState:
            if target_ann is AllocAnn.ONLY:
                return AllocState.ONLY
            if target_ann is AllocAnn.OWNED:
                return AllocState.OWNED
            return AllocState.FRESH  # unannotated local takes frame ownership

        rhs_state = value.state
        takes_obligation = (
            target_ann in (AllocAnn.ONLY, AllocAnn.OWNED)
            or (tref.depth == 0 and tref.base.kind == "local" and target_ann is None)
        )

        # Case 1: fresh storage straight from an allocating call.
        if rhs_state.alloc is AllocState.FRESH and value.ref is None:
            if takes_obligation:
                store.set_site(tref, "fresh", loc)
                return target_obligation_state()
            if target_ann in (AllocAnn.TEMP, AllocAnn.DEPENDENT, AllocAnn.SHARED):
                self.reporter.report(
                    MessageCode.BAD_TRANSFER, loc,
                    f"Fresh storage assigned to {target_ann.value} {tname} "
                    f"(obligation to release is lost): {rendered}",
                )
                return AllocState.DEPENDENT
            if not self.flags.gc_mode:
                self.reporter.report(
                    MessageCode.IMPLICIT_TRANSFER, loc,
                    f"Fresh storage assigned to implicitly non-only {tname} "
                    f"(memory leak suspected): {rendered}",
                )
            return AllocState.IMPLICIT

        # Case 2: copying a reference.
        if value.ref is not None:
            src = value.ref
            sname = self.describe_ref(src)
            src_site = self.decl_site(src)
            if rhs_state.alloc.holds_obligation():
                frame_owned = src.depth == 0 and src.base.kind in ("local", "arg")
                # An owning *field* also transfers, but only into another
                # annotated owner ('c->vals = cur->next' moves the link's
                # obligation); reading a field into a plain local borrows.
                if not frame_owned and src.depth > 0 and target_ann in (
                    AllocAnn.ONLY, AllocAnn.OWNED,
                ):
                    src_ann = self.effective_alloc_ann(src)
                    if src_ann in (AllocAnn.ONLY, AllocAnn.OWNED):
                        frame_owned = True
                if takes_obligation and frame_owned:
                    # Obligation transfer by assignment: the source becomes
                    # 'kept' -- satisfied, but still safely usable (paper §5).
                    for src_ref in self.equivalent_refs(src, store):
                        store.update(
                            src_ref, lambda s: s.with_alloc(AllocState.KEPT)
                        )
                    store.set_site(tref, "fresh", loc)
                    return target_obligation_state()
                if takes_obligation and not frame_owned:
                    # Borrowing an external only reference: dependent alias.
                    return AllocState.DEPENDENT
                if target_ann in (AllocAnn.TEMP, AllocAnn.DEPENDENT, AllocAnn.SHARED):
                    return AllocState.DEPENDENT
                return AllocState.DEPENDENT
            if rhs_state.alloc is AllocState.TEMP and target_ann is None and (
                tref.depth > 0 or tref.base.kind == "global"
            ):
                # A temp parameter's callee "may not ... create new
                # external references to this storage" (paper section 4).
                src_declared = self.declared_annotations(src)
                if src_declared.alloc is AllocAnn.TEMP:
                    self.reporter.report(
                        MessageCode.TEMP_ALIAS, loc,
                        f"New external reference {tname} to temp storage "
                        f"{sname}: {rendered}",
                    )
                return AllocState.TEMP
            if rhs_state.alloc is AllocState.TEMP and target_ann in (
                AllocAnn.ONLY, AllocAnn.OWNED,
            ):
                subs = [(src_site, f"Storage {sname} becomes temp")] if src_site else None
                self.reporter.report(
                    MessageCode.TEMP_TO_ONLY, loc,
                    f"Temp storage {sname} assigned to "
                    f"{target_ann.value} {tname}: {rendered}",
                    subs=subs,
                )
                return AllocState.ONLY if target_ann is AllocAnn.ONLY else AllocState.OWNED
            if rhs_state.alloc is AllocState.IMPLICIT and target_ann in (
                AllocAnn.ONLY, AllocAnn.OWNED,
            ):
                self.reporter.report(
                    MessageCode.IMPLICIT_TRANSFER, loc,
                    f"Implicitly temp storage {sname} assigned to "
                    f"{target_ann.value} {tname}: {rendered}",
                )
                return AllocState.ONLY if target_ann is AllocAnn.ONLY else AllocState.OWNED
            if rhs_state.alloc in (AllocState.KEPT, AllocState.DEPENDENT,
                                   AllocState.SHARED, AllocState.STATIC) and target_ann in (
                AllocAnn.ONLY, AllocAnn.OWNED,
            ):
                self.reporter.report(
                    MessageCode.BAD_TRANSFER, loc,
                    f"{rhs_state.alloc.value.capitalize()} storage {sname} "
                    f"assigned to {target_ann.value} {tname}: {rendered}",
                )
                return AllocState.ONLY if target_ann is AllocAnn.ONLY else AllocState.OWNED
            # Plain copy with no obligations involved: mirror source state.
            if rhs_state.alloc in (AllocState.TEMP, AllocState.DEPENDENT,
                                   AllocState.SHARED, AllocState.KEPT,
                                   AllocState.STATIC, AllocState.OBSERVER,
                                   AllocState.REFCOUNTED):
                return rhs_state.alloc
            return AllocState.IMPLICIT

        # Case 3: computed values (arithmetic, null literals, unknown calls).
        if value.null_literal:
            return AllocState.IMPLICIT
        if rhs_state.alloc in (AllocState.DEPENDENT, AllocState.STATIC,
                               AllocState.SHARED, AllocState.TEMP,
                               AllocState.KEPT, AllocState.OBSERVER,
                               AllocState.REFCOUNTED):
            return rhs_state.alloc
        if takes_obligation and target_ann in (AllocAnn.ONLY, AllocAnn.OWNED):
            return target_obligation_state()
        return AllocState.IMPLICIT

    # -- definition-state propagation (paper section 5, Figure 5/6 walk) ---------

    def _degrade_or_promote_ancestors(
        self,
        tref: Ref,
        new_state: RefState,
        store: Store,
        equivalents: set[Ref],
    ) -> None:
        """Propagate definedness changes to base storage.

        Assigning incompletely-defined storage into ``l->next`` makes ``l``
        partially defined; defining ``l->next->this`` promotes an allocated
        ``l->next`` to partially defined. Before a parent's state weakens
        from completely-defined (or strengthens from allocated), its
        immediate children are materialized so their states stay accurate.
        """
        incomplete = new_state.definition in (
            DefState.UNDEFINED, DefState.ALLOCATED, DefState.PARTIAL,
        )
        for base_ref in equivalents:
            for ancestor in base_ref.ancestors():
                st = store.state(ancestor)
                if st.definition is DefState.DEFINED and incomplete:
                    self.materialize_children(ancestor, store)
                    store.set_state(ancestor, st.with_definition(DefState.PARTIAL))
                elif st.definition in (DefState.ALLOCATED, DefState.UNDEFINED):
                    self.materialize_children(ancestor, store)
                    store.set_state(ancestor, st.with_definition(DefState.PARTIAL))

    def equivalent_refs(self, tref: Ref, store: Store) -> set[Ref]:
        """References naming the same location through ancestor aliases.

        For ``l->next`` with ``l`` aliasing ``argl`` and ``argl->next``,
        this yields ``{l->next, argl->next}`` — the propagation the paper
        performs at Figure 6 point 8. The deeper candidate
        ``argl->next->next`` (reached through the alias that a second
        loop iteration would create) is dropped: the paper notes it "may
        alias" but keeps facts only one level deep, which is what makes
        the exit anomaly name ``argl->next->next`` as *undefined* rather
        than chasing an unbounded chain.
        """
        def shortest(aliases: frozenset[Ref]) -> list[Ref]:
            # 'l may alias argl or argl->next': substitute through argl
            # only — argl->next is the deeper-iteration view of the same
            # chain and substituting through it would chase it unboundedly.
            return [
                a
                for a in aliases
                if not any(b.is_prefix_of(a) for b in aliases if b != a)
            ]

        out = {tref}
        out.update(shortest(store.aliases.aliases_of(tref)))
        for ancestor in tref.ancestors():
            for alias in shortest(store.aliases.aliases_of(ancestor)):
                out.add(tref.replace_prefix(ancestor, alias))
        return out
