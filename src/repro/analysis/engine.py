"""Tracing engine: per-point dataflow snapshots (paper section 5).

Section 5 of the paper walks Figure 6's control-flow graph point by
point, narrating the three dataflow values and the alias sets at each
numbered execution point ("At point 7, l may alias argl or argl->next").
:class:`TracingChecker` replays the ordinary checker while recording a
:class:`TracePoint` after every statement, so that walkthrough can be
regenerated for any function — used by ``examples/figure6_walkthrough.py``
and by the deep-fidelity tests that pin the paper's alias sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend import cast as A
from ..frontend.render import render_expr
from ..frontend.source import Location
from .checker import CheckContext, FunctionChecker
from .states import RefState
from .storage import Ref
from .store import Store


@dataclass(frozen=True)
class TracePoint:
    """The analysis state immediately after one statement."""

    index: int
    location: Location | None
    label: str
    unreachable: bool
    states: dict[str, str] = field(default_factory=dict)
    aliases: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def state_of(self, name: str) -> str | None:
        return self.states.get(name)

    def aliases_of(self, name: str) -> tuple[str, ...]:
        return self.aliases.get(name, ())

    def render(self) -> str:
        where = f"{self.location}" if self.location else "<entry>"
        lines = [f"point {self.index} ({where}): {self.label}"]
        for name in sorted(self.states):
            line = f"    {name}: {self.states[name]}"
            if name in self.aliases:
                line += f"  may alias {{{', '.join(self.aliases[name])}}}"
            lines.append(line)
        return "\n".join(lines)


def _label_of(stmt: A.Node) -> str:
    if isinstance(stmt, A.ExprStmt):
        return render_expr(stmt.expr)
    if isinstance(stmt, A.Declaration):
        names = ", ".join(d.name for d in stmt.declarators)
        return f"decl {names}"
    if isinstance(stmt, A.If):
        return f"if ({render_expr(stmt.cond)})"
    if isinstance(stmt, A.While):
        return f"while ({render_expr(stmt.cond)})"
    if isinstance(stmt, A.For):
        return "for (...)"
    if isinstance(stmt, A.Return):
        value = f" {render_expr(stmt.value)}" if stmt.value else ""
        return f"return{value}"
    return type(stmt).__name__


class TracingChecker(FunctionChecker):
    """A FunctionChecker that records a trace point per statement."""

    def __init__(self, ctx: CheckContext, fdef: A.FunctionDef) -> None:
        super().__init__(ctx, fdef)
        self.trace: list[TracePoint] = []

    # -- recording ----------------------------------------------------------

    def _snapshot(self, store: Store, label: str,
                  location: Location | None) -> None:
        states: dict[str, str] = {}
        aliases: dict[str, tuple[str, ...]] = {}
        for ref, state in store.states.items():
            if ref.base.kind not in ("local", "arg", "global"):
                continue
            name = self._trace_name(ref)
            states[name] = self._describe_state(state)
            alias_set = store.aliases.aliases_of(ref)
            if alias_set:
                aliases[name] = tuple(
                    sorted(self._trace_name(a) for a in alias_set)
                )
        self.trace.append(
            TracePoint(
                index=len(self.trace),
                location=location,
                label=label,
                unreachable=store.unreachable,
                states=states,
                aliases=aliases,
            )
        )

    def _trace_name(self, ref: Ref) -> str:
        """Paper-style names: the external view of parameter i is 'argN'."""
        if ref.base.kind == "arg":
            text = f"arg{ref.base.index + 1}"
            for kind, fieldname in ref.path:
                if kind == "arrow":
                    text += f"->{fieldname}"
                elif kind == "dot":
                    text += f".{fieldname}"
                elif kind == "deref":
                    text = f"*{text}"
            return text
        return self.describe_ref(ref)

    @staticmethod
    def _describe_state(state: RefState) -> str:
        return (
            f"{state.definition.value} / {state.null.value} / "
            f"{state.alloc.value}"
        )

    # -- hooks ---------------------------------------------------------------

    def entry_store(self) -> Store:
        store = super().entry_store()
        self._snapshot(store, "Function Entrance", self.fdef.location)
        return store

    def exec_stmt(self, stmt: A.Node, store: Store) -> Store:
        out = super().exec_stmt(stmt, store)
        if not isinstance(stmt, (A.Block, A.EmptyStmt)):
            self._snapshot(
                out, _label_of(stmt), getattr(stmt, "location", None)
            )
        return out

    def check(self) -> None:
        super().check()
        # final point: function exit
        if self.trace:
            last = self.trace[-1]
            self.trace.append(
                TracePoint(
                    index=len(self.trace),
                    location=self.fdef.body.end_location,
                    label="Function Exit",
                    unreachable=last.unreachable,
                    states=dict(last.states),
                    aliases=dict(last.aliases),
                )
            )


def trace_function(ctx: CheckContext, fdef: A.FunctionDef) -> list[TracePoint]:
    """Run the checker over *fdef*, returning its execution-point trace."""
    checker = TracingChecker(ctx, fdef)
    checker.check()
    return checker.trace


def trace_source(source: str, function: str | None = None, flags=None):
    """Convenience: trace a function in a source string.

    Returns ``(trace, messages)``.
    """
    from ..core.api import Checker
    from ..messages.reporter import Reporter

    checker = Checker(flags=flags)
    parsed = checker.parse_unit(source, "<trace>")
    result = checker.check_units([parsed])  # ordinary full check
    assert result.symtab is not None
    fdefs = parsed.unit.functions()
    if function is not None:
        fdefs = [f for f in fdefs if f.name == function]
    if not fdefs:
        raise ValueError(f"no function {function!r} in the source")
    reporter = Reporter(flags=checker.flags)
    ctx = CheckContext(
        symtab=result.symtab, reporter=reporter, flags=checker.flags,
        enum_consts=parsed.enum_consts,
    )
    trace = trace_function(ctx, fdefs[0])
    return trace, reporter.sorted_messages()
