"""Null-guard recognition (paper section 4, Figures 2 and 3).

"Code can check that a possibly-null pointer is not null by using a
simple comparison (e.g., ``x != NULL``) or a function call" annotated
``truenull`` (returns true iff the argument is null) or ``falsenull``
(returns true only if the argument is not null).

:func:`split_condition` produces the per-branch null-state refinements
for a condition expression, handling ``!``, ``&&``, ``||``, comparisons
against NULL, bare pointer tests, and truenull/falsenull predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend import cast as A
from .states import NullState, intersect_range
from .storage import Ref


@dataclass
class GuardFacts:
    """Refinements to apply on one branch of a condition.

    ``facts`` carries null-state refinements (the paper's guards);
    ``ranges`` carries integer interval refinements (``i < n`` facts) for
    the out-of-bounds checker.
    """

    facts: dict[Ref, NullState] = field(default_factory=dict)
    ranges: dict[Ref, tuple[int | None, int | None]] = field(default_factory=dict)

    def add(self, ref: Ref, state: NullState) -> None:
        existing = self.facts.get(ref)
        if existing is None or state is NullState.NOTNULL:
            self.facts[ref] = state

    def add_range(self, ref: Ref, rng: tuple[int | None, int | None]) -> None:
        existing = self.ranges.get(ref)
        merged = intersect_range(existing, rng)
        if merged is not None:
            self.ranges[ref] = merged

    def merge_and(self, other: "GuardFacts") -> "GuardFacts":
        out = GuardFacts(dict(self.facts), dict(self.ranges))
        for ref, st in other.facts.items():
            out.add(ref, st)
        for ref, rng in other.ranges.items():
            out.add_range(ref, rng)
        return out

    @staticmethod
    def empty() -> "GuardFacts":
        return GuardFacts()


def strip_assignments(expr: A.Expr) -> A.Expr:
    """The value of ``(p = e)`` is whatever ``p`` now holds: a guard on
    an assignment expression refines the assignment's *target*. This is
    the ``if ((s = malloc(n)) == NULL)`` idiom."""
    while isinstance(expr, A.Assign) and expr.op == "=":
        expr = expr.target
    return expr


def is_null_literal(expr: A.Expr) -> bool:
    """Recognize NULL: literal 0, '\\0', or a cast of one to a pointer."""
    if isinstance(expr, A.IntLit):
        return expr.value == 0
    if isinstance(expr, A.CharLit):
        return expr.value == 0
    if isinstance(expr, A.Cast):
        return is_null_literal(expr.operand)
    return False


class GuardAnalyzer:
    """Computes (true-branch, false-branch) refinements for a condition.

    The analyzer needs two capabilities from its host checker: resolving
    an expression to a reference, and recognizing truenull/falsenull
    predicate calls. Both are passed in as callables so this module stays
    free of checker dependencies.
    """

    def __init__(self, resolve_ref, null_predicate, const_eval=None) -> None:
        self._resolve_ref = resolve_ref        # (expr) -> Ref | None
        self._null_predicate = null_predicate  # (name) -> 'truenull'|'falsenull'|None
        self._const_eval = const_eval          # (expr) -> int | None

    def _resolve(self, expr: A.Expr) -> Ref | None:
        return self._resolve_ref(strip_assignments(expr))

    def split(self, cond: A.Expr) -> tuple[GuardFacts, GuardFacts]:
        true_facts = GuardFacts.empty()
        false_facts = GuardFacts.empty()
        self._walk(cond, true_facts, false_facts, negated=False)
        return true_facts, false_facts

    def _walk(
        self,
        expr: A.Expr,
        true_facts: GuardFacts,
        false_facts: GuardFacts,
        negated: bool,
    ) -> None:
        if negated:
            true_facts, false_facts = false_facts, true_facts

        if isinstance(expr, A.Unary) and expr.op == "!":
            self._walk(expr.operand, false_facts, true_facts, negated=False)
            return

        if isinstance(expr, A.Binary) and expr.op == "&&":
            # Both conjunct's true-facts hold on the true branch; the false
            # branch learns nothing (either side may have failed).
            lhs_t, _ = self.split(expr.lhs)
            rhs_t, _ = self.split(expr.rhs)
            both = lhs_t.merge_and(rhs_t)
            for ref, st in both.facts.items():
                true_facts.add(ref, st)
            for ref, rng in both.ranges.items():
                true_facts.add_range(ref, rng)
            return

        if isinstance(expr, A.Binary) and expr.op == "||":
            # Both disjunct's false-facts hold on the false branch.
            _, lhs_f = self.split(expr.lhs)
            _, rhs_f = self.split(expr.rhs)
            both = lhs_f.merge_and(rhs_f)
            for ref, st in both.facts.items():
                false_facts.add(ref, st)
            for ref, rng in both.ranges.items():
                false_facts.add_range(ref, rng)
            return

        if isinstance(expr, A.Binary) and expr.op in ("<", "<=", ">", ">="):
            self._relational(expr, true_facts, false_facts)
            return

        if isinstance(expr, A.Binary) and expr.op in ("==", "!="):
            ptr_side: A.Expr | None = None
            if is_null_literal(expr.rhs):
                ptr_side = expr.lhs
            elif is_null_literal(expr.lhs):
                ptr_side = expr.rhs
            if ptr_side is not None:
                ref = self._resolve(ptr_side)
                if ref is not None:
                    if expr.op == "==":  # (p == NULL): true => null
                        true_facts.add(ref, NullState.ISNULL)
                        false_facts.add(ref, NullState.NOTNULL)
                    else:  # (p != NULL): true => not null
                        true_facts.add(ref, NullState.NOTNULL)
                        false_facts.add(ref, NullState.ISNULL)
            ref_const = self._ref_vs_const(expr)
            if ref_const is not None:
                ref, const = ref_const
                if expr.op == "==":  # (i == c): true => i is exactly c
                    true_facts.add_range(ref, (const, const))
                else:                # (i != c): false => i is exactly c
                    false_facts.add_range(ref, (const, const))
            return

        if isinstance(expr, A.Call) and isinstance(expr.func, A.Ident) and expr.args:
            kind = self._null_predicate(expr.func.name)
            ref = self._resolve(expr.args[0])
            if kind is not None and ref is not None:
                if kind == "truenull":  # returns true iff argument is null
                    true_facts.add(ref, NullState.ISNULL)
                    false_facts.add(ref, NullState.NOTNULL)
                else:  # falsenull: returns true only if argument is not null
                    true_facts.add(ref, NullState.NOTNULL)
            return

        # Bare expression used as a truth value: 'if (p)'.
        ref = self._resolve(expr)
        if ref is not None:
            true_facts.add(ref, NullState.NOTNULL)
            false_facts.add(ref, NullState.ISNULL)

    def _ref_vs_const(
        self, expr: A.Binary
    ) -> tuple[Ref, int] | None:
        """Match one side of a comparison to a reference, the other to a
        compile-time integer constant, in either order."""
        if self._const_eval is None:
            return None
        const = self._const_eval(expr.rhs)
        if const is not None:
            ref = self._resolve(expr.lhs)
            if ref is not None:
                return ref, const
        const = self._const_eval(expr.lhs)
        if const is not None:
            ref = self._resolve(expr.rhs)
            if ref is not None:
                return ref, const
        return None

    def _relational(
        self, expr: A.Binary, true_facts: GuardFacts, false_facts: GuardFacts
    ) -> None:
        """Interval refinement for 'i < c' and friends ('i < n' facts)."""
        ref_const = self._ref_vs_const(expr)
        if ref_const is None:
            return
        ref, const = ref_const
        op = expr.op
        if self._const_eval(expr.lhs) is not None:
            # c OP i reads as i FLIP(OP) c.
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        if op == "<":       # i < c
            true_facts.add_range(ref, (None, const - 1))
            false_facts.add_range(ref, (const, None))
        elif op == "<=":    # i <= c
            true_facts.add_range(ref, (None, const))
            false_facts.add_range(ref, (const + 1, None))
        elif op == ">":     # i > c
            true_facts.add_range(ref, (const + 1, None))
            false_facts.add_range(ref, (None, const))
        else:               # i >= c
            true_facts.add_range(ref, (const, None))
            false_facts.add_range(ref, (None, const - 1))
