"""Dataflow value lattices (paper section 5).

Three values are associated with each reference: the *definition state*,
the *null state*, and the *allocation state*. Values merge at confluence
points; when allocation states cannot be sensibly combined (storage
released on only one path, or ``kept`` on one path and ``only`` on the
other as in Figure 5) the merge reports a confluence anomaly and the
state is poisoned with a special error marker, exactly as the paper
describes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..annotations.kinds import AllocAnn, AnnotationSet, DefAnn, NullAnn


class DefState(enum.Enum):
    """How much of the storage reachable from a reference is defined."""

    UNDEFINED = "undefined"      # no value assigned
    ALLOCATED = "allocated"      # points to allocated but undefined storage
    PARTIAL = "partially defined"
    DEFINED = "completely defined"
    DEAD = "dead"                # storage released; reference is dangling
    ERROR = "error"              # poisoned after a confluence anomaly

    def can_use_as_rvalue(self) -> bool:
        return self not in (DefState.UNDEFINED, DefState.DEAD, DefState.ERROR)


#: Lattice order for the merge (weakest assumption wins); DEAD and ERROR are
#: handled specially by :func:`merge_def`.
_DEF_ORDER = {
    DefState.UNDEFINED: 0,
    DefState.ALLOCATED: 1,
    DefState.PARTIAL: 2,
    DefState.DEFINED: 3,
}


class NullState(enum.Enum):
    NOTNULL = "notnull"
    MAYBENULL = "possibly null"
    ISNULL = "null"
    RELNULL = "relnull"
    UNKNOWN = "unknown"

    def possibly_null(self) -> bool:
        return self in (NullState.MAYBENULL, NullState.ISNULL)

    def definitely_null(self) -> bool:
        return self is NullState.ISNULL


class AllocState(enum.Enum):
    """Allocation / sharing state of the storage a reference points to."""

    FRESH = "fresh"            # newly allocated, obligation held locally
    ONLY = "only"              # sole reference with release obligation
    KEEP = "keep"              # parameter annotation: obligation + caller use ok
    KEPT = "kept"              # obligation satisfied; still safely usable
    TEMP = "temp"              # temporary: no new aliases, no release
    OWNED = "owned"            # owns storage shared by dependents
    DEPENDENT = "dependent"    # shares an owned reference's storage
    SHARED = "shared"          # arbitrarily shared; never released
    REFCOUNTED = "refcounted"
    OBSERVER = "observer"      # returned storage that must not be modified
    STATIC = "static"          # static storage: string literals, &globals
    IMPLICIT = "implicit"      # unannotated: no tracked obligation
    DEAD = "dead"              # released or obligation transferred away
    ERROR = "error"            # poisoned after a confluence anomaly

    def holds_obligation(self) -> bool:
        """True if this reference is responsible for releasing the storage."""
        return self in (AllocState.FRESH, AllocState.ONLY, AllocState.OWNED,
                        AllocState.KEEP)

    def may_be_released(self) -> bool:
        """True if passing this to an ``only`` parameter is legitimate."""
        return self.holds_obligation()

    def usable(self) -> bool:
        return self not in (AllocState.DEAD, AllocState.ERROR)


@dataclass(frozen=True)
class MergeAnomaly:
    """A confluence clash detected while merging two states."""

    kind: str        # 'alloc' or 'def'
    left: str
    right: str

    def describe(self, refname: str) -> str:
        return (
            f"Storage {refname} has inconsistent states at merge point: "
            f"{self.left} on one path, {self.right} on the other"
        )


def merge_def(a: DefState, b: DefState) -> tuple[DefState, MergeAnomaly | None]:
    """Combine definition states at a confluence point (weakest assumption)."""
    if a is b:
        return a, None
    if DefState.ERROR in (a, b):
        return DefState.ERROR, None
    if DefState.DEAD in (a, b):
        # Released on one path only: the paper reports this as an anomaly.
        return DefState.ERROR, MergeAnomaly("def", a.value, b.value)
    weakest = a if _DEF_ORDER[a] <= _DEF_ORDER[b] else b
    return weakest, None


def merge_null(a: NullState, b: NullState) -> NullState:
    if a is b:
        return a
    if NullState.UNKNOWN in (a, b):
        return NullState.UNKNOWN
    if NullState.RELNULL in (a, b):
        return NullState.RELNULL
    # Any disagreement among notnull / maybenull / isnull weakens to maybenull.
    return NullState.MAYBENULL


#: Allocation-state pairs that merge cleanly to a combined value.
_ALLOC_COMPATIBLE: dict[frozenset[AllocState], AllocState] = {
    frozenset((AllocState.FRESH, AllocState.ONLY)): AllocState.ONLY,
    frozenset((AllocState.IMPLICIT, AllocState.FRESH)): AllocState.FRESH,
    frozenset((AllocState.IMPLICIT, AllocState.ONLY)): AllocState.ONLY,
    frozenset((AllocState.IMPLICIT, AllocState.TEMP)): AllocState.TEMP,
    frozenset((AllocState.IMPLICIT, AllocState.KEPT)): AllocState.KEPT,
    frozenset((AllocState.IMPLICIT, AllocState.STATIC)): AllocState.IMPLICIT,
    frozenset((AllocState.IMPLICIT, AllocState.DEPENDENT)): AllocState.DEPENDENT,
    frozenset((AllocState.IMPLICIT, AllocState.SHARED)): AllocState.SHARED,
    frozenset((AllocState.TEMP, AllocState.STATIC)): AllocState.TEMP,
    frozenset((AllocState.STATIC, AllocState.KEPT)): AllocState.KEPT,
    frozenset((AllocState.OWNED, AllocState.ONLY)): AllocState.OWNED,
    frozenset((AllocState.DEPENDENT, AllocState.TEMP)): AllocState.DEPENDENT,
    frozenset((AllocState.IMPLICIT, AllocState.OBSERVER)): AllocState.OBSERVER,
    frozenset((AllocState.DEPENDENT, AllocState.OBSERVER)): AllocState.OBSERVER,
    frozenset((AllocState.STATIC, AllocState.OBSERVER)): AllocState.OBSERVER,
    frozenset((AllocState.TEMP, AllocState.OBSERVER)): AllocState.OBSERVER,
}


def merge_alloc(a: AllocState, b: AllocState) -> tuple[AllocState, MergeAnomaly | None]:
    """Combine allocation states; clashing obligations are anomalies.

    The canonical clash is Figure 5: ``kept`` on the true branch (the
    obligation was satisfied) and ``only`` on the false branch (it was
    not) -- "there is no sensible way to combine the allocation states".
    """
    if a is b:
        return a, None
    if AllocState.ERROR in (a, b):
        return AllocState.ERROR, None
    combined = _ALLOC_COMPATIBLE.get(frozenset((a, b)))
    if combined is not None:
        return combined, None
    obligation_clash = a.holds_obligation() != b.holds_obligation()
    if obligation_clash:
        return AllocState.ERROR, MergeAnomaly("alloc", a.value, b.value)
    # Both sides agree about obligations; pick deterministically.
    return min((a, b), key=lambda s: s.value), None


def initial_null(ann: AnnotationSet, is_pointer: bool) -> NullState:
    """Null state implied by annotations at an interface point."""
    if not is_pointer:
        return NullState.NOTNULL
    if ann.null is NullAnn.NULL:
        return NullState.MAYBENULL
    if ann.null is NullAnn.RELNULL:
        return NullState.RELNULL
    return NullState.NOTNULL


def initial_def(ann: AnnotationSet) -> DefState:
    """Definition state implied by annotations at an interface point."""
    if ann.definition is DefAnn.OUT:
        return DefState.ALLOCATED
    if ann.definition is DefAnn.UNDEF:
        return DefState.UNDEFINED
    if ann.definition is DefAnn.PARTIAL:
        return DefState.PARTIAL
    return DefState.DEFINED


_ALLOC_FROM_ANN = {
    AllocAnn.ONLY: AllocState.ONLY,
    AllocAnn.KEEP: AllocState.KEEP,
    AllocAnn.TEMP: AllocState.TEMP,
    AllocAnn.OWNED: AllocState.OWNED,
    AllocAnn.DEPENDENT: AllocState.DEPENDENT,
    AllocAnn.SHARED: AllocState.SHARED,
    AllocAnn.REFCOUNTED: AllocState.REFCOUNTED,
    AllocAnn.KILLREF: AllocState.REFCOUNTED,
}


def initial_alloc(ann: AnnotationSet, default: AllocState = AllocState.IMPLICIT) -> AllocState:
    """Allocation state implied by annotations at an interface point."""
    if ann.alloc is None:
        return default
    return _ALLOC_FROM_ANN[ann.alloc]


# Integer value intervals ``(lo, hi)``: ``None`` at either end means
# unbounded in that direction, and a range of ``None`` means no knowledge
# at all (the common case). Carried by :class:`RefState` for integer
# references so the out-of-bounds checker can compare indexes against
# known array extents.

def merge_range(
    a: tuple[int | None, int | None] | None,
    b: tuple[int | None, int | None] | None,
) -> tuple[int | None, int | None] | None:
    """Confluence of two value ranges: the interval hull (weakest wins)."""
    if a is None or b is None:
        return None
    lo = None if a[0] is None or b[0] is None else min(a[0], b[0])
    hi = None if a[1] is None or b[1] is None else max(a[1], b[1])
    if lo is None and hi is None:
        return None
    return (lo, hi)


def intersect_range(
    a: tuple[int | None, int | None] | None,
    b: tuple[int | None, int | None] | None,
) -> tuple[int | None, int | None] | None:
    """Refinement of a range by a guard fact (strongest wins)."""
    if a is None:
        return b
    if b is None:
        return a
    lo = a[0] if b[0] is None else (b[0] if a[0] is None else max(a[0], b[0]))
    hi = a[1] if b[1] is None else (b[1] if a[1] is None else min(a[1], b[1]))
    return (lo, hi)


@dataclass(frozen=True)
class RefState:
    """The three dataflow values for one reference at one program point.

    ``rng`` is a fourth, optional component: the known integer value
    interval of the reference (constant assignments, guard refinement and
    canonical loop bounds feed it; anything else clears it to ``None``).
    """

    definition: DefState = DefState.DEFINED
    null: NullState = NullState.NOTNULL
    alloc: AllocState = AllocState.IMPLICIT
    rng: tuple[int | None, int | None] | None = None

    def with_definition(self, definition: DefState) -> "RefState":
        return replace(self, definition=definition)

    def with_null(self, null: NullState) -> "RefState":
        return replace(self, null=null)

    def with_alloc(self, alloc: AllocState) -> "RefState":
        return replace(self, alloc=alloc)

    def with_range(
        self, rng: tuple[int | None, int | None] | None
    ) -> "RefState":
        return replace(self, rng=rng)

    def merged(self, other: "RefState") -> tuple["RefState", list[MergeAnomaly]]:
        anomalies: list[MergeAnomaly] = []
        definition, def_anom = merge_def(self.definition, other.definition)
        live: "RefState | None" = None
        if def_anom is not None:
            # Storage released on one path only. That is an anomaly when
            # the live side still holds a release obligation (Figure 5's
            # pattern). If the live side is definitely NULL there is no
            # storage to lose ('if (r != NULL) { ... free(r); }'), and if
            # its obligation was already satisfied (kept / transferred),
            # the combination is simply dead.
            live = other if self.definition is DefState.DEAD else self
            if live.null.definitely_null():
                definition = DefState.DEAD
            elif live.alloc.holds_obligation() or live.alloc is AllocState.TEMP:
                anomalies.append(def_anom)
            else:
                definition = DefState.DEAD
        null = merge_null(self.null, other.null)
        alloc, alloc_anom = merge_alloc(self.alloc, other.alloc)
        if alloc_anom is not None:
            if live is not None and live.null.definitely_null():
                alloc = AllocState.DEAD
            else:
                anomalies.append(alloc_anom)
        rng = merge_range(self.rng, other.rng)
        return RefState(definition, null, alloc, rng), anomalies


def from_annotations(
    ann: AnnotationSet,
    is_pointer: bool,
    default_alloc: AllocState = AllocState.IMPLICIT,
) -> RefState:
    """Interface state for an annotated declaration (function entry rule)."""
    return RefState(
        definition=initial_def(ann),
        null=initial_null(ann, is_pointer),
        alloc=initial_alloc(ann, default_alloc) if is_pointer else AllocState.IMPLICIT,
    )
