"""Explicit control-flow graphs under the paper's execution model.

Figure 6 of the paper shows the control flow graph for ``list_addh``
with numbered execution points. The distinguishing property of LCLint's
model is that **loops have no back edges**: "The while loop is treated
identically to an if statement ... This means the analysis can be done
efficiently without any need to do iteration."

This module builds that graph for any function. The checker itself walks
the AST structurally (which is equivalent for structured programs), so
the CFG serves reporting, visualization (``to_dot``), complexity
statistics for the benchmarks, and as an executable statement of the
model: every CFG this builder produces is a DAG, which the property
tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend import cast as A
from ..frontend.render import render_expr
from ..frontend.source import Location


@dataclass
class CFGNode:
    node_id: int
    kind: str  # 'entry' | 'exit' | 'stmt' | 'decl' | 'branch' | 'merge'
    label: str
    location: Location | None = None
    ast: A.Node | None = None


@dataclass
class CFG:
    """A per-function control-flow graph (always acyclic)."""

    function: str
    nodes: list[CFGNode] = field(default_factory=list)
    edges: list[tuple[int, int, str]] = field(default_factory=list)
    entry: int = 0
    exit: int = 1

    def successors(self, node_id: int) -> list[tuple[int, str]]:
        return [(dst, lbl) for src, dst, lbl in self.edges if src == node_id]

    def predecessors(self, node_id: int) -> list[tuple[int, str]]:
        return [(src, lbl) for src, dst, lbl in self.edges if dst == node_id]

    def node(self, node_id: int) -> CFGNode:
        return self.nodes[node_id]

    @property
    def branch_count(self) -> int:
        return sum(1 for n in self.nodes if n.kind == "branch")

    @property
    def merge_count(self) -> int:
        return sum(1 for n in self.nodes if n.kind == "merge")

    def execution_points(self) -> int:
        """Number of distinct analysis points (nodes reachable from entry)."""
        return len(self.reachable())

    def reachable(self) -> set[int]:
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(dst for dst, _ in self.successors(cur))
        return seen

    def is_acyclic(self) -> bool:
        """True iff the graph has no cycles (it never should)."""
        color: dict[int, int] = {}  # 0 unvisited / 1 in-stack / 2 done

        def visit(node_id: int) -> bool:
            color[node_id] = 1
            for succ, _ in self.successors(node_id):
                state = color.get(succ, 0)
                if state == 1:
                    return False
                if state == 0 and not visit(succ):
                    return False
            color[node_id] = 2
            return True

        return all(
            visit(n.node_id)
            for n in self.nodes
            if color.get(n.node_id, 0) == 0
        )

    def topological_order(self) -> list[int]:
        order: list[int] = []
        seen: set[int] = set()

        def visit(node_id: int) -> None:
            if node_id in seen:
                return
            seen.add(node_id)
            for succ, _ in self.successors(node_id):
                visit(succ)
            order.append(node_id)

        visit(self.entry)
        order.reverse()
        return order

    def path_count(self) -> int:
        """Number of entry->exit paths (the analysis explores all of them)."""
        counts: dict[int, int] = {self.exit: 1}
        for node_id in reversed(self.topological_order()):
            if node_id in counts:
                continue
            succs = self.successors(node_id)
            counts[node_id] = sum(counts.get(dst, 0) for dst, _ in succs)
        return counts.get(self.entry, 0)

    def to_dot(self) -> str:
        lines = [f'digraph "{self.function}" {{']
        for node in self.nodes:
            shape = {
                "entry": "oval", "exit": "oval", "branch": "diamond",
                "merge": "point",
            }.get(node.kind, "box")
            label = node.label.replace('"', '\\"')
            lines.append(
                f'  n{node.node_id} [shape={shape}, label="{label}"];'
            )
        for src, dst, lbl in self.edges:
            attr = f' [label="{lbl}"]' if lbl else ""
            lines.append(f"  n{src} -> n{dst}{attr};")
        lines.append("}")
        return "\n".join(lines)


class CFGBuilder:
    """Builds the loops-as-ifs CFG for one function definition."""

    def __init__(self, fdef: A.FunctionDef) -> None:
        self.fdef = fdef
        self.cfg = CFG(function=fdef.name)
        self._entry = self._new_node("entry", "Function Entrance", fdef.location)
        self._exit = self._new_node("exit", "Function Exit", None)
        self.cfg.entry = self._entry
        self.cfg.exit = self._exit
        self._break_targets: list[list[int]] = []
        self._continue_targets: list[list[int]] = []

    def build(self) -> CFG:
        last = self._stmt(self.fdef.body, self._entry)
        if last is not None:
            self._edge(last, self._exit)
        return self.cfg

    # -- plumbing -----------------------------------------------------------

    def _new_node(
        self, kind: str, label: str, location: Location | None,
        ast: A.Node | None = None,
    ) -> int:
        node = CFGNode(len(self.cfg.nodes), kind, label, location, ast)
        self.cfg.nodes.append(node)
        return node.node_id

    def _edge(self, src: int | None, dst: int, label: str = "") -> None:
        if src is not None:
            self.cfg.edges.append((src, dst, label))

    # -- statement translation ---------------------------------------------------
    # Each _stmt returns the node id control flows out of, or None if the
    # statement never completes normally (return/goto/break/continue).

    def _stmt(self, stmt: A.Node, pred: int | None) -> int | None:
        if pred is None:
            return None
        handler = getattr(self, f"_stmt_{type(stmt).__name__.lower()}", None)
        if handler is not None:
            return handler(stmt, pred)
        label = type(stmt).__name__
        loc = getattr(stmt, "location", None)
        node = self._new_node("stmt", label, loc, stmt)
        self._edge(pred, node)
        return node

    def _stmt_block(self, stmt: A.Block, pred: int | None) -> int | None:
        cur = pred
        for item in stmt.items:
            cur = self._stmt(item, cur)
            if cur is None:
                return None
        return cur

    def _stmt_declaration(self, stmt: A.Declaration, pred: int) -> int:
        names = ", ".join(d.name for d in stmt.declarators)
        node = self._new_node("decl", f"decl {names}", stmt.location, stmt)
        self._edge(pred, node)
        return node

    def _stmt_exprstmt(self, stmt: A.ExprStmt, pred: int) -> int:
        node = self._new_node(
            "stmt", render_expr(stmt.expr), stmt.location, stmt
        )
        self._edge(pred, node)
        return node

    def _stmt_emptystmt(self, stmt: A.EmptyStmt, pred: int) -> int:
        return pred

    def _stmt_if(self, stmt: A.If, pred: int) -> int | None:
        branch = self._new_node(
            "branch", f"if ({render_expr(stmt.cond)})", stmt.location, stmt
        )
        self._edge(pred, branch)
        then_out = self._stmt(stmt.then, branch)
        if then_out == branch:
            # guarantee distinct edges for empty branches
            then_out = self._new_node("stmt", ";", stmt.location)
            self._edge(branch, then_out)
        else:
            self._retag_edge(branch, "true")
        if stmt.orelse is not None:
            else_out = self._stmt(stmt.orelse, branch)
            self._retag_edge(branch, "false")
        else:
            else_out = branch
        if then_out is None and else_out is None:
            return None
        merge = self._new_node("merge", "merge", stmt.location)
        if then_out is not None:
            self._edge(then_out, merge)
        if else_out is not None:
            label = "false" if else_out == branch else ""
            self._edge(else_out, merge, label)
        return merge

    def _retag_edge(self, branch: int, label: str) -> None:
        """Label the most recent edge out of *branch* (true/false arm)."""
        for i in range(len(self.cfg.edges) - 1, -1, -1):
            src, dst, lbl = self.cfg.edges[i]
            if src == branch and not lbl:
                self.cfg.edges[i] = (src, dst, label)
                return

    def _loop(self, cond: A.Expr | None, body: A.Stmt, step: A.Expr | None,
              loc: Location, pred: int) -> int | None:
        """Common loops-as-ifs translation: no back edge (paper section 2)."""
        if cond is not None:
            branch = self._new_node(
                "branch", f"loop ({render_expr(cond)})", loc, None
            )
            self._edge(pred, branch)
        else:
            branch = pred
        self._break_targets.append([])
        self._continue_targets.append([])
        body_out = self._stmt(body, branch)
        if branch != pred:
            self._retag_edge(branch, "true")
        continues = self._continue_targets.pop()
        if step is not None and (body_out is not None or continues):
            step_node = self._new_node("stmt", render_expr(step), loc)
            if body_out is not None:
                self._edge(body_out, step_node)
            for c in continues:
                self._edge(c, step_node, "continue")
            body_out = step_node
            continues = []
        breaks = self._break_targets.pop()
        merge = self._new_node("merge", "loop exit", loc)
        if cond is not None:
            if body_out is not None:
                self._edge(body_out, merge)
            for c in continues:
                self._edge(c, merge, "continue")
            self._edge(branch, merge, "false")
        elif not breaks:
            return None  # 'for(;;)': control never leaves the loop
        for b in breaks:
            self._edge(b, merge, "break")
        return merge

    def _stmt_while(self, stmt: A.While, pred: int) -> int | None:
        return self._loop(stmt.cond, stmt.body, None, stmt.location, pred)

    def _stmt_dowhile(self, stmt: A.DoWhile, pred: int) -> int | None:
        # do-while under the model: the body runs once, the condition is
        # tested, and control leaves (no back edge).
        self._break_targets.append([])
        self._continue_targets.append([])
        body_out = self._stmt(stmt.body, pred)
        breaks = self._break_targets.pop()
        continues = self._continue_targets.pop()
        merge = self._new_node("merge", "loop exit", stmt.location)
        feed = body_out
        if body_out is not None or continues:
            cond_node = self._new_node(
                "branch", f"loop ({render_expr(stmt.cond)})", stmt.location
            )
            if body_out is not None:
                self._edge(body_out, cond_node)
            for c in continues:
                self._edge(c, cond_node, "continue")
            self._edge(cond_node, merge, "false")
            feed = cond_node
        for b in breaks:
            self._edge(b, merge, "break")
        if feed is None and not breaks:
            return None
        return merge

    def _stmt_for(self, stmt: A.For, pred: int) -> int | None:
        cur: int | None = pred
        if stmt.init is not None:
            cur = self._stmt(stmt.init, cur)
        if cur is None:
            return None
        return self._loop(stmt.cond, stmt.body, stmt.step, stmt.location, cur)

    def _stmt_switch(self, stmt: A.Switch, pred: int) -> int | None:
        branch = self._new_node(
            "branch", f"switch ({render_expr(stmt.cond)})", stmt.location, stmt
        )
        self._edge(pred, branch)
        self._break_targets.append([])
        self._continue_targets.append([])
        merge = self._new_node("merge", "switch exit", stmt.location)
        body = stmt.body
        has_default = False
        if isinstance(body, A.Block):
            cur: int | None = None
            for item in body.items:
                if isinstance(item, A.Case):
                    case_node = self._new_node(
                        "stmt",
                        "default:" if item.value is None
                        else f"case {render_expr(item.value)}:",
                        item.location, item,
                    )
                    if item.value is None:
                        has_default = True
                    self._edge(branch, case_node, "case")
                    if cur is not None:
                        self._edge(cur, case_node, "fallthrough")
                    cur = self._stmt(item.body, case_node)
                else:
                    cur = self._stmt(item, cur) if cur is not None else None
            if cur is not None:
                self._edge(cur, merge)
        else:
            out = self._stmt(body, branch)
            if out is not None:
                self._edge(out, merge)
        breaks = self._break_targets.pop()
        self._continue_targets.pop()
        for b in breaks:
            self._edge(b, merge, "break")
        if not has_default:
            self._edge(branch, merge, "no case")
        return merge

    def _stmt_case(self, stmt: A.Case, pred: int) -> int | None:
        return self._stmt(stmt.body, pred)

    def _stmt_break(self, stmt: A.Break, pred: int) -> None:
        if self._break_targets:
            self._break_targets[-1].append(pred)
        return None

    def _stmt_continue(self, stmt: A.Continue, pred: int) -> None:
        if self._continue_targets:
            self._continue_targets[-1].append(pred)
        return None

    def _stmt_return(self, stmt: A.Return, pred: int) -> None:
        label = "return" if stmt.value is None else f"return {render_expr(stmt.value)}"
        node = self._new_node("stmt", label, stmt.location, stmt)
        self._edge(pred, node)
        self._edge(node, self.cfg.exit)
        return None

    def _stmt_goto(self, stmt: A.Goto, pred: int) -> None:
        node = self._new_node("stmt", f"goto {stmt.label}", stmt.location, stmt)
        self._edge(pred, node)
        # Structured model: gotos leave the graph (no label-resolution edge).
        return None

    def _stmt_label(self, stmt: A.Label, pred: int | None) -> int | None:
        node = self._new_node("stmt", f"{stmt.name}:", stmt.location, stmt)
        if pred is not None:
            self._edge(pred, node)
        return self._stmt(stmt.body, node)


def build_cfg(fdef: A.FunctionDef) -> CFG:
    """Build the loops-as-ifs control-flow graph for a function."""
    return CFGBuilder(fdef).build()
