"""The per-function checker (paper sections 2 and 5).

"Each procedure is checked independently, but using more detailed
interface information than is normally available." When a function body
is checked, annotations on its parameters and the globals it uses are
assumed true on entry; at every return point the function must satisfy
the constraints implied by the annotations on its return value,
parameters, and globals.

Loops are analyzed as conditionals (zero or one iterations, no back
edges) and every predicate may be true or false — the paper's explicit
simplifying assumptions. The checker is intentionally neither sound nor
complete; it is tuned to report likely bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..annotations.kinds import (
    EMPTY_ANNOTATIONS,
    AllocAnn,
    AnnotationSet,
    DefAnn,
)
from ..flags.registry import DEFAULT_FLAGS, Flags
from ..frontend import cast as A
from ..frontend.ctypes import (
    CType,
    FunctionType,
    Pointer,
    Primitive,
    StructType,
    TypedefType,
    is_pointerish,
    pointee_type,
    strip_typedefs,
    struct_fields,
)
from ..frontend.render import render_expr
from ..frontend.source import Location
from ..frontend.symtab import FunctionSignature, GlobalVariable, SymbolTable
from ..messages.message import MessageCode
from ..messages.reporter import Reporter
from .calls import CallMixin
from .guards import GuardAnalyzer
from .states import (
    AllocState,
    DefState,
    NullState,
    RefState,
    from_annotations,
    intersect_range,
)
from .storage import Ref
from .store import MergeReport, Store
from .transfer import ExprMixin, Value

#: Recursion bound for walking derived storage of recursive data types.
MAX_DERIVATION_DEPTH = 4


@dataclass
class LocalInfo:
    ctype: CType
    annotations: AnnotationSet
    location: Location
    param_index: int = -1

    @property
    def is_param(self) -> bool:
        return self.param_index >= 0


@dataclass
class CheckContext:
    """Shared state for checking one translation unit."""

    symtab: SymbolTable
    reporter: Reporter
    flags: Flags = field(default_factory=lambda: DEFAULT_FLAGS)
    enum_consts: dict[str, int] = field(default_factory=dict)


class FunctionChecker(ExprMixin, CallMixin):
    """Checks one function body against its interface annotations."""

    def __init__(self, ctx: CheckContext, fdef: A.FunctionDef) -> None:
        self.ctx = ctx
        self.fdef = fdef
        self.reporter = ctx.reporter
        self.flags = ctx.flags
        self.sig = ctx.symtab.function(fdef.name)
        # Check the body against the *interface* annotations: a prototype
        # or .lcl specification may annotate parameters the definition
        # leaves bare (the symbol table merged them into the signature).
        if self.sig is not None:
            merged_params: list[A.ParamDecl] = []
            for i, param in enumerate(fdef.params):
                anns = param.annotations
                if i < len(self.sig.params):
                    anns = anns.merged_under(self.sig.params[i].annotations)
                merged_params.append(
                    A.ParamDecl(param.location, name=param.name,
                                ctype=param.ctype, annotations=anns)
                )
            fdef = A.FunctionDef(
                fdef.location, name=fdef.name, ctype=fdef.ctype,
                params=merged_params, annotations=fdef.annotations,
                body=fdef.body, storage=fdef.storage,
                globals_list=fdef.globals_list or self.sig.globals_list,
                modifies_list=(
                    fdef.modifies_list
                    if fdef.modifies_list is not None
                    else self.sig.modifies_list
                ),
            )
            self.fdef = fdef
        self._scopes: list[dict[str, LocalInfo]] = []
        self._all_locals: dict[str, LocalInfo] = {}
        self._loop_frames: list[tuple[list[Store], list[Store]]] = []
        self.used_globals: set[str] = set()
        self.assigned_globals: dict[str, Location] = {}
        self._guards = GuardAnalyzer(
            resolve_ref=self._guard_resolve,
            null_predicate=self._null_predicate,
            const_eval=self._const_int,
        )
        self._guard_store: Store | None = None

    # ------------------------------------------------------------------
    # StateEnv protocol (store materialization)
    # ------------------------------------------------------------------

    def base_default(self, ref: Ref) -> RefState:
        kind = ref.base.kind
        if kind == "arg":
            param = self._param(ref.base.index)
            if param is None:
                return RefState()
            ann = self._with_typedef(param.annotations, param.ctype)
            pointer = is_pointerish(param.ctype)
            return from_annotations(
                ann, pointer,
                default_alloc=AllocState.TEMP if pointer else AllocState.IMPLICIT,
            )
        if kind == "local":
            info = self._all_locals.get(ref.base.name)
            if info is not None and info.is_param:
                return self.base_default(Ref.arg(info.param_index, ref.base.name))
            return RefState(DefState.UNDEFINED, NullState.NOTNULL, AllocState.IMPLICIT)
        if kind == "global":
            gvar = self.global_decl(ref.base.name)
            if gvar is None:
                return RefState()
            ann = self._with_typedef(gvar.annotations, gvar.ctype)
            pointer = is_pointerish(gvar.ctype)
            state = from_annotations(ann, pointer)
            if pointer and ann.alloc is None and self.flags.implicit_only:
                state = state.with_alloc(AllocState.ONLY)
            return state
        return RefState()

    def derived_default(self, ref: Ref, parent: RefState) -> RefState:
        ann = self.declared_annotations(ref)
        ctype = self.ref_type(ref)
        pointer = ctype is not None and is_pointerish(ctype)
        definition = {
            DefState.DEFINED: DefState.DEFINED,
            DefState.ALLOCATED: DefState.UNDEFINED,
            DefState.PARTIAL: DefState.UNDEFINED,
            DefState.UNDEFINED: DefState.UNDEFINED,
            DefState.DEAD: DefState.DEAD,
            DefState.ERROR: DefState.ERROR,
        }[parent.definition]
        state = from_annotations(ann, pointer)
        if ann.definition in (DefAnn.RELDEF, DefAnn.PARTIAL) and definition in (
            DefState.UNDEFINED, DefState.ALLOCATED,
        ):
            definition = DefState.DEFINED  # relaxed: assumed defined at uses
        state = state.with_definition(definition)
        if pointer and ann.alloc is None:
            last = ref.path[-1][0]
            effective = self.effective_alloc_ann(ref)
            if effective is AllocAnn.ONLY:
                state = state.with_alloc(AllocState.ONLY)
            elif effective is AllocAnn.OWNED:
                state = state.with_alloc(AllocState.OWNED)
            elif last in ("arrow", "dot") and self.flags.implicit_only:
                state = state.with_alloc(AllocState.ONLY)
            elif parent.alloc in (AllocState.TEMP, AllocState.DEPENDENT,
                                  AllocState.SHARED):
                # storage reached through borrowed references is borrowed
                state = state.with_alloc(AllocState.DEPENDENT)
        return state

    # ------------------------------------------------------------------
    # Host services used by the mixins
    # ------------------------------------------------------------------

    def resolve_name(self, name: str) -> tuple[str, object]:
        for scope in reversed(self._scopes):
            if name in scope:
                return "local", scope[name]
        if name in self.ctx.enum_consts:
            return "enum", self.ctx.enum_consts[name]
        if self.ctx.symtab.function(name) is not None:
            return "func", self.ctx.symtab.function(name)
        if self.ctx.symtab.global_var(name) is not None:
            return "global", self.ctx.symtab.global_var(name)
        return "unknown", None

    def signature(self, name: str) -> FunctionSignature | None:
        return self.ctx.symtab.function(name)

    def global_decl(self, name: str) -> GlobalVariable | None:
        return self.ctx.symtab.global_var(name)

    def note_global_use(self, name: str) -> None:
        self.used_globals.add(name)

    def note_global_assignment(self, name: str, loc: Location) -> None:
        self.used_globals.add(name)
        self.assigned_globals.setdefault(name, loc)

    def param_annotations(self, index: int) -> AnnotationSet | None:
        param = self._param(index)
        return param.annotations if param is not None else None

    def param_index_of_local(self, name: str) -> int | None:
        info = self._all_locals.get(name)
        if info is not None and info.is_param:
            return info.param_index
        return None

    def _param(self, index: int):
        if 0 <= index < len(self.fdef.params):
            return self.fdef.params[index]
        return None

    def _base_decl(self, ref: Ref) -> tuple[CType | None, AnnotationSet, Location | None]:
        kind = ref.base.kind
        if kind == "local":
            info = self._all_locals.get(ref.base.name)
            if info is None:
                return None, EMPTY_ANNOTATIONS, None
            return info.ctype, info.annotations, info.location
        if kind == "arg":
            param = self._param(ref.base.index)
            if param is None:
                return None, EMPTY_ANNOTATIONS, None
            return param.ctype, param.annotations, param.location
        if kind == "global":
            gvar = self.global_decl(ref.base.name)
            if gvar is None:
                return None, EMPTY_ANNOTATIONS, None
            return gvar.ctype, gvar.annotations, gvar.location
        return None, EMPTY_ANNOTATIONS, None

    def _walk_path(self, ref: Ref) -> tuple[CType | None, AnnotationSet]:
        """Type and declared annotations at the end of a reference path."""
        ctype, ann, _ = self._base_decl(ref)
        if ctype is None:
            return None, EMPTY_ANNOTATIONS
        ann = self._with_typedef(ann, ctype)
        for kind, fieldname in ref.path:
            actual = strip_typedefs(ctype)
            if kind in ("arrow", "deref", "index"):
                target = actual.pointee()
                if target is None:
                    return None, EMPTY_ANNOTATIONS
                if kind == "arrow":
                    fld = self._field(target, fieldname)
                    if fld is None:
                        return None, EMPTY_ANNOTATIONS
                    ctype = fld.ctype
                    ann = self._with_typedef(fld.annotations, fld.ctype)
                else:
                    ctype = target
                    ann = self._with_typedef(EMPTY_ANNOTATIONS, ctype)
            elif kind == "dot":
                fld = self._field(actual, fieldname)
                if fld is None:
                    return None, EMPTY_ANNOTATIONS
                ctype = fld.ctype
                ann = self._with_typedef(fld.annotations, fld.ctype)
        return ctype, ann

    @staticmethod
    def _field(ctype: CType, name: str):
        actual = strip_typedefs(ctype)
        if isinstance(actual, StructType):
            return actual.field_named(name)
        return None

    @staticmethod
    def _with_typedef(ann: AnnotationSet, ctype: CType) -> AnnotationSet:
        """Merge typedef-level annotations beneath declaration-level ones."""
        seen = 0
        while isinstance(ctype, TypedefType):
            ann = ann.merged_under(ctype.annotations)
            ctype = ctype.actual
            seen += 1
            if seen > 16:
                break
        return ann

    def ref_type(self, ref: Ref) -> CType | None:
        ctype, _ = self._walk_path(ref)
        return ctype

    def declared_annotations(self, ref: Ref) -> AnnotationSet:
        _, ann = self._walk_path(ref)
        return ann

    def effective_alloc_ann(self, ref: Ref) -> AllocAnn | None:
        ann = self.declared_annotations(ref)
        if ann.alloc is not None:
            return ann.alloc
        ctype = self.ref_type(ref)
        if ctype is None or not is_pointerish(ctype):
            return None
        # Elements of an array-typed field inherit the field's ownership:
        # 'only entry buckets[N]' means each bucket link is owning.
        if ref.depth > 0 and ref.path[-1][0] in ("deref", "index"):
            parent = ref.parent()
            if parent is not None and parent.path and parent.path[-1][0] in (
                "arrow", "dot",
            ):
                parent_type = self.ref_type(parent)
                from ..frontend.ctypes import Array

                if parent_type is not None and isinstance(
                    strip_typedefs(parent_type), Array
                ):
                    return self.effective_alloc_ann(parent)
        if not self.flags.implicit_only:
            return None
        if ref.depth == 0 and ref.base.kind == "global":
            return AllocAnn.ONLY
        if ref.depth > 0 and ref.path[-1][0] in ("arrow", "dot"):
            return AllocAnn.ONLY
        return None

    def effective_return_annotations(self, sig: FunctionSignature) -> AnnotationSet:
        ann = sig.ret_annotations
        if (
            ann.alloc is None
            and self.flags.implicit_only
            and is_pointerish(sig.ret_type)
            and ann.exposure is None
            and not any(p.annotations.returned for p in sig.params)
            and not ann.truenull
            and not ann.falsenull
        ):
            ann = ann.with_alloc(AllocAnn.ONLY)
        return ann

    def decl_site(self, ref: Ref) -> Location | None:
        _, _, loc = self._base_decl(ref)
        return loc

    def describe_ref(self, ref: Ref) -> str:
        text = ref.base.describe()
        if ref.base.kind == "arg":
            param = self._param(ref.base.index)
            if param is not None and param.name:
                text = param.name
        for kind, fieldname in ref.path:
            if kind == "arrow":
                text += f"->{fieldname}"
            elif kind == "dot":
                text += f".{fieldname}"
            elif kind == "deref":
                text = f"*{text}"
            else:
                text += "[]"
        return text

    # -- guard support -------------------------------------------------------

    def _guard_resolve(self, expr: A.Expr) -> Ref | None:
        assert self._guard_store is not None
        return self.resolve_ref_quiet(expr, self._guard_store)

    def _null_predicate(self, name: str) -> str | None:
        sig = self.signature(name)
        if sig is None:
            return None
        if sig.ret_annotations.truenull:
            return "truenull"
        if sig.ret_annotations.falsenull:
            return "falsenull"
        return None

    def _const_int(self, expr: A.Expr) -> int | None:
        """Compile-time integer value of an expression, if known."""
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.CharLit):
            return expr.value
        if isinstance(expr, A.Unary) and expr.op == "-":
            inner = self._const_int(expr.operand)
            return -inner if inner is not None else None
        if isinstance(expr, A.Cast):
            return self._const_int(expr.operand)
        if isinstance(expr, A.Ident):
            kind, info = self.resolve_name(expr.name)
            if kind == "enum" and isinstance(info, int):
                return info
        return None

    # ------------------------------------------------------------------
    # Derived-storage helpers
    # ------------------------------------------------------------------

    def children_of(self, ref: Ref) -> list[Ref]:
        """Immediate derived references (for completeness walking)."""
        if ref.depth >= MAX_DERIVATION_DEPTH:
            return []
        ctype = self.ref_type(ref)
        if ctype is None:
            return []
        actual = strip_typedefs(ctype)
        out: list[Ref] = []
        if is_pointerish(actual):
            target = strip_typedefs(actual.pointee() or Primitive("void"))
            if isinstance(target, StructType) and target.fields:
                out.extend(ref.arrow(f.name) for f in target.fields)
            elif isinstance(target, Primitive) and target.is_void:
                pass
            elif isinstance(target, FunctionType):
                pass
            else:
                out.append(ref.deref())
        elif isinstance(actual, StructType) and actual.fields:
            out.extend(ref.dot(f.name) for f in actual.fields)
        return out

    def materialize_children(self, ref: Ref, store: Store) -> None:
        for child in self.children_of(ref):
            store.state(child)

    def find_undefined(self, ref: Ref | None, store: Store) -> Ref | None:
        """First reference reachable from *ref* that is not defined."""
        if ref is None:
            return None
        return self._find_undefined(ref, store, depth=0)

    def _find_undefined(self, ref: Ref, store: Store, depth: int) -> Ref | None:
        if depth > MAX_DERIVATION_DEPTH:
            return None
        ann = self.declared_annotations(ref)
        if ann.definition in (DefAnn.PARTIAL, DefAnn.RELDEF):
            return None  # relaxed definition checking (paper section 4)
        if ann.definition is DefAnn.OUT and depth > 0:
            # An out *field* need not be defined; an out parameter must be
            # completely defined by the time the function returns.
            return None
        st = store.state(ref)
        if st.definition is DefState.UNDEFINED:
            return ref
        if st.definition is DefState.DEFINED or st.definition in (
            DefState.DEAD, DefState.ERROR,
        ):
            return None
        if st.null.definitely_null():
            return None  # NULL is completely defined (paper section 3)
        if self._type_is_partial(ref):
            return None  # the type itself permits undefined fields
        for child in self.children_of(ref):
            found = self._find_undefined(child, store, depth + 1)
            if found is not None:
                return found
        return None

    def _type_is_partial(self, ref: Ref) -> bool:
        """True if the ref's *type* (typedef chain) is declared partial.

        Declaration-level annotations (``out``) override typedef-level ones
        in the merged view, so the typedef chain is consulted directly.
        """
        ctype = self.ref_type(ref)
        seen = 0
        while isinstance(ctype, TypedefType):
            if ctype.annotations.definition in (DefAnn.PARTIAL, DefAnn.RELDEF):
                return True
            ctype = ctype.actual
            seen += 1
            if seen > 16:
                break
        return False

    # ------------------------------------------------------------------
    # Entry, body, exit
    # ------------------------------------------------------------------

    def check(self) -> None:
        store = self.entry_store()
        self._scopes.append(self._param_scope())
        out = self.exec_stmt(self.fdef.body, store)
        self._scopes.pop()
        if not out.unreachable:
            loc = self.fdef.body.end_location or self.fdef.location
            self.check_exit(out, loc, None)
        self._check_modifies()

    def _check_modifies(self) -> None:
        """LCL modifies clauses: a specified function may only change the
        globals its clause lists ('modifies nothing' lists none)."""
        allowed = self.fdef.modifies_list
        if allowed is None:
            return
        allowed_set = set(allowed)
        for name, loc in sorted(self.assigned_globals.items()):
            if name in allowed_set:
                continue
            self.reporter.report(
                MessageCode.MODIFIES, loc,
                f"Undocumented modification of global {name} "
                f"(not listed in the modifies clause of {self.fdef.name})",
            )

    def _param_scope(self) -> dict[str, LocalInfo]:
        scope: dict[str, LocalInfo] = {}
        for i, param in enumerate(self.fdef.params):
            if param.name is None:
                continue
            info = LocalInfo(param.ctype, param.annotations, param.location, i)
            scope[param.name] = info
            self._all_locals[param.name] = info
        return scope

    def entry_store(self) -> Store:
        store = Store(self)
        for i, param in enumerate(self.fdef.params):
            if param.name is None:
                continue
            aref = Ref.arg(i, param.name)
            lref = Ref.local(param.name)
            state = self.base_default(aref)
            store.set_state(aref, state)
            store.set_state(lref, state)
            if is_pointerish(param.ctype):
                # The local names the same storage the caller passed; a
                # by-value aggregate is a fresh copy and must not alias
                # the external argument.
                store.add_alias(aref, lref)
        for guse in self.fdef.globals_list:
            gref = Ref.global_(guse.name)
            self.note_global_use(guse.name)
            state = self.base_default(gref)
            if guse.undef:
                state = state.with_definition(DefState.UNDEFINED)
            store.set_state(gref, state)
        return store

    # -- statements -----------------------------------------------------------

    def exec_stmt(self, stmt: A.Node, store: Store) -> Store:
        if store.unreachable:
            return store
        method = getattr(self, f"_exec_{type(stmt).__name__.lower()}", None)
        if method is None:
            return store
        return method(stmt, store)

    def _exec_block(self, stmt: A.Block, store: Store) -> Store:
        self._scopes.append({})
        for item in stmt.items:
            store = self.exec_stmt(item, store)
        scope = self._scopes.pop()
        if not store.unreachable:
            self._check_scope_leaks(
                scope, store, stmt.end_location or stmt.location
            )
        for name in scope:
            ref = Ref.local(name)
            store.kill_derived(ref)
            store.drop_state(ref)
            store.clear_aliases(ref)
        return store

    def _exec_declaration(self, decl: A.Declaration, store: Store) -> Store:
        for dtor in decl.declarators:
            if dtor.name is None or decl.is_typedef:
                continue
            actual = strip_typedefs(dtor.ctype)
            if isinstance(actual, FunctionType):
                continue
            info = LocalInfo(dtor.ctype, dtor.annotations, dtor.location)
            self._scopes[-1][dtor.name] = info
            self._all_locals[dtor.name] = info
            ref = Ref.local(dtor.name)
            store.kill_derived(ref)
            store.clear_aliases(ref)
            if dtor.init is None:
                if decl.storage == "static":
                    store.set_state(ref, RefState())  # statics are zeroed
                else:
                    store.set_state(
                        ref,
                        RefState(DefState.UNDEFINED, NullState.NOTNULL,
                                 AllocState.IMPLICIT),
                    )
            elif isinstance(dtor.init, A.InitList):
                for item in dtor.init.items:
                    self.eval_rvalue(item, store)
                store.set_state(ref, RefState())
            else:
                store.set_state(
                    ref,
                    RefState(DefState.UNDEFINED, NullState.NOTNULL,
                             AllocState.IMPLICIT),
                )
                assign = A.Assign(
                    dtor.location, op="=",
                    target=A.Ident(dtor.location, name=dtor.name),
                    value=dtor.init,
                )
                self.handle_assignment(assign, store)
        return store

    def _exec_exprstmt(self, stmt: A.ExprStmt, store: Store) -> Store:
        expr = stmt.expr
        if (
            isinstance(expr, A.Call)
            and isinstance(expr.func, A.Ident)
            and expr.func.name in ("assert", "Assert", "llassert")
            and len(expr.args) == 1
        ):
            # assert(e): continue with e's true-branch refinements.
            true_store, _ = self.eval_condition(expr.args[0], store)
            return true_store
        value = self.eval_rvalue(expr, store)
        if (
            self.flags.enabled("retvalother")
            and isinstance(expr, A.Call)
            and isinstance(expr.func, A.Ident)
            and value.ctype is not None
            and not (
                isinstance(strip_typedefs(value.ctype), Primitive)
                and strip_typedefs(value.ctype).is_void  # type: ignore[union-attr]
            )
        ):
            self.reporter.report(
                MessageCode.RET_VAL_IGNORED, stmt.location,
                f"Return value (type {value.ctype}) ignored: "
                f"{render_expr(expr)}",
            )
        if (
            value.state.alloc is AllocState.FRESH
            and value.ref is None
            and not value.alias_refs  # result aliases a tracked argument
            and not self.flags.gc_mode
        ):
            called = value.fresh_call or "call"
            self.reporter.report(
                MessageCode.LEAK_RESULT, stmt.location,
                f"Fresh storage (result of {called}) not released "
                f"(memory leak): {render_expr(expr)}",
            )
        return store

    def _exec_emptystmt(self, stmt: A.EmptyStmt, store: Store) -> Store:
        return store

    def _exec_if(self, stmt: A.If, store: Store) -> Store:
        true_store, false_store = self.eval_condition(stmt.cond, store)
        out_true = self.exec_stmt(stmt.then, true_store)
        out_false = (
            self.exec_stmt(stmt.orelse, false_store)
            if stmt.orelse is not None
            else false_store
        )
        merged, reports = out_true.merge(out_false)
        self._report_merges(reports, stmt.location)
        return merged

    def _exec_while(self, stmt: A.While, store: Store) -> Store:
        return self._exec_loop(stmt.cond, stmt.body, None, store, stmt.location)

    def _exec_for(self, stmt: A.For, store: Store) -> Store:
        if stmt.init is not None:
            store = self.exec_stmt(stmt.init, store)
        widen = self._loop_widen_plan(stmt, store)
        return self._exec_loop(stmt.cond, stmt.body, stmt.step, store,
                               stmt.location, widen=widen)

    def _loop_widen_plan(
        self, stmt: A.For, store: Store
    ) -> tuple[Ref, int, int] | None:
        """Recognize the canonical counting loop ``for (i = lo; i < C; i++)``.

        Although loops run zero-or-one times in the analysis model, the
        counter of a canonical loop is known to span the whole interval
        ``[lo, C)`` inside the body — exactly the fact the out-of-bounds
        checker needs to judge ``a[i]`` against a constant bound. Returns
        ``(counter_ref, lo, hi)`` (inclusive) or ``None``.
        """
        cond = stmt.cond
        if not (isinstance(cond, A.Binary) and cond.op in ("<", "<=")):
            return None
        if not isinstance(cond.lhs, A.Ident):
            return None
        bound = self._const_int(cond.rhs)
        if bound is None:
            return None
        name = cond.lhs.name
        kind, _ = self.resolve_name(name)
        if kind != "local":
            return None
        if not self._is_unit_increment(stmt.step, name):
            return None
        ref = Ref.local(name)
        st = store.peek(ref)
        if st is None or st.rng is None or st.rng[0] is None:
            return None
        lo = st.rng[0]
        hi = bound - 1 if cond.op == "<" else bound
        if lo > hi:
            return None  # loop body never runs with a feasible counter
        return ref, lo, hi

    @staticmethod
    def _is_unit_increment(step: A.Expr | None, name: str) -> bool:
        """Match ``i++`` / ``++i`` / ``i += 1`` / ``i = i + 1``."""
        def is_counter(expr: A.Expr) -> bool:
            return isinstance(expr, A.Ident) and expr.name == name

        if isinstance(step, A.Unary) and step.op in ("++", "p++"):
            return is_counter(step.operand)
        if isinstance(step, A.Assign) and is_counter(step.target):
            if step.op == "+=":
                return isinstance(step.value, A.IntLit) and step.value.value == 1
            if step.op == "=" and isinstance(step.value, A.Binary) and (
                step.value.op == "+"
            ):
                one, other = step.value.rhs, step.value.lhs
                if not (isinstance(one, A.IntLit) and one.value == 1):
                    one, other = step.value.lhs, step.value.rhs
                return (
                    isinstance(one, A.IntLit) and one.value == 1
                    and is_counter(other)
                )
        return False

    def _exec_loop(
        self,
        cond: A.Expr | None,
        body: A.Stmt,
        step: A.Expr | None,
        store: Store,
        loc: Location,
        widen: tuple[Ref, int, int] | None = None,
    ) -> Store:
        """Loops execute zero or one times (paper section 2)."""
        if cond is not None:
            true_store, false_store = self.eval_condition(cond, store)
        else:
            true_store, false_store = store.copy(), store.copy()
            false_store.unreachable = True
        if widen is not None:
            # The counter spans its whole loop interval inside the body;
            # this overrides the entry-value pin the guard facts applied.
            wref, wlo, whi = widen
            true_store.update(wref, lambda s: s.with_range((wlo, whi)))
        self._loop_frames.append(([], []))
        body_out = self.exec_stmt(body, true_store)
        breaks, continues = self._loop_frames.pop()
        for cont in continues:
            body_out, reports = body_out.merge(cont)
            self._report_merges(reports, loc)
        if step is not None and not body_out.unreachable:
            self.eval_rvalue(step, body_out)
        if self.flags.enabled("deepbreak") and not body_out.unreachable:
            # Optional second pass: discovers aliases introduced on the
            # second iteration (the paper notes LCLint misses these).
            if cond is not None:
                second_true, _ = self.eval_condition(cond, body_out)
            else:
                second_true = body_out
            if widen is not None:
                wref, wlo, whi = widen
                second_true.update(wref, lambda s: s.with_range((wlo, whi)))
            self._loop_frames.append(([], []))
            body_out = self.exec_stmt(body, second_true)
            extra_breaks, _ = self._loop_frames.pop()
            breaks = breaks + extra_breaks
            if step is not None and not body_out.unreachable:
                self.eval_rvalue(step, body_out)
        merged, reports = body_out.merge(false_store)
        self._report_merges(reports, loc)
        for brk in breaks:
            merged, reports = merged.merge(brk)
            self._report_merges(reports, loc)
        return merged

    def _exec_dowhile(self, stmt: A.DoWhile, store: Store) -> Store:
        self._loop_frames.append(([], []))
        body_out = self.exec_stmt(stmt.body, store)
        breaks, continues = self._loop_frames.pop()
        for cont in continues:
            body_out, reports = body_out.merge(cont)
            self._report_merges(reports, stmt.location)
        if not body_out.unreachable:
            _, false_store = self.eval_condition(stmt.cond, body_out)
            body_out = false_store
        for brk in breaks:
            body_out, reports = body_out.merge(brk)
            self._report_merges(reports, stmt.location)
        return body_out

    def _exec_switch(self, stmt: A.Switch, store: Store) -> Store:
        self.eval_rvalue(stmt.cond, store)
        body = stmt.body
        if not isinstance(body, A.Block):
            return self.exec_stmt(body, store)
        self._loop_frames.append(([], []))
        current = store.copy()
        current.unreachable = True  # nothing runs before the first label
        has_default = False
        self._scopes.append({})
        for item in body.items:
            if isinstance(item, A.Case):
                entry = store.copy()
                current, reports = current.merge(entry)  # fallthrough + entry
                self._report_merges(reports, item.location)
                if item.value is None:
                    has_default = True
                else:
                    self.eval_rvalue(item.value, current)
                current = self.exec_stmt(item.body, current)
            else:
                current = self.exec_stmt(item, current)
        self._scopes.pop()
        breaks, _ = self._loop_frames.pop()
        result = current
        for brk in breaks:
            result, reports = result.merge(brk)
            self._report_merges(reports, stmt.location)
        if not has_default:
            result, reports = result.merge(store)
            self._report_merges(reports, stmt.location)
        return result

    def _exec_case(self, stmt: A.Case, store: Store) -> Store:
        # A case label outside a switch body block: just run the statement.
        return self.exec_stmt(stmt.body, store)

    def _exec_break(self, stmt: A.Break, store: Store) -> Store:
        if self._loop_frames:
            self._loop_frames[-1][0].append(store.copy())
        out = store.copy()
        out.unreachable = True
        return out

    def _exec_continue(self, stmt: A.Continue, store: Store) -> Store:
        if self._loop_frames:
            self._loop_frames[-1][1].append(store.copy())
        out = store.copy()
        out.unreachable = True
        return out

    def _exec_return(self, stmt: A.Return, store: Store) -> Store:
        value = None
        if stmt.value is not None:
            value = self.eval_rvalue(stmt.value, store)
        self._check_all_scope_leaks(store, stmt.location, value)
        self.check_exit(store, stmt.location, value, ret_expr=stmt.value)
        out = store.copy()
        out.unreachable = True
        return out

    def _exec_goto(self, stmt: A.Goto, store: Store) -> Store:
        # No flow-joining for gotos: the paper's analysis is structured.
        out = store.copy()
        out.unreachable = True
        return out

    def _exec_label(self, stmt: A.Label, store: Store) -> Store:
        # A label makes its statement reachable even if flow was cut.
        if store.unreachable:
            store = store.copy()
            store.unreachable = False
        return self.exec_stmt(stmt.body, store)

    # -- conditions ---------------------------------------------------------------

    def eval_condition(self, cond: A.Expr, store: Store) -> tuple[Store, Store]:
        """Evaluate a condition into (true-branch, false-branch) stores."""
        if isinstance(cond, A.Unary) and cond.op == "!":
            t, f = self.eval_condition(cond.operand, store)
            return f, t
        if isinstance(cond, A.Binary) and cond.op == "&&":
            t1, f1 = self.eval_condition(cond.lhs, store)
            t2, f2 = self.eval_condition(cond.rhs, t1)
            false_store, _ = f1.merge(f2)
            return t2, false_store
        if isinstance(cond, A.Binary) and cond.op == "||":
            t1, f1 = self.eval_condition(cond.lhs, store)
            t2, f2 = self.eval_condition(cond.rhs, f1)
            true_store, _ = t1.merge(t2)
            return true_store, f2
        # Leaf: evaluate for effect, then apply guard refinements.
        self.eval_rvalue(cond, store)
        self._guard_store = store
        true_facts, false_facts = self._guards.split(cond)
        self._guard_store = None
        true_store = store.copy()
        false_store = store.copy()
        for ref, null in true_facts.facts.items():
            true_store.update_with_aliases(ref, lambda s, n=null: s.with_null(n))
        for ref, null in false_facts.facts.items():
            false_store.update_with_aliases(ref, lambda s, n=null: s.with_null(n))
        for ref, rng in true_facts.ranges.items():
            true_store.update(
                ref, lambda s, r=rng: s.with_range(intersect_range(s.rng, r))
            )
        for ref, rng in false_facts.ranges.items():
            false_store.update(
                ref, lambda s, r=rng: s.with_range(intersect_range(s.rng, r))
            )
        return true_store, false_store

    # -- merge reporting -------------------------------------------------------------

    def _report_merges(self, reports: list[MergeReport], loc: Location) -> None:
        seen: set[Ref] = set()
        for report in reports:
            if report.ref in seen:
                continue
            seen.add(report.ref)
            if report.ref.base.kind not in ("local", "arg", "global"):
                continue
            name = self.describe_ref(report.ref)
            self.reporter.report(
                MessageCode.CONFLUENCE, loc,
                f"Storage {name} has inconsistent states on alternate "
                f"paths: {report.anomaly.left} on one branch, "
                f"{report.anomaly.right} on the other",
            )

    # -- leaks at scope exit -------------------------------------------------------

    def _check_scope_leaks(
        self, scope: dict[str, LocalInfo], store: Store, loc: Location,
        ret_value: Value | None = None,
    ) -> None:
        if self.flags.gc_mode:
            return
        excluded: set[Ref] = set()
        if ret_value is not None and ret_value.ref is not None:
            excluded |= store.aliases.closure(ret_value.ref)
        for name, info in scope.items():
            ref = Ref.local(name)
            if ref in excluded:
                continue
            st = store.peek(ref)
            if st is None:
                continue
            if st.alloc is not AllocState.FRESH:
                continue
            if st.null.definitely_null():
                continue
            if st.definition in (DefState.DEAD, DefState.ERROR):
                continue
            if any(
                alias.base.kind in ("arg", "global")
                for alias in store.aliases.aliases_of(ref)
            ):
                continue  # storage still reachable through external refs
            subs = None
            site = store.sites.get((ref, "fresh"))
            if site is not None:
                subs = [(site, f"Fresh storage {name} allocated")]
            self.reporter.report(
                MessageCode.LEAK_SCOPE, loc,
                f"Fresh storage {name} not released before scope exit "
                f"(memory leak)",
                subs=subs,
            )

    def _check_all_scope_leaks(
        self, store: Store, loc: Location, ret_value: Value | None
    ) -> None:
        for scope in self._scopes:
            self._check_scope_leaks(scope, store, loc, ret_value)

    # ------------------------------------------------------------------
    # Exit-point checking
    # ------------------------------------------------------------------

    def check_exit(
        self,
        store: Store,
        loc: Location,
        ret_value: Value | None,
        ret_expr: A.Expr | None = None,
    ) -> None:
        if self.sig is not None and ret_value is not None:
            self._check_return_value(store, loc, ret_value, ret_expr)
        self._check_globals_at_exit(store, loc)
        self._check_params_at_exit(store, loc)

    def _check_return_value(
        self,
        store: Store,
        loc: Location,
        value: Value,
        ret_expr: A.Expr | None,
    ) -> None:
        sig = self.sig
        assert sig is not None
        ann = self.effective_return_annotations(sig)
        pointer = is_pointerish(sig.ret_type)
        rendered = render_expr(ret_expr) if ret_expr is not None else "<return>"

        if pointer and ann.null is None and value.state.null.possibly_null():
            self.reporter.report(
                MessageCode.NULL_RET_VALUE, loc,
                f"Possibly null storage returned as non-null: {rendered}",
                subs=self._site_subs(store, value.ref, "null"),
            )

        # Null storage derivable from the returned reference (Figure 7).
        if value.ref is not None:
            base = value.ref
            for ref in sorted(store.states):
                if not base.is_prefix_of(ref):
                    continue
                st = store.states[ref]
                if not st.null.possibly_null():
                    continue
                ref_ann = self.declared_annotations(ref)
                if ref_ann.null is not None:
                    continue
                ctype = self.ref_type(ref)
                if ctype is None or not is_pointerish(ctype):
                    continue
                name = self.describe_ref(ref)
                site = store.sites.get((ref, "null"))
                subs = [(site, f"Storage {name} becomes null")] if site else None
                self.reporter.report(
                    MessageCode.NULL_RET_VALUE, loc,
                    f"Null storage {name} derivable from return value: "
                    f"{rendered}",
                    subs=subs,
                )

        if ann.definition is not DefAnn.OUT:
            undef = self.find_undefined(value.ref, store)
            if undef is None and value.ref is None and (
                value.state.definition is DefState.ALLOCATED
            ):
                undef = value.ref
            if undef is not None:
                self.reporter.report(
                    MessageCode.INCOMPLETE_DEF, loc,
                    f"Returned storage {rendered} not completely defined "
                    f"({self.describe_ref(undef)} is undefined)",
                )

        if pointer:
            alloc = value.state.alloc
            if ann.alloc in (AllocAnn.ONLY, AllocAnn.OWNED):
                if alloc is AllocState.TEMP:
                    self.reporter.report(
                        MessageCode.BAD_TRANSFER, loc,
                        f"Temp storage returned as {ann.alloc.value}: {rendered}",
                    )
                elif alloc is AllocState.IMPLICIT and not value.null_literal:
                    self.reporter.report(
                        MessageCode.IMPLICIT_TRANSFER, loc,
                        f"Implicitly temp storage returned as "
                        f"{ann.alloc.value}: {rendered}",
                    )
                elif alloc in (AllocState.KEPT, AllocState.DEPENDENT,
                               AllocState.SHARED, AllocState.STATIC):
                    self.reporter.report(
                        MessageCode.BAD_TRANSFER, loc,
                        f"{alloc.value.capitalize()} storage returned as "
                        f"{ann.alloc.value}: {rendered}",
                    )
                elif alloc.holds_obligation() and value.ref is not None:
                    # Obligation leaves through the result.
                    for target in store.aliases.closure(value.ref):
                        store.update(
                            target, lambda s: s.with_alloc(AllocState.KEPT)
                        )
            elif ann.alloc is None and alloc is AllocState.FRESH:
                if not self.flags.gc_mode:
                    self.reporter.report(
                        MessageCode.LEAK_RETURN, loc,
                        f"Fresh storage returned without only qualification "
                        f"(obligation to release is lost): {rendered}",
                    )

    def _check_globals_at_exit(self, store: Store, loc: Location) -> None:
        names = set(self.used_globals)
        names.update(
            ref.base.name
            for ref in store.states
            if ref.base.kind == "global"
        )
        killed = {g.name for g in self.fdef.globals_list if g.killed}
        for name in sorted(names):
            gvar = self.global_decl(name)
            if gvar is None:
                continue
            gref = Ref.global_(name)
            st = store.state(gref)
            ann = self._with_typedef(gvar.annotations, gvar.ctype)
            pointer = is_pointerish(gvar.ctype)
            if pointer and ann.null is None and st.null.possibly_null():
                self.reporter.report(
                    MessageCode.NULL_RET_GLOBAL, loc,
                    f"Function returns with non-null global {name} "
                    f"referencing null storage",
                    subs=self._site_subs(store, gref, "null"),
                )
            if (
                st.definition is DefState.DEAD or st.alloc is AllocState.DEAD
            ) and name not in killed:
                self.reporter.report(
                    MessageCode.GLOBAL_RELEASED, loc,
                    f"Global {name} released but not reassigned before "
                    f"function exit",
                    subs=self._site_subs(store, gref, "release"),
                )
                continue
            if st.definition is DefState.UNDEFINED:
                self.reporter.report(
                    MessageCode.GLOBAL_UNDEFINED, loc,
                    f"Global {name} undefined at function exit",
                )
            elif st.definition in (DefState.ALLOCATED, DefState.PARTIAL):
                undef = self.find_undefined(gref, store)
                if undef is not None:
                    self.reporter.report(
                        MessageCode.INCOMPLETE_DEF, loc,
                        f"Global storage {self.describe_ref(undef)} not "
                        f"completely defined at function exit",
                    )

    def _check_params_at_exit(self, store: Store, loc: Location) -> None:
        for i, param in enumerate(self.fdef.params):
            if param.name is None:
                continue
            aref = Ref.arg(i, param.name)
            st = store.state(aref)
            ann = self._with_typedef(param.annotations, param.ctype)
            pointer = is_pointerish(param.ctype)
            if not pointer:
                continue
            if ann.alloc in (AllocAnn.ONLY, AllocAnn.KEEP):
                if st.alloc.holds_obligation() and not st.null.definitely_null():
                    if not self.flags.gc_mode:
                        self.reporter.report(
                            MessageCode.ONLY_NOT_RELEASED, loc,
                            f"Only storage {param.name} not released before "
                            f"return",
                            subs=[(param.location,
                                   f"Storage {param.name} becomes only")],
                        )
                continue
            if st.definition in (DefState.DEAD, DefState.ERROR):
                continue  # released through an alias; reported elsewhere
            if ann.definition in (DefAnn.PARTIAL, DefAnn.RELDEF):
                continue
            undef = self.find_undefined(aref, store)
            if undef is not None:
                self.reporter.report(
                    MessageCode.INCOMPLETE_DEF, loc,
                    f"Storage {self.describe_ref(undef)} reachable from "
                    f"parameter {param.name} is not completely defined at "
                    f"return",
                )


def check_function(ctx: CheckContext, fdef: A.FunctionDef) -> None:
    """Check one function definition, reporting into ``ctx.reporter``."""
    FunctionChecker(ctx, fdef).check()
