"""The storage model: references and derived references (paper section 3).

A *reference* is a variable or a location derived from a variable — a
field of a structure, the target of a dereference. The analysis keeps
dataflow values per reference, including derived references such as
``l->next->next`` in Figure 5.

Parameters get two references: the local variable (``l``) that the body
may reassign, and the *external* reference (``argl`` in the paper's
exposition, ``arg1`` here) that the caller sees and that exit-point
checking constrains. At function entry the local aliases the external.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True)
class RefBase:
    kind: str  # 'local' | 'arg' | 'global' | 'ret' | 'alloc'
    name: str = ""
    index: int = -1

    def describe(self) -> str:
        if self.kind == "arg":
            return f"arg{self.index + 1}"
        if self.kind == "ret":
            return "result"
        if self.kind == "alloc":
            return f"<allocation at {self.name}>"
        return self.name


#: Path steps: ('arrow', field) for p->f, ('dot', field) for s.f,
#: ('deref', '') for *p, ('index', '') for p[i] (indices collapse, §2).
PathStep = tuple[str, str]


@dataclass(frozen=True, order=True)
class Ref:
    """A reference: a base plus a (possibly empty) access path."""

    base: RefBase
    path: tuple[PathStep, ...] = ()

    # Refs key the store's states/aliases/sites dicts, so one ref is
    # hashed many times per statement; the dataclass-generated __hash__
    # re-hashed the field tuple on every lookup. Cache it on first use.
    # The cache must never be pickled (string hashes are per-process
    # under hash randomization), hence the explicit state methods.

    def __hash__(self) -> int:
        try:
            return self._cached_hash
        except AttributeError:
            value = hash((self.base, self.path))
            object.__setattr__(self, "_cached_hash", value)
            return value

    def __getstate__(self):
        return (self.base, self.path)

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "base", state[0])
        object.__setattr__(self, "path", state[1])

    # -- constructors ------------------------------------------------------

    @staticmethod
    def local(name: str) -> "Ref":
        return Ref(RefBase("local", name))

    @staticmethod
    def arg(index: int, name: str = "") -> "Ref":
        return Ref(RefBase("arg", name, index))

    @staticmethod
    def global_(name: str) -> "Ref":
        return Ref(RefBase("global", name))

    @staticmethod
    def ret() -> "Ref":
        return Ref(RefBase("ret"))

    @staticmethod
    def allocation(site: str) -> "Ref":
        return Ref(RefBase("alloc", site))

    # -- derivation --------------------------------------------------------

    def arrow(self, fieldname: str) -> "Ref":
        return Ref(self.base, self.path + (("arrow", fieldname),))

    def dot(self, fieldname: str) -> "Ref":
        return Ref(self.base, self.path + (("dot", fieldname),))

    def deref(self) -> "Ref":
        return Ref(self.base, self.path + (("deref", ""),))

    def index(self, strict: bool = False, key: str = "") -> "Ref":
        # Default analysis model (paper section 2): compile-time-unknown
        # array indexes all denote the same element, so p[i] and *p are
        # the same reference. Under +strictindex they are independent
        # elements: constant indexes get their own reference per value.
        if not strict:
            return Ref(self.base, self.path + (("deref", ""),))
        return Ref(self.base, self.path + (("index", key),))

    def parent(self) -> "Ref | None":
        """The base reference this one is derived from (one step up)."""
        if not self.path:
            return None
        return Ref(self.base, self.path[:-1])

    def ancestors(self) -> Iterator["Ref"]:
        """All proper prefixes, nearest first."""
        for cut in range(len(self.path) - 1, -1, -1):
            yield Ref(self.base, self.path[:cut])

    def is_prefix_of(self, other: "Ref") -> bool:
        return (
            self.base == other.base
            and len(self.path) < len(other.path)
            and other.path[: len(self.path)] == self.path
        )

    def replace_prefix(self, old: "Ref", new: "Ref") -> "Ref":
        """Rewrite this ref's leading *old* prefix with *new*."""
        assert old.is_prefix_of(self) or old == self
        return Ref(new.base, new.path + self.path[len(old.path) :])

    @property
    def depth(self) -> int:
        return len(self.path)

    # -- presentation --------------------------------------------------------

    def describe(self) -> str:
        text = self.base.describe()
        for kind, fieldname in self.path:
            if kind == "arrow":
                text += f"->{fieldname}"
            elif kind == "dot":
                text += f".{fieldname}"
            elif kind == "deref":
                text = f"*{text}"
            else:
                key = fieldname if fieldname != "?" else ""
                text += f"[{key}]"
        return text

    def __str__(self) -> str:
        return self.describe()


class AliasMap:
    """Symmetric may-alias information between references.

    The possible aliases at a confluence point are the union of the
    possible aliases on each branch (paper, Figure 6 discussion).
    """

    def __init__(self) -> None:
        self._aliases: dict[Ref, frozenset[Ref]] = {}

    def copy(self) -> "AliasMap":
        clone = AliasMap()
        clone._aliases = dict(self._aliases)
        return clone

    def aliases_of(self, ref: Ref) -> frozenset[Ref]:
        return self._aliases.get(ref, frozenset())

    def add(self, a: Ref, b: Ref) -> None:
        if a == b:
            return
        self._aliases[a] = self.aliases_of(a) | {b}
        self._aliases[b] = self.aliases_of(b) | {a}

    def set_aliases(self, ref: Ref, aliases: frozenset[Ref]) -> None:
        aliases = aliases - {ref}
        self._aliases[ref] = aliases
        for other in aliases:
            self._aliases[other] = self.aliases_of(other) | {ref}

    def clear(self, ref: Ref) -> None:
        """Remove *ref* from all alias sets (it was reassigned)."""
        for other in self.aliases_of(ref):
            self._aliases[other] = self.aliases_of(other) - {ref}
        self._aliases.pop(ref, None)

    def merged(self, other: "AliasMap") -> "AliasMap":
        out = AliasMap()
        keys = set(self._aliases) | set(other._aliases)
        for key in keys:
            combined = self.aliases_of(key) | other.aliases_of(key)
            if combined:
                out._aliases[key] = combined
        return out

    def may_alias(self, a: Ref, b: Ref) -> bool:
        if a == b:
            return True
        return b in self.aliases_of(a)

    def closure(self, ref: Ref) -> frozenset[Ref]:
        """The reference plus everything it may alias."""
        return frozenset({ref}) | self.aliases_of(ref)

    def refs(self) -> Iterator[Ref]:
        return iter(self._aliases)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AliasMap):
            return NotImplemented
        a = {k: v for k, v in self._aliases.items() if v}
        b = {k: v for k, v in other._aliases.items() if v}
        return a == b
