"""Static analysis: storage model, state lattices, dataflow, checking."""

from .cfg import CFG, CFGBuilder, build_cfg
from .checker import CheckContext, FunctionChecker, check_function
from .engine import TracePoint, TracingChecker, trace_function, trace_source
from .states import AllocState, DefState, NullState, RefState
from .storage import AliasMap, Ref, RefBase
from .store import Store, merge_all

__all__ = [
    "CFG",
    "CFGBuilder",
    "build_cfg",
    "TracePoint",
    "TracingChecker",
    "trace_function",
    "trace_source",
    "CheckContext",
    "FunctionChecker",
    "check_function",
    "AllocState",
    "DefState",
    "NullState",
    "RefState",
    "AliasMap",
    "Ref",
    "RefBase",
    "Store",
    "merge_all",
]
