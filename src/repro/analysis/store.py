"""The abstract store: dataflow values per reference, per program point.

The store maps :class:`~repro.analysis.storage.Ref` to
:class:`~repro.analysis.states.RefState` and carries the may-alias map.
States for derived references (``l->next->this``) are *materialized
lazily* from the parent's state plus the declared annotations of the
field being accessed — this is how, at Figure 5's function entry, the
analysis knows ``l->next`` is possibly-null and ``only`` without ever
having seen an assignment to it.

Branches copy the store; confluence points merge stores pairwise,
reporting anomalies for states that cannot be sensibly combined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from .states import AllocState, DefState, MergeAnomaly, RefState
from .storage import AliasMap, Ref


class StateEnv(Protocol):
    """Environment giving the store declared-interface defaults."""

    def base_default(self, ref: Ref) -> RefState:
        """Entry state for an un-materialized base reference."""
        ...  # pragma: no cover

    def derived_default(self, ref: Ref, parent: RefState) -> RefState:
        """Entry state for a derived reference given its parent's state."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class MergeReport:
    ref: Ref
    anomaly: MergeAnomaly


class Store:
    """One program point's abstract state.

    Copies are **copy-on-write**: branching copies the store at every
    ``if``/loop/call boundary, but most copies are never written (or only
    read) before being merged away, so :meth:`copy` just shares the three
    backing containers and marks both stores shared. The first mutation
    through either store takes private ownership (one eager clone, the
    same cost the old unconditional copy paid every time). All writes —
    including lazy state materialization and alias/site updates — go
    through methods on this class so the shared containers are never
    mutated in place; dict contents and iteration order are identical to
    the eager-copy representation.
    """

    __slots__ = ("env", "states", "aliases", "unreachable", "sites", "_shared")

    def __init__(self, env: StateEnv) -> None:
        self.env = env
        self.states: dict[Ref, RefState] = {}
        self.aliases = AliasMap()
        self.unreachable = False  # after return/break/continue/exit()
        # Where a reference last acquired a noteworthy state: keys are
        # (ref, kind) with kind in {'null', 'fresh', 'release'}; used for
        # the indented sub-locations in messages (paper footnote 3).
        self.sites: dict[tuple[Ref, str], object] = {}
        self._shared = False

    # -- copying -------------------------------------------------------------

    def copy(self) -> "Store":
        clone = Store.__new__(Store)
        clone.env = self.env
        clone.states = self.states
        clone.aliases = self.aliases
        clone.unreachable = self.unreachable
        clone.sites = self.sites
        clone._shared = True
        self._shared = True
        return clone

    def _own(self) -> None:
        """Take private ownership of the backing containers before a write."""
        self.states = dict(self.states)
        self.aliases = self.aliases.copy()
        self.sites = dict(self.sites)
        self._shared = False

    def absorb(self, other: "Store") -> None:
        """Adopt *other*'s entire contents (ternary-evaluation rebind)."""
        self.states = other.states
        self.aliases = other.aliases
        self.sites = other.sites
        self.unreachable = other.unreachable
        # Both stores now alias the same containers, so both must be
        # marked shared — inheriting the donor's (possibly private)
        # flag would let a later write through either side mutate the
        # other in place.
        self._shared = True
        other._shared = True

    # -- state access ----------------------------------------------------------

    def state(self, ref: Ref) -> RefState:
        existing = self.states.get(ref)
        if existing is not None:
            return existing
        parent = ref.parent()
        if parent is None:
            st = self.env.base_default(ref)
        else:
            st = self.env.derived_default(ref, self.state(parent))
        if self._shared:
            self._own()
        self.states[ref] = st
        return st

    def peek(self, ref: Ref) -> RefState | None:
        """State if materialized, else None (no materialization)."""
        return self.states.get(ref)

    def set_state(self, ref: Ref, st: RefState) -> None:
        if self._shared:
            self._own()
        self.states[ref] = st

    def drop_state(self, ref: Ref) -> None:
        """Forget a materialized state (scope exit of a local)."""
        if ref in self.states:
            if self._shared:
                self._own()
            self.states.pop(ref, None)

    def update(self, ref: Ref, fn: Callable[[RefState], RefState]) -> None:
        self.set_state(ref, fn(self.state(ref)))

    def update_with_aliases(self, ref: Ref, fn: Callable[[RefState], RefState]) -> None:
        """Apply a state change to *ref* and everything it may alias."""
        for target in self.aliases.closure(ref):
            self.update(target, fn)

    # -- alias / site access ---------------------------------------------------

    def add_alias(self, a: Ref, b: Ref) -> None:
        if self._shared:
            self._own()
        self.aliases.add(a, b)

    def clear_aliases(self, ref: Ref) -> None:
        if self._shared:
            self._own()
        self.aliases.clear(ref)

    def set_site(self, ref: Ref, kind: str, loc: object) -> None:
        if self._shared:
            self._own()
        self.sites[(ref, kind)] = loc

    def kill_derived(self, ref: Ref) -> None:
        """Forget states and aliases of references derived from *ref*.

        Used when *ref* is assigned a new value: ``l = l->next`` must not
        let the old ``l->next`` state shadow the new one.
        """
        state_keys = [k for k in self.states if ref.is_prefix_of(k)]
        alias_keys = [k for k in self.aliases.refs() if ref.is_prefix_of(k)]
        if not state_keys and not alias_keys:
            return
        if self._shared:
            self._own()
        for key in state_keys:
            del self.states[key]
        for key in alias_keys:
            self.aliases.clear(key)

    def materialized(self) -> list[Ref]:
        return list(self.states)

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "Store") -> tuple["Store", list[MergeReport]]:
        """Confluence of two branches (paper: union of aliases, per-state
        combination rules, anomaly + error marker on clashes)."""
        if self.unreachable and not other.unreachable:
            return other.copy(), []
        if other.unreachable and not self.unreachable:
            return self.copy(), []
        out = Store(self.env)
        out.unreachable = self.unreachable and other.unreachable
        reports: list[MergeReport] = []
        keys = set(self.states) | set(other.states)
        for ref in sorted(keys):
            mine = self.state(ref)
            theirs = other.state(ref)
            merged, anomalies = mine.merged(theirs)
            if anomalies and self._live_side_is_null(ref, mine, theirs, other):
                # Storage released on one path, while on the other path an
                # ancestor is definitely NULL: there was never storage to
                # release there ('if (e != NULL) { free(e->key); ... }').
                merged = merged.with_definition(DefState.DEAD).with_alloc(
                    AllocState.DEAD
                )
                anomalies = []
            out.states[ref] = merged
            for anomaly in anomalies:
                reports.append(MergeReport(ref, anomaly))
        out.aliases = self.aliases.merged(other.aliases)
        out.sites = {**other.sites, **self.sites}
        return out, reports

    def _live_side_is_null(
        self, ref: Ref, mine: RefState, theirs: RefState, other: "Store"
    ) -> bool:
        """For a released-on-one-path clash on a derived ref, check whether
        the live side's ancestors are definitely NULL (no storage there)."""
        if ref.depth == 0:
            return False
        dead_here = (
            mine.definition is DefState.DEAD or mine.alloc is AllocState.DEAD
        )
        dead_there = (
            theirs.definition is DefState.DEAD or theirs.alloc is AllocState.DEAD
        )
        if dead_here == dead_there:
            return False
        live_store = other if dead_here else self
        return any(
            live_store.state(ancestor).null.definitely_null()
            for ancestor in ref.ancestors()
        )


def merge_all(stores: list[Store]) -> tuple[Store, list[MergeReport]]:
    """Merge any number of stores (switch confluence, loop exits)."""
    assert stores, "merge_all requires at least one store"
    result = stores[0]
    reports: list[MergeReport] = []
    for nxt in stores[1:]:
        result, more = result.merge(nxt)
        reports.extend(more)
    return result, reports
