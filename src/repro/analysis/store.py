"""The abstract store: dataflow values per reference, per program point.

The store maps :class:`~repro.analysis.storage.Ref` to
:class:`~repro.analysis.states.RefState` and carries the may-alias map.
States for derived references (``l->next->this``) are *materialized
lazily* from the parent's state plus the declared annotations of the
field being accessed — this is how, at Figure 5's function entry, the
analysis knows ``l->next`` is possibly-null and ``only`` without ever
having seen an assignment to it.

Branches copy the store; confluence points merge stores pairwise,
reporting anomalies for states that cannot be sensibly combined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from .states import AllocState, DefState, MergeAnomaly, RefState
from .storage import AliasMap, Ref


class StateEnv(Protocol):
    """Environment giving the store declared-interface defaults."""

    def base_default(self, ref: Ref) -> RefState:
        """Entry state for an un-materialized base reference."""
        ...  # pragma: no cover

    def derived_default(self, ref: Ref, parent: RefState) -> RefState:
        """Entry state for a derived reference given its parent's state."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class MergeReport:
    ref: Ref
    anomaly: MergeAnomaly


class Store:
    """One program point's abstract state."""

    def __init__(self, env: StateEnv) -> None:
        self.env = env
        self.states: dict[Ref, RefState] = {}
        self.aliases = AliasMap()
        self.unreachable = False  # after return/break/continue/exit()
        # Where a reference last acquired a noteworthy state: keys are
        # (ref, kind) with kind in {'null', 'fresh', 'release'}; used for
        # the indented sub-locations in messages (paper footnote 3).
        self.sites: dict[tuple[Ref, str], object] = {}

    # -- copying -------------------------------------------------------------

    def copy(self) -> "Store":
        clone = Store(self.env)
        clone.states = dict(self.states)
        clone.aliases = self.aliases.copy()
        clone.unreachable = self.unreachable
        clone.sites = dict(self.sites)
        return clone

    # -- state access ----------------------------------------------------------

    def state(self, ref: Ref) -> RefState:
        existing = self.states.get(ref)
        if existing is not None:
            return existing
        parent = ref.parent()
        if parent is None:
            st = self.env.base_default(ref)
        else:
            st = self.env.derived_default(ref, self.state(parent))
        self.states[ref] = st
        return st

    def peek(self, ref: Ref) -> RefState | None:
        """State if materialized, else None (no materialization)."""
        return self.states.get(ref)

    def set_state(self, ref: Ref, st: RefState) -> None:
        self.states[ref] = st

    def update(self, ref: Ref, fn: Callable[[RefState], RefState]) -> None:
        self.set_state(ref, fn(self.state(ref)))

    def update_with_aliases(self, ref: Ref, fn: Callable[[RefState], RefState]) -> None:
        """Apply a state change to *ref* and everything it may alias."""
        for target in self.aliases.closure(ref):
            self.update(target, fn)

    def kill_derived(self, ref: Ref) -> None:
        """Forget states and aliases of references derived from *ref*.

        Used when *ref* is assigned a new value: ``l = l->next`` must not
        let the old ``l->next`` state shadow the new one.
        """
        for key in [k for k in self.states if ref.is_prefix_of(k)]:
            del self.states[key]
        for key in [k for k in list(self.aliases.refs()) if ref.is_prefix_of(k)]:
            self.aliases.clear(key)

    def materialized(self) -> list[Ref]:
        return list(self.states)

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "Store") -> tuple["Store", list[MergeReport]]:
        """Confluence of two branches (paper: union of aliases, per-state
        combination rules, anomaly + error marker on clashes)."""
        if self.unreachable and not other.unreachable:
            return other.copy(), []
        if other.unreachable and not self.unreachable:
            return self.copy(), []
        out = Store(self.env)
        out.unreachable = self.unreachable and other.unreachable
        reports: list[MergeReport] = []
        keys = set(self.states) | set(other.states)
        for ref in sorted(keys):
            mine = self.state(ref)
            theirs = other.state(ref)
            merged, anomalies = mine.merged(theirs)
            if anomalies and self._live_side_is_null(ref, mine, theirs, other):
                # Storage released on one path, while on the other path an
                # ancestor is definitely NULL: there was never storage to
                # release there ('if (e != NULL) { free(e->key); ... }').
                merged = merged.with_definition(DefState.DEAD).with_alloc(
                    AllocState.DEAD
                )
                anomalies = []
            out.states[ref] = merged
            for anomaly in anomalies:
                reports.append(MergeReport(ref, anomaly))
        out.aliases = self.aliases.merged(other.aliases)
        out.sites = {**other.sites, **self.sites}
        return out, reports

    def _live_side_is_null(
        self, ref: Ref, mine: RefState, theirs: RefState, other: "Store"
    ) -> bool:
        """For a released-on-one-path clash on a derived ref, check whether
        the live side's ancestors are definitely NULL (no storage there)."""
        if ref.depth == 0:
            return False
        dead_here = (
            mine.definition is DefState.DEAD or mine.alloc is AllocState.DEAD
        )
        dead_there = (
            theirs.definition is DefState.DEAD or theirs.alloc is AllocState.DEAD
        )
        if dead_here == dead_there:
            return False
        live_store = other if dead_here else self
        return any(
            live_store.state(ancestor).null.definitely_null()
            for ancestor in ref.ancestors()
        )


def merge_all(stores: list[Store]) -> tuple[Store, list[MergeReport]]:
    """Merge any number of stores (switch confluence, loop exits)."""
    assert stores, "merge_all requires at least one store"
    result = stores[0]
    reports: list[MergeReport] = []
    for nxt in stores[1:]:
        result, more = result.merge(nxt)
        reports.extend(more)
    return result, reports
