"""Function-call checking (paper sections 2 and 4).

"When a function call site is encountered, LCLint checks that the
arguments and global variables used by the function satisfy the
assumptions made by the implementation of the called function. The
result of the function and the states of parameters and global variables
after the call are assumed to satisfy the constraints implied by the
function declaration."

:class:`CallMixin` implements this for every annotation in Appendix B:
``only`` / ``keep`` / ``temp`` transfer rules, ``out`` definition
effects, null requirements, ``unique`` external-aliasing checks
(Figure 8), ``returned`` result aliasing, and the callee's globals list.
"""

from __future__ import annotations

from ..annotations.kinds import (
    AllocAnn,
    AnnotationSet,
    DefAnn,
    ExposureAnn,
    NullAnn,
)
from ..frontend import cast as A
from ..frontend.ctypes import Array, ParamType, is_pointerish, strip_typedefs
from ..frontend.render import render_expr
from ..frontend.source import Location
from ..frontend.symtab import FunctionSignature
from ..messages.message import MessageCode
from .states import AllocState, DefState, NullState, RefState
from .storage import Ref
from .store import Store
from .transfer import Value

#: Functions that terminate the program: following calls are unreachable.
NORETURN_FUNCTIONS = frozenset({"exit", "abort", "_exit", "longjmp"})


class CallMixin:
    """Call-site checking; mixed into FunctionChecker."""

    def handle_call(self, expr: A.Call, store: Store) -> Value:
        if not isinstance(expr.func, A.Ident):
            self.eval_rvalue(expr.func, store)
            for arg in expr.args:
                self.eval_rvalue(arg, store)
            return Value.plain()

        name = expr.func.name
        sig = self.signature(name)
        if sig is None:
            for arg in expr.args:
                self.eval_rvalue(arg, store)
            if name in NORETURN_FUNCTIONS:
                store.unreachable = True
            return Value.plain()

        arg_values: list[Value] = []
        for i, arg in enumerate(expr.args):
            param = sig.params[i] if i < len(sig.params) else None
            arg_values.append(self._eval_argument(arg, param, store))

        self._check_globals_pre(sig, store, expr.location, expr)

        unique_slots: list[tuple[int, Value]] = []
        for i, value in enumerate(arg_values):
            param = sig.params[i] if i < len(sig.params) else None
            if param is None:
                continue
            self._check_argument(i, value, param, sig, store, expr)
            if param.annotations.unique:
                unique_slots.append((i, value))
        for i, value in unique_slots:
            self._check_unique(i, value, arg_values, sig, store, expr)
        for i, value in enumerate(arg_values):
            param = sig.params[i] if i < len(sig.params) else None
            if param is not None:
                self._apply_argument_effects(value, param, store, expr.location)

        self._apply_globals_post(sig, store)

        if name in NORETURN_FUNCTIONS:
            store.unreachable = True

        return self._result_value(sig, arg_values)

    # -- argument evaluation and checking ------------------------------------

    def _eval_argument(
        self, arg: A.Expr, param: ParamType | None, store: Store
    ) -> Value:
        value = self.eval_rvalue(arg, store)
        return value

    def _param_label(self, i: int, param: ParamType, sig: FunctionSignature) -> str:
        pname = param.name or f"{i + 1}"
        return f"param {pname} of {sig.name}"

    def _check_argument(
        self,
        i: int,
        value: Value,
        param: ParamType,
        sig: FunctionSignature,
        store: Store,
        expr: A.Call,
    ) -> None:
        loc = expr.location
        rendered = render_expr(expr)
        ann = param.annotations
        name = (
            self.describe_ref(value.ref)
            if value.ref is not None
            else render_expr(expr.args[i])
        )
        param_is_pointer = is_pointerish(param.ctype)

        # Null requirement: a possibly-null argument may only be passed
        # where the parameter is declared null (or relnull).
        if (
            param_is_pointer
            and ann.null is None
            and value.state.null.possibly_null()
            and not value.null_literal
        ):
            self.reporter.report(
                MessageCode.NULL_PARAM, loc,
                f"Possibly null storage {name} passed as non-null "
                f"{self._param_label(i, param, sig)}: {rendered}",
                subs=self._site_subs(store, value.ref, "null"),
            )
        elif param_is_pointer and ann.null is None and value.null_literal:
            self.reporter.report(
                MessageCode.NULL_PARAM, loc,
                f"Null value passed as non-null "
                f"{self._param_label(i, param, sig)}: {rendered}",
            )

        # Definition requirement: completely defined unless out/partial/reldef.
        # Under +impouts, an unannotated parameter is assumed out where
        # that would prevent a message (registry: 'assume out for
        # unannotated actual out-positions').
        assume_out = (
            ann.definition is None
            and self.flags.enabled("impouts")
            and value.state.definition is DefState.ALLOCATED
        )
        if ann.definition not in (DefAnn.OUT, DefAnn.PARTIAL, DefAnn.RELDEF) and (
            not assume_out
        ):
            if value.state.definition in (DefState.ALLOCATED, DefState.PARTIAL):
                undefined = (
                    self.find_undefined(value.ref, store)
                    if value.ref is not None
                    else None
                )
                if undefined is not None or (
                    value.ref is None
                    and value.state.definition is DefState.ALLOCATED
                ):
                    detail = (
                        f" ({self.describe_ref(undefined)} is undefined)"
                        if undefined is not None
                        else ""
                    )
                    self.reporter.report(
                        MessageCode.PARAM_NOT_DEFINED, loc,
                        f"Passed storage {name} not completely defined"
                        f"{detail}: {rendered}",
                    )

        # Allocation transfer rules.
        if ann.alloc in (AllocAnn.ONLY, AllocAnn.KEEP):
            self._check_obligation_transfer(i, value, param, sig, store, expr, name)
            if ann.definition is DefAnn.OUT:
                self._check_completely_destroyed(value, store, expr, name)
        elif ann.alloc is AllocAnn.KILLREF:
            # Reference-counted storage ([3]): a killref parameter releases
            # one reference; only refcounted storage may be passed.
            if value.state.alloc not in (AllocState.REFCOUNTED,
                                         AllocState.ERROR) and not (
                value.null_literal or value.state.null.definitely_null()
            ):
                self.reporter.report(
                    MessageCode.BAD_TRANSFER, loc,
                    f"{value.state.alloc.value.capitalize()} storage {name} "
                    f"passed as killref {self._param_label(i, param, sig)} "
                    f"(killref releases a reference-counted reference): "
                    f"{rendered}",
                )

    def _check_obligation_transfer(
        self,
        i: int,
        value: Value,
        param: ParamType,
        sig: FunctionSignature,
        store: Store,
        expr: A.Call,
        name: str,
    ) -> None:
        loc = expr.location
        rendered = render_expr(expr)
        alloc = value.state.alloc
        label = self._param_label(i, param, sig)
        word = param.annotations.alloc.value  # 'only' or 'keep'
        if value.null_literal or value.state.null.definitely_null():
            return  # free(NULL) is permitted by the annotated standard library
        if alloc.holds_obligation():
            return
        if alloc is AllocState.TEMP:
            declared = (
                self.declared_annotations(value.ref).alloc
                if value.ref is not None
                else None
            )
            if declared is None:
                # paper section 6: "Implicitly temp storage c passed as
                # only param: free (c)"
                self.reporter.report(
                    MessageCode.IMPLICIT_TRANSFER, loc,
                    f"Implicitly temp storage {name} passed as {word} "
                    f"param: {rendered}",
                )
                return
            site = self.decl_site(value.ref) if value.ref is not None else None
            subs = [(site, f"Storage {name} becomes temp")] if site else None
            self.reporter.report(
                MessageCode.BAD_TRANSFER, loc,
                f"Temp storage {name} passed as {word} {label}: {rendered}",
                subs=subs,
            )
        elif alloc is AllocState.IMPLICIT:
            self.reporter.report(
                MessageCode.IMPLICIT_TRANSFER, loc,
                f"Implicitly temp storage {name} passed as {word} param: "
                f"{rendered}",
            )
        elif alloc is AllocState.KEPT:
            # Kept means the release obligation was already satisfied
            # through another reference: releasing again is a double free
            # reached through an alias, reported as its own class when
            # aliasfree checking is on (the generic transfer complaint
            # otherwise), with the same message either way.
            code = (
                MessageCode.DOUBLE_RELEASE
                if self.flags.enabled("aliasfree")
                else MessageCode.BAD_TRANSFER
            )
            self.reporter.report(
                code, loc,
                f"Kept storage {name} passed as {word} {label} "
                f"(storage may be released twice): {rendered}",
            )
        elif alloc is AllocState.STATIC:
            self.reporter.report(
                MessageCode.BAD_TRANSFER, loc,
                f"Static storage {name} passed as {word} {label} "
                f"(releasing unallocated storage): {rendered}",
            )
        elif alloc is AllocState.OBSERVER:
            self.reporter.report(
                MessageCode.OBSERVER_MODIFIED, loc,
                f"Observer storage {name} passed as {word} {label} "
                f"(observer storage may not be released): {rendered}",
            )
        elif alloc in (AllocState.DEPENDENT, AllocState.SHARED,
                       AllocState.REFCOUNTED):
            self.reporter.report(
                MessageCode.BAD_TRANSFER, loc,
                f"{alloc.value.capitalize()} storage {name} passed as "
                f"{word} {label}: {rendered}",
            )
        # DEAD / ERROR were reported by the use checks already.

    def _check_completely_destroyed(
        self, value: Value, store: Store, expr: A.Call, name: str
    ) -> None:
        """Paper footnote 5: storage passed as ``out only void *`` (i.e.
        to a deallocator) must not contain references to live, unshared
        objects — the object must be completely destroyed."""
        if value.ref is None or value.state.null.definitely_null():
            return
        children = []
        for child in self.children_of(value.ref):
            ctype = self.ref_type(child)
            if ctype is not None and isinstance(strip_typedefs(ctype), Array):
                # inline array storage is released with its container;
                # what may leak is each (collapsed) element
                children.append(child.deref())
            else:
                children.append(child)
        for child in children:
            child_ann = self.effective_alloc_ann(child)
            if child_ann not in (AllocAnn.ONLY, AllocAnn.OWNED):
                continue
            st = store.state(child)
            if not st.alloc.holds_obligation():
                continue
            if st.null.possibly_null():
                continue  # may hold no storage; the programmer's contract
            if st.definition in (DefState.DEAD, DefState.ERROR):
                continue
            self.reporter.report(
                MessageCode.ONLY_NOT_RELEASED, expr.location,
                f"Only storage {self.describe_ref(child)} not released "
                f"before {name} is released (object not completely "
                f"destroyed): {render_expr(expr)}",
            )

    def _check_unique(
        self,
        i: int,
        value: Value,
        arg_values: list[Value],
        sig: FunctionSignature,
        store: Store,
        expr: A.Call,
    ) -> None:
        """Figure 8: unique parameters must not share storage with any
        other parameter or accessible global."""
        if value.ref is None:
            return
        my_root = self._external_root(value.ref, store)
        if my_root is None:
            return
        for j, other in enumerate(arg_values):
            if j == i or other.ref is None:
                continue
            if other.ctype is not None and not is_pointerish(other.ctype):
                continue  # a non-pointer argument cannot share storage
            other_root = self._external_root(other.ref, store)
            if other_root is None:
                continue
            definite = store.aliases.may_alias(value.ref, other.ref)
            if not definite and my_root == other_root:
                definite = True
            if definite or self._may_alias_externally(value.ref, other.ref, store):
                self.reporter.report(
                    MessageCode.UNIQUE_ALIAS, expr.location,
                    f"Parameter {i + 1} ({self.describe_ref(value.ref)}) to "
                    f"function {sig.name} is declared unique but may be "
                    f"aliased externally by parameter {j + 1} "
                    f"({self.describe_ref(other.ref)})",
                )
                return

    def _external_root(self, ref: Ref, store: Store) -> Ref | None:
        """The external base (arg/global) a reference derives from, if any."""
        if ref.base.kind in ("arg", "global"):
            return Ref(ref.base)
        if ref.base.kind == "local":
            # a local that aliases external storage is externally derived
            for candidate in [Ref(ref.base)] + list(ref.ancestors()):
                for alias in store.aliases.aliases_of(candidate):
                    if alias.base.kind in ("arg", "global"):
                        return Ref(alias.base)
            local_param = self.param_index_of_local(ref.base.name)
            if local_param is not None:
                param = self._param(local_param)
                # Only pointer parameters reference caller storage; an
                # aggregate passed by value is a fresh local copy, so
                # storage inside it cannot alias anything external.
                if param is not None and is_pointerish(param.ctype):
                    return Ref.arg(local_param)
        return None

    def _may_alias_externally(self, a: Ref, b: Ref, store: Store) -> bool:
        """Externally supplied references of unknown provenance may alias
        unless one of them is rooted in a unique-annotated parameter."""
        for ref in (a, b):
            root = self._external_root(ref, store)
            if root is None:
                return False
            if root.base.kind == "arg":
                ann = self.param_annotations(root.base.index)
                if ann is not None and ann.unique:
                    return False
                if ann is not None and ann.alloc is AllocAnn.ONLY:
                    return False  # sole reference: cannot alias another param
        return True

    # -- post-call effects --------------------------------------------------------

    def _apply_argument_effects(
        self, value: Value, param: ParamType, store: Store, loc: Location
    ) -> None:
        ann = param.annotations
        ref = value.ref
        if ref is None:
            # '&x' passed as an out parameter defines x itself.
            if ann.definition is DefAnn.OUT:
                for alias in value.alias_refs:
                    store.update(
                        alias,
                        lambda s: s.with_definition(DefState.DEFINED)
                        if s.definition not in (DefState.DEAD, DefState.ERROR)
                        else s,
                    )
            return
        equivalents = self.equivalent_refs(ref, store)
        if ann.alloc is AllocAnn.ONLY and value.state.alloc.may_be_released():
            if value.state.null.definitely_null():
                return
            # Obligation transferred by parameter passing: the reference
            # becomes dead and the storage may not be used (paper section 4).
            for target in equivalents:
                store.kill_derived(target)
                store.set_state(
                    target,
                    RefState(DefState.DEAD, value.state.null, AllocState.DEAD),
                )
                store.set_site(target, "release", loc)
        elif ann.alloc is AllocAnn.KEEP and value.state.alloc.may_be_released():
            for target in equivalents:
                store.update(target, lambda s: s.with_alloc(AllocState.KEPT))
        if ann.definition is DefAnn.OUT and ann.alloc is not AllocAnn.ONLY:
            # Storage passed as out is completely defined after the call.
            for target in equivalents:
                st = store.state(target)
                if st.definition not in (DefState.DEAD, DefState.ERROR):
                    store.kill_derived(target)
                    store.set_state(target, st.with_definition(DefState.DEFINED))

    # -- callee globals ---------------------------------------------------------

    def _check_globals_pre(
        self, sig: FunctionSignature, store: Store, loc: Location, expr: A.Call
    ) -> None:
        for guse in sig.globals_list:
            gref = Ref.global_(guse.name)
            self.note_global_use(guse.name)
            st = store.state(gref)
            gvar = self.global_decl(guse.name)
            if not guse.undef and st.definition is DefState.UNDEFINED:
                self.reporter.report(
                    MessageCode.GLOBAL_UNDEFINED, loc,
                    f"Undefined global {guse.name} used by {sig.name}: "
                    f"{render_expr(expr)}",
                )
            if (
                gvar is not None
                and gvar.annotations.null is None
                and is_pointerish(gvar.ctype)
                and st.null.possibly_null()
            ):
                self.reporter.report(
                    MessageCode.NULL_PARAM, loc,
                    f"Non-null global {guse.name} may be null when "
                    f"{sig.name} is called: {render_expr(expr)}",
                    subs=self._site_subs(store, gref, "null"),
                )
            if st.definition is DefState.DEAD or st.alloc is AllocState.DEAD:
                self.reporter.report(
                    MessageCode.USE_AFTER_RELEASE, loc,
                    f"Released global {guse.name} used by {sig.name}: "
                    f"{render_expr(expr)}",
                )

    def _apply_globals_post(self, sig: FunctionSignature, store: Store) -> None:
        for guse in sig.globals_list:
            gref = Ref.global_(guse.name)
            gvar = self.global_decl(guse.name)
            if gvar is None:
                continue
            store.kill_derived(gref)
            store.set_state(gref, self.base_default(gref))

    # -- result ---------------------------------------------------------------------

    def _result_value(
        self, sig: FunctionSignature, arg_values: list[Value]
    ) -> Value:
        ann = self.effective_return_annotations(sig)
        pointer = is_pointerish(sig.ret_type)
        null = NullState.NOTNULL
        if pointer:
            if ann.null is NullAnn.NULL:
                null = NullState.MAYBENULL
            elif ann.null is NullAnn.RELNULL:
                null = NullState.RELNULL
        definition = (
            DefState.ALLOCATED if ann.definition is DefAnn.OUT else DefState.DEFINED
        )
        alloc = AllocState.IMPLICIT
        fresh_call: str | None = None
        if pointer:
            if ann.alloc is AllocAnn.ONLY:
                alloc = AllocState.FRESH
                fresh_call = sig.name
            elif ann.alloc is AllocAnn.OWNED:
                alloc = AllocState.OWNED
            elif ann.alloc in (AllocAnn.DEPENDENT,):
                alloc = AllocState.DEPENDENT
            elif ann.alloc is AllocAnn.REFCOUNTED:
                alloc = AllocState.REFCOUNTED
            elif ann.alloc is AllocAnn.SHARED:
                alloc = AllocState.SHARED
            elif ann.alloc is AllocAnn.TEMP:
                alloc = AllocState.TEMP
            elif ann.exposure is ExposureAnn.OBSERVER:
                alloc = AllocState.OBSERVER
            elif ann.exposure is not None:
                alloc = AllocState.DEPENDENT  # exposed: mutable, not freeable
        alias_refs: set[Ref] = set()
        for i, param in enumerate(sig.params):
            if param.annotations.returned and i < len(arg_values):
                arg = arg_values[i]
                if arg.ref is not None:
                    alias_refs.add(arg.ref)
                if arg.state.null.possibly_null() and pointer and ann.null is None:
                    null = arg.state.null
                if param.annotations.returned and arg.state.alloc.holds_obligation():
                    alloc = arg.state.alloc
        return Value(
            RefState(definition, null, alloc),
            ctype=sig.ret_type,
            fresh_call=fresh_call,
            alias_refs=frozenset(alias_refs),
        )
