"""Flag registry and configuration."""

from .registry import DEFAULT_FLAGS, FLAG_REGISTRY, FlagInfo, Flags, UnknownFlag

__all__ = ["DEFAULT_FLAGS", "FLAG_REGISTRY", "FlagInfo", "Flags", "UnknownFlag"]
