"""Checker flags (paper sections 2, 3 and 6).

LCLint's behaviour is controlled by named flags that can be set on the
command line (``-null`` disables null checking, ``+null`` enables it) or
locally in the source with control comments (``/*@-null@*/ ... /*@+null@*/``).
This module defines the flag registry and the :class:`Flags` configuration
object used throughout the checker.

Notable flags from the paper:

* ``allimponly`` — implicit ``only`` annotations on return values, global
  variables and structure fields (on by default; section 6 runs with
  ``-allimponly`` for expository purposes).
* ``gcmode`` — "If LCLint is used to check programs designed for use with
  a garbage collector, flags can be used to adjust checking so only those
  errors relevant in a garbage-collected environment are reported."
* ``strictindex`` — compile-time-unknown array indexes are all the same
  element (off) or independent elements (on) (section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FlagInfo:
    name: str
    default: bool
    description: str
    category: str


#: Every check class the reporter can filter on, plus behaviour toggles.
FLAG_REGISTRY: dict[str, FlagInfo] = {}


def _register(name: str, default: bool, description: str, category: str) -> None:
    FLAG_REGISTRY[name] = FlagInfo(name, default, description, category)


_register("null", True, "null pointer misuse checking", "null")
_register("usedef", True, "use-before-definition checking", "definition")
_register("compdef", True, "complete-definition checking at interfaces", "definition")
_register("usereleased", True, "use of storage after it is released", "allocation")
_register("mustfree", True, "obligation-to-release (memory leak) checking", "allocation")
_register("memtrans", True, "inconsistent memory-annotation transfers", "allocation")
_register("memimplicit", True, "transfers involving implicitly-annotated storage", "allocation")
_register("branchstate", True, "inconsistent storage states at branch merges", "allocation")
_register("aliasunique", True, "unique parameter aliasing checking", "aliasing")
_register("observertrans", True, "modification of observer storage", "exposure")
_register("annotations", True, "malformed or incompatible annotations", "annotations")
_register("syntax", True, "syntax errors (parsing continues at the next declaration)", "annotations")
_register("internal", True, "contained internal checker errors (a crash bundle is always written)", "annotations")
_register("paramuse", True, "interface checking of call arguments", "interfaces")
_register("globstate", True, "global variable state checking at interfaces", "interfaces")
_register("mods", True, "modification checking against modifies clauses", "interfaces")
_register("retvalother", False, "ignored non-boolean return values", "interfaces")

_register("bounds", True,
          "out-of-bounds array index checking against known extents",
          "definition")
_register("fielddef", True,
          "reads of unwritten fields of partially-initialized structs",
          "definition")
_register("aliasfree", True,
          "double release of the same storage through an alias",
          "allocation")

_register("allimponly", True,
          "implicit only on return values, globals and structure fields",
          "implicit")
_register("impouts", False, "assume out for unannotated actual out-positions",
          "implicit")
_register("gcmode", False, "garbage-collected target: suppress release obligations",
          "behaviour")
_register("strictindex", False,
          "treat unknown array indexes as independent elements", "behaviour")
_register("deepbreak", False, "analyze loop bodies twice for alias discovery",
          "behaviour")


class UnknownFlag(Exception):
    def __init__(self, name: str) -> None:
        super().__init__(f"unknown flag {name!r} (see repro.flags.FLAG_REGISTRY)")
        self.name = name


@dataclass(frozen=True)
class Flags:
    """An immutable flag configuration."""

    values: dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.values:
            if name not in FLAG_REGISTRY:
                raise UnknownFlag(name)

    def enabled(self, name: str) -> bool:
        if name not in FLAG_REGISTRY:
            raise UnknownFlag(name)
        return self.values.get(name, FLAG_REGISTRY[name].default)

    def with_flag(self, name: str, value: bool) -> "Flags":
        if name not in FLAG_REGISTRY:
            raise UnknownFlag(name)
        merged = dict(self.values)
        merged[name] = value
        return Flags(merged)

    # -- convenience accessors used widely by the analysis -----------------

    @property
    def implicit_only(self) -> bool:
        return self.enabled("allimponly")

    @property
    def gc_mode(self) -> bool:
        return self.enabled("gcmode")

    @staticmethod
    def from_args(args: list[str]) -> "Flags":
        """Parse ``-flag`` / ``+flag`` command-line settings.

        Following LCLint's convention, ``-flag`` turns a flag *off* and
        ``+flag`` turns it *on*.
        """
        flags = Flags()
        for arg in args:
            if len(arg) < 2 or arg[0] not in "+-":
                raise UnknownFlag(arg)
            flags = flags.with_flag(arg[1:], arg[0] == "+")
        return flags


DEFAULT_FLAGS = Flags()
