"""Fingerprints for incremental checking.

The unit of caching is one translation unit checked against one program
interface. Its fingerprint combines everything the per-unit check result
can depend on (the paper's modular-checking contract: a function body is
checked only against interface information):

* the unit's **preprocessed token stream** (kind, spelling, and location
  of every token — locations matter because messages carry them),
* the active :class:`~repro.flags.registry.Flags` configuration,
* the **stdlib prelude** version (its text, defines, and system headers),
* the merged **program interface digest** — per-unit interface slices
  plus any loaded interface libraries,
* the engine version, bumped whenever checker semantics change.

Two helper layers make warm runs cheap: a *source key* over the raw
unit text and command-line defines memoizes the token digest so an
unchanged unit is never re-preprocessed, and per-unit interface digests
let the program digest be recomputed without reparsing unchanged units.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib

from ..flags.registry import FLAG_REGISTRY, Flags
from ..frontend.tokens import Token, TokenKind
from ..stdlib.specs import PRELUDE_DEFINES, PRELUDE_TEXT, SYSTEM_HEADERS

#: Bump when checker or serialization semantics change: every cached
#: result becomes unreachable and the cache rebuilds itself.
#: v2: per-unit interface digests moved from the reflective object-graph
#: walk to the token-based digest (same invalidation contract, ~20x
#: cheaper); old caches self-wipe with a visible rebuild note.
ENGINE_VERSION = 2


def _sha(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8", "surrogatepass"))
        digest.update(b"\x00")
    return digest.hexdigest()


def text_digest(text: str) -> str:
    return _sha(text)


def flags_digest(flags: Flags) -> str:
    """Digest of the *effective* flag configuration.

    Uses resolved values for every registered flag so that, e.g.,
    ``Flags()`` and ``Flags({"null": True})`` fingerprint identically.
    """
    parts = [f"{name}={int(flags.enabled(name))}" for name in sorted(FLAG_REGISTRY)]
    return _sha("flags", *parts)


def defines_digest(defines: dict[str, str]) -> str:
    parts = [f"{name}={value}" for name, value in sorted(defines.items())]
    return _sha("defines", *parts)


_PRELUDE_DIGEST: str | None = None


def prelude_digest() -> str:
    """Version digest of the annotated standard library the checker assumes.

    The inputs are process-lifetime constants, so the digest is computed
    once and memoized (it participates in every program digest).
    """
    global _PRELUDE_DIGEST
    if _PRELUDE_DIGEST is None:
        headers = [
            f"{name}:{text}" for name, text in sorted(SYSTEM_HEADERS.items())
        ]
        _PRELUDE_DIGEST = _sha(
            f"engine-v{ENGINE_VERSION}",
            PRELUDE_TEXT,
            defines_digest(dict(PRELUDE_DEFINES)),
            *headers,
        )
    return _PRELUDE_DIGEST


def token_stream_digest(tokens: list[Token]) -> str:
    """Digest of a preprocessed token stream, locations included.

    Locations are part of the fingerprint on purpose: two token streams
    that differ only in line numbers produce messages that render
    differently, so they must not share a cache entry.
    """
    digest = hashlib.sha256()
    update = digest.update
    for tok in tokens:
        # coords() reads (filename, line, column) without materializing a
        # Location object; the digest bytes are unchanged, so cache
        # entries written before the lazy-token rewrite stay valid.
        filename, line, column = tok.coords()
        update(
            f"{tok.kind.name}\x00{tok.value}\x00"
            f"{filename}\x00{line}\x00{column}\x01".encode(
                "utf-8", "surrogatepass"
            )
        )
    return digest.hexdigest()


def interface_token_digest(tokens: list[Token]) -> str:
    """Digest of a unit's *interface* as seen in its token stream.

    This is the hot-path replacement for :func:`interface_digest` (the
    reflective object-graph walk over the symbol-table slice, which
    dominated cold-run cost). The modular-checking contract says other
    units may depend only on this unit's declared signatures, types,
    annotations, and enum constants — all of which are spelled in the
    token stream *outside* function bodies. So the digest covers every
    token except the brace-balanced body of a function definition (a
    ``{`` whose previous significant token closes a parameter list or is
    a globals/modifies clause), and control comments (suppressions are
    strictly unit-local).

    Locations are included for the covered tokens, mirroring the old
    digest (which hashed declaration ``Location`` fields): messages
    emitted while checking *other* units may cite this unit's
    declaration sites, so a moved declaration must change the digest. A
    same-line body edit leaves every covered token — and therefore the
    digest — unchanged, which is what keeps body edits re-checking only
    their own unit.

    The skip rule is conservative: any ``{`` it cannot prove starts a
    function body (initializer lists, struct/union/enum bodies, K&R
    definitions) is included, which can only over-invalidate, never
    miss an interface change.
    """
    digest = hashlib.sha256()
    update = digest.update
    punct = TokenKind.PUNCT
    control = TokenKind.CONTROL
    annotation = TokenKind.ANNOTATION
    n = len(tokens)
    i = 0
    prev_is_body_opener = False
    while i < n:
        tok = tokens[i]
        kind = tok.kind
        if kind is control:
            i += 1
            continue
        value = tok.value
        if value == "{" and kind is punct and prev_is_body_opener:
            depth = 1
            i += 1
            while i < n and depth:
                t = tokens[i]
                if t.kind is punct:
                    if t.value == "{":
                        depth += 1
                    elif t.value == "}":
                        depth -= 1
                i += 1
            prev_is_body_opener = False
            continue
        filename, line, column = tok.coords()
        update(
            f"{kind.name}\x00{value}\x00"
            f"{filename}\x00{line}\x00{column}\x01".encode(
                "utf-8", "surrogatepass"
            )
        )
        # A '{' directly after ')' opens a function body; so does one
        # after a trailing /*@globals ...@*/ or /*@modifies ...@*/
        # clause (which sits between the parameter list and the body).
        if kind is punct:
            prev_is_body_opener = value == ")"
        elif kind is annotation:
            first_word = value.split(None, 1)[:1]
            prev_is_body_opener = first_word in (
                ["globals"], ["modifies"], ["uses"]
            )
        else:
            prev_is_body_opener = False
        i += 1
    return digest.hexdigest()


def unit_digests(tokens: list[Token]) -> tuple[str, str]:
    """``(token_stream_digest, interface_token_digest)`` in one pass.

    The cold path needs both digests for every parsed unit; fusing the
    loops halves the dominant per-token cost (coords + formatting), and
    the per-token byte sequences are identical to the standalone
    functions, so cache keys are unchanged.
    """
    full = hashlib.sha256()
    iface = hashlib.sha256()
    full_update = full.update
    iface_update = iface.update
    punct = TokenKind.PUNCT
    control = TokenKind.CONTROL
    annotation = TokenKind.ANNOTATION
    n = len(tokens)
    i = 0
    body_depth = 0  # >0 while inside a skippable function body
    prev_is_body_opener = False
    while i < n:
        tok = tokens[i]
        kind = tok.kind
        value = tok.value
        part = tok._fp
        if part is None:
            filename, line, column = tok.coords()
            part = (
                f"{kind.name}\x00{value}\x00"
                f"{filename}\x00{line}\x00{column}\x01".encode(
                    "utf-8", "surrogatepass"
                )
            )
            # Safe to memoize: kind/value/coords are immutable once the
            # token exists, and header tokens are shared between units.
            tok._fp = part
        full_update(part)
        if body_depth:
            if kind is punct:
                if value == "{":
                    body_depth += 1
                elif value == "}":
                    body_depth -= 1
            i += 1
            continue
        if kind is control:
            i += 1
            continue
        if value == "{" and kind is punct and prev_is_body_opener:
            body_depth = 1
            prev_is_body_opener = False
            i += 1
            continue
        iface_update(part)
        if kind is punct:
            prev_is_body_opener = value == ")"
        elif kind is annotation:
            first_word = value.split(None, 1)[:1]
            prev_is_body_opener = first_word in (
                ["globals"], ["modifies"], ["uses"]
            )
        else:
            prev_is_body_opener = False
        i += 1
    return full.hexdigest(), iface.hexdigest()


def source_key(name: str, text: str, defines: dict[str, str]) -> str:
    """Fast-path key over the *raw* unit text (ccache-style direct mode).

    Maps to a memo holding the token digest, interface digest, and the
    include closure observed the last time the unit was preprocessed; the
    memo is valid only while every recorded include's text is unchanged.
    """
    return _sha("unit", name, text, defines_digest(defines))


def program_digest(
    interface_digests: list[str], library_digests: list[str]
) -> str:
    """Digest of the merged interface a unit is checked against."""
    return _sha(
        "program",
        prelude_digest(),
        *interface_digests,
        "libraries",
        *library_digests,
    )


def check_fingerprint(
    token_digest: str,
    flags: Flags,
    prog_digest: str,
    flags_fp: str | None = None,
) -> str:
    """The cache key for one unit's check result.

    Callers fingerprinting many units against one configuration pass the
    precomputed ``flags_fp`` so the flag digest is hashed once per run.
    """
    if flags_fp is None:
        flags_fp = flags_digest(flags)
    return _sha("check", token_digest, flags_fp, prog_digest)


# -- interface digests --------------------------------------------------------
#
# The interface slice of a unit (FunctionSignature / GlobalVariable values)
# contains dataclasses, enums, frozensets, and *cyclic* struct types
# (``struct _elem { struct _elem *next; }``), so the digest walks the object
# graph into a canonical form: fields in declaration order, sets sorted,
# cycles cut at their first revisit. Pickle bytes are NOT a usable digest —
# frozenset iteration order varies with string-hash randomization across
# processes, which would make every run look cold.


def _stable(obj, on_stack: set[int]) -> object:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return ("enum", type(obj).__name__, obj.name)
    oid = id(obj)
    if oid in on_stack:
        return ("cycle", type(obj).__name__, getattr(obj, "tag", None))
    on_stack.add(oid)
    try:
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return (
                type(obj).__name__,
                tuple(
                    (f.name, _stable(getattr(obj, f.name), on_stack))
                    for f in dataclasses.fields(obj)
                ),
            )
        if isinstance(obj, dict):
            items = [
                (_stable(k, on_stack), _stable(v, on_stack))
                for k, v in obj.items()
            ]
            return ("dict", tuple(sorted(items, key=repr)))
        if isinstance(obj, (set, frozenset)):
            return ("set", tuple(sorted(repr(_stable(v, on_stack)) for v in obj)))
        if isinstance(obj, (list, tuple)):
            return ("seq", tuple(_stable(v, on_stack) for v in obj))
        # Non-dataclass helper objects (e.g. plain classes with __dict__).
        state = getattr(obj, "__dict__", None)
        if state is not None:
            return (type(obj).__name__, _stable(state, on_stack))
        return ("repr", repr(obj))
    finally:
        on_stack.discard(oid)


def stable_digest(obj) -> str:
    """Content digest of an arbitrary (possibly cyclic) object graph."""
    return _sha(repr(_stable(obj, set())))


def interface_digest(symtab, enum_consts: dict[str, int]) -> str:
    """Digest of one unit's exported interface slice."""
    return stable_digest(
        {
            "functions": symtab.functions,
            "globals": symtab.globals,
            "enum_consts": enum_consts,
        }
    )
