"""Fingerprints for incremental checking.

The unit of caching is one translation unit checked against one program
interface. Its fingerprint combines everything the per-unit check result
can depend on (the paper's modular-checking contract: a function body is
checked only against interface information):

* the unit's **preprocessed token stream** (kind, spelling, and location
  of every token — locations matter because messages carry them),
* the active :class:`~repro.flags.registry.Flags` configuration,
* the **stdlib prelude** version (its text, defines, and system headers),
* the merged **program interface digest** — per-unit interface slices
  plus any loaded interface libraries,
* the engine version, bumped whenever checker semantics change.

Two helper layers make warm runs cheap: a *source key* over the raw
unit text and command-line defines memoizes the token digest so an
unchanged unit is never re-preprocessed, and per-unit interface digests
let the program digest be recomputed without reparsing unchanged units.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib

from ..flags.registry import FLAG_REGISTRY, Flags
from ..frontend.tokens import Token
from ..stdlib.specs import PRELUDE_DEFINES, PRELUDE_TEXT, SYSTEM_HEADERS

#: Bump when checker or serialization semantics change: every cached
#: result becomes unreachable and the cache rebuilds itself.
ENGINE_VERSION = 1


def _sha(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8", "surrogatepass"))
        digest.update(b"\x00")
    return digest.hexdigest()


def text_digest(text: str) -> str:
    return _sha(text)


def flags_digest(flags: Flags) -> str:
    """Digest of the *effective* flag configuration.

    Uses resolved values for every registered flag so that, e.g.,
    ``Flags()`` and ``Flags({"null": True})`` fingerprint identically.
    """
    parts = [f"{name}={int(flags.enabled(name))}" for name in sorted(FLAG_REGISTRY)]
    return _sha("flags", *parts)


def defines_digest(defines: dict[str, str]) -> str:
    parts = [f"{name}={value}" for name, value in sorted(defines.items())]
    return _sha("defines", *parts)


def prelude_digest() -> str:
    """Version digest of the annotated standard library the checker assumes."""
    headers = [f"{name}:{text}" for name, text in sorted(SYSTEM_HEADERS.items())]
    return _sha(
        f"engine-v{ENGINE_VERSION}",
        PRELUDE_TEXT,
        defines_digest(dict(PRELUDE_DEFINES)),
        *headers,
    )


def token_stream_digest(tokens: list[Token]) -> str:
    """Digest of a preprocessed token stream, locations included.

    Locations are part of the fingerprint on purpose: two token streams
    that differ only in line numbers produce messages that render
    differently, so they must not share a cache entry.
    """
    digest = hashlib.sha256()
    update = digest.update
    for tok in tokens:
        # coords() reads (filename, line, column) without materializing a
        # Location object; the digest bytes are unchanged, so cache
        # entries written before the lazy-token rewrite stay valid.
        filename, line, column = tok.coords()
        update(
            f"{tok.kind.name}\x00{tok.value}\x00"
            f"{filename}\x00{line}\x00{column}\x01".encode(
                "utf-8", "surrogatepass"
            )
        )
    return digest.hexdigest()


def source_key(name: str, text: str, defines: dict[str, str]) -> str:
    """Fast-path key over the *raw* unit text (ccache-style direct mode).

    Maps to a memo holding the token digest, interface digest, and the
    include closure observed the last time the unit was preprocessed; the
    memo is valid only while every recorded include's text is unchanged.
    """
    return _sha("unit", name, text, defines_digest(defines))


def program_digest(
    interface_digests: list[str], library_digests: list[str]
) -> str:
    """Digest of the merged interface a unit is checked against."""
    return _sha(
        "program",
        prelude_digest(),
        *interface_digests,
        "libraries",
        *library_digests,
    )


def check_fingerprint(
    token_digest: str, flags: Flags, prog_digest: str
) -> str:
    """The cache key for one unit's check result."""
    return _sha("check", token_digest, flags_digest(flags), prog_digest)


# -- interface digests --------------------------------------------------------
#
# The interface slice of a unit (FunctionSignature / GlobalVariable values)
# contains dataclasses, enums, frozensets, and *cyclic* struct types
# (``struct _elem { struct _elem *next; }``), so the digest walks the object
# graph into a canonical form: fields in declaration order, sets sorted,
# cycles cut at their first revisit. Pickle bytes are NOT a usable digest —
# frozenset iteration order varies with string-hash randomization across
# processes, which would make every run look cold.


def _stable(obj, on_stack: set[int]) -> object:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return ("enum", type(obj).__name__, obj.name)
    oid = id(obj)
    if oid in on_stack:
        return ("cycle", type(obj).__name__, getattr(obj, "tag", None))
    on_stack.add(oid)
    try:
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return (
                type(obj).__name__,
                tuple(
                    (f.name, _stable(getattr(obj, f.name), on_stack))
                    for f in dataclasses.fields(obj)
                ),
            )
        if isinstance(obj, dict):
            items = [
                (_stable(k, on_stack), _stable(v, on_stack))
                for k, v in obj.items()
            ]
            return ("dict", tuple(sorted(items, key=repr)))
        if isinstance(obj, (set, frozenset)):
            return ("set", tuple(sorted(repr(_stable(v, on_stack)) for v in obj)))
        if isinstance(obj, (list, tuple)):
            return ("seq", tuple(_stable(v, on_stack) for v in obj))
        # Non-dataclass helper objects (e.g. plain classes with __dict__).
        state = getattr(obj, "__dict__", None)
        if state is not None:
            return (type(obj).__name__, _stable(state, on_stack))
        return ("repr", repr(obj))
    finally:
        on_stack.discard(oid)


def stable_digest(obj) -> str:
    """Content digest of an arbitrary (possibly cyclic) object graph."""
    return _sha(repr(_stable(obj, set())))


def interface_digest(symtab, enum_consts: dict[str, int]) -> str:
    """Digest of one unit's exported interface slice."""
    return stable_digest(
        {
            "functions": symtab.functions,
            "globals": symtab.globals,
            "enum_consts": enum_consts,
        }
    )
