"""The incremental, parallel checking engine.

One-shot checking (:class:`repro.core.api.Checker`) re-preprocesses,
re-parses, and re-checks every translation unit on every invocation.
This engine makes re-checking cheap, the property the paper leans on
("fast enough to run as part of every build"):

* **warm units skip everything** — a unit whose raw text, includes,
  flags, and program interface are unchanged is answered straight from
  the result cache without preprocessing, parsing, or checking;
* **interface-sensitive invalidation** — editing a function body
  re-checks only that unit; editing an exported interface (a header, an
  annotation on a signature) changes the program digest and re-checks
  every unit, exactly the modular contract of paper section 7;
* **parallel misses** — units that do need checking fan out over a
  process pool (``jobs > 1``), with results identical to serial order.

The engine produces the same :class:`CheckResult` as ``Checker`` — the
integration suite asserts message-for-message equality.
"""

from __future__ import annotations

import os
import pickle
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..core.api import (
    CheckResult,
    ParsedUnit,
    UnitCheckOutput,
    build_program_symtab,
    check_parsed_unit,
    ensure_process_initialized,
    failed_parsed_unit,
    merge_unit_outputs,
    unit_interface,
)
from ..core.faults import (
    cancel_checkpoint,
    frontend_fatal,
    internal_fatal,
    write_crash_bundle,
)
from ..flags.registry import DEFAULT_FLAGS, Flags
from ..frontend.lexer import LexError
from ..frontend.parser import ParseError, Parser
from ..frontend.preprocessor import PreprocessError, Preprocessor
from ..frontend.source import SourceManager
from ..frontend.symtab import SymbolTable
from ..frontend.tokens import Token
from ..obs.metrics import GLOBAL_METRICS
from ..obs.trace import Tracer
from ..stdlib.specs import (
    PRELUDE_COVERED_HEADERS,
    PRELUDE_DEFINES,
    SYSTEM_HEADERS,
)
from .cache import ResultCache, UnitMemo
from .fingerprint import (
    check_fingerprint,
    flags_digest,
    interface_digest,
    program_digest,
    source_key,
    text_digest,
    unit_digests,
)
from .parallel import check_units_parallel
from .shard import STRATEGIES


@dataclass
class CheckStats:
    """Per-phase timing and cache-traffic counters for one run.

    ``preprocess_s`` is the whole preprocessing phase *including* lexing;
    ``lex_s`` is the lexer's share of it, measured separately so the
    ``--profile`` table can show lex / preprocess / parse / analyze as
    disjoint phases.
    """

    units: int = 0
    lex_s: float = 0.0
    preprocess_s: float = 0.0
    parse_s: float = 0.0
    check_s: float = 0.0
    # Named orchestration spans (the decomposed former "other" bucket):
    prelude_s: float = 0.0      # stdlib prelude parse / snapshot load
    symtab_s: float = 0.0       # program symbol-table build + preseed
    fingerprint_s: float = 0.0  # token/interface digests + fingerprints
    cache_s: float = 0.0        # cache + memo probe/serialize IO
    # Driver-side spans, set by the CLI (outside the engine's total_s):
    prologue_s: float = 0.0     # argument parsing, flag setup, file reads
    render_s: float = 0.0       # message rendering and printing
    total_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    jobs: int = 1
    parallel_used: bool = False
    degraded_units: int = 0
    internal_errors: int = 0
    # Cache-service traffic (memo + result probes combined). remote_used
    # gates the render lines so runs without --cache-server keep their
    # exact historical output.
    remote_used: bool = False
    remote_hits: int = 0
    remote_misses: int = 0
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = ["incremental statistics:"]
        lines.append(f"  preprocess:        {self.preprocess_s * 1000:.1f} ms")
        lines.append(f"  parse:             {self.parse_s * 1000:.1f} ms")
        lines.append(f"  check:             {self.check_s * 1000:.1f} ms")
        lines.append(f"  total:             {self.total_s * 1000:.1f} ms")
        lines.append(
            f"  result cache:      {self.cache_hits} hit(s), "
            f"{self.cache_misses} miss(es)"
        )
        lines.append(
            f"  unit memo:         {self.memo_hits} hit(s), "
            f"{self.memo_misses} miss(es)"
        )
        if self.remote_used:
            lines.append(
                f"  cache server:      {self.remote_hits} hit(s), "
                f"{self.remote_misses} miss(es)"
            )
        mode = "parallel" if self.parallel_used else "serial"
        lines.append(f"  schedule:          {mode} (jobs={self.jobs})")
        if self.degraded_units:
            lines.append(
                f"  degraded:          {self.degraded_units} unit(s) "
                f"(re-checked every run; {self.internal_errors} contained "
                f"internal error(s))"
            )
        return "\n".join(lines)

    #: Ordered phase names of the --profile table and BENCH_frontend.json.
    #: The first four are the classic pipeline phases; the next four are
    #: the named orchestration spans the old "other" bucket decomposed
    #: into (see docs/internals.md, metric catalogue).
    PHASES = (
        "lex", "preprocess", "parse", "analyze",
        "prelude", "symtab", "fingerprint", "cache",
    )

    def phase_timings(self) -> dict[str, float]:
        """Disjoint per-phase seconds (cold work only; warm units skip all).

        ``other`` is whatever of ``total`` the named phases do not cover —
        loop overhead, message merging, bookkeeping; with the span
        decomposition it should stay in the low single-digit milliseconds.
        """
        preprocess = max(0.0, self.preprocess_s - self.lex_s)
        named = {
            "lex": self.lex_s,
            "preprocess": preprocess,
            "parse": self.parse_s,
            "analyze": self.check_s,
            "prelude": self.prelude_s,
            "symtab": self.symtab_s,
            "fingerprint": self.fingerprint_s,
            "cache": self.cache_s,
        }
        accounted = sum(named.values())
        named["other"] = max(0.0, self.total_s - accounted)
        named["total"] = self.total_s
        return named

    def render_profile(self) -> str:
        """The ``--profile`` table: per-phase timings, cold vs warm."""
        timings = self.phase_timings()
        total = timings["total"] or 1e-12
        warm = self.cache_hits
        cold = self.units - warm
        lines = ["per-phase timing:"]
        lines.append(f"  {'phase':<12} {'time':>10}   share")
        for phase in self.PHASES + ("other",):
            seconds = timings[phase]
            lines.append(
                f"  {phase:<12} {seconds * 1000:>8.1f} ms  {seconds / total:>5.1%}"
            )
        lines.append(f"  {'total':<12} {timings['total'] * 1000:>8.1f} ms")
        if self.prologue_s or self.render_s:
            lines.append(
                f"  driver:      prologue {self.prologue_s * 1000:.1f} ms, "
                f"render {self.render_s * 1000:.1f} ms (outside total)"
            )
        lines.append(
            f"  units:       {self.units} "
            f"({cold} cold, {warm} warm from result cache)"
        )
        lines.append(
            f"  unit memo:   {self.memo_hits} hit(s), "
            f"{self.memo_misses} miss(es)"
        )
        mode = "parallel" if self.parallel_used else "serial"
        lines.append(f"  schedule:    {mode} (jobs={self.jobs})")
        return "\n".join(lines)


@dataclass
class _UnitPlan:
    """Work-in-progress bookkeeping for one translation unit."""

    name: str
    text: str
    parsed: ParsedUnit | None = None
    interface: SymbolTable | None = None
    token_digest: str = ""
    iface_digest: str = ""
    enum_consts: dict[str, int] = field(default_factory=dict)
    fingerprint: str = ""
    cached: tuple | None = None  # (messages, suppressed) on a result hit
    output: UnitCheckOutput | None = None


class IncrementalChecker:
    """Checks programs with a persistent cache and an optional pool.

    Drop-in counterpart of :class:`repro.core.api.Checker` for whole
    programs: ``check_sources`` / ``check_files`` return the same
    :class:`CheckResult`, plus a :attr:`stats` record for the last run.
    """

    def __init__(
        self,
        flags: Flags | None = None,
        cache: ResultCache | None = None,
        jobs: int = 1,
        defines: dict[str, str] | None = None,
        keep_units: bool = False,
        crash_dir: str | None = None,
        tracer: Tracer | None = None,
        metrics=None,
        remote=None,
        shard_strategy: str = "interface",
    ) -> None:
        self.flags = flags or DEFAULT_FLAGS
        self.cache = cache
        self.jobs = max(1, int(jobs))
        # A CacheClient (or anything with its get/put surface) consulted
        # on local cache misses; see incremental/cacheserver.py.
        self.remote = remote
        if shard_strategy not in STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {shard_strategy!r} "
                f"(expected one of {', '.join(STRATEGIES)})"
            )
        self.shard_strategy = shard_strategy
        # The engine always runs under a tracer: phase timings for the
        # --profile table are span durations. Without a sink the tracer
        # only measures (the same perf_counter pairs the ad-hoc timing
        # used); per-function spans stay off unless a sink is attached.
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else GLOBAL_METRICS
        self.defines = dict(PRELUDE_DEFINES)
        self.defines.update(defines or {})
        self.keep_units = keep_units
        # Crash bundles live next to the result cache when there is one,
        # so one directory holds all of a project's checker state.
        if crash_dir is None and cache is not None:
            crash_dir = os.path.join(cache.root, "crashes")
        self.crash_dir = crash_dir
        self.base_symtab: SymbolTable | None = None
        self._library_digests: list[str] = []
        self.stats = CheckStats()

    # -- interface libraries -------------------------------------------------

    def load_library(self, path: str) -> None:
        from ..driver.library import load_library, merge_symtabs

        loaded = load_library(path)
        if self.base_symtab is None:
            self.base_symtab = SymbolTable()
        merge_symtabs(self.base_symtab, loaded)
        with open(path, "rb") as handle:
            self._library_digests.append(text_digest(repr(handle.read())))

    # -- entry points --------------------------------------------------------

    def check_files(self, paths: list[str]) -> CheckResult:
        files: dict[str, str] = {}
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                files[path] = handle.read()
        return self.check_sources(files)

    def check_sources(self, files: dict[str, str]) -> CheckResult:
        stats = CheckStats(jobs=self.jobs, remote_used=self.remote is not None)
        metrics = self.metrics
        metrics.inc("engine.runs")
        if self.cache is not None:
            stats.notes.extend(self.cache.notes)
            del self.cache.notes[:]
        self.stats = stats

        batch_span = self.tracer.span("batch", cat="batch")
        try:
            # Warm the prelude before any per-unit work so its cost shows
            # up as one named span instead of hiding inside the first
            # unit's parse. With a cache directory, the parsed prelude is
            # loaded from (or saved to) a pickled snapshot keyed by the
            # prelude + frontend-code digest.
            with self.tracer.span("prelude", cat="phase") as prelude_span:
                snapshot_dir = (
                    os.path.join(self.cache.root, "prelude")
                    if self.cache is not None
                    else None
                )
                stats.notes.extend(
                    ensure_process_initialized(snapshot_dir=snapshot_dir)
                )
            stats.prelude_s += prelude_span.duration

            sources = SourceManager()
            for name, text in files.items():
                if name.endswith(".h"):
                    sources.add(name, text)
            unit_names = [n for n in files if not n.endswith(".h")]
            plans = [_UnitPlan(name=n, text=files[n]) for n in unit_names]
            stats.units = len(plans)
            metrics.inc("engine.units", len(plans))
            batch_span.annotate(units=len(plans))

            # Phase 1: identify every unit (memo fast path or
            # preprocess+parse). The cancel checkpoints make a service
            # request stop at unit boundaries once its deadline fires.
            for plan in plans:
                cancel_checkpoint()
                with self.tracer.span(
                    "unit", cat="unit", unit=plan.name, stage="frontend"
                ):
                    self._identify_unit(plan, files, sources, stats)

            # Phase 2: the program-interface digest over all units +
            # libraries.
            prog_digest = program_digest(
                [p.iface_digest for p in plans], self._library_digests
            )
            enum_consts: dict[str, int] = {}
            for plan in plans:
                enum_consts.update(plan.enum_consts)

            # Phase 3: result-cache lookups. The flags digest is shared
            # by every unit's fingerprint, so it is computed once here.
            flags_fp = flags_digest(self.flags)
            misses: list[_UnitPlan] = []
            with self.tracer.span("cache", cat="phase") as probe_span:
                for plan in plans:
                    if self.cache is not None or self.remote is not None:
                        plan.fingerprint = check_fingerprint(
                            plan.token_digest, self.flags, prog_digest,
                            flags_fp=flags_fp,
                        )
                    if self.cache is not None:
                        plan.cached = self.cache.get_result(plan.fingerprint)
                    if plan.cached is None and self._remote_alive():
                        # A local miss may be a fleet-wide hit: another
                        # worker, machine, or CI run published this
                        # fingerprint to the cache service. A remote hit
                        # is copied into the local cache so repeat runs
                        # stop paying the round trip.
                        remote_hit = self.remote.get_result(plan.fingerprint)
                        if remote_hit is not None:
                            stats.remote_hits += 1
                            plan.cached = remote_hit
                            if self.cache is not None:
                                self.cache.put_result(
                                    plan.fingerprint, remote_hit[0],
                                    remote_hit[1],
                                )
                        else:
                            stats.remote_misses += 1
                    if plan.cached is not None:
                        stats.cache_hits += 1
                        metrics.inc("cache.result.hit")
                        plan.output = UnitCheckOutput(
                            messages=plan.cached[0], suppressed=plan.cached[1]
                        )
                    else:
                        stats.cache_misses += 1
                        metrics.inc("cache.result.miss")
                        misses.append(plan)
            stats.cache_s += probe_span.duration

            # Phase 4: build the merged symbol table from interface slices.
            with self.tracer.span("symtab", cat="phase") as symtab_span:
                symtab = build_program_symtab(
                    [self._interface_of(p) for p in plans], self.base_symtab
                )
            stats.symtab_s += symtab_span.duration

            # Phase 5: check the misses (parallel when asked and possible).
            if misses:
                for plan in misses:
                    cancel_checkpoint()
                    if plan.parsed is None:
                        with self.tracer.span(
                            "unit", cat="unit", unit=plan.name,
                            stage="frontend",
                        ):
                            self._ensure_parsed(plan, files, sources, stats)
                check_span = self.tracer.span(
                    "analyze", cat="phase", units=len(misses)
                )
                try:
                    outputs, par_notes = check_units_parallel(
                        [p.parsed for p in misses], symtab, self.flags,
                        enum_consts, self.jobs, crash_dir=self.crash_dir,
                        metrics=metrics,
                        shard_strategy=self.shard_strategy,
                        cluster_keys=[p.iface_digest for p in misses],
                        weights=[max(1, len(p.text)) for p in misses],
                    )
                    stats.notes.extend(par_notes)
                    if outputs is None:
                        outputs = []
                        for p in misses:
                            cancel_checkpoint()
                            with self.tracer.span(
                                "unit", cat="unit", unit=p.name,
                                stage="analyze",
                            ) as unit_span:
                                outputs.append(check_parsed_unit(
                                    p.parsed, symtab, self.flags, enum_consts,
                                    crash_dir=self.crash_dir,
                                    tracer=self.tracer,
                                ))
                            metrics.observe(
                                "engine.unit_check_s", unit_span.duration
                            )
                    else:
                        stats.parallel_used = True
                        metrics.inc("engine.parallel.runs")
                finally:
                    check_span.end()
                stats.check_s += check_span.duration
                with self.tracer.span("cache", cat="phase") as write_span:
                    # One journal append for the whole batch instead of
                    # one file write per unit (see cache.batch()).
                    with self.cache.batch() if self.cache is not None \
                            else nullcontext():
                        for plan, output in zip(misses, outputs):
                            plan.output = output
                            # Degraded results (parse recovery, skipped
                            # files, contained crashes) are never cached:
                            # the unit must be re-checked from scratch on
                            # every run until it is fixed.
                            if self.cache is not None and not output.degraded:
                                self.cache.put_result(
                                    plan.fingerprint, output.messages,
                                    output.suppressed
                                )
                            if not output.degraded and self._remote_alive():
                                self.remote.put_result(
                                    plan.fingerprint, output.messages,
                                    output.suppressed
                                )
                stats.cache_s += write_span.duration

            messages, suppressed = merge_unit_outputs(
                [p.output for p in plans]
            )
            stats.degraded_units = sum(1 for p in plans if p.output.degraded)
            stats.internal_errors = sum(
                p.output.internal_errors for p in plans
            )
        finally:
            batch_span.end()
        stats.total_s = batch_span.duration
        metrics.inc("engine.units.degraded", stats.degraded_units)
        metrics.inc("engine.internal_errors", stats.internal_errors)
        metrics.observe("engine.run_s", stats.total_s)
        # Cache entries silently discarded as corrupt/unreadable during
        # this run become a visible note: corruption must be diagnosable.
        if self.cache is not None:
            dropped = self.cache.drain_dropped()
            if dropped:
                stats.notes.append(
                    f"result cache dropped {dropped} corrupt or unreadable "
                    f"entr{'y' if dropped == 1 else 'ies'} under "
                    f"{self.cache.root}"
                )
        # A cache-server failure mid-run became silent misses; the note
        # explains why the run was slower than expected.
        if self.remote is not None:
            stats.notes.extend(self.remote.drain_notes())
        return CheckResult(
            messages=messages,
            suppressed=suppressed,
            units=[p.parsed.unit for p in plans if p.parsed is not None],
            symtab=symtab,
            degraded_units=[p.name for p in plans if p.output.degraded],
            internal_errors=stats.internal_errors,
        )

    def _remote_alive(self) -> bool:
        """The cache service is configured and has not failed this run
        (the client disables itself on the first transport error)."""
        return self.remote is not None and not getattr(
            self.remote, "dead", False
        )

    # -- unit identification -------------------------------------------------

    def _identify_unit(
        self,
        plan: _UnitPlan,
        files: dict[str, str],
        sources: SourceManager,
        stats: CheckStats,
    ) -> None:
        """Fill the plan's digests, from the memo when possible."""
        with self.tracer.span(
            "fingerprint", cat="phase", unit=plan.name
        ) as key_span:
            key = source_key(plan.name, plan.text, self.defines)
        stats.fingerprint_s += key_span.duration
        if not self.keep_units:
            memo = None
            if self.cache is not None:
                with self.tracer.span(
                    "cache", cat="phase", unit=plan.name
                ) as memo_span:
                    memo = self.cache.get_unit_memo(key)
                stats.cache_s += memo_span.duration
                if memo is not None and not self._includes_unchanged(
                    memo.includes, files
                ):
                    memo = None
            if memo is None and self._remote_alive():
                # The memo probe is what makes a remote hit cheap: the
                # result probe needs the token digest, which a memo miss
                # would force us to preprocess and parse for. A remote
                # memo skips the frontend entirely, and is copied into
                # the local cache for the next run.
                with self.tracer.span(
                    "cache", cat="phase", unit=plan.name
                ) as memo_span:
                    remote_memo = self.remote.get_memo(key)
                stats.cache_s += memo_span.duration
                if remote_memo is not None and self._includes_unchanged(
                    remote_memo.includes, files
                ):
                    stats.remote_hits += 1
                    memo = remote_memo
                    if self.cache is not None:
                        self.cache.put_unit_memo(key, memo)
                else:
                    stats.remote_misses += 1
            if memo is not None:
                stats.memo_hits += 1
                self.metrics.inc("cache.memo.hit")
                plan.token_digest = memo.token_digest
                plan.iface_digest = memo.iface_digest
                plan.enum_consts = dict(memo.enum_consts)
                plan.interface = None  # unpickled lazily in _interface_of
                plan._memo = memo  # type: ignore[attr-defined]
                return
        stats.memo_misses += 1
        self.metrics.inc("cache.memo.miss")
        self._parse_plan(plan, sources, stats, memo_key=key)

    def _parse_plan(
        self,
        plan: _UnitPlan,
        sources: SourceManager,
        stats: CheckStats,
        memo_key: str | None = None,
    ) -> None:
        try:
            tokens, included = self._preprocess(
                plan.name, plan.text, sources, stats
            )
        except (LexError, PreprocessError, ParseError) as exc:
            self._fail_plan(plan, frontend_fatal(exc, plan.name))
            return
        except Exception as exc:
            write_crash_bundle(
                self.crash_dir, phase="preprocess", unit=plan.name, exc=exc,
                source_text=plan.text,
            )
            self._fail_plan(plan, internal_fatal(exc, plan.name, "preprocessing"))
            return
        with self.tracer.span(
            "fingerprint", cat="phase", unit=plan.name
        ) as digest_span:
            # Both digests in one pass over the token stream. The
            # interface digest is read straight off the tokens (function
            # bodies skipped) — the reflective symbol-table walk it
            # replaced dominated the cold run; see fingerprint.py.
            plan.token_digest, plan.iface_digest = unit_digests(tokens)
        stats.fingerprint_s += digest_span.duration
        parse_span = self.tracer.span("parse", cat="phase", unit=plan.name)
        try:
            # ParseError cannot normally escape (panic-mode recovery eats
            # it inside parse_translation_unit); anything arriving here is
            # a checker bug and is contained as an internal error.
            plan.parsed = self._parse_tokens(tokens, plan.name)
        except Exception as exc:
            stats.parse_s += parse_span.end()
            write_crash_bundle(
                self.crash_dir, phase="parse", unit=plan.name, exc=exc,
                source_text=plan.text,
            )
            self._fail_plan(plan, internal_fatal(exc, plan.name, "parsing"))
            return
        stats.parse_s += parse_span.end()
        plan.enum_consts = dict(plan.parsed.enum_consts)
        with self.tracer.span(
            "symtab", cat="phase", unit=plan.name
        ) as iface_span:
            plan.interface = unit_interface(plan.parsed)
        stats.symtab_s += iface_span.duration
        want_memo = self.cache is not None or self._remote_alive()
        if want_memo and memo_key is not None:
            with self.tracer.span(
                "cache", cat="phase", unit=plan.name
            ) as memo_span:
                iface_pickle = pickle.dumps(
                    (plan.interface, plan.enum_consts)
                )
                closure = []
                for name in sorted(included):
                    source = sources.get(name)
                    if source is not None:
                        closure.append((name, text_digest(source.text)))
                memo = UnitMemo(
                    token_digest=plan.token_digest,
                    iface_digest=plan.iface_digest,
                    iface_pickle=iface_pickle,
                    includes=closure,
                    enum_consts=plan.enum_consts,
                )
                if self.cache is not None:
                    self.cache.put_unit_memo(memo_key, memo)
                if self._remote_alive():
                    self.remote.put_memo(memo_key, memo)
            stats.cache_s += memo_span.duration

    def _fail_plan(self, plan: _UnitPlan, fatal) -> None:
        """Fill a plan whose frontend gave up: an empty unit carrying the
        fatal record, digests derived from the raw text, and no memo
        entry (the unit must be re-examined from scratch every run)."""
        plan.parsed = failed_parsed_unit(plan.name, fatal)
        plan.token_digest = text_digest("unparseable\0" + plan.text)
        plan.enum_consts = {}
        plan.interface = unit_interface(plan.parsed)
        plan.iface_digest = interface_digest(plan.interface, {})

    def _preprocess(
        self,
        name: str,
        text: str,
        sources: SourceManager,
        stats: CheckStats,
    ) -> tuple[list[Token], set[str]]:
        with self.tracer.span("preprocess", cat="phase", unit=name) as sp:
            pp = Preprocessor(
                sources, defines=dict(self.defines),
                system_headers=SYSTEM_HEADERS,
                prelude_covered=PRELUDE_COVERED_HEADERS,
            )
            tokens = pp.preprocess_text(text, name)
            # The lexer's share is interleaved inside preprocessing and
            # only known after the fact; record it as a child interval.
            self.tracer.add_complete(
                "lex", start=sp.start, duration=pp.lex_s, cat="phase",
                unit=name,
            )
        stats.preprocess_s += sp.duration
        stats.lex_s += pp.lex_s
        return tokens, set(pp._included)

    def _parse_tokens(self, tokens: list[Token], name: str) -> ParsedUnit:
        from ..core.api import _prelude_parsed

        _, prelude_scope = _prelude_parsed()
        parser = Parser(
            tokens, name, lcl_mode=name.endswith(".lcl"), preseed=prelude_scope
        )
        unit = parser.parse_translation_unit()
        return ParsedUnit(
            unit=unit,
            controls=parser.controls,
            problems=parser.problems,
            enum_consts=dict(parser.scope.enum_consts),
            parse_errors=list(parser.parse_errors),
        )

    def _ensure_parsed(
        self,
        plan: _UnitPlan,
        files: dict[str, str],
        sources: SourceManager,
        stats: CheckStats,
    ) -> None:
        """Parse a memo-hit unit whose check result turned out to be stale
        (e.g. the flags changed): the memo saved preprocessing knowledge,
        but checking needs the AST."""
        if plan.parsed is None:
            self._parse_plan(plan, sources, stats, memo_key=None)

    def _interface_of(self, plan: _UnitPlan) -> SymbolTable:
        if plan.interface is not None:
            return plan.interface
        memo: UnitMemo = plan._memo  # type: ignore[attr-defined]
        interface, enum_consts = pickle.loads(memo.iface_pickle)
        plan.interface = interface
        plan.enum_consts = dict(enum_consts)
        return interface

    def _includes_unchanged(
        self, closure: list[tuple[str, str]], files: dict[str, str]
    ) -> bool:
        for name, recorded_sha in closure:
            current = self._current_include_text(name, files)
            if current is None or text_digest(current) != recorded_sha:
                return False
        return True

    def _current_include_text(
        self, name: str, files: dict[str, str]
    ) -> str | None:
        if name in files:
            return files[name]
        if name.startswith("<") and name.endswith(">"):
            return SYSTEM_HEADERS.get(name[1:-1])
        if os.path.isfile(name):
            try:
                with open(name, "r", encoding="utf-8", errors="replace") as f:
                    return f.read()
            except OSError:
                return None
        return None
