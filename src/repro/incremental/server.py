"""Legacy batch/daemon driver: ``pylclint --daemon`` — now a thin,
synchronous compatibility shim over :mod:`repro.service.protocol`.

The real server is the asyncio multi-client checking service
(``pylclint --serve``, :mod:`repro.service.server`); this shim keeps
the original single-client stdin/stdout transport alive for build
systems that pipe into it. Both speak the same protocol and share the
same request parser and check executor, so for any request line the
shim and the service produce the same reply (the property suite in
``tests/property/test_service_framing.py`` holds them to it):

* request — one line: a JSON array of CLI arguments
  (``["-quiet", "src/a.c"]``), a plain shell-style command line
  (``-quiet src/a.c``), or the object form
  (``{"id": 7, "argv": [...], ...}``) documented in
  :mod:`repro.service.protocol`;
* ``metrics`` — replies with a snapshot of the process-lifetime
  metrics registry instead of running a check;
* response — one JSON object per line; see the reply schema in
  :mod:`repro.service.protocol` (and docs/internals.md §9);
* ``shutdown`` (or EOF) ends the session with a summary line.

The daemon never dies on a request: malformed JSON, oversized lines
(over :data:`MAX_REQUEST_BYTES`), and internal checker errors all get
an error reply — echoing the client's request ``id`` whenever one can
be recovered from the broken line — and the next request is served
normally.

Every request runs with the persistent result cache enabled, so a
rebuild that re-checks an unchanged file is answered from cache without
preprocessing, parsing, or checking.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field

from ..core.api import ensure_process_initialized
from ..obs.metrics import GLOBAL_METRICS
from ..service.protocol import (
    MAX_REQUEST_BYTES,
    ProtocolError,
    error_reply,
    execute_check,
    metrics_reply,
    oversized_reply,
    parse_request_line,
    recover_request_id,
)
from .cache import DEFAULT_CACHE_DIR, ResultCache

__all__ = [
    "MAX_REQUEST_BYTES",
    "DaemonStats",
    "DaemonServer",
    "run_daemon",
    "main",
]


@dataclass
class DaemonStats:
    requests: int = 0
    errors: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    check_s: float = 0.0
    total_s: float = 0.0
    notes: list[str] = field(default_factory=list)


class DaemonServer:
    """One single-client daemon session over a pair of line streams."""

    def __init__(
        self,
        cache_dir: str | None = DEFAULT_CACHE_DIR,
        jobs: int = 1,
        stdin=None,
        stdout=None,
    ) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.jobs = jobs
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        self.stats = DaemonStats()

    # -- protocol ------------------------------------------------------------

    def serve(self) -> int:
        """Answer requests until ``shutdown`` or EOF; returns 0."""
        ensure_process_initialized()  # pay the prelude parse once, up front
        self._send({"ready": True, "jobs": self.jobs,
                    "cache": self.cache.root if self.cache else None})
        for line in self.stdin:
            line = line.strip()
            if not line:
                continue
            if line in ("shutdown", "quit", "exit"):
                break
            reply = self.handle_line(line)
            self._send(reply)
            if reply.get("shutdown"):
                break
        self._send({
            "bye": True,
            "requests": self.stats.requests,
            "errors": self.stats.errors,
            "cache_hits": self.stats.cache_hits,
            "cache_misses": self.stats.cache_misses,
        })
        return 0

    def handle_line(self, line: str) -> dict:
        self.stats.requests += 1
        fallback_id = self.stats.requests
        if len(line) > MAX_REQUEST_BYTES:
            self.stats.errors += 1
            GLOBAL_METRICS.inc("daemon.requests.oversized")
            request_id = recover_request_id(line[:4096])
            return oversized_reply(
                fallback_id if request_id is None else request_id, len(line)
            )
        try:
            request = parse_request_line(line)
        except ProtocolError as exc:
            self.stats.errors += 1
            GLOBAL_METRICS.inc("daemon.requests.malformed")
            request_id = exc.request_id
            return error_reply(
                fallback_id if request_id is None else request_id,
                "protocol", str(exc),
            )
        request_id = request.id if request.id is not None else fallback_id
        if request.verb == "shutdown":
            # JSON-form shutdown (the bare verb never reaches here): an
            # acknowledged, correlatable session end.
            return {"id": request_id, "status": 0, "shutdown": True}
        if request.verb == "metrics":
            GLOBAL_METRICS.inc("daemon.requests.metrics")
            return metrics_reply(request_id, GLOBAL_METRICS)
        reply = execute_check(request, request_id, self.cache, self.jobs)
        if "error" in reply:
            self.stats.errors += 1
            GLOBAL_METRICS.inc(f"daemon.requests.status.{reply['status']}")
            return reply
        GLOBAL_METRICS.inc(f"daemon.requests.status.{reply['status']}")
        stats = reply.get("stats")
        if stats is not None:
            self.stats.cache_hits += stats["cache_hits"]
            self.stats.cache_misses += stats["cache_misses"]
            self.stats.check_s += stats["check_ms"] / 1000.0
            self.stats.total_s += stats["total_ms"] / 1000.0
        return reply

    def _send(self, payload: dict) -> None:
        self.stdout.write(json.dumps(payload) + "\n")
        self.stdout.flush()


def run_daemon(argv: list[str]) -> int:
    """Entry for ``pylclint --daemon [--cache-dir D] [--jobs N] [--no-cache]``."""
    cache_dir: str | None = DEFAULT_CACHE_DIR
    jobs = 1
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in ("--cache-dir", "-cache-dir"):
            i += 1
            if i >= len(argv):
                print("pylclint: --cache-dir requires a directory",
                      file=sys.stderr)
                return 2
            cache_dir = argv[i]
        elif arg.startswith("--cache-dir="):
            cache_dir = arg.split("=", 1)[1]
        elif arg in ("--no-cache", "-no-cache"):
            cache_dir = None
        elif arg in ("--jobs", "-jobs", "-j"):
            i += 1
            if i >= len(argv):
                print("pylclint: --jobs requires a count", file=sys.stderr)
                return 2
            jobs = _parse_jobs(argv[i])
        elif arg.startswith("--jobs="):
            jobs = _parse_jobs(arg.split("=", 1)[1])
        else:
            print(f"pylclint: unknown daemon option {arg!r}", file=sys.stderr)
            return 2
        i += 1
    return DaemonServer(cache_dir=cache_dir, jobs=jobs).serve()


def _parse_jobs(value: str) -> int:
    try:
        return max(1, int(value))
    except ValueError:
        return 1


def main(argv: list[str] | None = None) -> int:
    return run_daemon(list(sys.argv[1:] if argv is None else argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
