"""Batch/daemon driver: ``pylclint --daemon`` / ``python -m repro.incremental.server``.

Build systems that invoke the checker once per edit pay Python startup
plus a prelude parse on every call. The daemon keeps those warm in one
long-lived process and answers repeated check requests over a simple
line protocol on stdin/stdout:

* request — one line, either a JSON array of CLI arguments
  (``["-quiet", "src/a.c"]``) or a plain shell-style command line
  (``-quiet src/a.c``);
* ``metrics`` (plain or as ``["metrics"]``) — replies with a snapshot of
  the process-lifetime metrics registry (cache traffic, dropped cache
  entries, degraded units, request counts by exit status, ...) instead
  of running a check;
* response — one JSON object per line:
  ``{"id": n, "status": <exit status>, "output": "...", "stats": {...}}``
  (an ``"error"`` key replaces ``"output"`` for malformed or failed
  requests; ``status`` follows the CLI exit-code contract — 2 for bad
  requests/input, 3 for a contained internal error);
* ``shutdown`` (or EOF) ends the session with a summary line.

The daemon never dies on a request: malformed JSON, oversized lines
(over :data:`MAX_REQUEST_BYTES`), and internal checker errors all get an
error reply, and the next request is served normally.

Every request runs with the persistent result cache enabled, so a
rebuild that re-checks an unchanged file is answered from cache without
preprocessing, parsing, or checking.
"""

from __future__ import annotations

import json
import shlex
import sys
from dataclasses import dataclass, field

from ..core.api import ensure_process_initialized
from ..obs.metrics import GLOBAL_METRICS
from .cache import DEFAULT_CACHE_DIR, ResultCache

#: Hard cap on one request line. A client that streams a huge (or
#: unterminated) line gets an error reply instead of exhausting memory
#: or wedging the daemon.
MAX_REQUEST_BYTES = 1 << 20


@dataclass
class DaemonStats:
    requests: int = 0
    errors: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    check_s: float = 0.0
    total_s: float = 0.0
    notes: list[str] = field(default_factory=list)


class DaemonServer:
    """One daemon session over a pair of line streams."""

    def __init__(
        self,
        cache_dir: str | None = DEFAULT_CACHE_DIR,
        jobs: int = 1,
        stdin=None,
        stdout=None,
    ) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.jobs = jobs
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        self.stats = DaemonStats()

    # -- protocol ------------------------------------------------------------

    def serve(self) -> int:
        """Answer requests until ``shutdown`` or EOF; returns 0."""
        ensure_process_initialized()  # pay the prelude parse once, up front
        self._send({"ready": True, "jobs": self.jobs,
                    "cache": self.cache.root if self.cache else None})
        for line in self.stdin:
            line = line.strip()
            if not line:
                continue
            if line in ("shutdown", "quit", "exit"):
                break
            self._send(self.handle_line(line))
        self._send({
            "bye": True,
            "requests": self.stats.requests,
            "errors": self.stats.errors,
            "cache_hits": self.stats.cache_hits,
            "cache_misses": self.stats.cache_misses,
        })
        return 0

    def handle_line(self, line: str) -> dict:
        self.stats.requests += 1
        request_id = self.stats.requests
        if len(line) > MAX_REQUEST_BYTES:
            self.stats.errors += 1
            return {
                "id": request_id, "status": 2,
                "error": (
                    f"request too large ({len(line)} bytes; "
                    f"limit {MAX_REQUEST_BYTES})"
                ),
            }
        try:
            argv = self._parse_request(line)
        except ValueError as exc:
            self.stats.errors += 1
            GLOBAL_METRICS.inc("daemon.requests.malformed")
            return {"id": request_id, "status": 2, "error": str(exc)}
        if argv == ["metrics"]:
            GLOBAL_METRICS.inc("daemon.requests.metrics")
            return {
                "id": request_id, "status": 0,
                "metrics": GLOBAL_METRICS.to_dict(),
            }
        return self.handle_request(argv, request_id)

    def handle_request(self, argv: list[str], request_id: int) -> dict:
        from ..driver import cli

        try:
            status, output = cli.run(argv, cache=self.cache, jobs=self.jobs)
        except cli.CliError as exc:
            self.stats.errors += 1
            GLOBAL_METRICS.inc("daemon.requests.status.2")
            return {"id": request_id, "status": 2, "error": str(exc)}
        except Exception as exc:  # a daemon must survive any one request
            self.stats.errors += 1
            GLOBAL_METRICS.inc("daemon.requests.status.3")
            return {
                "id": request_id, "status": 3,
                "error": f"internal error: {type(exc).__name__}: {exc}",
            }
        GLOBAL_METRICS.inc(f"daemon.requests.status.{status}")
        stats = cli.LAST_RUN_STATS
        payload: dict = {"id": request_id, "status": status, "output": output}
        if stats is not None:
            self.stats.cache_hits += stats.cache_hits
            self.stats.cache_misses += stats.cache_misses
            self.stats.check_s += stats.check_s
            self.stats.total_s += stats.total_s
            payload["stats"] = {
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                "memo_hits": stats.memo_hits,
                "memo_misses": stats.memo_misses,
                "degraded_units": stats.degraded_units,
                "internal_errors": stats.internal_errors,
                "preprocess_ms": round(stats.preprocess_s * 1000, 3),
                "parse_ms": round(stats.parse_s * 1000, 3),
                "check_ms": round(stats.check_s * 1000, 3),
                "total_ms": round(stats.total_s * 1000, 3),
            }
        return payload

    @staticmethod
    def _parse_request(line: str) -> list[str]:
        if line.startswith("["):
            try:
                parsed = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"malformed JSON request: {exc}") from exc
            if not isinstance(parsed, list) or not all(
                isinstance(a, str) for a in parsed
            ):
                raise ValueError("JSON request must be an array of strings")
            return parsed
        try:
            return shlex.split(line)
        except ValueError as exc:
            raise ValueError(f"malformed request line: {exc}") from exc

    def _send(self, payload: dict) -> None:
        self.stdout.write(json.dumps(payload) + "\n")
        self.stdout.flush()


def run_daemon(argv: list[str]) -> int:
    """Entry for ``pylclint --daemon [--cache-dir D] [--jobs N] [--no-cache]``."""
    cache_dir: str | None = DEFAULT_CACHE_DIR
    jobs = 1
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in ("--cache-dir", "-cache-dir"):
            i += 1
            if i >= len(argv):
                print("pylclint: --cache-dir requires a directory",
                      file=sys.stderr)
                return 2
            cache_dir = argv[i]
        elif arg.startswith("--cache-dir="):
            cache_dir = arg.split("=", 1)[1]
        elif arg in ("--no-cache", "-no-cache"):
            cache_dir = None
        elif arg in ("--jobs", "-jobs", "-j"):
            i += 1
            if i >= len(argv):
                print("pylclint: --jobs requires a count", file=sys.stderr)
                return 2
            jobs = _parse_jobs(argv[i])
        elif arg.startswith("--jobs="):
            jobs = _parse_jobs(arg.split("=", 1)[1])
        else:
            print(f"pylclint: unknown daemon option {arg!r}", file=sys.stderr)
            return 2
        i += 1
    return DaemonServer(cache_dir=cache_dir, jobs=jobs).serve()


def _parse_jobs(value: str) -> int:
    try:
        return max(1, int(value))
    except ValueError:
        return 1


def main(argv: list[str] | None = None) -> int:
    return run_daemon(list(sys.argv[1:] if argv is None else argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
