"""The persistent analysis cache (default directory: ``.pylclint-cache/``).

Layout::

    <root>/meta.json            cache-format + engine version stamp
    <root>/units/<key>.pkl      per-unit memo: token digest, interface
                                digest + pickled interface slice, include
                                closure, enum constants
    <root>/results/<fp>.json    per-unit check result: serialized messages
                                and the suppressed-message count

Every load path is corruption-tolerant: a truncated, garbled, or
version-mismatched file is treated as a miss and discarded, never an
error — a bad cache can cost time, but it must not change results or
crash the checker. Each discarded entry is counted (``dropped`` /
``cache.entries.dropped`` in the metrics registry) so corruption is
diagnosable: the engine surfaces the total as a run note. Writes go
through a temp file + ``os.replace`` so a killed process cannot leave a
half-written entry behind.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass, field

from ..messages.message import Message
from ..obs.metrics import GLOBAL_METRICS
from .fingerprint import ENGINE_VERSION

DEFAULT_CACHE_DIR = ".pylclint-cache"

#: Format version of the on-disk layout itself (distinct from the engine
#: version, which participates in fingerprints).
CACHE_FORMAT_VERSION = 1

_HEX = set("0123456789abcdef")


@dataclass
class UnitMemo:
    """What we remember about a translation unit between runs."""

    token_digest: str
    iface_digest: str
    iface_pickle: bytes  # pickled (SymbolTable slice, enum_consts)
    includes: list[tuple[str, str]]  # (resolved name, text sha) closure
    enum_consts: dict[str, int] = field(default_factory=dict)


class ResultCache:
    """On-disk cache of per-unit memos and check results."""

    def __init__(self, root: str, metrics=None) -> None:
        self.root = os.path.abspath(root)
        self.notes: list[str] = []
        self.metrics = metrics if metrics is not None else GLOBAL_METRICS
        # Corrupt/unreadable entries discarded since the last drain; the
        # engine turns a non-zero total into a CheckStats note, so cache
        # corruption is diagnosable instead of silently costing time.
        self.dropped = 0
        self._ensure_layout()

    # -- layout / versioning ------------------------------------------------

    def _meta_path(self) -> str:
        return os.path.join(self.root, "meta.json")

    def _ensure_layout(self) -> None:
        meta = {"format": CACHE_FORMAT_VERSION, "engine": ENGINE_VERSION}
        current = self._read_json(self._meta_path())
        if current != meta:
            if current is not None or os.path.exists(self._meta_path()):
                self.notes.append(
                    f"cache at {self.root} has a different version; rebuilding"
                )
            self._wipe()
        os.makedirs(os.path.join(self.root, "units"), exist_ok=True)
        os.makedirs(os.path.join(self.root, "results"), exist_ok=True)
        if current != meta:
            self._write_bytes(
                self._meta_path(), json.dumps(meta).encode("utf-8")
            )

    def drain_dropped(self) -> int:
        """Return and reset the dropped-entry count for this period."""
        out = self.dropped
        self.dropped = 0
        return out

    def _wipe(self) -> None:
        if os.path.isdir(self.root):
            self.metrics.inc("cache.wipes")
            for entry in os.listdir(self.root):
                path = os.path.join(self.root, entry)
                try:
                    if os.path.isdir(path):
                        shutil.rmtree(path)
                    else:
                        os.unlink(path)
                except OSError:
                    pass
        else:
            try:
                os.makedirs(self.root, exist_ok=True)
            except OSError:
                pass

    # -- low-level tolerant IO ---------------------------------------------

    def _read_json(self, path: str):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except OSError:
            return None
        except ValueError:
            # The file exists but is not JSON: drop it so the slot is
            # rewritten instead of failing to parse on every run.
            self._discard(path)
            return None

    def _read_pickle(self, path: str):
        try:
            handle = open(path, "rb")
        except OSError:
            return None  # absent entry: a plain miss, not corruption
        try:
            with handle:
                return pickle.load(handle)
        except Exception:
            # Any unpickling failure (truncation, garbage, missing class)
            # is a miss; drop the bad entry so it is rewritten.
            self._discard(path)
            return None

    def _discard(self, path: str, corrupt: bool = True) -> None:
        """Remove a cache file; *corrupt* entries are counted so the drop
        is visible in metrics and run notes (temp-file cleanup is not)."""
        if corrupt:
            self.dropped += 1
            self.metrics.inc("cache.entries.dropped")
        try:
            os.unlink(path)
        except OSError:
            pass

    def _write_bytes(self, path: str, data: bytes) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix="~"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except OSError:
            self.metrics.inc("cache.write.failures")
            self._discard(tmp, corrupt=False)

    def _entry_path(self, kind: str, key: str, suffix: str) -> str:
        if not key or any(ch not in _HEX for ch in key):
            raise ValueError(f"cache key is not a hex digest: {key!r}")
        return os.path.join(self.root, kind, key + suffix)

    # -- unit memos ----------------------------------------------------------

    def get_unit_memo(self, key: str) -> UnitMemo | None:
        payload = self._read_pickle(self._entry_path("units", key, ".pkl"))
        if not isinstance(payload, dict):
            return None
        try:
            return UnitMemo(
                token_digest=payload["token_digest"],
                iface_digest=payload["iface_digest"],
                iface_pickle=payload["iface_pickle"],
                includes=[(str(n), str(s)) for n, s in payload["includes"]],
                enum_consts=dict(payload["enum_consts"]),
            )
        except (KeyError, TypeError, ValueError):
            self._discard(self._entry_path("units", key, ".pkl"))
            return None

    def put_unit_memo(self, key: str, memo: UnitMemo) -> None:
        payload = {
            "token_digest": memo.token_digest,
            "iface_digest": memo.iface_digest,
            "iface_pickle": memo.iface_pickle,
            "includes": list(memo.includes),
            "enum_consts": dict(memo.enum_consts),
        }
        self._write_bytes(
            self._entry_path("units", key, ".pkl"), pickle.dumps(payload)
        )

    # -- check results -------------------------------------------------------

    def get_result(self, fingerprint: str):
        """Return ``(messages, suppressed)`` or ``None`` on a miss."""
        path = self._entry_path("results", fingerprint, ".json")
        payload = self._read_json(path)
        if not isinstance(payload, dict):
            if payload is not None:
                self._discard(path)
            return None
        try:
            messages = [Message.from_dict(m) for m in payload["messages"]]
            suppressed = int(payload["suppressed"])
        except (KeyError, TypeError, ValueError):
            self._discard(path)
            return None
        return messages, suppressed

    def put_result(
        self, fingerprint: str, messages: list[Message], suppressed: int
    ) -> None:
        payload = {
            "messages": [m.to_dict() for m in messages],
            "suppressed": suppressed,
        }
        self._write_bytes(
            self._entry_path("results", fingerprint, ".json"),
            json.dumps(payload).encode("utf-8"),
        )
