"""The persistent analysis cache (default directory: ``.pylclint-cache/``).

Layout::

    <root>/meta.json            cache-format + engine version stamp
    <root>/lock                 advisory flock taken around wipes and
                                journal writes (see repro.service.locking)
    <root>/units/<key>.pkl      per-unit memo: token digest, interface
                                digest + pickled interface slice, include
                                closure, enum constants
    <root>/results/<fp>.json    per-unit check result: serialized messages
                                and the suppressed-message count
    <root>/results/journal.jsonl
                                append-only result journal: recent check
                                results land here first, one JSON object
                                per line, one append per unit *batch*
                                instead of one file write per unit; the
                                journal is folded into ``<fp>.json``
                                files when it grows past
                                :data:`JOURNAL_COMPACT_ENTRIES`

Every load path is corruption-tolerant: a truncated, garbled, or
version-mismatched file is treated as a miss and discarded, never an
error — a bad cache can cost time, but it must not change results or
crash the checker. Each discarded entry is counted (``dropped`` /
``cache.entries.dropped`` in the metrics registry) so corruption is
diagnosable: the engine surfaces the total as a run note. Per-entry
writes go through a temp file + ``os.replace``; journal appends are a
single buffered write, and a process killed mid-append leaves at worst
one truncated final line, which the next load drops and heals by
rewriting the journal's valid prefix.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass, field

from ..messages.message import Message
from ..obs.metrics import GLOBAL_METRICS
from ..service.locking import LOCK_FILE_NAME, CacheDirLock
from .fingerprint import ENGINE_VERSION

DEFAULT_CACHE_DIR = ".pylclint-cache"

#: Format version of the on-disk layout itself (distinct from the engine
#: version, which participates in fingerprints).
CACHE_FORMAT_VERSION = 1

#: Journal entries beyond this count are compacted into per-fingerprint
#: files on the next load or flush, bounding both journal-replay time
#: and the memory held by the in-process overlay.
JOURNAL_COMPACT_ENTRIES = 512

_JOURNAL_NAME = "journal.jsonl"

_HEX = set("0123456789abcdef")


@dataclass
class UnitMemo:
    """What we remember about a translation unit between runs."""

    token_digest: str
    iface_digest: str
    iface_pickle: bytes  # pickled (SymbolTable slice, enum_consts)
    includes: list[tuple[str, str]]  # (resolved name, text sha) closure
    enum_consts: dict[str, int] = field(default_factory=dict)


class ResultCache:
    """On-disk cache of per-unit memos and check results."""

    def __init__(self, root: str, metrics=None) -> None:
        self.root = os.path.abspath(root)
        self.notes: list[str] = []
        self.metrics = metrics if metrics is not None else GLOBAL_METRICS
        # Corrupt/unreadable entries discarded since the last drain; the
        # engine turns a non-zero total into a CheckStats note, so cache
        # corruption is diagnosable instead of silently costing time.
        self.dropped = 0
        self.lock = CacheDirLock(self.root)
        # Result-journal state: the parsed overlay of journal entries
        # (consulted before per-fingerprint files), and writes buffered
        # by an open batch() awaiting one flush.
        self._journal: dict[str, dict] = {}
        self._pending: dict[str, dict] = {}
        self._batch_depth = 0
        self._ensure_layout()
        self._load_journal()

    # -- layout / versioning ------------------------------------------------

    def _meta_path(self) -> str:
        return os.path.join(self.root, "meta.json")

    def _ensure_layout(self) -> None:
        meta = {"format": CACHE_FORMAT_VERSION, "engine": ENGINE_VERSION}
        with self.lock.exclusive():
            current = self._read_json(self._meta_path())
            if current != meta:
                if current is not None or os.path.exists(self._meta_path()):
                    self.notes.append(
                        f"cache at {self.root} has a different version; "
                        f"rebuilding"
                    )
                self._wipe()
            os.makedirs(os.path.join(self.root, "units"), exist_ok=True)
            os.makedirs(os.path.join(self.root, "results"), exist_ok=True)
            if current != meta:
                self._write_bytes(
                    self._meta_path(), json.dumps(meta).encode("utf-8")
                )

    def drain_dropped(self) -> int:
        """Return and reset the dropped-entry count for this period."""
        out = self.dropped
        self.dropped = 0
        return out

    def _wipe(self) -> None:
        if os.path.isdir(self.root):
            # The lock file is excluded twice over: the wipe runs while
            # holding the flock on it (deleting it would silently break
            # exclusion for other processes), and its presence alone —
            # taking the lock creates it — is not cache content, so a
            # fresh directory does not count as a wipe.
            entries = [
                e for e in os.listdir(self.root) if e != LOCK_FILE_NAME
            ]
            if not entries:
                return
            self.metrics.inc("cache.wipes")
            for entry in entries:
                path = os.path.join(self.root, entry)
                try:
                    if os.path.isdir(path):
                        shutil.rmtree(path)
                    else:
                        os.unlink(path)
                except OSError:
                    pass
        else:
            try:
                os.makedirs(self.root, exist_ok=True)
            except OSError:
                pass

    # -- low-level tolerant IO ---------------------------------------------

    def _read_json(self, path: str):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except OSError:
            return None
        except ValueError:
            # The file exists but is not JSON: drop it so the slot is
            # rewritten instead of failing to parse on every run.
            self._discard(path)
            return None

    def _read_pickle(self, path: str):
        try:
            handle = open(path, "rb")
        except OSError:
            return None  # absent entry: a plain miss, not corruption
        try:
            with handle:
                return pickle.load(handle)
        except Exception:
            # Any unpickling failure (truncation, garbage, missing class)
            # is a miss; drop the bad entry so it is rewritten.
            self._discard(path)
            return None

    def _discard(self, path: str, corrupt: bool = True) -> None:
        """Remove a cache file; *corrupt* entries are counted so the drop
        is visible in metrics and run notes (temp-file cleanup is not)."""
        if corrupt:
            self.dropped += 1
            self.metrics.inc("cache.entries.dropped")
        try:
            os.unlink(path)
        except OSError:
            pass

    def _write_bytes(self, path: str, data: bytes) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix="~"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except OSError:
            self.metrics.inc("cache.write.failures")
            self._discard(tmp, corrupt=False)

    def _entry_path(self, kind: str, key: str, suffix: str) -> str:
        if not key or any(ch not in _HEX for ch in key):
            raise ValueError(f"cache key is not a hex digest: {key!r}")
        return os.path.join(self.root, kind, key + suffix)

    # -- unit memos ----------------------------------------------------------

    def get_unit_memo(self, key: str) -> UnitMemo | None:
        payload = self._read_pickle(self._entry_path("units", key, ".pkl"))
        if not isinstance(payload, dict):
            return None
        try:
            return UnitMemo(
                token_digest=payload["token_digest"],
                iface_digest=payload["iface_digest"],
                iface_pickle=payload["iface_pickle"],
                includes=[(str(n), str(s)) for n, s in payload["includes"]],
                enum_consts=dict(payload["enum_consts"]),
            )
        except (KeyError, TypeError, ValueError):
            self._discard(self._entry_path("units", key, ".pkl"))
            return None

    def put_unit_memo(self, key: str, memo: UnitMemo) -> None:
        payload = {
            "token_digest": memo.token_digest,
            "iface_digest": memo.iface_digest,
            "iface_pickle": memo.iface_pickle,
            "includes": list(memo.includes),
            "enum_consts": dict(memo.enum_consts),
        }
        self._write_bytes(
            self._entry_path("units", key, ".pkl"), pickle.dumps(payload)
        )

    # -- check results -------------------------------------------------------

    @staticmethod
    def _decode_result(payload) -> tuple[list[Message], int] | None:
        """Parse a result payload dict; ``None`` when malformed."""
        if not isinstance(payload, dict):
            return None
        try:
            messages = [Message.from_dict(m) for m in payload["messages"]]
            suppressed = int(payload["suppressed"])
        except (KeyError, TypeError, ValueError):
            return None
        return messages, suppressed

    def get_result(self, fingerprint: str):
        """Return ``(messages, suppressed)`` or ``None`` on a miss.

        Journal entries (and results buffered in an open batch) shadow
        per-fingerprint files: they are strictly newer.
        """
        payload = self._pending.get(fingerprint)
        if payload is None:
            payload = self._journal.get(fingerprint)
        if payload is not None:
            decoded = self._decode_result(payload)
            if decoded is not None:
                return decoded
            # A garbled overlay entry (corrupt journal line that still
            # parsed as JSON) is dropped like a corrupt file would be.
            self._journal.pop(fingerprint, None)
            self._pending.pop(fingerprint, None)
            self.dropped += 1
            self.metrics.inc("cache.entries.dropped")
        path = self._entry_path("results", fingerprint, ".json")
        payload = self._read_json(path)
        if payload is None:
            return None
        decoded = self._decode_result(payload)
        if decoded is None:
            self._discard(path)
            return None
        return decoded

    def put_result(
        self, fingerprint: str, messages: list[Message], suppressed: int
    ) -> None:
        """Store a check result.

        Inside a :meth:`batch` the write is buffered and lands in one
        journal append when the batch closes; outside a batch it is an
        immediate (atomic) per-fingerprint file write, preserving the
        one-shot behaviour.
        """
        payload = {
            "messages": [m.to_dict() for m in messages],
            "suppressed": suppressed,
        }
        if self._batch_depth > 0:
            # Validate the key eagerly so a bad fingerprint fails at the
            # call site, not at flush time.
            self._entry_path("results", fingerprint, ".json")
            self._pending[fingerprint] = payload
            return
        self._write_bytes(
            self._entry_path("results", fingerprint, ".json"),
            json.dumps(payload).encode("utf-8"),
        )

    # -- the results journal -------------------------------------------------

    def _journal_path(self) -> str:
        return os.path.join(self.root, "results", _JOURNAL_NAME)

    def batch(self) -> "_Batch":
        """Context manager buffering :meth:`put_result` calls into one
        journal append (re-entrant; only the outermost exit flushes)."""
        return _Batch(self)

    def flush_batch(self) -> None:
        """Append every buffered result to the journal in one write."""
        if not self._pending:
            return
        lines = []
        for fingerprint, payload in self._pending.items():
            record = dict(payload)
            record["fp"] = fingerprint
            lines.append(json.dumps(record) + "\n")
        data = "".join(lines).encode("utf-8")
        with self.lock.exclusive():
            try:
                with open(self._journal_path(), "ab") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
            except OSError:
                self.metrics.inc("cache.write.failures")
                self._pending.clear()
                return
        self._journal.update(self._pending)
        self.metrics.inc("cache.journal.flushes")
        self.metrics.inc("cache.journal.entries", len(self._pending))
        self._pending.clear()
        if len(self._journal) > JOURNAL_COMPACT_ENTRIES:
            self.compact_journal()

    def _load_journal(self) -> None:
        """Replay the journal into the in-process overlay.

        Tolerant line by line: a truncated final line (a process killed
        mid-append) or garbled bytes drop just that line. When anything
        was dropped, the journal is rewritten with only the valid
        entries — the cache heals itself instead of re-reporting the
        same corruption on every run.
        """
        try:
            with open(self._journal_path(), "rb") as handle:
                raw_lines = handle.read().split(b"\n")
        except OSError:
            return
        entries, corrupt = self._parse_journal_lines(raw_lines)
        self._journal = entries
        if corrupt:
            self.dropped += corrupt
            self.metrics.inc("cache.entries.dropped", corrupt)
            self.metrics.inc("cache.journal.healed")
            self._rewrite_journal()
        elif len(entries) > JOURNAL_COMPACT_ENTRIES:
            self.compact_journal()

    @classmethod
    def _parse_journal_lines(
        cls, raw_lines: list[bytes]
    ) -> tuple[dict[str, dict], int]:
        """Tolerantly parse journal lines → (entries, corrupt count).

        Shared by journal replay and compaction so both agree exactly on
        what a valid entry is.
        """
        corrupt = 0
        entries: dict[str, dict] = {}
        for raw in raw_lines:
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
                fingerprint = record.pop("fp")
            except (ValueError, KeyError, AttributeError, TypeError):
                corrupt += 1
                continue
            if (
                not isinstance(fingerprint, str)
                or not fingerprint
                or any(ch not in _HEX for ch in fingerprint)
                or cls._decode_result(record) is None
            ):
                corrupt += 1
                continue
            entries[fingerprint] = record
        return entries, corrupt

    def _rewrite_journal(self) -> None:
        """Atomically replace the journal with the overlay's entries."""
        lines = []
        for fingerprint, payload in self._journal.items():
            record = dict(payload)
            record["fp"] = fingerprint
            lines.append(json.dumps(record) + "\n")
        with self.lock.exclusive():
            self._write_bytes(
                self._journal_path(), "".join(lines).encode("utf-8")
            )

    def compact_journal(self) -> None:
        """Fold journal entries into per-fingerprint files and truncate.

        The whole fold-then-truncate sequence runs under the cache-dir
        lock, and the entries folded are re-read from the file *inside*
        the lock. Two processes can both cross the size threshold
        concurrently, but whichever folds second folds whatever the
        journal then contains (usually nothing) instead of truncating
        appends it never observed — folding only this process's
        in-memory overlay would discard the other process's results.
        The disk journal is a superset of any process's overlay (an
        append lands before the overlay is updated), so folding the
        disk contents never loses a result. A concurrent reader sees
        either the journal entry or the compacted file, both with
        identical contents.
        """
        with self.lock.exclusive():
            try:
                with open(self._journal_path(), "rb") as handle:
                    raw_lines = handle.read().split(b"\n")
            except OSError:
                raw_lines = []
            entries, corrupt = self._parse_journal_lines(raw_lines)
            if not entries and not corrupt:
                self._journal.clear()
                return
            for fingerprint, payload in entries.items():
                self._write_bytes(
                    self._entry_path("results", fingerprint, ".json"),
                    json.dumps(payload).encode("utf-8"),
                )
            self._write_bytes(self._journal_path(), b"")
        if corrupt:
            self.dropped += corrupt
            self.metrics.inc("cache.entries.dropped", corrupt)
        self.metrics.inc("cache.journal.compactions")
        self._journal.clear()

    # -- integrity ------------------------------------------------------------

    def verify_integrity(self) -> dict:
        """Re-read every entry; returns counts for an intactness check.

        Used by the chaos harness (and available to operators) to prove
        that a fault-injected run left the cache fully readable:
        ``corrupt`` must be 0 afterwards. Reading is done with the same
        tolerant decoders the hot path uses, so "intact" means exactly
        "every entry would be a hit, none would be dropped".
        """
        report = {"results": 0, "unit_memos": 0, "journal": 0, "corrupt": 0}
        for fingerprint, payload in list(self._journal.items()):
            if self._decode_result(payload) is None:
                report["corrupt"] += 1
            else:
                report["journal"] += 1
        results_dir = os.path.join(self.root, "results")
        units_dir = os.path.join(self.root, "units")
        for name in self._entry_names(results_dir, ".json"):
            payload = self._read_json(os.path.join(results_dir, name))
            if self._decode_result(payload) is None:
                report["corrupt"] += 1
            else:
                report["results"] += 1
        for name in self._entry_names(units_dir, ".pkl"):
            if self.get_unit_memo(name[: -len(".pkl")]) is None:
                report["corrupt"] += 1
            else:
                report["unit_memos"] += 1
        return report

    @staticmethod
    def _entry_names(directory: str, suffix: str) -> list[str]:
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        return sorted(
            n for n in names
            if n.endswith(suffix)
            and all(ch in _HEX for ch in n[: -len(suffix)])
            and n != _JOURNAL_NAME
        )


class _Batch:
    """Re-entrant context manager driving one journal flush."""

    __slots__ = ("_cache",)

    def __init__(self, cache: ResultCache) -> None:
        self._cache = cache

    def __enter__(self) -> ResultCache:
        self._cache._batch_depth += 1
        return self._cache

    def __exit__(self, *exc) -> None:
        self._cache._batch_depth -= 1
        if self._cache._batch_depth == 0:
            self._cache.flush_batch()
