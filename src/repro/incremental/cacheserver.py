"""The shared cache service: fingerprint-keyed results over a socket.

Independent checker processes — parallel CI shards, developers on the
same tree, repeat runs with fresh local caches — all compute the same
content fingerprints (:mod:`.fingerprint`), so one process's cold check
can warm everyone else's. This module turns a :class:`.cache.ResultCache`
directory into a network service:

* the **server** (``python -m repro.incremental.cacheserver``) is a
  small asyncio JSON-line server, reusing the checking service's
  bounded line framing and address grammar
  (:class:`repro.service.server.LineReader`,
  :func:`repro.service.server.parse_addr`) over TCP-on-localhost or a
  UNIX socket;
* the **client** (:class:`CacheClient`, wired in with
  ``pylclint --cache-server ADDR``) is consulted by the engine on every
  *local* cache miss, for both check results and unit memos. Serving
  memos is what makes a remote hit cheap: a result alone still requires
  preprocessing and parsing to compute the fingerprint, while a memo
  hit skips the frontend entirely — a fresh local cache backed by a
  warm server checks at near-warm speed.

Failure philosophy matches the rest of the cache layer: the service is
an accelerator, never a dependency. A dead server, a garbled reply, or
a timeout turns every remaining probe into a miss — the client disables
itself after the first error, records one note, and the run completes
locally with identical output.

Wire schema (one JSON object per line, one reply per request)::

    → {"op": "ping"}
    ← {"ok": true, "pong": true}
    → {"op": "get", "kind": "result" | "memo", "key": "<hex>"}
    ← {"ok": true, "hit": true, "payload": {...}} | {"ok": true, "hit": false}
    → {"op": "put", "kind": "result" | "memo", "key": "<hex>", "payload": {...}}
    ← {"ok": true, "stored": true}
    → {"op": "stats"}
    ← {"ok": true, "counters": {...}, "cache": "<root>"}

Result payloads are the cache's own serialized form (``messages`` +
``suppressed``); memo payloads carry the pickled interface slice
base64-encoded (JSON transport). Malformed requests get
``{"ok": false, "error": ...}`` and the connection stays up.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import os
import signal
import socket
import sys
import threading

from ..messages.message import Message
from ..obs.metrics import GLOBAL_METRICS
from ..service.server import LineReader, parse_addr
from .cache import DEFAULT_CACHE_DIR, ResultCache, UnitMemo

#: Line cap for cache traffic. Memo payloads carry a base64 pickled
#: interface slice, so the bound is far above the checking protocol's
#: request cap; it exists to keep a runaway client's cost bounded, not
#: to police well-behaved payload sizes.
CACHE_LINE_MAX_BYTES = 32 << 20

#: Client-side socket timeout: a probe must never stall a check longer
#: than this before the client declares the server unavailable.
CLIENT_TIMEOUT_S = 10.0


def _encode_memo(memo: UnitMemo) -> dict:
    return {
        "token_digest": memo.token_digest,
        "iface_digest": memo.iface_digest,
        "iface_pickle": base64.b64encode(memo.iface_pickle).decode("ascii"),
        "includes": [[name, sha] for name, sha in memo.includes],
        "enum_consts": dict(memo.enum_consts),
    }


def _decode_memo(payload) -> UnitMemo | None:
    """Payload dict → :class:`UnitMemo`; ``None`` when malformed (the
    same tolerance every cache load path has)."""
    if not isinstance(payload, dict):
        return None
    try:
        return UnitMemo(
            token_digest=str(payload["token_digest"]),
            iface_digest=str(payload["iface_digest"]),
            iface_pickle=base64.b64decode(
                payload["iface_pickle"], validate=True
            ),
            includes=[(str(n), str(s)) for n, s in payload["includes"]],
            enum_consts={
                str(k): int(v) for k, v in payload["enum_consts"].items()
            },
        )
    except (KeyError, TypeError, ValueError, binascii.Error):
        return None


class CacheServer:
    """Serve one cache directory's results and memos to many checkers.

    All cache access happens on the event loop thread — entry reads and
    writes are small file operations, and serializing them through one
    thread is what makes concurrent ``put``s safe without extra locks
    (the cache's own flock still guards against *other* processes).
    """

    def __init__(
        self,
        cache_dir: str = DEFAULT_CACHE_DIR,
        host: str = "127.0.0.1",
        port: int | None = 0,
        unix_path: str | None = None,
        metrics=None,
    ) -> None:
        self.cache = ResultCache(cache_dir)
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.metrics = metrics if metrics is not None else GLOBAL_METRICS
        self.bound_addr: str | None = None
        self._servers: list = []
        self._stopped: asyncio.Event | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            self._servers.append(server)
            sock = server.sockets[0].getsockname()
            self.bound_addr = f"{sock[0]}:{sock[1]}"
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path
            )
            self._servers.append(server)

    async def run(self, announce=None) -> int:
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.shutdown())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        if announce is not None:
            announce(self.describe())
        assert self._stopped is not None
        await self._stopped.wait()
        return 0

    def describe(self) -> dict:
        payload = {
            "ready": True,
            "cacheserver": True,
            "pid": os.getpid(),
            "cache": self.cache.root,
        }
        if self.bound_addr is not None:
            payload["addr"] = self.bound_addr
        if self.unix_path is not None:
            payload["unix"] = self.unix_path
        return payload

    async def shutdown(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        self.cache.flush_batch()
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
        if self._stopped is not None:
            self._stopped.set()

    # -- connections ---------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            writer.write(
                (json.dumps(self.describe()) + "\n").encode("utf-8")
            )
            await writer.drain()
            lines = LineReader(reader, max_bytes=CACHE_LINE_MAX_BYTES)
            while True:
                kind, payload = await lines.next_line()
                if kind == "eof":
                    break
                if kind == "oversized":
                    _, size = payload
                    self.metrics.inc("cacheserver.errors")
                    reply = {
                        "ok": False,
                        "error": f"request of {size} bytes exceeds the "
                        f"{CACHE_LINE_MAX_BYTES}-byte line cap",
                    }
                elif not payload.strip():
                    continue
                else:
                    reply = self._handle_request(payload)
                writer.write((json.dumps(reply) + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # a client reset is an ordinary disconnect
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _handle_request(self, line: str) -> dict:
        self.metrics.inc("cacheserver.requests")
        try:
            request = json.loads(line)
        except ValueError:
            self.metrics.inc("cacheserver.errors")
            return {"ok": False, "error": "request is not valid JSON"}
        if not isinstance(request, dict):
            self.metrics.inc("cacheserver.errors")
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "stats":
                return {
                    "ok": True,
                    "cache": self.cache.root,
                    "counters": {
                        name: self.metrics.count(name)
                        for name in (
                            "cacheserver.requests",
                            "cacheserver.hits",
                            "cacheserver.misses",
                            "cacheserver.puts",
                            "cacheserver.errors",
                        )
                    },
                }
            if op == "get":
                return self._handle_get(request)
            if op == "put":
                return self._handle_put(request)
        except ValueError as exc:
            # A non-hex key raises from the cache's path validation.
            self.metrics.inc("cacheserver.errors")
            return {"ok": False, "error": str(exc)}
        self.metrics.inc("cacheserver.errors")
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _handle_get(self, request: dict) -> dict:
        kind = request.get("kind")
        key = request.get("key")
        if kind not in ("result", "memo") or not isinstance(key, str):
            self.metrics.inc("cacheserver.errors")
            return {"ok": False, "error": "get needs kind result|memo + key"}
        if kind == "result":
            found = self.cache.get_result(key)
            if found is not None:
                messages, suppressed = found
                self.metrics.inc("cacheserver.hits")
                return {
                    "ok": True,
                    "hit": True,
                    "payload": {
                        "messages": [m.to_dict() for m in messages],
                        "suppressed": suppressed,
                    },
                }
        else:
            memo = self.cache.get_unit_memo(key)
            if memo is not None:
                self.metrics.inc("cacheserver.hits")
                return {"ok": True, "hit": True, "payload": _encode_memo(memo)}
        self.metrics.inc("cacheserver.misses")
        return {"ok": True, "hit": False}

    def _handle_put(self, request: dict) -> dict:
        kind = request.get("kind")
        key = request.get("key")
        payload = request.get("payload")
        if kind not in ("result", "memo") or not isinstance(key, str):
            self.metrics.inc("cacheserver.errors")
            return {"ok": False, "error": "put needs kind result|memo + key"}
        if kind == "result":
            decoded = ResultCache._decode_result(payload)
            if decoded is None:
                self.metrics.inc("cacheserver.errors")
                return {"ok": False, "error": "malformed result payload"}
            self.cache.put_result(key, decoded[0], decoded[1])
        else:
            memo = _decode_memo(payload)
            if memo is None:
                self.metrics.inc("cacheserver.errors")
                return {"ok": False, "error": "malformed memo payload"}
            self.cache.put_unit_memo(key, memo)
        self.metrics.inc("cacheserver.puts")
        return {"ok": True, "stored": True}


class CacheServerThread:
    """Run a :class:`CacheServer` on a background thread (tests, the
    scaling benchmark, and any process that wants to both serve and
    check). ``addr`` is ready — in ``--cache-server`` syntax — as soon
    as the constructor returns."""

    def __init__(self, cache_dir: str, unix_path: str | None = None,
                 metrics=None) -> None:
        self.server = CacheServer(
            cache_dir=cache_dir,
            port=None if unix_path is not None else 0,
            unix_path=unix_path,
            metrics=metrics,
        )
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="pylclint-cacheserver", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):  # pragma: no cover
            raise RuntimeError("cache server thread did not start")
        self.addr = (
            f"unix:{unix_path}" if unix_path is not None
            else self.server.bound_addr
        )

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def serve():
            await self.server.start()
            self._ready.set()
            assert self.server._stopped is not None
            await self.server._stopped.wait()

        try:
            self._loop.run_until_complete(serve())
        finally:
            self._loop.close()

    def close(self) -> None:
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        )
        self._thread.join(timeout=10.0)


class CacheClient:
    """Synchronous client used by the engine on local cache misses.

    Every method degrades to a miss / no-op on failure; the first
    transport or protocol error marks the client dead so one unreachable
    server costs one connect attempt, not one per unit. ``drain_notes``
    hands the engine the human-readable reason for the run's notes.
    """

    def __init__(self, addr: str, metrics=None,
                 timeout: float = CLIENT_TIMEOUT_S) -> None:
        self.addr = addr
        self.host, self.port, self.unix_path = parse_addr(addr)
        self.metrics = metrics if metrics is not None else GLOBAL_METRICS
        self.timeout = timeout
        self.dead = False
        self.notes: list[str] = []
        self._sock: socket.socket | None = None
        self._file = None

    # -- transport -----------------------------------------------------------

    def _connect(self) -> None:
        if self.unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        self._sock = sock
        self._file = sock.makefile("rwb")
        ready = json.loads(self._file.readline().decode("utf-8"))
        if not ready.get("ready"):
            raise ConnectionError("cache server did not announce ready")

    def _request(self, payload: dict) -> dict | None:
        if self.dead:
            return None
        try:
            if self._file is None:
                self._connect()
            assert self._file is not None
            self._file.write((json.dumps(payload) + "\n").encode("utf-8"))
            self._file.flush()
            line = self._file.readline()
            if not line:
                raise ConnectionError("cache server closed the connection")
            reply = json.loads(line.decode("utf-8"))
            if not isinstance(reply, dict) or not reply.get("ok"):
                raise ValueError(
                    str((reply or {}).get("error", "malformed reply"))
                    if isinstance(reply, dict)
                    else "malformed reply"
                )
            return reply
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            self._fail(exc)
            return None

    def _fail(self, exc: Exception) -> None:
        self.dead = True
        self.metrics.inc("cacheserver.client.errors")
        self.notes.append(
            f"cache server {self.addr} unavailable "
            f"({type(exc).__name__}: {exc}); continuing without it"
        )
        self.close()

    def close(self) -> None:
        for closer in (self._file, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._file = None
        self._sock = None

    def drain_notes(self) -> list[str]:
        out = self.notes
        self.notes = []
        return out

    # -- operations ----------------------------------------------------------

    def ping(self) -> bool:
        reply = self._request({"op": "ping"})
        return bool(reply and reply.get("pong"))

    def stats(self) -> dict | None:
        return self._request({"op": "stats"})

    def get_result(self, fingerprint: str):
        """``(messages, suppressed)`` on a remote hit, else ``None``."""
        reply = self._request(
            {"op": "get", "kind": "result", "key": fingerprint}
        )
        if reply is None or not reply.get("hit"):
            self.metrics.inc("cacheserver.client.misses")
            return None
        decoded = ResultCache._decode_result(reply.get("payload"))
        if decoded is None:
            self.metrics.inc("cacheserver.client.misses")
            return None
        self.metrics.inc("cacheserver.client.hits")
        return decoded

    def put_result(
        self, fingerprint: str, messages: list[Message], suppressed: int
    ) -> None:
        reply = self._request({
            "op": "put",
            "kind": "result",
            "key": fingerprint,
            "payload": {
                "messages": [m.to_dict() for m in messages],
                "suppressed": suppressed,
            },
        })
        if reply is not None:
            self.metrics.inc("cacheserver.client.puts")

    def get_memo(self, key: str) -> UnitMemo | None:
        reply = self._request({"op": "get", "kind": "memo", "key": key})
        if reply is None or not reply.get("hit"):
            self.metrics.inc("cacheserver.client.misses")
            return None
        memo = _decode_memo(reply.get("payload"))
        if memo is None:
            self.metrics.inc("cacheserver.client.misses")
            return None
        self.metrics.inc("cacheserver.client.hits")
        return memo

    def put_memo(self, key: str, memo: UnitMemo) -> None:
        reply = self._request({
            "op": "put",
            "kind": "memo",
            "key": key,
            "payload": _encode_memo(memo),
        })
        if reply is not None:
            self.metrics.inc("cacheserver.client.puts")


# -- CLI entry ---------------------------------------------------------------


def run_cache_server(argv: list[str]) -> int:
    """Entry for ``python -m repro.incremental.cacheserver [options]``."""
    cache_dir = DEFAULT_CACHE_DIR
    host: str = "127.0.0.1"
    port: int | None = None
    unix_path: str | None = None

    def take_value(i: int, name: str) -> str:
        if i >= len(argv):
            raise ValueError(f"{name} requires a value")
        return argv[i]

    try:
        i = 0
        while i < len(argv):
            arg = argv[i]
            if arg.startswith("--") and "=" in arg:
                name, _, value = arg.partition("=")
                argv[i:i + 1] = [name, value]
                continue
            if arg in ("--cache-dir", "-cache-dir"):
                i += 1
                cache_dir = take_value(i, "--cache-dir")
            elif arg in ("--addr", "-addr"):
                i += 1
                parsed_host, parsed_port, parsed_unix = parse_addr(
                    take_value(i, "--addr")
                )
                if parsed_unix is not None:
                    unix_path = parsed_unix
                else:
                    host, port = parsed_host, parsed_port
            else:
                print(
                    f"pylclint-cacheserver: unknown option {arg!r}",
                    file=sys.stderr,
                )
                return 2
            i += 1
    except ValueError as exc:
        print(f"pylclint-cacheserver: {exc}", file=sys.stderr)
        return 2

    if port is None and unix_path is None:
        port = 0  # default: TCP on localhost, kernel-assigned port

    server = CacheServer(
        cache_dir=cache_dir, host=host, port=port, unix_path=unix_path
    )

    def announce(payload: dict) -> None:
        print(json.dumps(payload), flush=True)

    try:
        return asyncio.run(server.run(announce=announce))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        return 0


def main(argv: list[str] | None = None) -> int:
    return run_cache_server(list(sys.argv[1:] if argv is None else argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
