"""Shard partitioning for the distributed checking scheduler.

A *shard* is a batch of translation units dispatched to one worker as a
single task. Sharding replaces the one-task-per-unit fan-out: batching
amortizes the per-task IPC cost, and partitioning by
interface-dependency cluster keeps units that share interface digests
(the same headers, the same module family) on the same worker, so the
symbol-table state they exercise travels — and stays hot — once per
worker instead of once per unit.

Three strategies, selectable with ``--shard-strategy``:

* ``interface`` (default) — group units by their cluster key (the
  engine passes each unit's interface digest), then place whole
  clusters onto shards with the LPT greedy rule (heaviest cluster
  first, onto the currently lightest shard). Clusters are never split,
  so two units with the same interface digest always land together.
* ``size`` — ignore clusters; LPT over individual units by weight
  (source length). Best balance, no locality.
* ``round-robin`` — unit *i* goes to shard ``i % n``. The degenerate
  baseline; useful for comparisons and for pathological cluster shapes.

Every strategy returns a **true partition**: each unit index appears in
exactly one shard, shards are non-empty, and the result is a pure
function of its arguments (no hash-order or RNG dependence), so a
sharded run schedules identically across processes and machines.

The scheduler oversplits — more shards than workers, see
:data:`SHARD_OVERSPLIT` — which is what makes work-stealing happen: a
worker that finishes its shard pulls the next queued shard, so one
straggler shard cannot serialize the tail of the run.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Shards per worker. Oversplitting trades a little per-task IPC for
#: work-stealing granularity: with k shards queued per worker, a single
#: straggler costs at most ~1/k of the run tail instead of half of it.
SHARD_OVERSPLIT = 4

#: The selectable strategies, in documentation order.
STRATEGIES = ("interface", "size", "round-robin")


@dataclass(frozen=True)
class Shard:
    """One scheduled batch: positions into the scheduler's unit list."""

    index: int
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


def shard_count_for(jobs: int, units: int) -> int:
    """How many shards to cut for *units* units on *jobs* workers."""
    return max(1, min(units, jobs * SHARD_OVERSPLIT))


def partition_units(
    count: int,
    shard_count: int,
    strategy: str = "interface",
    cluster_keys: list[str] | None = None,
    weights: list[int] | None = None,
) -> list[Shard]:
    """Partition unit indices ``0..count-1`` into at most *shard_count*
    shards.

    *cluster_keys* (one per unit) drive the ``interface`` strategy;
    omitted, every unit is its own cluster and ``interface`` degrades
    to ``size``. *weights* (one per unit, e.g. source length) drive
    balance; omitted, every unit weighs 1.

    Raises :class:`ValueError` for an unknown strategy; returns only
    non-empty shards, each index in exactly one of them.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {strategy!r} "
            f"(expected one of {', '.join(STRATEGIES)})"
        )
    if count <= 0:
        return []
    shard_count = max(1, min(shard_count, count))
    if weights is None:
        weights = [1] * count
    if strategy == "round-robin":
        buckets: list[list[int]] = [[] for _ in range(shard_count)]
        for i in range(count):
            buckets[i % shard_count].append(i)
    else:
        if strategy == "interface" and cluster_keys is not None:
            groups: dict[str, list[int]] = {}
            for i, key in enumerate(cluster_keys):
                groups.setdefault(key, []).append(i)
            clusters = list(groups.values())
        else:
            clusters = [[i] for i in range(count)]
        buckets = _lpt_pack(clusters, weights, shard_count)
    shards = [
        Shard(index=n, indices=tuple(bucket))
        for n, bucket in enumerate(b for b in buckets if b)
    ]
    return shards


def _lpt_pack(
    clusters: list[list[int]], weights: list[int], shard_count: int
) -> list[list[int]]:
    """Longest-processing-time greedy: heaviest cluster first, onto the
    lightest shard. Deterministic: ties break by first unit index, and
    units inside a shard keep ascending order (the merge step relies on
    index order only, so any order is output-identical; ascending keeps
    schedules reproducible and logs readable)."""
    def cluster_weight(cluster: list[int]) -> int:
        return sum(weights[i] for i in cluster)

    ordered = sorted(
        clusters, key=lambda c: (-cluster_weight(c), c[0])
    )
    bins: list[list[int]] = [[] for _ in range(shard_count)]
    loads = [0] * shard_count
    for cluster in ordered:
        lightest = min(range(shard_count), key=lambda b: (loads[b], b))
        bins[lightest].extend(cluster)
        loads[lightest] += cluster_weight(cluster)
    for b in bins:
        b.sort()
    return bins


def shard_balance(shards: list[Shard], weights: list[int] | None) -> float:
    """Max-shard weight over mean-shard weight (1.0 = perfectly even).

    The scheduler publishes this as the ``engine.shard.balance`` gauge;
    a value far above ~1.5 means one shard dominates the run tail and
    the strategy (or the oversplit factor) is mismatched to the corpus.
    """
    if not shards:
        return 1.0
    if weights is None:
        loads = [float(len(s)) for s in shards]
    else:
        loads = [float(sum(weights[i] for i in s.indices)) for s in shards]
    mean = sum(loads) / len(loads)
    if mean <= 0:
        return 1.0
    return max(loads) / mean
