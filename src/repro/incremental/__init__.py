"""Incremental, parallel checking with a persistent analysis cache.

The paper's performance story — checking "fast enough to run as part of
every build" — rests on modular, per-unit analysis. This package turns
that modularity into an engine:

* :mod:`repro.incremental.fingerprint` — content fingerprints over the
  preprocessed token stream, flags, prelude version, and program
  interface;
* :mod:`repro.incremental.cache` — the corruption-tolerant on-disk
  result cache (``.pylclint-cache/``);
* :mod:`repro.incremental.engine` — the :class:`IncrementalChecker`
  orchestrating memo lookups, cache hits, and (re)checking;
* :mod:`repro.incremental.shard` — partitioning units into worker
  shards by interface-dependency cluster, size, or round-robin;
* :mod:`repro.incremental.parallel` — the sharded scheduler fanning
  per-unit checks over a fork pool with work-stealing;
* :mod:`repro.incremental.cacheserver` — the shared cache service
  (``--cache-server``) letting independent workers, machines, and CI
  runs trade fingerprint-keyed results and unit memos;
* :mod:`repro.incremental.server` — the ``pylclint --daemon`` batch
  driver answering repeated requests from one warm process.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .cacheserver import CacheClient, CacheServer, CacheServerThread
from .engine import CheckStats, IncrementalChecker
from .fingerprint import ENGINE_VERSION
from .server import DaemonServer
from .shard import Shard, partition_units

__all__ = [
    "CacheClient",
    "CacheServer",
    "CacheServerThread",
    "CheckStats",
    "DaemonServer",
    "DEFAULT_CACHE_DIR",
    "ENGINE_VERSION",
    "IncrementalChecker",
    "ResultCache",
    "Shard",
    "partition_units",
]
