"""Fan per-unit checks out over a sharded process pool.

Checking is embarrassingly parallel once parsing is done: each unit is a
pure function of (its AST, the merged program symbol table, the flags) —
see :func:`repro.core.api.check_parsed_unit`. Units are grouped into
*shards* (see :mod:`.shard`): interface-dependency clusters packed into
more batches than workers, so the pool's task queue gives natural
work-stealing — a worker that finishes early pulls the next queued
shard.

Workers are created with the ``fork`` start method, and the shared
inputs (parsed units, symbol table, flags) travel to workers through
fork-inherited memory: the parent parks them in a module global before
building the pool and each task carries only its shard's index tuple.
Nothing unit-sized is ever pickled, so per-worker memory does not scale
with the job count and unpicklable shared state cannot force a serial
fallback.

Failure handling is fault-contained rather than all-or-nothing:

* if the pool cannot be used at all (no ``fork``, pool startup failed),
  the caller gets ``None`` plus a note saying *why* serial checking ran;
* if one shard's task dies (a crashed worker, an exception that escaped
  per-function containment), only that shard is re-checked serially in
  the parent — the rest of the pool's results are kept — and each of
  its units is recorded as a retry note;
* if the *pool itself* collapses (``BrokenProcessPool``: every
  remaining future raises the same error), the remainder falls back to
  serial once, with a single note and one ``engine.parallel.fallbacks``
  increment — one collapse is not N worker crashes.

``KeyboardInterrupt`` and ``SystemExit`` are deliberately never caught:
a user interrupt must abort the run, not demote it to serial checking.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..core.api import (
    ParsedUnit,
    UnitCheckOutput,
    check_parsed_unit,
    ensure_process_initialized,
)
from ..obs.metrics import GLOBAL_METRICS
from .shard import Shard, partition_units, shard_balance, shard_count_for

#: Shared inputs parked by the parent immediately before the pool forks;
#: workers read them back through inherited memory. Only ever non-None
#: inside check_units_parallel's pool window.
_PARENT_STATE: tuple | None = None


def _init_worker() -> None:
    """Runs once in each worker: warm the prelude (usually inherited)."""
    ensure_process_initialized()


def _check_shard_task(indices: tuple[int, ...]) -> tuple[int, list]:
    """Check one shard's units; returns (worker pid, outputs in shard
    order). The pid lets the parent attribute shards to workers for the
    steal/balance metrics without any extra plumbing."""
    assert _PARENT_STATE is not None, "fork did not inherit parent state"
    units, symtab, flags, enum_consts, crash_dir = _PARENT_STATE
    outputs = [
        check_parsed_unit(
            units[i], symtab, flags, enum_consts, crash_dir=crash_dir
        )
        for i in indices
    ]
    return os.getpid(), outputs


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def check_units_parallel(
    units: list[ParsedUnit],
    symtab,
    flags,
    enum_consts: dict[str, int],
    jobs: int,
    crash_dir: str | None = None,
    metrics=None,
    shard_strategy: str = "interface",
    cluster_keys: list[str] | None = None,
    weights: list[int] | None = None,
) -> tuple[list[UnitCheckOutput] | None, list[str]]:
    """Check *units* on a pool of *jobs* workers, preserving unit order.

    *cluster_keys* (typically the units' interface digests) and
    *weights* (source sizes) feed the shard partitioner; see
    :func:`repro.incremental.shard.partition_units` for the strategies.

    Returns ``(outputs, notes)``. ``outputs`` is ``None`` when parallel
    execution never started (the caller should check everything
    serially); *notes* records every fallback and retry so the run can
    report why it did not go fully parallel.
    """
    global _PARENT_STATE
    notes: list[str] = []
    metrics = metrics if metrics is not None else GLOBAL_METRICS
    if jobs <= 1 or len(units) <= 1:
        return None, notes
    if not fork_available():
        metrics.inc("engine.parallel.fallbacks")
        notes.append(
            f"parallel checking unavailable (no fork start method on this "
            f"platform); checked {len(units)} unit(s) serially"
        )
        return None, notes
    workers = min(jobs, len(units))
    shards = partition_units(
        len(units),
        shard_count_for(workers, len(units)),
        strategy=shard_strategy,
        cluster_keys=cluster_keys,
        weights=weights,
    )
    metrics.inc("engine.shard.count", len(shards))
    metrics.set_gauge("engine.shard.balance", shard_balance(shards, weights))
    _PARENT_STATE = (units, symtab, flags, enum_consts, crash_dir)
    try:
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_init_worker,
            )
        except Exception as exc:
            metrics.inc("engine.parallel.fallbacks")
            notes.append(
                f"parallel checking unavailable (cannot start worker pool: "
                f"{type(exc).__name__}); checked {len(units)} unit(s) serially"
            )
            return None, notes
        slots: list[UnitCheckOutput | None] = [None] * len(units)
        shard_pids: list[int] = []
        with pool:
            futures = [
                pool.submit(_check_shard_task, shard.indices)
                for shard in shards
            ]
            pool_broken = False
            for shard, future in zip(shards, futures):
                if pool_broken:
                    # Salvage finished work; everything else runs in the
                    # serial remainder below.
                    done = future.done() and future.exception() is None
                    if not done:
                        _check_shard_serial(
                            shard, units, symtab, flags, enum_consts,
                            crash_dir, slots,
                        )
                        continue
                try:
                    pid, outputs = future.result()
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BrokenProcessPool:
                    # The pool collapsed: every remaining future raises
                    # this same error. One fallback, one note — not one
                    # retry per surviving unit.
                    pool_broken = True
                    metrics.inc("engine.parallel.fallbacks")
                    remaining = sum(
                        len(s)
                        for s, f in zip(shards, futures)
                        if not (f.done() and f.exception() is None)
                    )
                    notes.append(
                        f"worker pool collapsed (BrokenProcessPool); "
                        f"checked the remaining {remaining} unit(s) serially"
                    )
                    _check_shard_serial(
                        shard, units, symtab, flags, enum_consts,
                        crash_dir, slots,
                    )
                    continue
                except Exception as exc:
                    # One dead shard (a crashed task, an exception past
                    # per-function containment) costs one serial re-check
                    # of its units, not the whole pool's work.
                    for i in shard.indices:
                        metrics.inc("engine.parallel.unit_retries")
                        notes.append(
                            f"parallel check of {units[i].unit.name} failed "
                            f"({type(exc).__name__}); re-checked serially"
                        )
                    _check_shard_serial(
                        shard, units, symtab, flags, enum_consts,
                        crash_dir, slots,
                    )
                    continue
                shard_pids.append(pid)
                for i, output in zip(shard.indices, outputs):
                    slots[i] = output
    finally:
        _PARENT_STATE = None
    _record_steals(shards, shard_pids, workers, metrics)
    assert all(output is not None for output in slots)
    return slots, notes


def _check_shard_serial(
    shard: Shard,
    units: list[ParsedUnit],
    symtab,
    flags,
    enum_consts: dict[str, int],
    crash_dir: str | None,
    slots: list,
) -> None:
    for i in shard.indices:
        slots[i] = check_parsed_unit(
            units[i], symtab, flags, enum_consts, crash_dir=crash_dir
        )


def _record_steals(
    shards: list[Shard], shard_pids: list[int], workers: int, metrics
) -> None:
    """Shards a worker ran beyond its fair share were stolen from the
    queue after it finished its own allotment."""
    if not shard_pids:
        return
    per_pid: dict[int, int] = {}
    for pid in shard_pids:
        per_pid[pid] = per_pid.get(pid, 0) + 1
    fair = math.ceil(len(shards) / workers)
    steals = sum(max(0, count - fair) for count in per_pid.values())
    metrics.inc("engine.shard.steals", steals)
