"""Fan per-unit checks out over a process pool.

Checking is embarrassingly parallel once parsing is done: each unit is a
pure function of (its AST, the merged program symbol table, the flags) —
see :func:`repro.core.api.check_parsed_unit`. The pool broadcasts the
shared inputs once per worker through the executor initializer; tasks
then carry only a unit index.

Workers are created with the ``fork`` start method so the parsed prelude
is inherited for free. Failure handling is fault-contained rather than
all-or-nothing:

* if the pool cannot be used at all (no ``fork``, unpicklable state),
  the caller gets ``None`` plus a note saying *why* serial checking ran;
* if one worker task dies (a crashed worker process, an exception that
  escaped per-function containment), only that unit is re-checked
  serially in the parent — the rest of the pool's results are kept —
  and the retry is recorded as a note.

``KeyboardInterrupt`` and ``SystemExit`` are deliberately never caught:
a user interrupt must abort the run, not demote it to serial checking.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor

from ..core.api import (
    ParsedUnit,
    UnitCheckOutput,
    check_parsed_unit,
    ensure_process_initialized,
)
from ..obs.metrics import GLOBAL_METRICS

_WORKER_STATE: tuple | None = None


def _init_worker(payload: bytes) -> None:
    """Runs once in each worker: warm the prelude, unpack shared state."""
    global _WORKER_STATE
    ensure_process_initialized()
    units, symtab, flags, enum_consts, crash_dir = pickle.loads(payload)
    _WORKER_STATE = (units, symtab, flags, enum_consts, crash_dir)


def _check_unit_task(index: int) -> UnitCheckOutput:
    assert _WORKER_STATE is not None, "worker initializer did not run"
    units, symtab, flags, enum_consts, crash_dir = _WORKER_STATE
    return check_parsed_unit(
        units[index], symtab, flags, enum_consts, crash_dir=crash_dir
    )


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def check_units_parallel(
    units: list[ParsedUnit],
    symtab,
    flags,
    enum_consts: dict[str, int],
    jobs: int,
    crash_dir: str | None = None,
    metrics=None,
) -> tuple[list[UnitCheckOutput] | None, list[str]]:
    """Check *units* on a pool of *jobs* workers, preserving unit order.

    Returns ``(outputs, notes)``. ``outputs`` is ``None`` when parallel
    execution never started (the caller should check everything
    serially); *notes* records every fallback and per-unit retry so the
    run can report why it did not go fully parallel.
    """
    notes: list[str] = []
    metrics = metrics if metrics is not None else GLOBAL_METRICS
    if jobs <= 1 or len(units) <= 1:
        return None, notes
    if not fork_available():
        metrics.inc("engine.parallel.fallbacks")
        notes.append(
            f"parallel checking unavailable (no fork start method on this "
            f"platform); checked {len(units)} unit(s) serially"
        )
        return None, notes
    try:
        payload = pickle.dumps((units, symtab, flags, enum_consts, crash_dir))
    except Exception as exc:
        metrics.inc("engine.parallel.fallbacks")
        notes.append(
            f"parallel checking unavailable (shared state not picklable: "
            f"{type(exc).__name__}); checked {len(units)} unit(s) serially"
        )
        return None, notes
    workers = min(jobs, len(units))
    try:
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("fork"),
            initializer=_init_worker,
            initargs=(payload,),
        )
    except Exception as exc:
        metrics.inc("engine.parallel.fallbacks")
        notes.append(
            f"parallel checking unavailable (cannot start worker pool: "
            f"{type(exc).__name__}); checked {len(units)} unit(s) serially"
        )
        return None, notes
    outputs: list[UnitCheckOutput] = []
    with pool:
        futures = [pool.submit(_check_unit_task, i) for i in range(len(units))]
        for index, future in enumerate(futures):
            try:
                outputs.append(future.result())
            except Exception as exc:
                # One dead task (crashed worker, broken pool, exception
                # past per-function containment) costs one serial
                # re-check, not the whole pool's work.
                metrics.inc("engine.parallel.unit_retries")
                notes.append(
                    f"parallel check of {units[index].unit.name} failed "
                    f"({type(exc).__name__}); re-checked serially"
                )
                outputs.append(
                    check_parsed_unit(
                        units[index], symtab, flags, enum_consts,
                        crash_dir=crash_dir,
                    )
                )
    return outputs, notes
