"""Fan per-unit checks out over a process pool.

Checking is embarrassingly parallel once parsing is done: each unit is a
pure function of (its AST, the merged program symbol table, the flags) —
see :func:`repro.core.api.check_parsed_unit`. The pool broadcasts the
shared inputs once per worker through the executor initializer; tasks
then carry only a unit index.

Workers are created with the ``fork`` start method so the parsed prelude
is inherited for free; on platforms without fork (or on any pool
failure, e.g. an unpicklable AST node) the caller falls back to serial
checking, which is always correct.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor

from ..core.api import (
    ParsedUnit,
    UnitCheckOutput,
    check_parsed_unit,
    ensure_process_initialized,
)

_WORKER_STATE: tuple | None = None


def _init_worker(payload: bytes) -> None:
    """Runs once in each worker: warm the prelude, unpack shared state."""
    global _WORKER_STATE
    ensure_process_initialized()
    units, symtab, flags, enum_consts = pickle.loads(payload)
    _WORKER_STATE = (units, symtab, flags, enum_consts)


def _check_unit_task(index: int) -> UnitCheckOutput:
    assert _WORKER_STATE is not None, "worker initializer did not run"
    units, symtab, flags, enum_consts = _WORKER_STATE
    return check_parsed_unit(units[index], symtab, flags, enum_consts)


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def check_units_parallel(
    units: list[ParsedUnit],
    symtab,
    flags,
    enum_consts: dict[str, int],
    jobs: int,
) -> list[UnitCheckOutput] | None:
    """Check *units* on a pool of *jobs* workers, preserving unit order.

    Returns ``None`` when parallel execution is unavailable or fails, so
    the caller can fall back to serial checking.
    """
    if jobs <= 1 or len(units) <= 1 or not fork_available():
        return None
    try:
        payload = pickle.dumps((units, symtab, flags, enum_consts))
    except Exception:
        return None
    workers = min(jobs, len(units))
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("fork"),
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            return list(pool.map(_check_unit_task, range(len(units))))
    except Exception:
        return None
