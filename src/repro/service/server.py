"""The asyncio multi-client checking service (``pylclint --serve``).

One process serves many concurrent clients over TCP-on-localhost and/or
a UNIX socket, speaking the line protocol of :mod:`.protocol` (the same
one the legacy ``--daemon`` spoke, so existing clients keep working).
What the daemon could not do:

* **concurrent sessions** — every connection is its own session; the
  parsed prelude, the result cache, and the journal batcher are shared
  process-wide, so one client's cold check warms everyone.
* **backpressure** — admitted requests (queued + running) are bounded
  by ``max_inflight``; beyond it a client gets an immediate ``busy``
  reply carrying ``retry_after_ms`` instead of unbounded queueing.
* **prioritization** — ``interactive`` checks are scheduled before
  ``batch`` checks, which beat ``metrics`` probes; a priority is
  declared per request in the object form.
* **deadlines + cooperative cancellation** — each request gets a
  deadline (service default, overridable per request); when it fires,
  the request's :class:`~repro.core.faults.CancelScope` is cancelled
  and the engine stops at the next translation-unit boundary. A
  request whose deadline passes while still queued is failed without
  running at all.
* **graceful drain** — SIGTERM/SIGINT stop the listeners, let every
  admitted request finish (or hit its deadline), flush every session,
  and exit 0. New requests during the drain get a ``shutting-down``
  reply.
* **fault containment** — a malformed line, an oversized line, a
  client that disconnects mid-request, or a checker crash affect only
  that request; the reply always carries a correlation ``id`` when one
  is recoverable.

The checker itself is synchronous, so check requests execute on a small
thread pool (the engine's per-run state is thread-local; the shared
prelude/caches are thread-safe). The event loop owns all scheduling,
deadlines, and socket IO.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..core.api import ensure_process_initialized
from ..core.faults import CancelScope, RequestCancelled, cancel_scope
from ..incremental.cache import DEFAULT_CACHE_DIR, ResultCache
from ..obs.metrics import GLOBAL_METRICS
from .protocol import (
    DEFAULT_RETRY_AFTER_MS,
    MAX_REQUEST_BYTES,
    ProtocolError,
    Request,
    error_reply,
    execute_check,
    metrics_reply,
    oversized_reply,
    parse_request_line,
    recover_request_id,
)

#: Default bound on admitted (queued + running) requests.
DEFAULT_MAX_INFLIGHT = 64

#: Default executor threads actually checking. The engine is CPU-bound
#: Python, so more threads mostly add contention; a few hide cache and
#: file IO behind each other.
DEFAULT_WORKERS = 4

#: How much of an oversized line is kept for request-id recovery.
_OVERSIZE_KEEP = 4096


@dataclass
class _Job:
    """One admitted request waiting for, or on, a worker."""

    seq: int
    request: Request
    request_id: object
    session: "Session"
    enqueued_at: float
    deadline: float | None
    scope: CancelScope = field(default_factory=CancelScope)


class Session:
    """Per-connection state: correlation ids, stats, serialized writes."""

    def __init__(self, service: "CheckingService", writer) -> None:
        self.service = service
        self.writer = writer
        self.requests = 0
        self.errors = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.closed = False
        self.bye_sent = False
        self.outstanding = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._write_lock = asyncio.Lock()
        self._inflight_scopes: set[CancelScope] = set()

    def next_request_id(self, request: Request | None = None):
        self.requests += 1
        if request is not None and request.id is not None:
            return request.id
        return self.requests

    async def send(self, payload: dict) -> None:
        """Write one reply line; a dead connection marks the session
        closed (and cancels its work) instead of raising."""
        if self.closed:
            return
        data = (json.dumps(payload) + "\n").encode("utf-8")
        try:
            async with self._write_lock:
                self.writer.write(data)
                await self.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            self.abandon("client disconnected")

    def abandon(self, reason: str) -> None:
        """The client is gone: stop replying, cancel its running work."""
        if not self.closed:
            self.closed = True
            GLOBAL_METRICS.inc("service.sessions.disconnected")
        for scope in list(self._inflight_scopes):
            scope.cancel(reason)

    def job_started(self, scope: CancelScope) -> None:
        self._inflight_scopes.add(scope)

    def job_finished(self, scope: CancelScope) -> None:
        self._inflight_scopes.discard(scope)
        self.outstanding -= 1
        if self.outstanding == 0:
            self._idle.set()

    def job_admitted(self) -> None:
        self.outstanding += 1
        self._idle.clear()

    async def wait_idle(self) -> None:
        await self._idle.wait()

    def bye_payload(self) -> dict:
        return {
            "bye": True,
            "requests": self.requests,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    async def send_bye(self) -> None:
        """Send the summary line exactly once, then stop replying (the
        connection handler and a concurrent drain may both get here)."""
        if self.bye_sent:
            return
        self.bye_sent = True
        await self.send(self.bye_payload())
        self.closed = True


class LineReader:
    """Bounded line framing over an asyncio stream.

    Unlike ``StreamReader.readline`` this never buffers more than the
    request cap plus one chunk, and an over-long line is consumed to
    its terminating newline (or EOF) while keeping a prefix for
    request-id recovery — a slow-loris or runaway client costs bounded
    memory and exactly one error reply.

    The line cap defaults to the checking protocol's request bound but
    is parameterized: the cache service reuses this framing with a
    larger cap sized for pickled interface payloads.
    """

    _CHUNK = 1 << 16

    def __init__(
        self,
        reader: asyncio.StreamReader,
        max_bytes: int = MAX_REQUEST_BYTES,
    ) -> None:
        self._reader = reader
        self._buf = bytearray()
        self._max_bytes = max_bytes

    async def next_line(self):
        """Returns ``("line", text)``, ``("oversized", (prefix, size))``,
        or ``("eof", None)``."""
        while True:
            idx = self._buf.find(b"\n")
            if idx >= 0:
                line = self._buf[:idx]
                del self._buf[: idx + 1]
                if len(line) > self._max_bytes:
                    return "oversized", (
                        line[:_OVERSIZE_KEEP].decode("utf-8", "replace"),
                        len(line),
                    )
                return "line", line.decode("utf-8", "replace")
            if len(self._buf) > self._max_bytes:
                return "oversized", await self._consume_oversized()
            chunk = await self._reader.read(self._CHUNK)
            if not chunk:
                if self._buf.strip():
                    # A final unterminated line still gets an answer.
                    line = self._buf.decode("utf-8", "replace")
                    self._buf.clear()
                    return "line", line
                return "eof", None
            self._buf.extend(chunk)

    async def _consume_oversized(self):
        prefix = self._buf[:_OVERSIZE_KEEP].decode("utf-8", "replace")
        size = len(self._buf)
        self._buf.clear()
        while True:
            chunk = await self._reader.read(self._CHUNK)
            if not chunk:
                return prefix, size
            idx = chunk.find(b"\n")
            if idx >= 0:
                size += idx
                self._buf.extend(chunk[idx + 1:])
                return prefix, size
            size += len(chunk)


class CheckingService:
    """The server: listeners, the bounded priority queue, the workers."""

    def __init__(
        self,
        cache_dir: str | None = DEFAULT_CACHE_DIR,
        jobs: int = 1,
        host: str = "127.0.0.1",
        port: int | None = 0,
        unix_path: str | None = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        request_timeout: float | None = None,
        workers: int = DEFAULT_WORKERS,
        metrics=None,
    ) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.jobs = jobs
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.max_inflight = max(1, max_inflight)
        self.request_timeout = request_timeout
        self.workers = max(1, workers)
        self.metrics = metrics if metrics is not None else GLOBAL_METRICS
        self.bound_addr: str | None = None

        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._admitted = 0
        self._inflight = 0
        self._seq = 0
        self._draining = False
        self._stopped: asyncio.Event | None = None
        self._servers: list = []
        self._sessions: set[Session] = set()
        self._conn_tasks: set = set()
        self._worker_tasks: list = []
        self._pool: ThreadPoolExecutor | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind listeners, start workers, pay the prelude parse once."""
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="pylclint-check"
        )
        await loop.run_in_executor(self._pool, ensure_process_initialized)
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            self._servers.append(server)
            sock = server.sockets[0].getsockname()
            self.bound_addr = f"{sock[0]}:{sock[1]}"
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path
            )
            self._servers.append(server)
        for _ in range(self.workers):
            self._worker_tasks.append(asyncio.ensure_future(self._worker()))

    async def run(self, announce=None) -> int:
        """Serve until a drain finishes; returns the exit status (0)."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self.shutdown()),
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        if announce is not None:
            announce(self.describe())
        await self._stopped.wait()
        return 0

    def describe(self) -> dict:
        payload = {
            "serving": True,
            "pid": os.getpid(),
            "max_inflight": self.max_inflight,
            "request_timeout": self.request_timeout,
            "jobs": self.jobs,
            "cache": self.cache.root if self.cache else None,
        }
        if self.bound_addr is not None:
            payload["addr"] = self.bound_addr
        if self.unix_path is not None:
            payload["unix"] = self.unix_path
        return payload

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish admitted work, flush
        the journal, close every session, release the workers."""
        if self._draining:
            return
        self._draining = True
        self.metrics.inc("service.drains")
        for server in self._servers:
            server.close()
        # Every admitted job completes (or hits its deadline) before the
        # workers are released; new lines get shutting-down replies.
        await self._queue.join()
        for _ in self._worker_tasks:
            self._queue.put_nowait((10 ** 9, 10 ** 9, None))
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        for session in list(self._sessions):
            await session.send_bye()
            try:
                session.writer.close()
            except Exception:
                pass
        # Closing the transports feeds EOF to every connection handler,
        # so they all exit on their own — no task cancellation, which
        # keeps loop teardown quiet.
        if self._conn_tasks:
            await asyncio.wait(self._conn_tasks, timeout=5.0)
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        if self.cache is not None:
            self.cache.flush_batch()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
        assert self._stopped is not None
        self._stopped.set()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        session = Session(self, writer)
        self._sessions.add(session)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.metrics.inc("service.sessions.opened")
        try:
            await session.send({
                "ready": True,
                "jobs": self.jobs,
                "cache": self.cache.root if self.cache else None,
                "max_inflight": self.max_inflight,
                "request_timeout": self.request_timeout,
            })
            lines = LineReader(reader)
            while not session.closed:
                kind, payload = await lines.next_line()
                if kind == "eof":
                    break
                if kind == "oversized":
                    prefix, size = payload
                    session.requests += 1
                    request_id = recover_request_id(prefix)
                    if request_id is None:
                        request_id = session.requests
                    session.errors += 1
                    self.metrics.inc("service.requests.rejected.oversized")
                    await session.send(oversized_reply(request_id, size))
                    continue
                if not payload.strip():
                    continue
                if await self._handle_line(session, payload):
                    break  # clean per-session shutdown
            # A client that closed its write side (or asked to shut
            # down) still gets every outstanding reply before the bye.
            await session.wait_idle()
            await session.send_bye()
        except asyncio.CancelledError:  # pragma: no cover - loop teardown
            raise
        except (ConnectionError, OSError):
            pass  # a mid-read reset is an ordinary disconnect
        except Exception:
            self.metrics.inc("service.sessions.errors")
        finally:
            session.abandon("client disconnected")
            self._sessions.discard(session)
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_line(self, session: Session, line: str) -> bool:
        """Parse and dispatch one request line; True ends the session."""
        if line.strip() in ("shutdown", "quit", "exit"):
            return True  # the bare verb ends the session silently
        self.metrics.inc("service.requests.total")
        try:
            request = parse_request_line(line)
        except ProtocolError as exc:
            session.requests += 1
            request_id = exc.request_id
            if request_id is None:
                request_id = session.requests
            session.errors += 1
            self.metrics.inc("service.requests.rejected.protocol")
            await session.send(error_reply(request_id, "protocol", str(exc)))
            return False
        request_id = session.next_request_id(request)
        if request.verb == "shutdown":
            # JSON-form shutdown: acknowledged, correlatable session end
            # (identical to the stdin/stdout shim's reply).
            await session.send(
                {"id": request_id, "status": 0, "shutdown": True}
            )
            return True
        if self._draining:
            session.errors += 1
            self.metrics.inc("service.requests.rejected.draining")
            await session.send(error_reply(
                request_id, "shutting-down",
                "service is draining; retry against a new instance",
            ))
            return False
        if self._admitted >= self.max_inflight:
            session.errors += 1
            self.metrics.inc("service.requests.rejected.busy")
            depth = self._queue.qsize()
            await session.send(error_reply(
                request_id, "busy",
                f"server at capacity ({self.max_inflight} requests "
                f"admitted); retry later",
                retry_after_ms=DEFAULT_RETRY_AFTER_MS + 10 * depth,
            ))
            return False
        loop = asyncio.get_running_loop()
        timeout = (
            request.timeout_s
            if request.timeout_s is not None
            else self.request_timeout
        )
        self._seq += 1
        job = _Job(
            seq=self._seq,
            request=request,
            request_id=request_id,
            session=session,
            enqueued_at=loop.time(),
            deadline=(loop.time() + timeout) if timeout is not None else None,
        )
        self._admitted += 1
        session.job_admitted()
        self.metrics.inc("service.requests.admitted")
        self._queue.put_nowait((request.rank, job.seq, job))
        self._update_gauges()
        return False

    # -- workers -------------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            _, _, job = await self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            self._inflight += 1
            self._update_gauges()
            try:
                await self._run_job(job)
            except Exception:  # a job must never kill its worker
                self.metrics.inc("service.jobs.errors")
            finally:
                self._inflight -= 1
                self._admitted -= 1
                job.session.job_finished(job.scope)
                self._update_gauges()
                self._queue.task_done()

    async def _run_job(self, job: _Job) -> None:
        loop = asyncio.get_running_loop()
        session = job.session
        session.job_started(job.scope)
        if session.closed:
            self.metrics.inc("service.requests.cancelled.disconnect")
            return
        now = loop.time()
        if job.deadline is not None and now >= job.deadline:
            self.metrics.inc("service.requests.timed_out")
            await session.send(error_reply(
                job.request_id, "deadline",
                "deadline exceeded while queued "
                f"(waited {now - job.enqueued_at:.3f}s)",
            ))
            return
        if job.request.verb == "metrics":
            self.metrics.inc("service.requests.metrics")
            reply = metrics_reply(job.request_id, self.metrics)
            reply["latency"] = self._latency_summary()
            await session.send(reply)
            return
        handle = None
        if job.deadline is not None:
            handle = loop.call_at(
                job.deadline, job.scope.cancel, "deadline exceeded"
            )
        try:
            reply = await loop.run_in_executor(
                self._pool, self._execute_job, job
            )
        finally:
            if handle is not None:
                handle.cancel()
        latency = loop.time() - job.enqueued_at
        self.metrics.observe("service.request_s", latency)
        if reply is None:
            # Cancelled cooperatively: deadline fired or client left.
            if job.scope.reason == "client disconnected":
                self.metrics.inc("service.requests.cancelled.disconnect")
                return
            self.metrics.inc("service.requests.timed_out")
            await session.send(error_reply(
                job.request_id, "deadline",
                f"deadline exceeded after {latency:.3f}s "
                f"(stopped at a unit boundary)",
            ))
            return
        status = reply.get("status")
        self.metrics.inc(f"service.requests.status.{status}")
        if "error" in reply:
            session.errors += 1
        stats = reply.get("stats")
        if stats is not None:
            session.cache_hits += stats.get("cache_hits", 0)
            session.cache_misses += stats.get("cache_misses", 0)
        await session.send(reply)

    def _execute_job(self, job: _Job):
        """Thread-pool entry: one check under the job's cancel scope."""
        with cancel_scope(job.scope):
            try:
                return execute_check(
                    job.request, job.request_id, self.cache, self.jobs
                )
            except RequestCancelled:
                return None

    # -- observability -------------------------------------------------------

    def _update_gauges(self) -> None:
        self.metrics.set_gauge("service.queue.depth", self._queue.qsize())
        self.metrics.set_gauge("service.inflight", self._inflight)
        self.metrics.set_gauge("service.admitted", self._admitted)
        self.metrics.set_gauge("service.sessions", len(self._sessions))

    def _latency_summary(self) -> dict:
        hist = self.metrics.histogram("service.request_s")
        if hist is None or hist.count == 0:
            return {"count": 0, "p50_ms": 0.0, "p99_ms": 0.0}
        return {
            "count": hist.count,
            "p50_ms": round(hist.percentile(0.5) * 1000, 3),
            "p99_ms": round(hist.percentile(0.99) * 1000, 3),
        }


# -- CLI entry ---------------------------------------------------------------


def parse_addr(value: str) -> tuple[str | None, int | None, str | None]:
    """``HOST:PORT`` or ``unix:PATH`` → (host, port, unix_path).

    Shared by ``--serve``'s ``--addr`` and the cache service's
    ``--cache-server`` / ``--addr`` options.
    """
    if value.startswith("unix:"):
        path = value[len("unix:"):]
        if not path:
            raise ValueError("unix: address requires a socket path")
        return None, None, path
    host, sep, port_text = value.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", value
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad --addr {value!r} (expected HOST:PORT or unix:PATH)"
        ) from None
    return host or "127.0.0.1", port, None


def run_service(argv: list[str]) -> int:
    """Entry for ``pylclint --serve [options]``."""
    cache_dir: str | None = DEFAULT_CACHE_DIR
    jobs = 1
    host: str = "127.0.0.1"
    port: int | None = None
    unix_path: str | None = None
    max_inflight = DEFAULT_MAX_INFLIGHT
    request_timeout: float | None = None
    workers = DEFAULT_WORKERS

    def take_value(i: int, name: str) -> str:
        if i >= len(argv):
            raise ValueError(f"{name} requires a value")
        return argv[i]

    try:
        i = 0
        while i < len(argv):
            arg = argv[i]
            if arg.startswith("--") and "=" in arg:
                name, _, value = arg.partition("=")
                argv[i:i + 1] = [name, value]
                continue
            if arg in ("--cache-dir", "-cache-dir"):
                i += 1
                cache_dir = take_value(i, "--cache-dir")
            elif arg in ("--no-cache", "-no-cache"):
                cache_dir = None
            elif arg in ("--jobs", "-jobs", "-j"):
                i += 1
                jobs = max(1, int(take_value(i, "--jobs")))
            elif arg in ("--addr", "-addr"):
                i += 1
                parsed_host, parsed_port, parsed_unix = parse_addr(
                    take_value(i, "--addr")
                )
                if parsed_unix is not None:
                    unix_path = parsed_unix
                else:
                    host, port = parsed_host, parsed_port
            elif arg in ("--max-inflight", "-max-inflight"):
                i += 1
                max_inflight = max(1, int(take_value(i, "--max-inflight")))
            elif arg in ("--request-timeout", "-request-timeout"):
                i += 1
                request_timeout = float(take_value(i, "--request-timeout"))
                if request_timeout <= 0:
                    request_timeout = None
            elif arg in ("--workers", "-workers"):
                i += 1
                workers = max(1, int(take_value(i, "--workers")))
            else:
                print(
                    f"pylclint: unknown --serve option {arg!r}",
                    file=sys.stderr,
                )
                return 2
            i += 1
    except ValueError as exc:
        print(f"pylclint: {exc}", file=sys.stderr)
        return 2

    if port is None and unix_path is None:
        port = 0  # default: TCP on localhost, kernel-assigned port

    service = CheckingService(
        cache_dir=cache_dir,
        jobs=jobs,
        host=host,
        port=port,
        unix_path=unix_path,
        max_inflight=max_inflight,
        request_timeout=request_timeout,
        workers=workers,
    )

    def announce(payload: dict) -> None:
        print(json.dumps(payload), flush=True)

    try:
        return asyncio.run(service.run(announce=announce))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        return 0


def main(argv: list[str] | None = None) -> int:
    return run_service(list(sys.argv[1:] if argv is None else argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
