"""The multi-client checking service (``pylclint --serve``).

Layers:

* :mod:`repro.service.protocol` — the line protocol shared by the async
  server and the legacy stdin/stdout daemon shim: request parsing
  (shell line, JSON array, JSON object), request-id recovery from
  malformed input, the reply schema.
* :mod:`repro.service.server` — the stdlib-``asyncio`` server: TCP
  localhost and/or UNIX-socket listeners, per-connection sessions, a
  bounded priority queue with backpressure, per-request deadlines with
  cooperative cancellation, graceful drain on SIGTERM.
* :mod:`repro.service.client` — a small blocking client used by tests,
  the chaos-load harness, and scripts.
* :mod:`repro.service.locking` — advisory cache-directory locking
  shared with :mod:`repro.incremental.cache`.

This ``__init__`` stays import-light on purpose: the incremental cache
imports :mod:`repro.service.locking`, so importing the server (which
imports the cache) here would be circular.
"""

__all__ = ["protocol", "server", "client", "locking"]
