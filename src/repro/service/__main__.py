"""``python -m repro.service`` runs the checking service directly."""

import sys

from .server import main

if __name__ == "__main__":
    sys.exit(main())
