"""A small blocking client for the checking service.

Used by the chaos-load harness, the integration tests, and handy in
scripts::

    from repro.service.client import ServiceClient

    with ServiceClient.connect_tcp("127.0.0.1", 7777) as client:
        reply = client.check(["-quiet", "src/a.c"], request_id=1)
        print(reply["status"], reply["output"])

The client is deliberately dumb — blocking socket, line framing, JSON
replies — because that is exactly the protocol surface external tools
integrate against; anything the client cannot do over the wire, a build
system cannot either.
"""

from __future__ import annotations

import json
import socket

from .protocol import MAX_REQUEST_BYTES

#: Replies can carry a full rendered batch output; allow generous lines.
_MAX_REPLY_BYTES = 64 * MAX_REQUEST_BYTES


class ServiceClient:
    """One connection to a running checking service."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._buf = bytearray()
        self.ready = self.recv_reply()  # the server speaks first

    # -- construction --------------------------------------------------------

    @classmethod
    def connect_tcp(
        cls, host: str, port: int, timeout: float | None = 30.0
    ) -> "ServiceClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock)

    @classmethod
    def connect_unix(
        cls, path: str, timeout: float | None = 30.0
    ) -> "ServiceClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
        return cls(sock)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    # -- raw line IO ---------------------------------------------------------

    def send_line(self, line: str) -> None:
        self.sock.sendall(line.encode("utf-8") + b"\n")

    def send_bytes(self, data: bytes) -> None:
        self.sock.sendall(data)

    def recv_reply(self) -> dict | None:
        """Read one JSON reply line; ``None`` on EOF."""
        while True:
            idx = self._buf.find(b"\n")
            if idx >= 0:
                line = self._buf[:idx]
                del self._buf[: idx + 1]
                if not line.strip():
                    continue
                return json.loads(line.decode("utf-8"))
            if len(self._buf) > _MAX_REPLY_BYTES:
                raise ValueError("reply line exceeds the client's cap")
            chunk = self.sock.recv(1 << 16)
            if not chunk:
                if self._buf.strip():
                    line = bytes(self._buf)
                    self._buf.clear()
                    return json.loads(line.decode("utf-8"))
                return None
            self._buf.extend(chunk)

    # -- request helpers -----------------------------------------------------

    def request(self, payload: dict) -> dict | None:
        self.send_line(json.dumps(payload))
        return self.recv_reply()

    def check(
        self,
        argv: list[str],
        request_id=None,
        priority: str = "interactive",
        timeout: float | None = None,
    ) -> dict | None:
        payload: dict = {"op": "check", "argv": argv, "priority": priority}
        if request_id is not None:
            payload["id"] = request_id
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request(payload)

    def metrics(self, request_id=None) -> dict | None:
        payload: dict = {"op": "metrics"}
        if request_id is not None:
            payload["id"] = request_id
        return self.request(payload)

    def shutdown(self) -> dict | None:
        """End the session; returns the bye payload (or None)."""
        self.send_line("shutdown")
        return self.recv_reply()
