"""The checking-service line protocol, shared by every transport.

One request per line, one JSON reply object per line. Three request
forms are accepted (the first two are the legacy ``--daemon`` forms,
preserved verbatim):

* a plain shell-style command line — ``-quiet src/a.c``;
* a JSON array of CLI arguments — ``["-quiet", "src/a.c"]``;
* a JSON object — ``{"id": 7, "argv": ["-quiet", "src/a.c"],
  "priority": "batch", "timeout": 5.0}`` — the only form that lets a
  pipelined client choose its own correlation ``id``, a scheduling
  priority (``interactive`` beats ``batch`` beats ``metrics``), and a
  per-request deadline in seconds. ``{"op": "metrics"}`` and
  ``{"op": "shutdown"}`` are the object spellings of the bare
  ``metrics`` / ``shutdown`` verbs.

Reply schema (stable; documented in docs/internals.md §9):

* ``{"ready": true, ...}`` — once per connection, before any reply.
* ``{"id": ..., "status": N, "output": "...", "stats": {...}}`` — a
  completed check; ``status`` follows the CLI exit-code contract.
* ``{"id": ..., "status": N, "error": "...", "kind": K}`` — a failed
  request. ``kind`` partitions failures for clients: ``protocol``
  (malformed request), ``oversized``, ``usage`` (the CLI rejected the
  arguments), ``busy`` (backpressure; the reply carries
  ``retry_after_ms``), ``deadline`` (the per-request deadline fired),
  ``shutting-down`` (the service is draining), ``internal``. ``id`` is
  **always present**: the client's id when one could be recovered even
  from a malformed or oversized line, otherwise the server's running
  request counter.
* ``{"id": ..., "status": 0, "metrics": {...}}`` — a ``metrics`` reply.
* ``{"bye": true, ...}`` — once, when the connection/session ends.

``status`` in error replies is 2 when the client can fix the request
(protocol, oversized, usage, busy, shutting-down — resend it, smaller,
later, or elsewhere) and 3 when the service failed it (deadline,
internal).
"""

from __future__ import annotations

import json
import re
import shlex
from dataclasses import dataclass

#: Hard cap on one request line. A client that streams a huge (or
#: unterminated) line gets an error reply instead of exhausting memory
#: or wedging the service.
MAX_REQUEST_BYTES = 1 << 20

#: Scheduling ranks, best first. ``metrics`` requests rank last so a
#: status probe can never delay a developer's interactive check.
PRIORITIES = {"interactive": 0, "batch": 1, "metrics": 2}

#: Error-reply kinds that map to "client can fix it" (status 2); the
#: rest are service-side failures (status 3).
_CLIENT_KINDS = frozenset(
    ("protocol", "oversized", "usage", "busy", "shutting-down")
)

#: How long a busy-rejected client should wait before retrying.
DEFAULT_RETRY_AFTER_MS = 100

_ID_RE = re.compile(
    r'"id"\s*:\s*("(?:[^"\\]|\\.){0,200}"|-?\d{1,18})'
)


class ProtocolError(ValueError):
    """A request line the service could not act on, with whatever
    correlation id could still be recovered from it."""

    def __init__(self, message: str, request_id=None) -> None:
        super().__init__(message)
        self.request_id = request_id


@dataclass
class Request:
    """One parsed request line."""

    verb: str  # "check" | "metrics" | "shutdown"
    argv: list[str]
    id: int | str | None = None  # client-supplied correlation id
    priority: str = "interactive"
    timeout_s: float | None = None

    @property
    def rank(self) -> int:
        return PRIORITIES.get(self.priority, PRIORITIES["batch"])


def recover_request_id(text: str):
    """Best-effort extraction of a client ``"id"`` from a malformed or
    truncated request line, so pipelined clients can still correlate
    the error reply. Returns ``None`` when nothing recoverable."""
    match = _ID_RE.search(text)
    if match is None:
        return None
    token = match.group(1)
    if token.startswith('"'):
        try:
            return json.loads(token)
        except ValueError:
            return None
    try:
        return int(token)
    except ValueError:
        return None


def parse_request_line(line: str) -> Request:
    """Parse one request line into a :class:`Request`.

    Raises :class:`ProtocolError` (carrying any recoverable client id)
    for malformed input. The caller enforces the size cap — a line
    arriving here is already under :data:`MAX_REQUEST_BYTES`.
    """
    stripped = line.strip()
    if stripped in ("shutdown", "quit", "exit"):
        return Request(verb="shutdown", argv=[])
    if stripped == "metrics":
        return Request(verb="metrics", argv=[], priority="metrics")
    if stripped.startswith("{"):
        return _parse_object_request(stripped)
    if stripped.startswith("["):
        try:
            parsed = json.loads(stripped)
        except ValueError as exc:
            raise ProtocolError(
                f"malformed JSON request: {exc}",
                recover_request_id(stripped),
            ) from exc
        if not isinstance(parsed, list) or not all(
            isinstance(a, str) for a in parsed
        ):
            raise ProtocolError("JSON request must be an array of strings")
        return _classify_argv(parsed)
    try:
        argv = shlex.split(stripped)
    except ValueError as exc:
        raise ProtocolError(f"malformed request line: {exc}") from exc
    return _classify_argv(argv)


def _classify_argv(argv: list[str]) -> Request:
    if argv == ["metrics"]:
        return Request(verb="metrics", argv=[], priority="metrics")
    if argv == ["shutdown"]:
        return Request(verb="shutdown", argv=[])
    return Request(verb="check", argv=argv)


def _parse_object_request(text: str) -> Request:
    try:
        obj = json.loads(text)
    except ValueError as exc:
        raise ProtocolError(
            f"malformed JSON request: {exc}", recover_request_id(text)
        ) from exc
    if not isinstance(obj, dict):
        raise ProtocolError("JSON request must be an object or array")
    request_id = obj.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError('"id" must be an integer or string')

    def fail(message: str):
        raise ProtocolError(message, request_id)

    op = obj.get("op", "check")
    if op in ("metrics", "shutdown"):
        return Request(
            verb=op, argv=[], id=request_id,
            priority="metrics" if op == "metrics" else "interactive",
        )
    if op != "check":
        fail(f"unknown op {op!r} (expected check, metrics, or shutdown)")
    argv = obj.get("argv")
    if not isinstance(argv, list) or not all(
        isinstance(a, str) for a in argv
    ):
        fail('"argv" must be an array of strings')
    priority = obj.get("priority", "interactive")
    if priority not in PRIORITIES:
        fail(
            f"unknown priority {priority!r} "
            f"(expected one of {sorted(PRIORITIES)})"
        )
    timeout_s = obj.get("timeout")
    if timeout_s is not None:
        if not isinstance(timeout_s, (int, float)) or timeout_s <= 0:
            fail('"timeout" must be a positive number of seconds')
        timeout_s = float(timeout_s)
    return Request(
        verb="check", argv=list(argv), id=request_id,
        priority=priority, timeout_s=timeout_s,
    )


# -- reply builders ----------------------------------------------------------


def error_reply(
    request_id, kind: str, error: str, retry_after_ms: int | None = None
) -> dict:
    reply = {
        "id": request_id,
        "status": 2 if kind in _CLIENT_KINDS else 3,
        "error": error,
        "kind": kind,
    }
    if retry_after_ms is not None:
        reply["retry_after_ms"] = retry_after_ms
    return reply


def oversized_reply(request_id, size: int) -> dict:
    return error_reply(
        request_id, "oversized",
        f"request too large ({size} bytes; limit {MAX_REQUEST_BYTES})",
    )


def metrics_reply(request_id, registry) -> dict:
    return {"id": request_id, "status": 0, "metrics": registry.to_dict()}


def stats_payload(stats) -> dict:
    """The per-request ``stats`` field from a CheckStats record."""
    return {
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "memo_hits": stats.memo_hits,
        "memo_misses": stats.memo_misses,
        "degraded_units": stats.degraded_units,
        "internal_errors": stats.internal_errors,
        "preprocess_ms": round(stats.preprocess_s * 1000, 3),
        "parse_ms": round(stats.parse_s * 1000, 3),
        "check_ms": round(stats.check_s * 1000, 3),
        "total_ms": round(stats.total_s * 1000, 3),
    }


def execute_check(request: Request, request_id, cache, jobs: int) -> dict:
    """Run one check request to a reply dict (synchronously).

    This is the single execution path shared by the legacy stdin/stdout
    shim and the async service's worker threads, which is what keeps
    their replies identical. Cancellation is not handled here — a
    :class:`repro.core.faults.RequestCancelled` escapes to the caller
    that armed the scope.
    """
    from ..driver import cli

    try:
        status, output = cli.run(request.argv, cache=cache, jobs=jobs)
    except cli.CliError as exc:
        return error_reply(request_id, "usage", str(exc))
    except Exception as exc:  # the service must survive any one request
        return error_reply(
            request_id, "internal",
            f"internal error: {type(exc).__name__}: {exc}",
        )
    reply: dict = {"id": request_id, "status": status, "output": output}
    stats = cli.LAST_RUN_STATS  # thread-local: ours, not another worker's
    if stats is not None:
        reply["stats"] = stats_payload(stats)
    return reply
