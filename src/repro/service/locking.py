"""Advisory cache-directory locking.

Several processes legitimately share one ``.pylclint-cache/``: a
long-lived checking service, one-shot CLI runs from a build, a second
daemon someone started by accident. Individual entry writes were
already safe (temp file + ``os.replace``), but two operations are not
idempotent per-file and need mutual exclusion across processes:

* a **version-mismatch wipe** (``ResultCache._ensure_layout``) deleting
  the tree while another process is writing into it;
* **results-journal appends and compaction** (one shared append-only
  file; see ``incremental/cache.py``).

The lock is a single advisory ``flock`` on ``<root>/lock``. Advisory is
the right strength: a process that does not take the lock can still
read entries (reads are corruption-tolerant), it just must not run the
two operations above — and every code path in this repo that does goes
through :class:`CacheDirLock`.

On platforms without ``fcntl`` (Windows) the lock degrades to a no-op,
matching the repo's zero-dependency stance; the cache then falls back
to the per-file atomicity it always had.
"""

from __future__ import annotations

import os
import threading

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: Name of the lock file inside the cache root. Never an entry, never
#: wiped by a version rebuild (the wipe itself holds it).
LOCK_FILE_NAME = "lock"


class CacheDirLock:
    """An advisory, re-entrant, cross-process lock on a cache directory.

    ``with lock.exclusive(): ...`` blocks until the flock is held.
    Re-entrant within a process (a wipe inside ``_ensure_layout`` may
    run under a flush that already holds it) via a thread-level RLock
    plus a depth counter — flock itself is per-open-file, so the depth
    counter keeps the first release from dropping an outer hold.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.path = os.path.join(self.root, LOCK_FILE_NAME)
        self._thread_lock = threading.RLock()
        self._depth = 0
        self._fd: int | None = None

    @property
    def supported(self) -> bool:
        return fcntl is not None

    @property
    def held(self) -> bool:
        """True while any level of this object's re-entrant hold is open
        (a same-thread observation; other threads see a racy snapshot)."""
        return self._depth > 0

    def exclusive(self) -> "_Held":
        return _Held(self)

    # -- internals ----------------------------------------------------------

    def _acquire(self) -> None:
        self._thread_lock.acquire()
        self._depth += 1
        if self._depth > 1 or fcntl is None:
            return
        try:
            os.makedirs(self.root, exist_ok=True)
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        except OSError:
            # A cache on a filesystem without flock (some NFS mounts)
            # still works, just without cross-process exclusion.
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
            self._fd = None

    def _release(self) -> None:
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            try:
                if fcntl is not None:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None
        self._thread_lock.release()


class _Held:
    __slots__ = ("_lock",)

    def __init__(self, lock: CacheDirLock) -> None:
        self._lock = lock

    def __enter__(self) -> CacheDirLock:
        self._lock._acquire()
        return self._lock

    def __exit__(self, *exc) -> None:
        self._lock._release()
