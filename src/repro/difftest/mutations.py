"""The seeded mutation engine: one labelled bug per program variant.

Each variant starts from :func:`repro.bench.generator.generate_program`
output and receives exactly one mutation: the body of one driver
scenario function is replaced by a bug recipe from the paper's error
catalogue (:func:`repro.bench.seeding.bug_body` — null dereference,
use-after-free, double free, invalid free, uninitialized read, leak,
out-of-bounds store, partial-struct field read, aliased double free).
The mutation carries machine-readable ground truth: the planted error
class, the containing function, and the line window of the spliced
statements. A fraction of variants stays clean so false positives are
measurable; clean controls cycle between the unmutated program and the
guard idioms of :data:`repro.bench.seeding.GUARD_CLEAN_IDIOMS` (``?:``
with a null guard, assignment-in-condition), which once drew spurious
null-dereference messages — a guard-analysis regression resurfaces as a
static-fp discrepancy in any campaign.

The statement window doubles as the shrinking substrate: the
delta-debugging shrinker re-emits the same variant with subsets of the
window's lines through :func:`rebuild_variant`.

Everything here is a pure function of the integer seed — no wall clock,
no hash-randomized iteration — so a campaign is replayable across
processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..bench.generator import GeneratedProgram, generate_program
from ..bench.seeding import (
    GUARD_CLEAN_IDIOMS,
    BugKind,
    bug_body,
    guard_clean_body,
)

#: The error classes a campaign plants and scores: every
#: :class:`repro.runtime.heap.RuntimeEventKind` class plus the static
#: refinement classes (a partial-struct field read manifests at run time
#: as an uninitialized read, an aliased double free as a double free).
CAMPAIGN_CLASSES: tuple[str, ...] = (
    "null-dereference",
    "uninitialized-read",
    "use-after-free",
    "double-free",
    "invalid-free",
    "leak",
    "out-of-bounds",
    "uninit-field-read",
    "double-free-alias",
)


class MutationError(Exception):
    """The engine could not apply a mutation (malformed generator output)."""


@dataclass(frozen=True)
class PlantedBug:
    """Ground truth for one mutation."""

    kind: BugKind
    error_class: str
    scenario: str          # function the bug lives in
    file: str              # file the mutation was applied to
    line_start: int        # first line of the spliced statement window
    line_end: int          # last line of the window (inclusive)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "error_class": self.error_class,
            "scenario": self.scenario,
            "file": self.file,
            "line_start": self.line_start,
            "line_end": self.line_end,
        }

    @staticmethod
    def from_dict(data: dict) -> "PlantedBug":
        return PlantedBug(
            kind=BugKind(data["kind"]),
            error_class=data["error_class"],
            scenario=data["scenario"],
            file=data["file"],
            line_start=int(data["line_start"]),
            line_end=int(data["line_end"]),
        )


@dataclass
class Variant:
    """One generated program plus its (possibly empty) mutation."""

    seed: int
    files: dict[str, str]
    scenarios: list[str]            # every scenario entry point
    target: str                     # the scenario the engine mutated/targeted
    planted: PlantedBug | None      # None => clean control variant
    window_lines: tuple[str, ...] = ()   # current statement window text

    @property
    def is_clean(self) -> bool:
        return self.planted is None


def function_span(text: str, name: str) -> tuple[int, int, int]:
    """Locate ``void name(void) { ... }`` in *text*.

    Returns 0-based line indices ``(header, open_brace, close_brace)``.
    Brace depth is tracked, so single-line ``if (...) { ... }`` bodies
    (as in the offset-free recipe) do not terminate the span early.
    """
    lines = text.split("\n")
    header = f"void {name}(void)"
    for i, line in enumerate(lines):
        if line.strip() != header:
            continue
        depth = 0
        open_at: int | None = None
        for k in range(i, len(lines)):
            depth += lines[k].count("{") - lines[k].count("}")
            if open_at is None and "{" in lines[k]:
                open_at = k
            if open_at is not None and depth == 0:
                return i, open_at, k
        raise MutationError(f"unterminated body for {name!r}")
    raise MutationError(f"no function {name!r} in text")


def _body_lines(body: str) -> list[str]:
    return [line for line in body.split("\n") if line.strip()]


def _splice(
    driver: str, name: str, helper_lines: list[str], body_lines: list[str]
) -> tuple[str, int, int]:
    """Replace *name*'s body with *body_lines*; returns the new text and
    the 1-based inclusive line window of the spliced statements."""
    lines = driver.split("\n")
    header, open_at, close_at = function_span(driver, name)
    new_lines = (
        lines[:header]
        + helper_lines
        + lines[header : open_at + 1]
        + body_lines
        + lines[close_at:]
    )
    start = len(lines[:header]) + len(helper_lines) + (open_at + 1 - header) + 1
    return "\n".join(new_lines), start, start + len(body_lines) - 1


@dataclass
class MutationEngine:
    """Derives one :class:`Variant` per integer seed.

    ``clean_every`` controls the planted/clean mix: every n-th seed emits
    an unmutated control variant (the false-positive probe).
    """

    modules: int = 1
    filler_functions: int = 1
    scenarios_per_module: int = 2
    clean_every: int = 8
    kinds: tuple[BugKind, ...] = tuple(BugKind)

    def variant(self, seed: int) -> Variant:
        rng = random.Random(0x9E3779B1 * (seed + 1) % (2**63))
        base = generate_program(
            modules=self.modules,
            filler_functions=self.filler_functions,
            scenarios_per_module=self.scenarios_per_module,
            seed=seed,
        )
        target = rng.choice(base.scenarios)
        files = dict(base.files)
        if self.clean_every > 0 and seed % self.clean_every == self.clean_every - 1:
            # Clean controls cycle deterministically between the plain
            # unmutated program and the guard-idiom recipes, so every
            # campaign probes the idioms that historically drew false
            # positives (?: arms, assignment-in-condition).
            choice = (seed // self.clean_every) % (1 + len(GUARD_CLEAN_IDIOMS))
            if choice == 0:
                _, open_at, close_at = function_span(files["driver.c"], target)
                window = tuple(
                    files["driver.c"].split("\n")[open_at + 1 : close_at]
                )
                return Variant(
                    seed=seed, files=files, scenarios=list(base.scenarios),
                    target=target, planted=None, window_lines=window,
                )
            idiom = GUARD_CLEAN_IDIOMS[choice - 1]
            module = rng.randrange(self.modules)
            helpers, body = guard_clean_body(idiom, module, target)
            helper_lines = (
                helpers.strip("\n").split("\n") if helpers.strip() else []
            )
            body_lines = _body_lines(body)
            mutated, _, _ = _splice(
                files["driver.c"], target, helper_lines, body_lines
            )
            files["driver.c"] = mutated
            return Variant(
                seed=seed, files=files, scenarios=list(base.scenarios),
                target=target, planted=None, window_lines=tuple(body_lines),
            )
        kind = self.kinds[rng.randrange(len(self.kinds))]
        module = rng.randrange(self.modules)
        helpers, body = bug_body(kind, module, target)
        helper_lines = helpers.strip("\n").split("\n") if helpers.strip() else []
        body_lines = _body_lines(body)
        mutated, start, end = _splice(
            files["driver.c"], target, helper_lines, body_lines
        )
        files["driver.c"] = mutated
        planted = PlantedBug(
            kind=kind,
            error_class=kind.error_class,
            scenario=target,
            file="driver.c",
            line_start=start,
            line_end=end,
        )
        return Variant(
            seed=seed, files=files, scenarios=list(base.scenarios),
            target=target, planted=planted, window_lines=tuple(body_lines),
        )

    def rebuild_variant(
        self, variant: Variant, window_lines: list[str]
    ) -> Variant:
        """The same variant with the statement window replaced.

        This is the shrinker's probe constructor: it regenerates the base
        program from the seed and re-splices, so line ranges stay honest.
        """
        fresh = self.variant(variant.seed)
        driver = fresh.files["driver.c"]
        new_driver, start, end = _splice(
            driver, fresh.target, [], list(window_lines)
        )
        files = dict(fresh.files)
        files["driver.c"] = new_driver
        planted = fresh.planted
        if planted is not None:
            planted = replace(planted, line_start=start, line_end=end)
        return Variant(
            seed=fresh.seed, files=files, scenarios=fresh.scenarios,
            target=fresh.target, planted=planted,
            window_lines=tuple(window_lines),
        )
