"""Verdict comparison: confusion matrices and the paper-style table.

The comparer aligns the two detectors through the shared error-class
vocabulary (:data:`repro.messages.message.MEMORY_ERROR_CLASSES` on the
static side, :attr:`repro.runtime.heap.RuntimeEventKind.error_class` on
the dynamic side) and scores each against ground truth:

* **TP/FN** are scored against the *plant*: the mutation engine knows
  which class it planted and where, and the instrumented-heap oracle
  confirms the plant actually manifests when the scenario executes.
* **FP** is scored against the *oracle*: a detector claiming class C is
  spurious only if executing the program shows no event of class C.
  Secondary truths are thereby honest — an offset free really does also
  leak the block, so a static leak message next to it is corroborated,
  not spurious.

A static message code can legitimately witness two dynamic classes
(``USE_AFTER_RELEASE`` covers both use-after-free and double free: a
second free *is* a use of released storage), so corroboration uses a
small equivalence table rather than string equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .mutations import CAMPAIGN_CLASSES
from .runner import DualVerdict

#: Oracle classes that corroborate a static/dynamic claim of the key
#: class. Beyond the identity, a use-after-free claim is corroborated by
#: an observed double free (same static message code witnesses both).
CORROBORATED_BY: dict[str, frozenset[str]] = {
    cls: frozenset({cls}) for cls in CAMPAIGN_CLASSES
}
CORROBORATED_BY["use-after-free"] = frozenset(
    {"use-after-free", "double-free"}
)
# The static refinement classes have no run-time twin: the instrumented
# heap sees a partial-struct field read as a plain uninitialized read and
# an aliased double free as a double free (or, with intervening reuse, a
# use-after-free).
CORROBORATED_BY["uninit-field-read"] = frozenset(
    {"uninit-field-read", "uninitialized-read"}
)
CORROBORATED_BY["double-free-alias"] = frozenset(
    {"double-free-alias", "double-free", "use-after-free"}
)
#: ...and vice versa: a planted double free's static witness arrives as
#: the use-after-free class, and a planted refinement-class bug is
#: witnessed at run time by its coarser dynamic class.
STATIC_EQUIVALENTS: dict[str, frozenset[str]] = {
    cls: frozenset({cls}) for cls in CAMPAIGN_CLASSES
}
STATIC_EQUIVALENTS["double-free"] = frozenset(
    {"double-free", "use-after-free"}
)
STATIC_EQUIVALENTS["uninit-field-read"] = frozenset(
    {"uninit-field-read", "uninitialized-read"}
)
STATIC_EQUIVALENTS["double-free-alias"] = frozenset(
    {"double-free-alias", "double-free", "use-after-free"}
)


@dataclass
class ClassCounts:
    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    @property
    def recall(self) -> float | None:
        total = self.tp + self.fn
        return self.tp / total if total else None

    @property
    def precision(self) -> float | None:
        total = self.tp + self.fp
        return self.tp / total if total else None


@dataclass
class ConfusionMatrix:
    """Per-error-class TP/FP/FN/TN tallies for one detector."""

    detector: str
    counts: dict[str, ClassCounts] = field(default_factory=dict)

    def at(self, cls: str) -> ClassCounts:
        if cls not in self.counts:
            self.counts[cls] = ClassCounts()
        return self.counts[cls]

    def total(self) -> ClassCounts:
        out = ClassCounts()
        for c in self.counts.values():
            out.tp += c.tp
            out.fp += c.fp
            out.fn += c.fn
            out.tn += c.tn
        return out

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "counts": {
                cls: [c.tp, c.fp, c.fn, c.tn]
                for cls, c in sorted(self.counts.items())
            },
        }


@dataclass(frozen=True)
class Discrepancy:
    """One static-vs-ground-truth disagreement, pre-shrinking."""

    seed: int
    direction: str          # 'static-fn' | 'static-fp'
    error_class: str
    detail: str


@dataclass
class ComparisonOutcome:
    """What one variant contributes to the campaign."""

    seed: int
    planted_class: str | None
    plant_confirmed: bool
    discrepancies: list[Discrepancy] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)


def _spurious_static_classes(verdict: DualVerdict) -> list[str]:
    """Static claims the oracle could not corroborate."""
    oracle = verdict.oracle_classes
    out = []
    for cls in sorted(verdict.static.classes):
        if cls not in CAMPAIGN_CLASSES:
            continue
        if not (CORROBORATED_BY[cls] & oracle):
            out.append(cls)
    return out


def score_verdict(
    verdict: DualVerdict,
    static_matrix: ConfusionMatrix,
    runtime_matrix: ConfusionMatrix,
) -> ComparisonOutcome:
    """Fold one dual verdict into both matrices; report discrepancies."""
    outcome = ComparisonOutcome(
        seed=verdict.seed,
        planted_class=verdict.planted_class,
        plant_confirmed=verdict.plant_confirmed,
    )
    if verdict.static.parse_errors or verdict.static.internal_errors:
        outcome.notes.append(
            f"seed {verdict.seed}: static run degraded "
            f"({verdict.static.parse_errors} parse error(s), "
            f"{verdict.static.internal_errors} internal error(s)); "
            f"variant excluded"
        )
        return outcome
    if verdict.oracle.failure is not None:
        outcome.notes.append(
            f"seed {verdict.seed}: oracle could not execute the target "
            f"scenario ({verdict.oracle.failure}); variant excluded"
        )
        return outcome

    planted = verdict.planted_class
    if planted is not None and not verdict.plant_confirmed:
        outcome.notes.append(
            f"seed {verdict.seed}: planted {planted} did not manifest "
            f"under the instrumented heap (plant failure); variant excluded"
        )
        return outcome

    # -- planted-class detection (TP/FN) -------------------------------
    if planted is not None:
        if verdict.static.window_hit:
            static_matrix.at(planted).tp += 1
        else:
            static_matrix.at(planted).fn += 1
            outcome.discrepancies.append(Discrepancy(
                seed=verdict.seed, direction="static-fn",
                error_class=planted,
                detail=(
                    f"planted {planted} in {verdict.oracle.scenario} was "
                    f"confirmed by the instrumented heap but drew no "
                    f"static message"
                ),
            ))
        target_run = next(
            (r for r in verdict.runs
             if r.scenario == verdict.oracle.scenario), None,
        )
        runtime_hit = target_run is not None and bool(
            STATIC_EQUIVALENTS[planted] & set(target_run.event_classes)
        )
        if runtime_hit:
            runtime_matrix.at(planted).tp += 1
        else:
            runtime_matrix.at(planted).fn += 1

    # -- spurious claims (FP) -------------------------------------------
    for cls in _spurious_static_classes(verdict):
        static_matrix.at(cls).fp += 1
        count = verdict.static.classes.get(cls, 0)
        outcome.discrepancies.append(Discrepancy(
            seed=verdict.seed, direction="static-fp", error_class=cls,
            detail=(
                f"{count} static {cls} message(s) but executing the "
                f"target scenario produced no such event"
            ),
        ))
    for run in verdict.runs:
        if run.failure is not None:
            outcome.notes.append(
                f"seed {verdict.seed}: run-time detector skipped "
                f"{run.scenario} ({run.failure})"
            )
            continue
        if run.scenario == verdict.oracle.scenario:
            continue  # scored above; events there are ground truth
        for cls in run.event_classes:
            if cls in CAMPAIGN_CLASSES:
                runtime_matrix.at(cls).fp += 1

    # -- true negatives -------------------------------------------------
    for cls in CAMPAIGN_CLASSES:
        if planted is None or cls not in STATIC_EQUIVALENTS[planted]:
            if cls not in verdict.static.classes:
                static_matrix.at(cls).tn += 1
    return outcome


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _fmt_rate(value: float | None) -> str:
    return "   -" if value is None else f"{value:4.2f}"


def render_matrix(
    static_matrix: ConfusionMatrix,
    runtime_matrix: ConfusionMatrix,
    coverage: float,
) -> str:
    """The paper-style static-vs-dynamic comparison table."""
    header = (
        f"{'error class':<20} {'static (all paths)':>26}   "
        f"{'runtime (%d%% coverage)' % round(coverage * 100):>26}"
    )
    sub = (
        f"{'':<20} {'TP':>6}{'FP':>5}{'FN':>5}{'recall':>9}   "
        f"{'TP':>6}{'FP':>5}{'FN':>5}{'recall':>9}"
    )
    lines = [header, sub]
    for cls in CAMPAIGN_CLASSES:
        s = static_matrix.at(cls)
        r = runtime_matrix.at(cls)
        lines.append(
            f"{cls:<20} {s.tp:>6}{s.fp:>5}{s.fn:>5}"
            f"{_fmt_rate(s.recall):>9}   "
            f"{r.tp:>6}{r.fp:>5}{r.fn:>5}{_fmt_rate(r.recall):>9}"
        )
    s = static_matrix.total()
    r = runtime_matrix.total()
    lines.append(
        f"{'overall':<20} {s.tp:>6}{s.fp:>5}{s.fn:>5}"
        f"{_fmt_rate(s.recall):>9}   "
        f"{r.tp:>6}{r.fp:>5}{r.fn:>5}{_fmt_rate(r.recall):>9}"
    )
    return "\n".join(lines)
