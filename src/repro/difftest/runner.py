"""The dual runner: one variant, two detectors, structured verdicts.

A variant is parsed once. The static side checks every translation unit
against the merged interface (:mod:`repro.core.api`) — no execution.
The dynamic side executes scenario functions one at a time under the
instrumented-heap interpreter with a step budget; each scenario gets a
fresh interpreter over the shared ASTs so events attribute cleanly.

Interpreter failures are verdicts, never crashes: an
:class:`~repro.runtime.interp.InterpreterError`, an exhausted step
budget, or a blown recursion limit comes back as a
:class:`ScenarioRun` with a ``failure`` string, and the campaign keeps
going.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..bench.seeding import (
    RUNTIME_WITNESSES,
    SeededBug,
    function_line_ranges,
    match_static_detections,
)
from ..core.api import Checker
from ..flags.registry import DEFAULT_FLAGS, Flags
from ..frontend.symtab import SymbolTable
from ..messages.message import Message, MessageCode
from ..runtime.interp import Interpreter, InterpreterError, StepBudgetExceeded
from .mutations import Variant


@dataclass
class ScenarioRun:
    """One scenario executed under the instrumented heap."""

    scenario: str
    event_kinds: list[str] = field(default_factory=list)   # RuntimeEventKind values
    event_classes: list[str] = field(default_factory=list)  # error_class slugs
    exit_code: int = 0
    steps: int = 0
    failure: str | None = None   # interpreter gave up; still a verdict


@dataclass
class StaticVerdict:
    messages: list[Message]
    classes: dict[str, int]           # error class -> message count
    window_hit: bool                  # planted signature matched in window
    parse_errors: int = 0
    internal_errors: int = 0


@dataclass
class DualVerdict:
    """Everything the comparer needs about one variant."""

    seed: int
    planted_class: str | None
    static: StaticVerdict
    oracle: ScenarioRun               # the target scenario, always executed
    runs: list[ScenarioRun]           # the "test suite" subset actually run
    tested: list[str]                 # scenario names in the test suite

    @property
    def oracle_classes(self) -> set[str]:
        return set(self.oracle.event_classes)

    @property
    def plant_confirmed(self) -> bool:
        """Did the instrumented heap observe the planted class at all?

        Static refinement classes are confirmed by their coarser run-time
        witness (:data:`repro.bench.seeding.RUNTIME_WITNESSES`): the heap
        reports a partial-struct field read as an uninitialized read.
        """
        if self.planted_class is None:
            return True
        witnesses = RUNTIME_WITNESSES.get(
            self.planted_class, frozenset({self.planted_class})
        )
        return bool(witnesses & set(self.oracle.event_classes))


class _ParsedVariant:
    """One parse of a variant, reusable by both detectors."""

    def __init__(self, checker: Checker, parsed: list) -> None:
        self.checker = checker
        self.parsed = parsed
        self.units = [pu.unit for pu in parsed]
        self.symtab = SymbolTable()
        self.enum_consts: dict[str, int] = {}
        for pu in parsed:
            self.symtab.add_unit(pu.unit)
            self.enum_consts.update(pu.enum_consts)


class DualRunner:
    """Runs both detectors over variants with shared configuration."""

    def __init__(
        self,
        flags: Flags | None = None,
        max_steps: int = 200_000,
        max_call_depth: int = 128,
    ) -> None:
        self.flags = flags or DEFAULT_FLAGS
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth

    # -- parsing (shared by both detectors) -----------------------------

    def _parse(self, files: dict[str, str]) -> _ParsedVariant:
        checker = Checker(flags=self.flags)
        for name, text in files.items():
            if name.endswith(".h"):
                checker.sources.add(name, text)
        parsed = [
            checker.parse_unit(text, name)
            for name, text in files.items()
            if not name.endswith(".h")
        ]
        return _ParsedVariant(checker, parsed)

    # -- static side ----------------------------------------------------

    def _check_static(
        self, variant: Variant, pv: _ParsedVariant
    ) -> StaticVerdict:
        result = pv.checker.check_units(pv.parsed)
        classes: dict[str, int] = {}
        for msg in result.messages:
            cls = msg.code.error_class
            if cls is not None:
                classes[cls] = classes.get(cls, 0) + 1
        window_hit = False
        if variant.planted is not None:
            ranges = function_line_ranges(result.units)
            probe = SeededBug(
                0, variant.planted.kind, variant.planted.scenario,
                variant.planted.file,
            )
            window_hit = match_static_detections(
                [probe], result.messages, ranges
            )[0]
        parse_errors = sum(
            1 for m in result.messages if m.code is MessageCode.PARSE_ERROR
        )
        return StaticVerdict(
            messages=result.messages,
            classes=classes,
            window_hit=window_hit,
            parse_errors=parse_errors,
            internal_errors=result.internal_errors,
        )

    def check_static(self, variant: Variant) -> StaticVerdict:
        return self._check_static(variant, self._parse(variant.files))

    # -- dynamic side ---------------------------------------------------

    def _run_scenario(self, pv: _ParsedVariant, scenario: str) -> ScenarioRun:
        try:
            interp = Interpreter(
                pv.units, pv.symtab, pv.enum_consts,
                max_steps=self.max_steps,
                max_call_depth=self.max_call_depth,
            )
            result = interp.run(scenario)
        except (InterpreterError, StepBudgetExceeded, RecursionError) as exc:
            return ScenarioRun(
                scenario=scenario,
                failure=f"{type(exc).__name__}: {exc}",
            )
        return ScenarioRun(
            scenario=scenario,
            event_kinds=[e.kind.value for e in result.events],
            event_classes=sorted({e.kind.error_class for e in result.events}),
            exit_code=result.exit_code,
            steps=result.steps,
        )

    def run_scenario(self, variant: Variant, scenario: str) -> ScenarioRun:
        return self._run_scenario(self._parse(variant.files), scenario)

    # -- both -----------------------------------------------------------

    def test_suite(self, variant: Variant, coverage: float) -> list[str]:
        """The deterministic, seed-derived 'tests that were written'."""
        rng = random.Random(0x51ED270 ^ (variant.seed * 2654435761 % 2**31))
        count = max(0, min(len(variant.scenarios),
                           round(len(variant.scenarios) * coverage)))
        return sorted(rng.sample(variant.scenarios, count))

    def run_variant(
        self, variant: Variant, coverage: float = 0.5
    ) -> DualVerdict:
        """Check statically, execute the oracle, execute the test suite.

        The test suite is the paper's knob: a deterministic fraction of
        the variant's scenarios actually runs under the run-time
        detector. The oracle always executes the mutation target, so
        ground truth is observed, not assumed.
        """
        pv = self._parse(variant.files)
        static = self._check_static(variant, pv)
        oracle = self._run_scenario(pv, variant.target)
        tested = self.test_suite(variant, coverage)
        runs = [self._run_scenario(pv, name) for name in tested]
        return DualVerdict(
            seed=variant.seed,
            planted_class=(
                variant.planted.error_class
                if variant.planted is not None else None
            ),
            static=static,
            oracle=oracle,
            runs=runs,
            tested=tested,
        )
