"""Differential fault injection: static checker vs. instrumented-heap oracle.

The subsystem plants one labelled memory error per generated program
variant (:mod:`.mutations`), runs both detectors over it
(:mod:`.runner`), scores them against ground truth into per-class
confusion matrices (:mod:`.verdict`), delta-debugs any static
disagreement down to a minimal reproducer (:mod:`.shrink`), and
persists the result to a replayable corpus (:mod:`.corpus`).
:mod:`.campaign` orchestrates the whole loop; :mod:`.cli` exposes it as
``repro difftest``.
"""

from .campaign import CampaignConfig, CampaignResult, run_campaign
from .corpus import (
    DEFAULT_CORPUS_DIR,
    CorpusCase,
    CorpusError,
    load_case,
    load_corpus,
    replay_case,
    save_case,
)
from .mutations import (
    CAMPAIGN_CLASSES,
    MutationEngine,
    MutationError,
    PlantedBug,
    Variant,
)
from .runner import DualRunner, DualVerdict, ScenarioRun, StaticVerdict
from .shrink import ShrinkResult, shrink_discrepancy
from .verdict import (
    ComparisonOutcome,
    ConfusionMatrix,
    Discrepancy,
    render_matrix,
    score_verdict,
)

__all__ = [
    "CAMPAIGN_CLASSES",
    "CampaignConfig",
    "CampaignResult",
    "ComparisonOutcome",
    "ConfusionMatrix",
    "CorpusCase",
    "CorpusError",
    "DEFAULT_CORPUS_DIR",
    "Discrepancy",
    "DualRunner",
    "DualVerdict",
    "MutationEngine",
    "MutationError",
    "PlantedBug",
    "ScenarioRun",
    "ShrinkResult",
    "StaticVerdict",
    "Variant",
    "load_case",
    "load_corpus",
    "render_matrix",
    "replay_case",
    "run_campaign",
    "save_case",
    "score_verdict",
    "shrink_discrepancy",
]
