"""Campaign orchestration: N seeds, two detectors, one comparison table.

A campaign maps seeds to variants, runs the dual runner over each
(optionally on a fork pool of workers, mirroring the incremental
engine's scheduler), folds every verdict into the per-class confusion
matrices, shrinks each discrepancy with delta debugging, and persists
the minimized cases to the replay corpus.

Everything a worker returns is plain picklable data; scoring, shrinking
and persistence happen in the parent, in seed order, so a parallel
campaign's output is byte-identical to a serial one's.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..core.api import ensure_process_initialized
from ..flags.registry import Flags
from ..obs.metrics import GLOBAL_METRICS
from .corpus import (
    DEFAULT_CORPUS_DIR,
    CorpusCase,
    case_from_shrunk,
    save_case,
)
from .mutations import MutationEngine
from .runner import DualRunner, DualVerdict
from .shrink import shrink_discrepancy
from .verdict import (
    ComparisonOutcome,
    ConfusionMatrix,
    Discrepancy,
    render_matrix,
    score_verdict,
)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign (and each of its workers) needs."""

    seeds: int = 50
    jobs: int = 1
    coverage: float = 0.5
    modules: int = 1
    filler_functions: int = 1
    scenarios_per_module: int = 2
    clean_every: int = 8
    max_steps: int = 200_000
    flag_args: tuple[str, ...] = ()
    corpus_dir: str | None = DEFAULT_CORPUS_DIR
    shrink: bool = True
    max_shrink_probes: int = 200

    def engine(self) -> MutationEngine:
        return MutationEngine(
            modules=self.modules,
            filler_functions=self.filler_functions,
            scenarios_per_module=self.scenarios_per_module,
            clean_every=self.clean_every,
        )

    def runner(self) -> DualRunner:
        flags = Flags.from_args(list(self.flag_args)) if self.flag_args \
            else None
        return DualRunner(flags=flags, max_steps=self.max_steps)


@dataclass
class ShrunkDiscrepancy:
    discrepancy: Discrepancy
    case: CorpusCase
    probes: int
    reduced: bool
    original_window: int
    minimized_window: int
    path: str | None


@dataclass
class CampaignResult:
    config: CampaignConfig
    static_matrix: ConfusionMatrix
    runtime_matrix: ConfusionMatrix
    outcomes: list[ComparisonOutcome]
    shrunk: list[ShrunkDiscrepancy] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def planted_count(self) -> int:
        return sum(1 for o in self.outcomes if o.planted_class is not None)

    @property
    def clean_count(self) -> int:
        return sum(1 for o in self.outcomes if o.planted_class is None)

    @property
    def excluded_count(self) -> int:
        return sum(
            1 for o in self.outcomes
            if o.planted_class is not None and not o.plant_confirmed
        )

    @property
    def discrepancy_count(self) -> int:
        return sum(len(o.discrepancies) for o in self.outcomes)

    @property
    def clean_exit(self) -> bool:
        """True when no static false negative/positive survived."""
        return self.discrepancy_count == 0

    def render(self) -> str:
        cfg = self.config
        lines = [
            f"differential fault injection: {cfg.seeds} variants "
            f"({self.planted_count} planted, {self.clean_count} clean"
            + (f", {self.excluded_count} excluded" if self.excluded_count
               else "")
            + ")",
            "",
            render_matrix(
                self.static_matrix, self.runtime_matrix, cfg.coverage
            ),
            "",
        ]
        if self.shrunk:
            lines.append(
                f"{len(self.shrunk)} discrepanc"
                f"{'y' if len(self.shrunk) == 1 else 'ies'} "
                f"minimized and persisted:"
            )
            for item in self.shrunk:
                where = item.path or "(not persisted)"
                lines.append(
                    f"  {item.case.name}: {item.discrepancy.detail} "
                    f"[window {item.original_window} -> "
                    f"{item.minimized_window} line(s), "
                    f"{item.probes} probe(s)] {where}"
                )
        else:
            lines.append("no static/ground-truth discrepancies")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the fork pool (same shape as repro.incremental.parallel)
# ---------------------------------------------------------------------------

_WORKER_CONFIG: CampaignConfig | None = None
_WORKER_ENGINE: MutationEngine | None = None
_WORKER_RUNNER: DualRunner | None = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_CONFIG, _WORKER_ENGINE, _WORKER_RUNNER
    ensure_process_initialized()
    _WORKER_CONFIG = pickle.loads(payload)
    _WORKER_ENGINE = _WORKER_CONFIG.engine()
    _WORKER_RUNNER = _WORKER_CONFIG.runner()


def _run_seed_task(seed: int) -> DualVerdict:
    assert _WORKER_CONFIG is not None, "worker initializer did not run"
    variant = _WORKER_ENGINE.variant(seed)
    return _WORKER_RUNNER.run_variant(variant, _WORKER_CONFIG.coverage)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _run_seeds_parallel(
    config: CampaignConfig, notes: list[str]
) -> list[DualVerdict] | None:
    """Run all seeds on a fork pool; None => caller should run serially."""
    if config.jobs <= 1 or config.seeds <= 1:
        return None
    if not _fork_available():
        notes.append(
            "parallel campaign unavailable (no fork start method); "
            "running serially"
        )
        return None
    try:
        pool = ProcessPoolExecutor(
            max_workers=min(config.jobs, config.seeds),
            mp_context=multiprocessing.get_context("fork"),
            initializer=_init_worker,
            initargs=(pickle.dumps(config),),
        )
    except Exception as exc:
        notes.append(
            f"parallel campaign unavailable (cannot start worker pool: "
            f"{type(exc).__name__}); running serially"
        )
        return None
    engine = config.engine()
    runner = config.runner()
    verdicts: list[DualVerdict] = []
    with pool:
        futures = [
            pool.submit(_run_seed_task, seed) for seed in range(config.seeds)
        ]
        for seed, future in enumerate(futures):
            try:
                verdicts.append(future.result())
            except Exception as exc:
                notes.append(
                    f"parallel run of seed {seed} failed "
                    f"({type(exc).__name__}); re-run serially"
                )
                verdicts.append(
                    runner.run_variant(engine.variant(seed), config.coverage)
                )
    return verdicts


def run_campaign(
    config: CampaignConfig,
    progress=None,
    metrics=None,
) -> CampaignResult:
    """Execute a full campaign; *progress* is an optional callable(str)."""
    notes: list[str] = []
    metrics = metrics if metrics is not None else GLOBAL_METRICS
    engine = config.engine()
    runner = config.runner()

    verdicts = _run_seeds_parallel(config, notes)
    if verdicts is None:
        verdicts = []
        for seed in range(config.seeds):
            verdicts.append(
                runner.run_variant(engine.variant(seed), config.coverage)
            )
            if progress is not None and (seed + 1) % 25 == 0:
                progress(f"{seed + 1}/{config.seeds} variants")

    static_matrix = ConfusionMatrix("static")
    runtime_matrix = ConfusionMatrix("runtime")
    outcomes: list[ComparisonOutcome] = []
    for verdict in verdicts:
        outcome = score_verdict(verdict, static_matrix, runtime_matrix)
        outcomes.append(outcome)
        notes.extend(outcome.notes)

    shrunk: list[ShrunkDiscrepancy] = []
    for outcome in outcomes:
        for discrepancy in outcome.discrepancies:
            variant = engine.variant(discrepancy.seed)
            original = len(variant.window_lines)
            if config.shrink:
                if progress is not None:
                    progress(
                        f"shrinking seed {discrepancy.seed} "
                        f"({discrepancy.direction} {discrepancy.error_class})"
                    )
                result = shrink_discrepancy(
                    engine, runner, variant, discrepancy,
                    max_probes=config.max_shrink_probes,
                )
                minimized, probes, reduced = (
                    result.variant, result.probes, result.reduced
                )
            else:
                minimized, probes, reduced = variant, 0, False
            case = case_from_shrunk(minimized, discrepancy, runner)
            path = (
                save_case(case, config.corpus_dir)
                if config.corpus_dir else None
            )
            shrunk.append(ShrunkDiscrepancy(
                discrepancy=discrepancy,
                case=case,
                probes=probes,
                reduced=reduced,
                original_window=original,
                minimized_window=len(case.window),
                path=path,
            ))

    result = CampaignResult(
        config=config,
        static_matrix=static_matrix,
        runtime_matrix=runtime_matrix,
        outcomes=outcomes,
        shrunk=shrunk,
        notes=notes,
    )
    metrics.inc("difftest.variants", len(outcomes))
    metrics.inc("difftest.variants.clean", result.clean_count)
    metrics.inc("difftest.variants.planted", result.planted_count)
    metrics.inc("difftest.discrepancies", result.discrepancy_count)
    for matrix in (static_matrix, runtime_matrix):
        total = matrix.total()
        for verdict_kind in ("tp", "fp", "fn", "tn"):
            count = getattr(total, verdict_kind)
            if count:
                metrics.inc(
                    f"difftest.{matrix.detector}.{verdict_kind}", count
                )
    return result
